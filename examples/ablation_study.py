#!/usr/bin/env python3
"""Ablation study (experiment A1): stress the paper's fixed assumptions.

The paper characterizes at VDD = 0.9 V, fanout 3, and with a particular
ambipolar back-gate technology.  This script sweeps each assumption and
shows how the headline results move:

* EDP vs supply voltage for the generalized library;
* the total-power saving vs the assumed polarity-gate capacitance;
* the saving vs characterization fanout;
* the computational payoff of the pattern classification.

Run:  python examples/ablation_study.py
"""

from repro.experiments.ablations import (
    fanout_sweep,
    pattern_cache_effectiveness,
    polarity_cap_sensitivity,
    supply_sweep,
)

print("== A1.1: supply sweep (generalized CNTFET library) ==")
print(f"{'VDD (V)':>8s} {'mean PT (nW)':>13s} {'FO3 (ps)':>9s} "
      f"{'EDP (1e-24 Js)':>15s}")
for point in supply_sweep():
    print(f"{point.vdd:8.1f} {point.mean_power * 1e9:13.2f} "
          f"{point.fo3_delay * 1e12:9.2f} {point.edp / 1e-24:15.5f}")

print("\n== A1.2: polarity-gate capacitance sensitivity ==")
print("(the paper's savings depend on how hard the ambipolar back gate")
print(" loads the transmission-gate inputs; our baseline is 6 aF)")
print(f"{'c_pol (aF)':>11s} {'total saving':>13s} {'dynamic saving':>15s}")
for point in polarity_cap_sensitivity():
    print(f"{point.c_pol_af:11.1f} {point.total_saving:13.1%} "
          f"{point.dynamic_saving:15.1%}")

print("\n== A1.3: fanout sweep ==")
print(f"{'fanout':>7s} {'CNTFET mean PT (nW)':>20s} "
      f"{'CMOS mean PT (nW)':>18s} {'saving':>8s}")
for point in fanout_sweep():
    print(f"{point.fanout:7d} {point.cntfet_mean_power * 1e9:20.2f} "
          f"{point.cmos_mean_power * 1e9:18.2f} {point.saving:8.1%}")

print("\n== A1.4: pattern-classification payoff ==")
cache = pattern_cache_effectiveness()
print(f"naive SPICE runs (one per cell-vector): {cache.cell_vector_pairs}")
print(f"classified runs (one per pattern):      {cache.distinct_patterns}")
print(f"reduction:                              {cache.reduction:.0f}x")
