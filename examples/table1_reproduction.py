#!/usr/bin/env python3
"""Full paper-scale Table 1 reproduction (the flagship experiment).

Runs all 12 benchmarks through resyn2rs, maps each onto the
generalized-CNTFET / conventional-CNTFET / CMOS libraries, estimates
power with the paper's 640 K random patterns, and prints the table with
the paper's averages inline plus the improvement rows.

This is the run recorded in EXPERIMENTS.md.  Takes a few minutes.

Run:  python examples/table1_reproduction.py [--fast]
"""

import sys
import time

from repro.circuits.suite import CONVENTIONAL, GENERALIZED
from repro.experiments.config import ExperimentConfig, PAPER_CONFIG
from repro.experiments.table1 import reproduce_table1

config = PAPER_CONFIG
if "--fast" in sys.argv:
    config = ExperimentConfig(n_patterns=16_384, state_patterns=16_384)
    print("(fast mode: 16 K patterns instead of 640 K)\n")

start = time.perf_counter()
result = reproduce_table1(config, verbose=True)
elapsed = time.perf_counter() - start

print()
print(result.render())
print()
print(f"total wall time: {elapsed:.0f} s "
      f"({config.n_patterns} random patterns per circuit)")

print("\n== headline comparison (average row) ==")
rows = [
    ("metric", "paper gen/CMOS", "ours gen/CMOS",
     "paper conv/CMOS", "ours conv/CMOS"),
]
gen = result.improvement_vs_cmos(GENERALIZED)
conv = result.improvement_vs_cmos(CONVENTIONAL)
paper_gen = {"gates": "24.2%", "delay": "7.1x", "pd": "53.4%",
             "ps": "94.5%", "pt": "57.1%", "edp": "19.5x"}
paper_conv = {"gates": "3.2%", "delay": "5.1x", "pd": "30.9%",
              "ps": "92.7%", "pt": "36.7%", "edp": "8.1x"}
for key, label in [("gates", "gate count"), ("delay", "delay"),
                   ("pd", "dynamic power"), ("ps", "static power"),
                   ("pt", "total power"), ("edp", "EDP")]:
    rows.append((label, paper_gen[key], gen[key],
                 paper_conv[key], conv[key]))
widths = [max(len(str(r[i])) for r in rows) for i in range(5)]
for row in rows:
    print("  ".join(str(cell).rjust(w) for cell, w in zip(row, widths)))
