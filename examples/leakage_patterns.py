#!/usr/bin/env python3
"""Off-current pattern classification walkthrough (Sections 3.2/3.3).

Shows, step by step, what the gate topology analyzer does:

* NOR3 under every input vector -> reduced off-network patterns
  (including the paper's example that [1 1 0] and [1 0 1] share a
  pattern, and Fig. 4's parallel-vs-series contrast);
* the pattern set of the whole 46-cell ambipolar library;
* the circuit-level quantification of each distinct pattern (Fig. 5,
  step 2) with the resulting currents.

Run:  python examples/leakage_patterns.py
"""

from repro.experiments.figures import reproduce_fig4_patterns
from repro.gates import cmos_library, generalized_cntfet_library
from repro.power import PatternSimulator, library_patterns, stage_patterns
from repro.units import to_nanoamperes

# -- NOR3, vector by vector ---------------------------------------------------

mlib = cmos_library()
nor3 = mlib.cell("NOR3")
simulator = PatternSimulator(mlib.tech)

print("== NOR3 off-current patterns per input vector ==")
for vector in range(8):
    values = tuple(bool((vector >> i) & 1) for i in range(3))
    patterns = stage_patterns(nor3, values)
    current = sum(simulator.off_current(p) for p in patterns)
    bits = " ".join(str(int(v)) for v in values)
    print(f"  [{bits}] -> {patterns[0].key:14s} "
          f"Ioff = {to_nanoamperes(current):6.3f} nA")

print("\nNote: [1 1 0] and [1 0 1] share one pattern (the paper's")
print("Section 3.2 example), so one SPICE run covers both vectors.")

# -- Fig. 4 -------------------------------------------------------------------

print()
print(reproduce_fig4_patterns(mlib).render())

# -- whole-library statistics ---------------------------------------------------

glib = generalized_cntfet_library()
keys = sorted(library_patterns(glib))
print(f"\n== pattern set of the 46-cell ambipolar library ==")
print(f"distinct patterns: {len(keys)} (paper: 26)")
cnt_sim = PatternSimulator(glib.tech)
from repro.power.patterns import LeakagePattern


def _parse(key):
    """Rebuild a pattern tree from its canonical key (demo only)."""
    pos = 0

    def parse():
        nonlocal pos
        if key[pos] == "d":
            pos += 1
            return ("d",)
        tag = key[pos]
        pos += 2  # tag + '('
        children = [parse()]
        while key[pos] == ",":
            pos += 1
            children.append(parse())
        pos += 1  # ')'
        return (tag, *children)

    return parse()


print(f"{'pattern':24s} {'devices':>8s} {'Ioff (nA)':>10s}")
for key in keys:
    pattern = LeakagePattern(_parse(key))
    current = cnt_sim.off_current(pattern)
    print(f"{key:24s} {pattern.n_devices:8d} "
          f"{to_nanoamperes(current):10.4f}")
print(f"\nSPICE operating points computed: {cnt_sim.solves} "
      f"(vs {sum(1 << c.n_inputs for c in glib)} naive cell-vector runs)")
