#!/usr/bin/env python3
"""The full synthesis flow on one XOR-rich circuit (the C6288 class).

Demonstrates the ABC-substitute pipeline of Section 4: resyn2rs
optimization, technology mapping onto the three libraries, static
timing, and genlib export — and shows *why* the generalized library
wins on XOR-rich datapaths (cell histogram comparison).

Run:  python examples/synthesis_flow.py [width]
"""

import sys

from repro.circuits.multiplier import array_multiplier
from repro.gates.genlib import write_genlib
from repro.registry import paper_libraries
from repro.synth.mapper import map_aig
from repro.synth.netlist import static_timing
from repro.synth.scripts import resyn2rs

width = int(sys.argv[1]) if len(sys.argv) > 1 else 8

aig = array_multiplier(width)
print(f"== {width}x{width} array multiplier ==")
print(f"AIG: {aig.n_nodes} nodes, depth {aig.depth()}")

optimized = resyn2rs(aig, verify=True)
print(f"after resyn2rs: {optimized.n_nodes} nodes, "
      f"depth {optimized.depth()} (function verified)")

for key, library in paper_libraries().items():
    netlist = map_aig(optimized, library)
    netlist.validate()
    delay, _ = static_timing(netlist)
    histogram = sorted(netlist.cell_histogram().items(),
                       key=lambda kv: -kv[1])
    top = ", ".join(f"{name} x{count}" for name, count in histogram[:6])
    print(f"\n-- {key} --")
    print(f"gates: {netlist.gate_count}, devices: "
          f"{netlist.total_devices()}, delay: {delay * 1e12:.1f} ps")
    print(f"top cells: {top}")
    xor_cells = sum(count for name, count in histogram
                    if "X" in name or name.startswith("G"))
    print(f"XOR-embedding cells used: {xor_cells}")

# genlib export (portable to ABC/SIS-style tools)
library = paper_libraries()["cntfet-generalized"]
path = "generalized_cntfet.genlib"
with open(path, "w") as handle:
    handle.write(write_genlib(library))
print(f"\nwrote {path} ({len(library)} cells)")
