#!/usr/bin/env python3
"""Section 4 gate-level study: the 46-cell library vs CMOS.

Reproduces the numbers the paper reports in prose — inverter input
capacitances (36 aF vs 52 aF), gate-leakage fractions (PG ~ 10 % of PS
for CMOS, < 1 % for CNTFETs), equal mean activity factors, the ~27 %
dynamic and ~28 % total power savings, and the distinct-pattern count
of the classification method (26 in the paper).

Run:  python examples/library_characterization.py
"""

from repro.experiments.library_power import reproduce_library_study

study = reproduce_library_study()
print(study.render())

print()
print("Paper anchors vs measured:")
anchors = [
    ("CNTFET inverter Cin", "36 aF", f"{study.cntfet_inverter_cin_af:.1f} aF"),
    ("CMOS inverter Cin", "52 aF", f"{study.cmos_inverter_cin_af:.1f} aF"),
    ("distinct Ioff patterns", "26", str(study.distinct_patterns)),
    ("dynamic power saving", "27%",
     f"{study.comparison.dynamic_saving:.1%}"),
    ("total power saving", "28%", f"{study.comparison.total_saving:.1%}"),
    ("static power ratio", "~10x", f"{study.comparison.static_ratio:.1f}x"),
    ("PG/PS (CMOS)", "~10%",
     f"{study.comparison.reference_gate_leak_fraction:.1%}"),
    ("PG/PS (CNTFET)", "<1%",
     f"{study.comparison.candidate_gate_leak_fraction:.2%}"),
]
for label, paper, measured in anchors:
    print(f"  {label:26s} paper: {paper:>6s}   measured: {measured}")
