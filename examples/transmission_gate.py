#!/usr/bin/env python3
"""Device-level demos: Fig. 1 (polarity configuration) and Fig. 2
(transmission-gate signal integrity), on the SPICE substitute.

* Fig. 1 — the ambipolar CNTFET behaves as n-type with its polarity
  gate at 0 and as p-type with it at VDD: we sweep the conventional
  gate and print the two I-V branches.
* Fig. 2 — a transmission gate (opposite-polarity pair) passes both
  rails without degradation, while a single pass device loses a
  threshold drop — the property that makes static TG logic work.

Run:  python examples/transmission_gate.py
"""

from repro.devices import CNTFET_32NM
from repro.devices.ambipolar import AmbipolarCNTFET
from repro.experiments.figures import reproduce_fig2_transmission
from repro.units import to_nanoamperes

VDD = CNTFET_32NM.vdd
device = AmbipolarCNTFET(CNTFET_32NM.nmos)

print("== Fig. 1: in-field polarity configuration ==")
print(f"{'Vg (V)':>8s} {'I(n-config) nA':>16s} {'I(p-config) nA':>16s}")
for step in range(0, 10):
    vg = VDD * step / 9
    # n-configured: polarity gate at 0, source at 0, drain at VDD
    i_n = device.drain_current(vg, 0.0, VDD, 0.0, VDD)
    # p-configured: polarity gate at VDD, source at VDD, drain at 0
    i_p = device.drain_current(vg, VDD, 0.0, VDD, VDD)
    print(f"{vg:8.2f} {to_nanoamperes(i_n):16.2f} "
          f"{to_nanoamperes(i_p):16.2f}")
print("n-config conducts for high Vg (n-type), p-config for low Vg "
      "(p-type).")

print()
result = reproduce_fig2_transmission()
print(result.render())
print()
print("Conclusion (the paper's Fig. 2): any passing TG configuration")
print("prevents signal degradation; single pass devices do not.")
