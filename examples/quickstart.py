#!/usr/bin/env python3
"""Quickstart: characterize a gate, map a circuit, estimate its power.

This walks the three layers of the reproduction in ~40 lines:

1. device level   — the calibrated 32 nm technologies;
2. gate level     — power characterization of one ambipolar cell
                    (the paper's Fig. 5 flow);
3. circuit level  — synthesize, map and power-estimate a small adder
                    (one cell of Table 1).

Run:  python examples/quickstart.py
"""

from repro.circuits.adders import ripple_adder_circuit
from repro.devices import CMOS_32NM, CNTFET_32NM, technology_report
from repro.experiments.config import ExperimentConfig
from repro.experiments.flow import run_circuit_flow
from repro.gates import generalized_cntfet_library
from repro.power import PatternSimulator, characterize_cell
from repro.power.model import PowerParameters

# -- 1. the technologies ----------------------------------------------------

print("== technologies ==")
print(technology_report(CMOS_32NM))
print(technology_report(CNTFET_32NM))

# -- 2. characterize one generalized gate -----------------------------------

library = generalized_cntfet_library()
cell = library.cell("GNAND2B")          # ((a^c)(b^d))' - two TGs in series
simulator = PatternSimulator(library.tech)
report = characterize_cell(cell, library, simulator, PowerParameters())

print(f"\n== {cell.name}: {cell.description} ==")
print(f"devices:            {report.n_devices}")
print(f"activity factor:    {report.activity:.2f}")
print(f"mean input cap:     {report.input_capacitance * 1e18:.1f} aF")
print(f"mean off-current:   {report.mean_i_off * 1e9:.3f} nA")
print(f"PD  = {report.power.dynamic * 1e9:8.2f} nW")
print(f"PSC = {report.power.short_circuit * 1e9:8.2f} nW")
print(f"PS  = {report.power.static * 1e9:8.4f} nW")
print(f"PG  = {report.power.gate_leak * 1e9:8.5f} nW")
print(f"PT  = {report.power.total * 1e9:8.2f} nW")
print(f"distinct leakage patterns: {report.distinct_patterns} "
      f"(simulated once each, then cached)")

# -- 3. one Table 1 cell: synthesize + map + estimate ------------------------

config = ExperimentConfig(n_patterns=65_536)
result = run_circuit_flow(ripple_adder_circuit(8), library, config)
print("\n== 8-bit adder on the generalized CNTFET library ==")
print(f"mapped gates: {result.gate_count}")
print(f"delay:        {result.delay_ps:.1f} ps")
print(f"PD={result.pd_uw:.3f} uW  PS={result.ps_uw:.4f} uW  "
      f"PT={result.pt_uw:.3f} uW")
print(f"EDP:          {result.edp_paper_units:.3f} x1e-24 J*s")
