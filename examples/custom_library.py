#!/usr/bin/env python3
"""Extend the reproduction through the public API only.

Registers a toy technology library with :mod:`repro.registry` — no
experiment, sweep or CLI code is touched — then runs one circuit
through a :class:`repro.api.Session` on *both* estimator backends and
checks they agree.  CI runs this as the API smoke test.

The registration itself is the "add your own library in 10 lines" of
docs/architecture.md:
"""

from repro import registry
from repro.api import Session
from repro.devices.parameters import CNTFET_32NM
from repro.experiments.config import ExperimentConfig
from repro.gates.conventional import conventional_cells
from repro.gates.library import Library

# -- the 10 lines -------------------------------------------------------------


def nand_only_library(vdd=None):
    tech = registry.tech_at(CNTFET_32NM, vdd)
    cells = [c for c in conventional_cells()
             if c.name in ("INV", "NAND2", "NAND3", "NAND4")]
    return Library("toy-nand", tech, cells)


registry.register_library("toy-nand", nand_only_library,
                          aliases=("toy",),
                          description="NAND-only teaching library")

# -----------------------------------------------------------------------------

print("registered libraries:", ", ".join(registry.available_libraries()))
assert "toy-nand" in registry.available_libraries()

from repro.circuits.adders import ripple_adder_circuit  # noqa: E402

results = {}
for backend in ("bitsim", "spice-transient"):
    config = ExperimentConfig(n_patterns=2048, state_patterns=2048,
                              backend=backend)
    session = Session(config)
    flow = session.run(ripple_adder_circuit(4), "toy")
    results[backend] = flow
    print(f"{backend:>15s}: {flow.gate_count} gates, "
          f"PT = {flow.pt_w * 1e6:.3f} uW, "
          f"delay = {flow.delay_ps:.1f} ps")

bitsim, spice = results["bitsim"], results["spice-transient"]
assert bitsim.library == spice.library == "toy-nand"
assert abs(spice.pt_w - bitsim.pt_w) <= 0.10 * bitsim.pt_w, \
    "backends disagree beyond tolerance"
print("OK: toy library runs end-to-end through both backends")
