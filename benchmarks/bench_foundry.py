"""Library foundry benchmark: bulk build wall-time and hydration speed.

Measures what the foundry's prebuilt artifacts buy:

* **build** — cold bulk characterization of every registered library
  across the vdd points, serial vs ``--jobs 0`` (each into its own
  fresh store, so both runs pay the full SPICE cost).  On a single-CPU
  host the pool degenerates to one worker; ``jobs_effective`` and
  ``degenerate_parallel`` record that honestly instead of faking a
  speedup;
* **per-library** — from-scratch live characterization
  (``build_artifact(reuse_tables=False)``) vs hydrating the same
  (library, vdd) from its stored artifact (``load_library``, best of
  three).  The tracked guarantee: aggregate hydration is **>= 20x**
  faster than aggregate live characterization — a server cold-starting
  from artifacts must be effectively free.

Results merge into ``BENCH_perf.json`` under the ``"foundry"`` key.

    PYTHONPATH=src python benchmarks/bench_foundry.py            # full
    PYTHONPATH=src python benchmarks/bench_foundry.py --quick    # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

# Cold-path honesty: the user's persistent characterization cache must
# not leak warm timings into the tracked report.  Every store this
# benchmark reads or writes is an explicit fresh temp directory.
os.environ["REPRO_CACHE_DISABLE"] = "1"


def _fresh_store(base: str, name: str):
    from repro.cache import DiskCache

    return DiskCache(root=Path(base) / name, enabled=True)


def bench_build(base: str, libraries, vdds, jobs: int) -> dict:
    from repro import foundry

    serial_store = _fresh_store(base, "serial")
    start = time.perf_counter()
    serial = foundry.characterize(libraries, vdds, jobs=1,
                                  cache=serial_store)
    serial_s = time.perf_counter() - start
    assert serial.counts()["failed"] == 0, serial.render()

    parallel_store = _fresh_store(base, "parallel")
    start = time.perf_counter()
    parallel = foundry.characterize(libraries, vdds, jobs=jobs,
                                    cache=parallel_store)
    parallel_s = time.perf_counter() - start
    assert parallel.counts()["failed"] == 0, parallel.render()

    degenerate = parallel.jobs_effective <= 1
    return {
        "tasks": len(serial.outcomes),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "jobs_requested": jobs,
        "jobs_effective": parallel.jobs_effective,
        # A 1-CPU host clamps the pool to one worker: the "parallel"
        # run is then a serial run plus pool overhead, and a speedup
        # claim would be noise, not measurement.
        "degenerate_parallel": degenerate,
        "speedup_vs_serial": (None if degenerate or parallel_s <= 0
                              else serial_s / parallel_s),
    }


def bench_hydration(base: str, libraries, vdd) -> dict:
    from repro import foundry

    store = _fresh_store(base, "serial")  # built by bench_build
    per_library = {}
    total_live = 0.0
    total_load = 0.0
    for key in libraries:
        start = time.perf_counter()
        artifact = foundry.build_artifact(key, vdd, reuse_tables=False)
        live_s = time.perf_counter() - start

        load_s = min(_timed_load(foundry, key, vdd, store)
                     for _ in range(3))
        stored = foundry.load_artifact(key, vdd, store)
        assert stored is not None, f"no stored artifact for {key}"
        assert stored.content_hash == artifact.content_hash, \
            f"{key}: live rebuild diverged from stored artifact"
        total_live += live_s
        total_load += load_s
        per_library[key] = {
            "live_characterize_s": live_s,
            "artifact_load_s": load_s,
            "speedup": live_s / load_s if load_s > 0 else float("inf"),
        }
    aggregate = total_live / total_load if total_load > 0 else float("inf")
    assert aggregate >= 20.0, (
        f"artifact hydration only {aggregate:.1f}x faster than live "
        f"characterization (need >= 20x)")
    return {
        "vdd": vdd,
        "per_library": per_library,
        "aggregate_live_s": total_live,
        "aggregate_load_s": total_load,
        "aggregate_speedup": aggregate,
    }


def _timed_load(foundry, key: str, vdd, store) -> float:
    start = time.perf_counter()
    library = foundry.load_library(key, vdd, store)
    elapsed = time.perf_counter() - start
    assert library is not None, f"hydration miss for {key} @ {vdd}"
    return elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="one vdd point for CI smoke runs")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="worker processes for the parallel build "
                             "(0 = all CPUs)")
    parser.add_argument("-o", "--output", default="BENCH_perf.json",
                        help="JSON report to merge the 'foundry' key "
                             "into")
    args = parser.parse_args(argv)

    from repro import __version__, registry

    libraries = registry.available_libraries()
    vdds = (0.9,) if args.quick else (0.8, 0.9)

    with tempfile.TemporaryDirectory(prefix="bench-foundry-") as base:
        section = {
            "version": __version__,
            "quick": args.quick,
            "libraries": libraries,
            "vdd_points": list(vdds),
            "build": bench_build(base, libraries, vdds, args.jobs),
            "hydration": bench_hydration(base, libraries, vdds[-1]),
        }

    output = Path(args.output)
    try:
        report = json.loads(output.read_text())
    except (OSError, ValueError):
        report = {}
    report["foundry"] = section
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps({"foundry": section}, indent=2))
    print(f"\nmerged 'foundry' into {output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
