"""Ablation benches (A1 in DESIGN.md) — design-choice sweeps the paper
holds fixed."""

from repro.experiments.ablations import (
    fanout_sweep,
    pattern_cache_effectiveness,
    polarity_cap_sensitivity,
    supply_sweep,
)


def test_bench_supply_sweep(benchmark):
    """EDP vs VDD: quadratic dynamic energy against collapsing drive."""
    points = benchmark.pedantic(
        lambda: supply_sweep([0.6, 0.9, 1.1]), rounds=1, iterations=1)
    print()
    for p in points:
        print(f"  VDD={p.vdd:.1f} V: mean PT={p.mean_power * 1e9:7.2f} nW, "
              f"FO3={p.fo3_delay * 1e12:5.2f} ps, "
              f"EDP={p.edp / 1e-24:8.4f} x1e-24 Js")
    by_vdd = {p.vdd: p for p in points}
    # power rises monotonically with VDD
    assert by_vdd[0.6].mean_power < by_vdd[0.9].mean_power
    assert by_vdd[0.9].mean_power < by_vdd[1.1].mean_power
    # delay falls monotonically with VDD
    assert by_vdd[0.6].fo3_delay > by_vdd[0.9].fo3_delay


def test_bench_polarity_cap_sensitivity(benchmark):
    """The 28% total saving erodes as the back gate couples harder."""
    points = benchmark.pedantic(
        lambda: polarity_cap_sensitivity([0.0, 6.0, 18.0]),
        rounds=1, iterations=1)
    print()
    for p in points:
        print(f"  c_pol={p.c_pol_af:4.1f} aF: total saving "
              f"{p.total_saving:6.1%}, dynamic {p.dynamic_saving:6.1%}")
    savings = [p.total_saving for p in points]
    assert savings[0] >= savings[1] >= savings[2]
    # at the paper's operating point the XOR-rich circuit still saves
    # substantially, and even a 3x-pessimistic back gate keeps a win
    assert 0.30 <= savings[1] <= 0.55
    assert savings[2] > 0.2


def test_bench_fanout_sweep(benchmark):
    """Library saving is stable across the assumed fanout."""
    points = benchmark.pedantic(
        lambda: fanout_sweep([1, 3, 6]), rounds=1, iterations=1)
    print()
    for p in points:
        print(f"  fanout={p.fanout}: saving {p.saving:6.1%}")
    for p in points:
        assert 0.15 <= p.saving <= 0.45


def test_bench_pattern_cache(benchmark):
    """Classified vs naive SPICE counts (the Fig. 5 payoff)."""
    result = benchmark.pedantic(pattern_cache_effectiveness,
                                rounds=1, iterations=1)
    print(f"\n  naive solves: {result.cell_vector_pairs}, classified: "
          f"{result.distinct_patterns} ({result.reduction:.0f}x fewer)")
    assert result.reduction > 10
