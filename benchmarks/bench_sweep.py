"""Grouped-sweep benchmark: one simulation, thousands of operating points.

Measures what the activity/pricing split buys on operating-point
exploration — the vdd/frequency trade-off space of the source paper:

* **per-point** — the historical runner's cost model: every point pays
  a full bit-parallel simulation before pricing (emulated by clearing
  the activity cache between points);
* **grouped** — the current runner: one simulation per activity group,
  every other point of the group repriced through the vectorized
  pricing layer;
* **reprice throughput** — ``estimate_many`` over a dense grid with
  warm statistics (the serving path's marginal cost per operating
  point).

Synthesis, mapping and characterization are warmed up-front and
excluded from both sides: the per-point runner cached those too, so
the comparison isolates exactly what this refactor changed.  Results
merge into ``BENCH_perf.json`` under the ``"sweep"`` key.  The grouped
run is asserted to execute exactly one simulation per structurally
distinct activity group — the acceptance invariant CI also checks.

    PYTHONPATH=src python benchmarks/bench_sweep.py            # full
    PYTHONPATH=src python benchmarks/bench_sweep.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

# Honest cold measurements: the persistent cache must not leak earlier
# runs' simulations (or characterizations) into the tracked numbers.
os.environ["REPRO_CACHE_DISABLE"] = "1"

#: Frequency points of the headline sweep (the ISSUE's freq-sweep-of-20).
N_FREQUENCIES = 20

#: The grouped runner must beat the per-point emulation by at least
#: this factor on the full grid (acceptance: <= 1/10 the wall-clock).
MIN_GROUPED_SPEEDUP = 10.0


def _frequencies(count: int):
    return tuple(0.5e9 + 0.25e9 * i for i in range(count))


def _spec(circuits, libraries, n_patterns, count):
    from repro.sweep.spec import DEFAULT_LIBRARIES, SweepSpec

    return SweepSpec(circuits=circuits,
                     libraries=libraries or DEFAULT_LIBRARIES,
                     frequency=_frequencies(count),
                     n_patterns=(n_patterns,), state_patterns=n_patterns)


def _warm_everything(spec) -> None:
    """Synthesize, characterize, map and prime netlists off the clock."""
    from repro.sweep.runner import _task_netlist

    for task in spec.expand():
        _task_netlist(task)


def _run_per_point(spec) -> dict:
    """Every point pays its own simulation (the historical cost)."""
    from repro.sim import activity
    from repro.sweep.runner import run_sweep_task

    tasks = spec.expand()
    simulations = 0
    start = time.perf_counter()
    for task in tasks:
        activity.clear_cache()  # the pre-split runner had no stats cache
        before = activity.cache_info()["simulations"]
        run_sweep_task(task)
        simulations += activity.cache_info()["simulations"] - before
    return {"wall_s": time.perf_counter() - start,
            "points": len(tasks), "simulations": simulations}


def _run_grouped(spec) -> dict:
    """The grouped runner on a cold activity cache and a fresh store."""
    from repro.api import Session
    from repro.sim import activity

    activity.clear_cache()
    start = time.perf_counter()
    # Serial on purpose: the measurement isolates grouping, and the
    # one-simulation-per-structure assertion relies on the activity
    # LRU being shared, which only one process guarantees (worker
    # processes have their own, and the disk cache is disabled here).
    report = Session(jobs=1).sweep(spec)
    wall = time.perf_counter() - start
    assert report.executed == spec.size(), report.render()
    return {"wall_s": wall, "points": report.executed,
            "groups": report.groups, "simulations": report.simulations}


def _distinct_structures(spec) -> int:
    """Structurally distinct mapped netlists in a spec's grid (cmos and
    conventional-CNTFET share topologies, so this can be < groups)."""
    from repro.sim.activity import netlist_activity_key
    from repro.sweep.runner import _task_netlist

    return len({netlist_activity_key(_task_netlist(task))
                for task in spec.expand()})


def _bench_reprice(circuit: str, library: str, n_patterns: int,
                   points: int) -> dict:
    """``estimate_many`` throughput with warm statistics."""
    from repro.experiments.config import ExperimentConfig
    from repro.sim.activity import simulation_stats
    from repro.sim.estimator import estimate_many
    from repro.sweep.spec import SweepSpec

    spec = SweepSpec(circuits=(circuit,), libraries=(library,),
                     n_patterns=(n_patterns,), state_patterns=n_patterns)
    task = spec.expand()[0]
    from repro.sweep.runner import _task_netlist

    netlist = _task_netlist(task)
    stats = simulation_stats(netlist, n_patterns,
                             ExperimentConfig().seed, n_patterns)
    grid = [(0.9, 0.5e9 + 1e6 * i, 3) for i in range(points)]
    start = time.perf_counter()
    reports = estimate_many(netlist, stats, grid)
    elapsed = time.perf_counter() - start
    assert len(reports) == points
    return {"points": points, "wall_s": elapsed,
            "points_per_s": points / elapsed if elapsed > 0 else
            float("inf")}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny budget for CI smoke runs")
    parser.add_argument("-o", "--output", default="BENCH_perf.json",
                        help="JSON report to merge the 'sweep' key into")
    args = parser.parse_args(argv)

    from repro import __version__

    if args.quick:
        n_patterns = 2_048
        headline = _spec(("C1908",), ("generalized",), n_patterns, 5)
        grid = _spec(("t481", "C1908"), ("generalized", "cmos"),
                     n_patterns, 5)
        reprice_points = 1_000
    else:
        n_patterns = 16_384
        headline = _spec(("C1908",), ("generalized",), n_patterns,
                         N_FREQUENCIES)
        # The acceptance grid: 12 benchmarks x 3 libraries x 20
        # frequency points (at a pattern budget a tracked benchmark
        # can afford; the ratio only grows with the budget, since the
        # simulation is the amortized term).
        grid = _spec((), (), 4_096, N_FREQUENCIES)
        reprice_points = 10_000

    _warm_everything(headline)
    headline_per_point = _run_per_point(headline)
    headline_grouped = _run_grouped(headline)
    headline_speedup = (headline_per_point["wall_s"]
                        / headline_grouped["wall_s"])
    assert headline_grouped["simulations"] == \
        _distinct_structures(headline), "one simulation per group violated"

    _warm_everything(grid)
    grid_per_point = _run_per_point(grid)
    grid_grouped = _run_grouped(grid)
    grid_speedup = grid_per_point["wall_s"] / grid_grouped["wall_s"]
    assert grid_grouped["simulations"] == _distinct_structures(grid), \
        "one simulation per group violated"
    if not args.quick:
        assert grid_speedup >= MIN_GROUPED_SPEEDUP, (
            f"grouped runner only {grid_speedup:.1f}x faster than the "
            f"per-point path on the acceptance grid (needs "
            f">= {MIN_GROUPED_SPEEDUP:.0f}x)")

    section = {
        "version": __version__,
        "quick": args.quick,
        "headline": {
            "grid": "1 circuit x 1 library x "
                    f"{len(headline.frequency)} frequencies",
            "n_patterns": n_patterns,
            "per_point": headline_per_point,
            "grouped": headline_grouped,
            "speedup": headline_speedup,
        },
        "acceptance_grid": {
            "grid": f"{len(grid.circuit_order)} circuits x "
                    f"{len(grid.libraries)} libraries x "
                    f"{len(grid.frequency)} frequencies",
            "n_patterns": grid.n_patterns[0],
            "per_point": grid_per_point,
            "grouped": grid_grouped,
            "speedup": grid_speedup,
        },
        "reprice": _bench_reprice("C1908", "generalized", n_patterns,
                                  reprice_points),
    }

    output = Path(args.output)
    try:
        report = json.loads(output.read_text())
    except (OSError, ValueError):
        report = {}
    report["sweep"] = section
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps({"sweep": section}, indent=2))
    print(f"\nmerged 'sweep' into {output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
