"""Design-space optimizer benchmark: frontier throughput and cache
economy.

Measures what :mod:`repro.optimize` costs and what its caching buys:

* **cold** — first optimization on a fresh engine (pays
  characterization, mapping, timing and one simulation per (library,
  vdd) group, then vectorized repricing across the frequency axis);
* **warm** — the identical optimization again (every point served from
  the engine's result cache; asserted to re-simulate *nothing*);
* **timing** — cached static-timing throughput (reports/s against the
  process LRU) and the one-shot cost of a cold analysis;
* **points/s** — frontier candidates evaluated per second, cold and
  warm (the tracked scaling number: candidates = the full grid,
  including the timing-pruned points, which are the cheap ones).

Results merge into ``BENCH_perf.json`` under the ``"optimize"`` key
(the rest of the file is whatever the other bench scripts last wrote).
The warm rerun is asserted to move the activity cache's simulation
counter by exactly zero — an optimizer that re-simulates a grid it
just priced is a regression, not noise.

    PYTHONPATH=src python benchmarks/bench_optimize.py            # full
    PYTHONPATH=src python benchmarks/bench_optimize.py --quick    # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

# Cold-path honesty: the persistent characterization cache must not
# leak warm timings into the tracked report.
os.environ["REPRO_CACHE_DISABLE"] = "1"


def bench_optimize(config, query) -> dict:
    from repro.api import Session
    from repro.serve import Engine
    from repro.sim import activity

    engine = Engine(Session(config))
    activity.clear_cache(reset_counters=True)

    start = time.perf_counter()
    cold = engine.optimize(query)
    cold_s = time.perf_counter() - start
    cold_sims = activity.cache_info()["simulations"]

    start = time.perf_counter()
    warm = engine.optimize(query)
    warm_s = time.perf_counter() - start
    warm_sims = activity.cache_info()["simulations"] - cold_sims
    assert warm_sims == 0, (
        f"warm re-optimize ran {warm_sims} simulations; every point "
        f"should have been served from the result cache")
    assert all(p.cache_status == "hot" for p in warm.frontier)
    assert [
        (p.library, p.backend, p.vdd, p.frequency) for p in warm.frontier
    ] == [
        (p.library, p.backend, p.vdd, p.frequency) for p in cold.frontier
    ], "warm frontier must be identical and identically ordered"

    n = cold.n_candidates
    return {
        "circuit": query.circuit,
        "n_candidates": n,
        "n_infeasible": cold.n_infeasible,
        "n_dominated": cold.n_dominated,
        "frontier_size": len(cold.frontier),
        "cold_s": cold_s,
        "cold_points_per_s": n / cold_s,
        "cold_simulations": cold_sims,
        "warm_s": warm_s,
        "warm_points_per_s": n / warm_s,
        "warm_speedup_vs_cold": cold_s / warm_s if warm_s > 0 else
        float("inf"),
        "counters": {key: value for key, value in engine.counters.items()
                     if key.startswith("optimize.")},
    }


def bench_timing(config, circuit: str, library_key: str) -> dict:
    from repro import timing
    from repro.experiments.flow import map_subject, synthesized_benchmark
    from repro.registry import cached_library

    library = cached_library(library_key, config.vdd)
    netlist = map_subject(
        synthesized_benchmark(circuit, config.synthesize),
        library, config)

    timing.clear_cache(reset_counters=True)
    start = time.perf_counter()
    report = timing.analyze_timing(netlist)
    analyze_s = time.perf_counter() - start

    timing.timing_report(netlist)  # populate LRU + instance memo
    n = 5000
    start = time.perf_counter()
    for _ in range(n):
        timing.timing_report(netlist)
    elapsed = time.perf_counter() - start
    return {
        "circuit": circuit,
        "gate_count": report.gate_count,
        "critical_delay_ns": report.critical_delay_s / 1e-9,
        "fmax_ghz": report.fmax_hz / 1e9,
        "cold_analyze_s": analyze_s,
        "cached_reports_per_s": n / elapsed,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny budget for CI smoke runs")
    parser.add_argument("-o", "--output", default="BENCH_perf.json",
                        help="JSON report to merge the 'optimize' key "
                             "into")
    args = parser.parse_args(argv)

    from repro import __version__
    from repro.experiments.config import ExperimentConfig
    from repro.schema import OptimizeQuery

    if args.quick:
        config = ExperimentConfig(n_patterns=2_048, state_patterns=2_048)
        circuit = "t481"
        vdds = (0.8, 0.9)
        frequencies = (0.5e9, 1e9, 2e9, 4e9, 50e9)
    else:
        config = ExperimentConfig(n_patterns=16_384,
                                  state_patterns=16_384)
        circuit = "C1908"
        vdds = (0.7, 0.8, 0.9)
        frequencies = (0.25e9, 0.5e9, 1e9, 2e9, 4e9, 8e9, 50e9)

    query = OptimizeQuery(
        circuit=circuit,
        libraries=("cntfet-generalized", "conventional"),
        vdds=vdds, frequencies=frequencies, config=config)

    section = {
        "version": __version__,
        "quick": args.quick,
        "n_patterns": config.n_patterns,
        "optimize": bench_optimize(config, query),
        "timing": bench_timing(config, circuit, "cntfet-generalized"),
    }

    output = Path(args.output)
    try:
        report = json.loads(output.read_text())
    except (OSError, ValueError):
        report = {}
    report["optimize"] = section
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps({"optimize": section}, indent=2))
    print(f"\nmerged 'optimize' into {output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
