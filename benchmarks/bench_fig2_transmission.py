"""Fig. 2 bench: transmission-gate signal integrity.

A transmission gate in any passing configuration pulls the output to
the full rail; a single pass device degrades a passed 1 by a threshold
drop.  Runs the four SPICE transients and checks both claims.
"""

import pytest

from repro.experiments.figures import reproduce_fig2_transmission


def test_bench_fig2(benchmark):
    result = benchmark.pedantic(reproduce_fig2_transmission, rounds=1,
                                iterations=1)
    print()
    print(result.render())
    assert result.tg_pass_one == pytest.approx(result.vdd, abs=5e-3)
    assert result.tg_pass_zero == pytest.approx(0.0, abs=5e-3)
    # the single n-FET loses roughly a threshold voltage
    assert result.vdd - result.nfet_pass_one > 0.1
    assert result.pfet_pass_zero > 0.1
