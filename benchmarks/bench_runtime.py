"""Stage-by-stage runtime benchmark of the experiment pipeline.

Times every stage of the synthesize -> map -> estimate flow plus the
characterization layers and the end-to-end Table 1 run, and writes the
measurements to ``BENCH_perf.json`` so the performance trajectory is
tracked from PR to PR.  Run it from the repository root:

    PYTHONPATH=src python benchmarks/bench_runtime.py            # full
    PYTHONPATH=src python benchmarks/bench_runtime.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_runtime.py --jobs 8

``--quick`` shrinks the pattern budget and benchmark subset so the
whole harness finishes in a few seconds — enough to catch gross
regressions in CI without occupying a runner for minutes.

All stage timings are cold-path by default: the persistent
characterization cache is disabled for the in-process stages and the
serial/parallel Table 1 runs share one warm-up-free process each.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

# Cold-path measurements: never read a warm cache from a previous run
# (force-assigned so an ambient REPRO_CACHE_DISABLE=0 cannot leak warm
# timings into the tracked BENCH_perf.json).
os.environ["REPRO_CACHE_DISABLE"] = "1"

import random

#: Seed-repository baselines, measured on the same class of machine the
#: day the fast-path work landed (2026-07-30, 1-CPU container).  They
#: are carried into every report so later BENCH_perf.json snapshots can
#: be read as ratios without re-timing the seed.
SEED_REFERENCE = {
    "measured": "2026-07-30",
    "table1_serial_16k_patterns_s": 56.5,
    "expand_per_call_us": 12.0,
    "cut_enumeration_c3540_cold_s": 0.33,
    "characterize_cmos_warm_s": None,  # seed had no persistent cache
}


def _time(func, repeats: int = 1) -> float:
    """Best-of-N wall time of func()."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def bench_kernels() -> dict:
    """The truth-table microkernels the mapper leans on."""
    from repro.synth.truth import _expand_cached, expand

    rng = random.Random(1)
    cases = [(rng.getrandbits(1 << 3),
              tuple(sorted(rng.sample(range(5), 3))), 5)
             for _ in range(200)]

    def run_expand():
        for _ in range(500):
            for table, positions, n_vars in cases:
                expand(table, positions, n_vars)

    _expand_cached.cache_clear()
    cold = _time(run_expand)
    warm = _time(run_expand)
    return {"expand_100k_calls_cold_s": cold,
            "expand_100k_calls_warm_s": warm}


def bench_synthesis(circuit: str) -> dict:
    """resyn2rs and cold cut enumeration on one benchmark."""
    from repro.circuits.suite import benchmark_suite
    from repro.synth.cuts import enumerate_cuts
    from repro.synth.scripts import resyn2rs

    spec = {s.name: s for s in benchmark_suite()}[circuit]
    aig = spec.build()
    synth_time = _time(lambda: resyn2rs(aig))
    synthesized = resyn2rs(aig).compact()

    def enumerate_cold():
        # A fresh compacted copy defeats the per-AIG cut cache, so this
        # times a genuinely cold enumeration.
        enumerate_cuts(synthesized.compact())

    return {"circuit": circuit,
            "resyn2rs_s": synth_time,
            "cut_enumeration_cold_s": _time(enumerate_cold, repeats=3)}


def bench_map_and_sim(circuit: str, n_patterns: int) -> dict:
    """Mapping onto the three libraries and pattern-power estimation."""
    from repro.circuits.suite import benchmark_suite
    from repro.registry import paper_libraries
    from repro.sim.estimator import estimate_circuit_power
    from repro.synth.mapper import map_aig
    from repro.synth.scripts import resyn2rs

    spec = {s.name: s for s in benchmark_suite()}[circuit]
    subject = resyn2rs(spec.build())
    libraries = paper_libraries()

    start = time.perf_counter()
    netlists = {key: map_aig(subject, library)
                for key, library in libraries.items()}
    map_time = time.perf_counter() - start

    start = time.perf_counter()
    for netlist in netlists.values():
        estimate_circuit_power(netlist, n_patterns=n_patterns,
                               state_patterns=n_patterns)
    sim_time = time.perf_counter() - start
    return {"circuit": circuit,
            "map_three_libraries_s": map_time,
            "estimate_three_libraries_s": sim_time,
            "n_patterns": n_patterns}


def bench_characterization() -> dict:
    """Library characterization, cold vs warm persistent cache."""
    import tempfile

    from repro.cache import DiskCache
    from repro.gates.conventional import cmos_library
    from repro.power.characterize import characterize_library
    from repro.power.pattern_sim import PatternSimulator

    with tempfile.TemporaryDirectory() as tmp:
        cache = DiskCache(root=Path(tmp), enabled=True)

        def cold():
            library = cmos_library()
            simulator = PatternSimulator(library.tech, disk_cache=cache)
            characterize_library(library, simulator=simulator)
            return simulator

        def warm():
            library = cmos_library()
            simulator = PatternSimulator(library.tech, disk_cache=cache)
            characterize_library(library, simulator=simulator)
            return simulator

        start = time.perf_counter()
        cold_sim = cold()
        cold_time = time.perf_counter() - start
        start = time.perf_counter()
        warm_sim = warm()
        warm_time = time.perf_counter() - start

    # The estimator's pattern-classified leakage tables (the batched
    # per-cell cold build; direct construction bypasses every cache).
    from repro.gates.ambipolar_library import generalized_cntfet_library
    from repro.sim.estimator import _LeakageTables

    leakage = {}
    for name, build in (("cmos", cmos_library),
                        ("generalized", generalized_cntfet_library)):
        library = build()
        start = time.perf_counter()
        _LeakageTables(library)
        leakage[f"leakage_tables_{name}_cold_s"] = (time.perf_counter()
                                                    - start)

    return {"characterize_cmos_cold_s": cold_time,
            "characterize_cmos_warm_s": warm_time,
            "cold_spice_solves": cold_sim.solves,
            "warm_spice_solves": warm_sim.solves,
            **leakage}


def _table1_digest(result) -> str:
    """Order-stable digest of every Table 1 cell (floats via repr)."""
    import hashlib

    payload = repr([(name, key, result.results[name][key])
                    for name in result.benchmark_order
                    for key in sorted(result.results[name])])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


#: Snippet run in a fresh interpreter for the parallel measurement, so
#: fork-started workers cannot inherit caches warmed by the serial run
#: (or by the earlier benchmark stages) in this process.
_PARALLEL_SNIPPET = """\
import json, sys, time
sys.path.insert(0, "src")
from benchmarks.bench_runtime import _table1_digest  # noqa: E402
from repro.experiments.config import ExperimentConfig
from repro.experiments.table1 import reproduce_table1
spec = json.loads(sys.argv[1])
config = ExperimentConfig(n_patterns=spec["n_patterns"],
                          state_patterns=spec["n_patterns"])
start = time.perf_counter()
result = reproduce_table1(config, benchmarks=spec["benchmarks"],
                          jobs=spec["jobs"])
elapsed = time.perf_counter() - start
print(json.dumps({"elapsed": elapsed, "digest": _table1_digest(result)}))
"""


def bench_table1(n_patterns: int, benchmarks, jobs: int) -> dict:
    """End-to-end Table 1, serially and (optionally) in parallel.

    The parallel run happens in a fresh subprocess so its workers
    cold-start like a real ``repro table1 --jobs N`` invocation;
    result equality with the serial run is checked via a content
    digest of every cell.
    """
    import subprocess

    from repro.experiments.config import ExperimentConfig
    from repro.experiments.parallel import resolve_jobs
    from repro.experiments.table1 import reproduce_table1

    config = ExperimentConfig(n_patterns=n_patterns,
                              state_patterns=n_patterns)
    start = time.perf_counter()
    serial = reproduce_table1(config, benchmarks=benchmarks)
    serial_time = time.perf_counter() - start

    result = {"n_patterns": n_patterns,
              "benchmarks": benchmarks or "all",
              "serial_s": serial_time}
    # jobs=None skips the parallel measurement; 0 means all CPUs.  The
    # request is clamped to the CPU count (forking 2 workers on a
    # 1-CPU machine used to *slow down* the measured run) and both the
    # requested and effective values are recorded, so a report showing
    # parallel ~= serial timing is explained by jobs_effective=1
    # rather than looking like a parallelization regression.
    jobs_effective = None if jobs is None else resolve_jobs(jobs)
    if jobs is not None and jobs != 1:
        result["jobs_requested"] = jobs
        result["jobs_effective"] = jobs_effective
    if jobs_effective is not None and jobs_effective > 1:
        spec = json.dumps({"n_patterns": n_patterns,
                           "benchmarks": benchmarks,
                           "jobs": jobs_effective})
        env = dict(os.environ, PYTHONPATH="src")
        completed = subprocess.run(
            [sys.executable, "-c", _PARALLEL_SNIPPET, spec],
            capture_output=True, text=True, env=env,
            cwd=Path(__file__).resolve().parent.parent)
        if completed.returncode == 0:
            parallel = json.loads(completed.stdout.strip().splitlines()[-1])
            result["parallel_s"] = parallel["elapsed"]
            result["parallel_bit_identical"] = (
                parallel["digest"] == _table1_digest(serial))
        else:
            result["parallel_error"] = completed.stderr[-2000:]
    elif jobs is not None and jobs != 1:
        result["parallel_skipped"] = (
            f"jobs={jobs} clamped to {jobs_effective} "
            f"(cpu_count={os.cpu_count()}); a 1-worker pool would just "
            f"repeat the serial measurement")
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny budget for CI smoke runs")
    parser.add_argument("--jobs", type=int, default=None,
                        help="also run Table 1 with this many worker "
                             "processes (0 = all CPUs; clamped to the "
                             "CPU count, same as the repro CLI; omit "
                             "to skip the parallel run)")
    parser.add_argument("-o", "--output", default="BENCH_perf.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    if args.quick:
        n_patterns = 2_048
        benchmarks = ["C1908", "t481"]
        circuit = "C1908"
    else:
        n_patterns = 16_384
        benchmarks = None
        circuit = "C3540"

    report = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "quick": args.quick,
            "unix_time": int(time.time()),
        },
        "seed_reference": SEED_REFERENCE,
        "kernels": bench_kernels(),
        "synthesis": bench_synthesis(circuit),
        "map_and_sim": bench_map_and_sim(circuit, n_patterns),
        "characterization": bench_characterization(),
        "table1": bench_table1(n_patterns, benchmarks, args.jobs),
    }
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
