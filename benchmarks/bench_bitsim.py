"""Bitsim kernel benchmark: per-gate vs levelized array throughput.

Simulates seeded random mapped netlists (the ``synth:rand`` family's
mapped-netlist generator) at 10^4 and 10^5 gates with both kernels and
records, per kernel:

* **prep_s** — simulator construction: ISOP covers for the per-gate
  path, the full struct-of-arrays levelization for the array path.
  Paid once per netlist (the levelized form is instance-memoized);
* **sim_s** / **evals_per_s** — one simulation at the given pattern
  budget, and its gate-evaluations per second (gates x patterns / s);
* **cold_speedup** — end-to-end ratio including prep, for honesty
  about one-shot netlists.

The headline number is the *simulation-rate* ratio at 10^5 gates and
the 4096-pattern budget — the regime the array kernel exists for — and
the full run asserts it stays ``>= 10`` (the redesign's acceptance
bar).  Both kernels are bit-identical, so every row cross-checks the
toggle counts before timing is believed.

Results merge into ``BENCH_perf.json`` under the ``"bitsim"`` key.

    PYTHONPATH=src python benchmarks/bench_bitsim.py            # full
    PYTHONPATH=src python benchmarks/bench_bitsim.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

os.environ["REPRO_CACHE_DISABLE"] = "1"

#: Minimum array/gate simulation-rate ratio at the headline row
#: (10^5 gates, 4096 patterns); asserted in full runs.
MIN_ARRAY_SPEEDUP = 10.0

#: The headline operating point.
HEADLINE_GATES = 100_000
HEADLINE_PATTERNS = 4_096


def _timed(func):
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def bench_netlist(gates: int, budgets, seed: int = 2010) -> dict:
    """All kernel timings for one random netlist size."""
    from repro.circuits.families import random_mapped_netlist
    from repro.gates.conventional import cmos_library
    from repro.sim.arraysim import ArraySimulator, LevelizedNetlist
    from repro.sim.bitsim import BitParallelSimulator

    library = cmos_library()
    netlist = random_mapped_netlist(library, gates=gates, seed=seed)

    gate_sim, gate_prep_s = _timed(lambda: BitParallelSimulator(netlist))
    # Cold levelization cost, measured outside the instance memo the
    # ArraySimulator below will then populate and reuse.
    _, array_prep_s = _timed(lambda: LevelizedNetlist(netlist))
    array_sim, _ = _timed(lambda: ArraySimulator(netlist))

    rows = []
    for n_patterns in budgets:
        gate_stats, gate_s = _timed(lambda: gate_sim.run(n_patterns))
        array_stats, array_s = _timed(lambda: array_sim.run(n_patterns))
        assert array_stats.toggles == gate_stats.toggles, (
            f"kernels diverged at gates={gates} n={n_patterns}")
        evals = gates * n_patterns
        rows.append({
            "n_patterns": n_patterns,
            "gate": {"sim_s": gate_s, "evals_per_s": evals / gate_s},
            "array": {"sim_s": array_s, "evals_per_s": evals / array_s},
            "sim_speedup": gate_s / array_s,
            "cold_speedup": ((gate_prep_s + gate_s)
                             / (array_prep_s + array_s)),
        })
        print(f"gates={gates:>7} n={n_patterns:>6}  "
              f"gate {evals / gate_s:>12.3e} evals/s  "
              f"array {evals / array_s:>12.3e} evals/s  "
              f"sim x{gate_s / array_s:.1f} cold "
              f"x{(gate_prep_s + gate_s) / (array_prep_s + array_s):.1f}",
              file=sys.stderr)
    return {
        "gates": gates,
        "levels": array_sim.arrays.n_levels,
        "gate_prep_s": gate_prep_s,
        "array_prep_s": array_prep_s,
        "budgets": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="10^4 gates only, no speedup assertion "
                             "(CI smoke)")
    parser.add_argument("-o", "--output", default="BENCH_perf.json",
                        help="JSON report to merge the 'bitsim' key into")
    args = parser.parse_args(argv)

    from repro import __version__

    if args.quick:
        sizes = ((10_000, (4_096,)),)
    else:
        sizes = ((10_000, (4_096, 16_384)),
                 (HEADLINE_GATES, (HEADLINE_PATTERNS, 16_384)))

    netlists = [bench_netlist(gates, budgets) for gates, budgets in sizes]

    headline = None
    for entry in netlists:
        for row in entry["budgets"]:
            if (entry["gates"], row["n_patterns"]) == (
                    HEADLINE_GATES, HEADLINE_PATTERNS):
                headline = {
                    "gates": entry["gates"],
                    "n_patterns": row["n_patterns"],
                    "array_evals_per_s": row["array"]["evals_per_s"],
                    "sim_speedup_vs_gate": row["sim_speedup"],
                    "cold_speedup_vs_gate": row["cold_speedup"],
                }
    if not args.quick:
        assert headline is not None
        assert headline["sim_speedup_vs_gate"] >= MIN_ARRAY_SPEEDUP, (
            f"array kernel only {headline['sim_speedup_vs_gate']:.1f}x "
            f"the per-gate simulation rate at {HEADLINE_GATES} gates; "
            f"the levelized path has regressed below the acceptance bar")

    section = {
        "version": __version__,
        "quick": args.quick,
        "netlists": netlists,
        "headline": headline,
    }
    output = Path(args.output)
    try:
        report = json.loads(output.read_text())
    except (OSError, ValueError):
        report = {}
    report["bitsim"] = section
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps({"bitsim": section}, indent=2))
    print(f"\nmerged 'bitsim' into {output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
