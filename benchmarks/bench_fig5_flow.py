"""Fig. 5 bench: the two-step characterization flow.

The paper's point is computational: classifying off-current patterns
means only a few dozen circuit simulations quantify the whole library.
The bench measures the full flow and the achieved simulation-count
reduction versus the naive one-SPICE-run-per-(cell, vector) approach.
"""

from repro.experiments.figures import reproduce_fig5_flow


def test_bench_fig5_flow(benchmark):
    result = benchmark.pedantic(reproduce_fig5_flow, rounds=1,
                                iterations=1)
    print()
    print(result.render())
    assert result.n_cells == 46
    # naive: one simulation per (cell, vector) pair; classified: one per
    # distinct pattern.  The reduction is the method's payoff.
    assert result.simulation_savings > 10
    assert result.distinct_patterns < 50
