"""Fig. 4 bench: input-vector dependence of leakage.

Parallel off transistors ([0 0 0] on NOR3) leak more than 3x the series
stack ([1 1 1]); the pattern classifier reduces both vectors to the
expected canonical patterns.
"""

import pytest

from repro.experiments.figures import reproduce_fig4_patterns
from repro.power.patterns import library_patterns


def test_bench_fig4(benchmark, mlib):
    result = benchmark.pedantic(lambda: reproduce_fig4_patterns(mlib),
                                rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.ratio > 3.0  # the paper's "more than 3x"
    assert result.parallel_pattern == "p(d,d,d)"
    assert result.series_pattern == "s(d,d,d)"
    # [0 0 0] leaves exactly three parallel single devices
    assert result.parallel_current == pytest.approx(
        3 * result.single_device_current, rel=1e-6)
    # [1 1 1] leaks less than a single device (stack effect)
    assert result.series_current < result.single_device_current


def test_bench_pattern_classification(benchmark, glib):
    """Classifying the whole 46-cell library (topology-analyzer side of
    Fig. 5)."""
    keys = benchmark(lambda: library_patterns(glib))
    print(f"\ndistinct patterns: {len(keys)} (paper: 26)")
    assert 10 <= len(keys) <= 40
