"""Synthesis and mapping engine benches.

Not a paper artifact per se, but the substrate whose quality the Table 1
results depend on: resyn2rs cost/benefit and mapper throughput, plus a
mapper ablation (delay-only vs area-recovered covers).
"""

import pytest

from repro.circuits.multiplier import array_multiplier
from repro.circuits.suite import build_benchmark
from repro.synth.mapper import MappingOptions, map_aig
from repro.synth.netlist import static_timing
from repro.synth.scripts import resyn2rs


def test_bench_resyn2rs_multiplier(benchmark):
    aig = array_multiplier(8)
    optimized = benchmark.pedantic(lambda: resyn2rs(aig), rounds=1,
                                   iterations=1)
    assert (optimized.random_simulation_signature()
            == aig.random_simulation_signature())
    print(f"\n  nodes: {aig.n_nodes} -> {optimized.n_nodes}, "
          f"depth: {aig.depth()} -> {optimized.depth()}")


def test_bench_mapping_throughput(benchmark, glib):
    aig = resyn2rs(build_benchmark("dalu"))

    def run():
        return map_aig(aig, glib)

    netlist = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  mapped gates: {netlist.gate_count}")
    assert netlist.gate_count > 0


@pytest.mark.parametrize("area_rounds", [0, 2])
def test_bench_area_recovery_ablation(benchmark, glib, area_rounds):
    """Area recovery trades a little delay for a smaller cover."""
    aig = resyn2rs(array_multiplier(8))
    options = MappingOptions(area_rounds=area_rounds)
    netlist = benchmark.pedantic(lambda: map_aig(aig, glib, options),
                                 rounds=1, iterations=1)
    delay, _ = static_timing(netlist)
    print(f"\n  area_rounds={area_rounds}: gates={netlist.gate_count}, "
          f"delay={delay * 1e12:.1f} ps")
    assert netlist.gate_count > 0
