"""Fault-driven load benchmark of the multi-worker serving fleet.

Replays a mixed traffic profile — warm repeats, batched pricing grids
and cold queries that force fresh simulations — from concurrent
clients against a ``repro serve --workers N`` fleet, twice:

* **clean** — no faults: measures fleet q/s, q/s-per-core and p50/p99
  client-observed latency;
* **faulted** — the same profile with ``worker.kill9`` armed: workers
  SIGKILL themselves mid-request, the supervisor restarts them, and
  well-behaved clients (retrying connection-level failures, truncated
  bodies and draining 503s) must finish with **zero failed requests**.

The cold queries deliberately collide across clients, so the faulted
run also exercises cross-process single-flight under churn (a leader
killed mid-compute must be taken over, not deadlock the followers).

Results merge into ``BENCH_perf.json`` under the ``"fleet"`` key.
The process exits non-zero if any request fails in either phase, or
if the faulted phase saw no worker restart (meaning the drill did not
actually drill anything).

    PYTHONPATH=src python benchmarks/bench_load.py            # full
    PYTHONPATH=src python benchmarks/bench_load.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import threading
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional


def _percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1,
                max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


class _LoadClient(threading.Thread):
    """One client replaying its slice of the traffic profile."""

    #: The repeating request mix: mostly warm, one pricing grid and
    #: one cold (fresh-seed) query per five requests.
    PROFILE = ("warm", "warm", "batch", "warm", "cold")

    def __init__(self, index: int, url: str, config, circuit: str,
                 library: str, n_requests: int):
        super().__init__(name=f"load-client-{index}", daemon=True)
        from repro.resilience import RetryPolicy
        from repro.serve import Client

        self.index = index
        self.config = config
        self.circuit = circuit
        self.library = library
        self.n_requests = n_requests
        # Generous retry budget: the whole point of the faulted phase
        # is that retries absorb worker deaths invisibly.
        self.client = Client(url, timeout=120.0,
                             retry=RetryPolicy(retries=6,
                                               backoff_base_s=0.05,
                                               backoff_cap_s=1.0))
        self.latencies_ms: List[float] = []
        self.failures: List[str] = []
        self.kinds: Dict[str, int] = {}

    def _one(self, kind: str, step: int) -> None:
        from repro.schema import PowerQuery

        if kind == "batch":
            queries = [PowerQuery(circuit=self.circuit,
                                  library=self.library,
                                  config=replace(self.config, vdd=vdd))
                       for vdd in (0.7, 0.8, 0.9)]
            self.client.estimate_batch(queries)
        elif kind == "cold":
            # Fresh seeds force fresh simulations; colliding across
            # clients (step-keyed, not client-keyed) exercises
            # cross-process single-flight on the cold path.
            config = replace(self.config, seed=9000 + step % 7)
            self.client.estimate(self.circuit, self.library, config)
        else:
            self.client.estimate(self.circuit, self.library, self.config)

    def run(self) -> None:
        for step in range(self.n_requests):
            kind = self.PROFILE[step % len(self.PROFILE)]
            self.kinds[kind] = self.kinds.get(kind, 0) + 1
            start = time.perf_counter()
            try:
                self._one(kind, step)
            except Exception as exc:
                self.failures.append(f"{kind}: {exc}")
                continue
            self.latencies_ms.append(
                (time.perf_counter() - start) * 1e3)


def _run_phase(label: str, *, workers: int, config, circuit: str,
               library: str, clients: int, requests_per_client: int,
               cache_dir: str, faults_spec: Optional[str]) -> dict:
    """Start a fresh fleet, replay the profile, return the metrics."""
    from repro.serve import FleetConfig, FleetSupervisor

    # Workers inherit the environment at fork: arm (or disarm) the
    # fault plan and point the shared disk cache before starting.
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    os.environ.pop("REPRO_CACHE_DISABLE", None)
    faults_dir = None
    if faults_spec:
        faults_dir = tempfile.mkdtemp(prefix="repro-bench-faults-")
        os.environ["REPRO_FAULTS"] = faults_spec
        os.environ["REPRO_FAULTS_DIR"] = faults_dir
    else:
        os.environ.pop("REPRO_FAULTS", None)
        os.environ.pop("REPRO_FAULTS_DIR", None)

    fleet = FleetSupervisor(FleetConfig(
        workers=workers, port=0, config=config,
        backoff_base_s=0.05, backoff_cap_s=0.5))
    fleet.start()
    try:
        deadline = time.monotonic() + 60.0
        while fleet.n_ready() < workers and time.monotonic() < deadline:
            time.sleep(0.05)
        if fleet.n_ready() < workers:
            raise RuntimeError(f"{label}: fleet never became ready")

        threads = [_LoadClient(i, fleet.service_url, config, circuit,
                               library, requests_per_client)
                   for i in range(clients)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start

        stats = fleet.stats()
    finally:
        fleet.shutdown()
        os.environ.pop("REPRO_FAULTS", None)
        os.environ.pop("REPRO_FAULTS_DIR", None)
        if faults_dir:
            shutil.rmtree(faults_dir, ignore_errors=True)

    latencies = [value for thread in threads
                 for value in thread.latencies_ms]
    failures = [text for thread in threads for text in thread.failures]
    n_ok = len(latencies)
    qps = n_ok / elapsed if elapsed > 0 else 0.0
    cores = os.cpu_count() or 1
    aggregate = stats.get("aggregate", {})
    disk = aggregate.get("caches", {}).get("disk", {})
    metrics = {
        "requests": n_ok + len(failures),
        "failed": len(failures),
        "zero_failed": not failures,
        "elapsed_s": round(elapsed, 3),
        "qps": round(qps, 2),
        "qps_per_core": round(qps / cores, 2),
        "latency_p50_ms": round(_percentile(latencies, 0.50), 2),
        "latency_p99_ms": round(_percentile(latencies, 0.99), 2),
        "worker_restarts": stats.get("restarts_total", 0),
        "worker_deaths": stats.get("deaths_total", 0),
        "simulations_fleet_wide":
            aggregate.get("counters", {}).get("stats.cold", 0),
        "single_flight": {
            "leader": disk.get("flight_leader", 0),
            "follower": disk.get("flight_follower", 0),
            "takeover": disk.get("flight_takeover", 0),
            "timeout": disk.get("flight_timeout", 0),
        },
    }
    print(f"{label}: {metrics['requests']} requests, "
          f"{metrics['failed']} failed, {metrics['qps']} q/s, "
          f"p50={metrics['latency_p50_ms']}ms "
          f"p99={metrics['latency_p99_ms']}ms, "
          f"{metrics['worker_restarts']} restart(s)", file=sys.stderr)
    if failures:
        for text in failures[:5]:
            print(f"  FAILED {text}", file=sys.stderr)
    return metrics


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny budget for CI smoke runs")
    parser.add_argument("--workers", type=int, default=3, metavar="N")
    parser.add_argument("-o", "--output", default="BENCH_perf.json",
                        help="JSON report to merge the 'fleet' key into")
    args = parser.parse_args(argv)

    from repro import __version__
    from repro.experiments.config import ExperimentConfig

    config = ExperimentConfig(n_patterns=2_048, state_patterns=2_048)
    circuit, library = "t481", "cntfet-generalized"
    clients = 2 if args.quick else 4
    requests_per_client = 10 if args.quick else 50
    kills = 1 if args.quick else 3

    cores = os.cpu_count() or 1
    cache_root = tempfile.mkdtemp(prefix="repro-bench-load-")
    try:
        clean = _run_phase(
            "clean", workers=args.workers, config=config,
            circuit=circuit, library=library, clients=clients,
            requests_per_client=requests_per_client,
            cache_dir=os.path.join(cache_root, "clean"),
            faults_spec=None)
        faulted = _run_phase(
            "faulted", workers=args.workers, config=config,
            circuit=circuit, library=library, clients=clients,
            requests_per_client=requests_per_client,
            cache_dir=os.path.join(cache_root, "faulted"),
            faults_spec=f"worker.kill9:times={kills},match=/v1/estimate")
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    caveats = []
    if cores < args.workers + 1:
        caveats.append(
            f"single-machine run with {cores} CPU core(s) for "
            f"{args.workers} workers + supervisor + clients: workers "
            f"time-share the core(s), so q/s does not scale with N "
            f"and q/s-per-core is the honest throughput figure")
    section = {
        "version": __version__,
        "quick": args.quick,
        "workers": args.workers,
        "clients": clients,
        "n_patterns": config.n_patterns,
        "cpu_count": cores,
        "caveats": caveats,
        "clean": clean,
        "faulted": faulted,
    }

    output = Path(args.output)
    try:
        report = json.loads(output.read_text())
    except (OSError, ValueError):
        report = {}
    report["fleet"] = section
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps({"fleet": section}, indent=2))
    print(f"\nmerged 'fleet' into {output}", file=sys.stderr)

    if clean["failed"] or faulted["failed"]:
        print("FAIL: requests failed under load", file=sys.stderr)
        return 1
    if faulted["worker_restarts"] < 1:
        print("FAIL: faulted phase saw no worker restart — the "
              "kill9 drill did not fire", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
