"""Table 1 regeneration benches.

One bench per benchmark circuit runs the complete per-circuit pipeline
(resyn2rs -> map x3 libraries -> random-pattern power estimation) and
checks the paper's qualitative claims; a final bench regenerates the
whole table and prints it next to the paper's averages.
"""

import pytest

from repro.circuits.suite import (
    CMOS,
    CONVENTIONAL,
    GENERALIZED,
    benchmark_suite,
)
from repro.experiments.flow import run_circuit_flow
from repro.experiments.table1 import reproduce_table1
from repro.synth.scripts import resyn2rs

SUITE = {spec.name: spec for spec in benchmark_suite()}

#: Small/medium circuits benched individually (the giant ones are
#: covered by the full-table bench below with rounds=1).
PER_CIRCUIT = ["t481", "C1355", "C1908", "C2670", "dalu", "C5315"]


@pytest.mark.parametrize("name", PER_CIRCUIT)
def test_bench_circuit_flow(benchmark, name, glib, bench_config):
    """Per-circuit pipeline cost on the generalized library."""
    spec = SUITE[name]
    aig = resyn2rs(spec.build())

    def flow():
        return run_circuit_flow(aig, glib, bench_config,
                                presynthesized=True)

    result = benchmark.pedantic(flow, rounds=1, iterations=1)
    assert result.gate_count > 0
    assert result.pt_w > 0


def test_bench_full_table1(benchmark, bench_config):
    """The whole Table 1: 12 circuits x 3 libraries.

    Prints the reproduced table (with the paper's averages inline) and
    asserts the headline orderings: the generalized library wins gate
    count, power and EDP on average; CMOS is several times slower.
    """
    result = benchmark.pedantic(
        lambda: reproduce_table1(bench_config), rounds=1, iterations=1)
    print()
    print(result.render())

    generalized = result.averages(GENERALIZED)
    conventional = result.averages(CONVENTIONAL)
    cmos = result.averages(CMOS)

    # Paper: 24.2% fewer gates (generalized vs CMOS); ours is smaller
    # but the ordering must hold.
    assert generalized.gate_count < conventional.gate_count
    # Paper: 7.1x / 5.1x delay advantage over CMOS.
    assert cmos.delay_s / conventional.delay_s > 3.5
    assert cmos.delay_s / generalized.delay_s > 3.5
    # Paper: 57.1% / 36.7% total power saving.
    assert generalized.pt_w < conventional.pt_w < cmos.pt_w
    # Paper: 19.5x / 8.1x EDP advantage.
    assert cmos.edp_js / generalized.edp_js > 5
    assert cmos.edp_js / conventional.edp_js > 4
    # Paper: 94.5% static power saving.
    assert generalized.ps_w < 0.2 * cmos.ps_w
