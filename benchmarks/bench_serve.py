"""Serving-path benchmark: cold vs warm query latency and throughput.

Measures what the long-lived engine (:mod:`repro.serve`) buys over the
batch path:

* **cold** — first query on a fresh engine (pays characterization,
  synthesis, mapping and estimation);
* **remap-free** — same circuit/library at a different frequency (the
  netlist/library caches hold, only estimation reruns);
* **warm** — the identical query again (result-cache hit);
* **throughput** — sequential warm queries/s, in process and over HTTP
  (loopback);
* **overload** — shed rate and p50/p99 latency of admitted requests at
  2x the admission limit (``max_inflight``), with an injected 10 ms
  per-request hold so the offered load genuinely exceeds capacity.

Results merge into ``BENCH_perf.json`` under the ``"serve"`` key (the
rest of the file is whatever ``bench_runtime.py`` last wrote), so the
performance trajectory of the serving path is tracked from PR to PR.
The warm/cold ratio is asserted ``>= 10`` — a warm engine that ever
re-pays synthesis is a regression, not noise.

    PYTHONPATH=src python benchmarks/bench_serve.py            # full
    PYTHONPATH=src python benchmarks/bench_serve.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from dataclasses import replace
from pathlib import Path

# Cold-path honesty: the persistent characterization cache must not
# leak warm timings into the tracked report.
os.environ["REPRO_CACHE_DISABLE"] = "1"

#: Minimum cold/warm latency ratio the acceptance criteria require.
MIN_WARM_SPEEDUP = 10.0


def _best_of(func, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def bench_engine(config, circuit: str, library: str) -> dict:
    from repro.api import Session
    from repro.serve import Engine

    engine = Engine(Session(config))

    start = time.perf_counter()
    cold = engine.estimate_request(circuit, library)
    cold_s = time.perf_counter() - start
    assert cold.cache_status == "cold"

    remap_free_s = _best_of(
        lambda: engine.estimate_request(
            circuit, library, replace(config, frequency=2.0e9)),
        repeats=1)

    warm_s = _best_of(
        lambda: engine.estimate_request(circuit, library), repeats=5)
    assert engine.estimate_request(circuit, library).cache_status == "hot"

    n = 2000
    start = time.perf_counter()
    for _ in range(n):
        engine.estimate_request(circuit, library)
    elapsed = time.perf_counter() - start

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm query only {speedup:.1f}x faster than cold "
        f"({warm_s:.6f}s vs {cold_s:.3f}s); the engine is re-paying "
        f"work it should have cached")
    return {
        "circuit": circuit,
        "library": library,
        "cold_first_query_s": cold_s,
        "remap_free_requery_s": remap_free_s,
        "warm_query_s": warm_s,
        "warm_speedup_vs_cold": speedup,
        "warm_queries_per_s": n / elapsed,
        "counters": dict(engine.counters),
    }


def bench_http(config, circuit: str, library: str) -> dict:
    """Serving overhead over loopback HTTP.

    Runs after :func:`bench_engine` in the same process, so the
    process-global caches (synthesized subjects, characterized
    libraries, mapper match tables) are already warm; only the fresh
    engine's own LRUs are cold.  The first-query number is therefore
    labeled ``result_cold`` — it measures mapping + estimation + HTTP,
    *not* a true cold start (that is ``engine.cold_first_query_s``).
    """
    from repro.api import Session
    from repro.serve import Client, Engine, serve

    server = serve(Engine(Session(config)))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = Client(server.url)
        start = time.perf_counter()
        first = client.estimate(circuit, library)
        result_cold_s = time.perf_counter() - start
        assert first.cache_status == "cold"

        warm_s = _best_of(
            lambda: client.estimate(circuit, library), repeats=5)

        n = 500
        start = time.perf_counter()
        for _ in range(n):
            client.estimate(circuit, library)
        elapsed = time.perf_counter() - start
        return {
            "result_cold_first_query_s": result_cold_s,
            "warm_roundtrip_s": warm_s,
            "warm_queries_per_s": n / elapsed,
        }
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def bench_overload(config, circuit: str, library: str,
                   quick: bool) -> dict:
    """Admission control under 2x offered load.

    Twice ``max_inflight`` client threads slam the server with
    cache-busting queries (a fresh frequency per request) while an
    ``engine.latency`` fault holds every admitted request on its slot
    for a deterministic 10 ms.  Tracked numbers: the shed rate (429s /
    offered) and the p50/p99 latency of the *admitted* requests —
    load shedding is only worth its 429s if the requests it protects
    stay fast.
    """
    from repro import faults
    from repro.api import Session
    from repro.errors import ServerError
    from repro.serve import Client, Engine, serve

    max_inflight = 4
    workers = 2 * max_inflight
    per_worker = 5 if quick else 25

    engine = Engine(Session(config))
    # Pay synthesis/characterization once so the measurement isolates
    # the admission + pricing path.
    engine.estimate_request(circuit, library)
    faults.activate("engine.latency:times=inf,ms=10")
    server = serve(engine, max_inflight=max_inflight)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    lock = threading.Lock()
    latencies: list = []
    counts = {"ok": 0, "shed": 0}

    def slam(worker_index: int) -> None:
        client = Client(server.url, retry=None)
        for i in range(per_worker):
            # A frequency nobody else asks for: every admitted request
            # re-prices (holding its slot) instead of hitting the LRU.
            frequency = 1.0e9 + 1.0e6 * (worker_index * per_worker + i + 1)
            point = replace(config, frequency=frequency)
            start = time.perf_counter()
            try:
                client.estimate(circuit, library, config=point)
            except ServerError as error:
                if error.status != 429:
                    raise
                with lock:
                    counts["shed"] += 1
                continue
            elapsed = time.perf_counter() - start
            with lock:
                counts["ok"] += 1
                latencies.append(elapsed)

    try:
        threads = [threading.Thread(target=slam, args=(index,))
                   for index in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        faults.deactivate()
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)

    offered = counts["ok"] + counts["shed"]
    assert counts["ok"] > 0, "overload shed every single request"
    assert counts["shed"] > 0, (
        f"no request shed at {workers} threads vs max_inflight="
        f"{max_inflight}; admission control never engaged")
    latencies.sort()
    p99 = latencies[min(len(latencies) - 1, int(0.99 * len(latencies)))]
    return {
        "max_inflight": max_inflight,
        "offered_threads": workers,
        "offered_requests": offered,
        "ok": counts["ok"],
        "shed": counts["shed"],
        "shed_rate": counts["shed"] / offered,
        "p50_latency_s": latencies[len(latencies) // 2],
        "p99_latency_s": p99,
        "held_ms_per_request": 10.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny budget for CI smoke runs")
    parser.add_argument("-o", "--output", default="BENCH_perf.json",
                        help="JSON report to merge the 'serve' key into")
    args = parser.parse_args(argv)

    from repro import __version__
    from repro.experiments.config import ExperimentConfig

    if args.quick:
        config = ExperimentConfig(n_patterns=2_048, state_patterns=2_048)
        circuit = "t481"
    else:
        config = ExperimentConfig(n_patterns=16_384,
                                  state_patterns=16_384)
        circuit = "C1908"

    section = {
        "version": __version__,
        "quick": args.quick,
        "n_patterns": config.n_patterns,
        "engine": bench_engine(config, circuit, "cntfet-generalized"),
        "http": bench_http(config, circuit, "cntfet-generalized"),
        "overload": bench_overload(config, circuit, "cntfet-generalized",
                                   quick=args.quick),
    }

    output = Path(args.output)
    try:
        report = json.loads(output.read_text())
    except (OSError, ValueError):
        report = {}
    report["serve"] = section
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps({"serve": section}, indent=2))
    print(f"\nmerged 'serve' into {output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
