"""Serving-path benchmark: cold vs warm query latency and throughput.

Measures what the long-lived engine (:mod:`repro.serve`) buys over the
batch path:

* **cold** — first query on a fresh engine (pays characterization,
  synthesis, mapping and estimation);
* **remap-free** — same circuit/library at a different frequency (the
  netlist/library caches hold, only estimation reruns);
* **warm** — the identical query again (result-cache hit);
* **throughput** — sequential warm queries/s, in process and over HTTP
  (loopback).

Results merge into ``BENCH_perf.json`` under the ``"serve"`` key (the
rest of the file is whatever ``bench_runtime.py`` last wrote), so the
performance trajectory of the serving path is tracked from PR to PR.
The warm/cold ratio is asserted ``>= 10`` — a warm engine that ever
re-pays synthesis is a regression, not noise.

    PYTHONPATH=src python benchmarks/bench_serve.py            # full
    PYTHONPATH=src python benchmarks/bench_serve.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from dataclasses import replace
from pathlib import Path

# Cold-path honesty: the persistent characterization cache must not
# leak warm timings into the tracked report.
os.environ["REPRO_CACHE_DISABLE"] = "1"

#: Minimum cold/warm latency ratio the acceptance criteria require.
MIN_WARM_SPEEDUP = 10.0


def _best_of(func, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def bench_engine(config, circuit: str, library: str) -> dict:
    from repro.api import Session
    from repro.serve import Engine

    engine = Engine(Session(config))

    start = time.perf_counter()
    cold = engine.estimate_request(circuit, library)
    cold_s = time.perf_counter() - start
    assert cold.cache_status == "cold"

    remap_free_s = _best_of(
        lambda: engine.estimate_request(
            circuit, library, replace(config, frequency=2.0e9)),
        repeats=1)

    warm_s = _best_of(
        lambda: engine.estimate_request(circuit, library), repeats=5)
    assert engine.estimate_request(circuit, library).cache_status == "hot"

    n = 2000
    start = time.perf_counter()
    for _ in range(n):
        engine.estimate_request(circuit, library)
    elapsed = time.perf_counter() - start

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm query only {speedup:.1f}x faster than cold "
        f"({warm_s:.6f}s vs {cold_s:.3f}s); the engine is re-paying "
        f"work it should have cached")
    return {
        "circuit": circuit,
        "library": library,
        "cold_first_query_s": cold_s,
        "remap_free_requery_s": remap_free_s,
        "warm_query_s": warm_s,
        "warm_speedup_vs_cold": speedup,
        "warm_queries_per_s": n / elapsed,
        "counters": dict(engine.counters),
    }


def bench_http(config, circuit: str, library: str) -> dict:
    """Serving overhead over loopback HTTP.

    Runs after :func:`bench_engine` in the same process, so the
    process-global caches (synthesized subjects, characterized
    libraries, mapper match tables) are already warm; only the fresh
    engine's own LRUs are cold.  The first-query number is therefore
    labeled ``result_cold`` — it measures mapping + estimation + HTTP,
    *not* a true cold start (that is ``engine.cold_first_query_s``).
    """
    from repro.api import Session
    from repro.serve import Client, Engine, serve

    server = serve(Engine(Session(config)))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = Client(server.url)
        start = time.perf_counter()
        first = client.estimate(circuit, library)
        result_cold_s = time.perf_counter() - start
        assert first.cache_status == "cold"

        warm_s = _best_of(
            lambda: client.estimate(circuit, library), repeats=5)

        n = 500
        start = time.perf_counter()
        for _ in range(n):
            client.estimate(circuit, library)
        elapsed = time.perf_counter() - start
        return {
            "result_cold_first_query_s": result_cold_s,
            "warm_roundtrip_s": warm_s,
            "warm_queries_per_s": n / elapsed,
        }
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny budget for CI smoke runs")
    parser.add_argument("-o", "--output", default="BENCH_perf.json",
                        help="JSON report to merge the 'serve' key into")
    args = parser.parse_args(argv)

    from repro import __version__
    from repro.experiments.config import ExperimentConfig

    if args.quick:
        config = ExperimentConfig(n_patterns=2_048, state_patterns=2_048)
        circuit = "t481"
    else:
        config = ExperimentConfig(n_patterns=16_384,
                                  state_patterns=16_384)
        circuit = "C1908"

    section = {
        "version": __version__,
        "quick": args.quick,
        "n_patterns": config.n_patterns,
        "engine": bench_engine(config, circuit, "cntfet-generalized"),
        "http": bench_http(config, circuit, "cntfet-generalized"),
    }

    output = Path(args.output)
    try:
        report = json.loads(output.read_text())
    except (OSError, ValueError):
        report = {}
    report["serve"] = section
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps({"serve": section}, indent=2))
    print(f"\nmerged 'serve' into {output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
