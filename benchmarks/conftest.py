"""Shared fixtures for the benchmark harness.

Benchmarks use a reduced pattern budget (16 K instead of the paper's
640 K) so the whole harness runs in minutes; the *full* paper-scale
reproduction is ``examples/table1_reproduction.py``, whose output is
recorded in EXPERIMENTS.md.  Pattern count only affects estimator
noise, not the relative results (see
``tests/sim/test_estimator.py::TestBehaviour::test_pattern_convergence``).
"""

import os

import pytest

from repro.cache import ENV_CACHE_DISABLE
from repro.experiments.config import ExperimentConfig

# Benchmarks measure cold-path cost; a warm persistent cache would
# make the characterization stages vacuous.
os.environ[ENV_CACHE_DISABLE] = "1"
from repro.gates.ambipolar_library import generalized_cntfet_library
from repro.gates.conventional import cmos_library, conventional_cntfet_library


@pytest.fixture(scope="session")
def bench_config():
    return ExperimentConfig(n_patterns=16_384, state_patterns=16_384)


@pytest.fixture(scope="session")
def glib():
    return generalized_cntfet_library()


@pytest.fixture(scope="session")
def clib():
    return conventional_cntfet_library()


@pytest.fixture(scope="session")
def mlib():
    return cmos_library()
