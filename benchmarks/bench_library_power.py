"""Section 4 library characterization bench (S4-LIB in DESIGN.md).

Regenerates the gate-level results the paper reports in prose: the
46-cell characterization, the CNTFET-vs-CMOS comparison (27 % dynamic /
28 % total saving, ~10x static gap, PG/PS fractions) and the equal
average activity factors.
"""

import pytest

from repro.experiments.library_power import reproduce_library_study


def test_bench_library_study(benchmark):
    study = benchmark.pedantic(reproduce_library_study, rounds=1,
                               iterations=1)
    print()
    print("\n".join(study.comparison.summary_lines()))

    # Paper anchors (Section 4).
    assert study.cntfet_inverter_cin_af == pytest.approx(36.0)
    assert study.cmos_inverter_cin_af == pytest.approx(52.0)
    assert 0.20 <= study.comparison.dynamic_saving <= 0.40   # paper: 27%
    assert 0.22 <= study.comparison.total_saving <= 0.42     # paper: 28%
    assert 7 <= study.comparison.static_ratio <= 14          # ~10x
    assert study.comparison.reference_gate_leak_fraction == pytest.approx(
        0.10, abs=0.04)                                      # CMOS ~10%
    assert study.comparison.candidate_gate_leak_fraction < 0.01  # <1%
    assert study.comparison.candidate_activity == pytest.approx(
        study.comparison.reference_activity, abs=1e-9)       # equal alpha


def test_bench_characterization_per_cell(benchmark, glib):
    """Cost of characterizing one representative generalized cell."""
    from repro.power.characterize import characterize_cell
    from repro.power.model import PowerParameters
    from repro.power.pattern_sim import PatternSimulator

    simulator = PatternSimulator(glib.tech)
    params = PowerParameters()
    cell = glib.cell("GNAND2B")

    result = benchmark(
        lambda: characterize_cell(cell, glib, simulator, params))
    assert result.power.total > 0
