"""Setup shim: enables legacy installs in offline environments.

The canonical metadata lives in pyproject.toml; this file exists only so
that ``python setup.py develop`` works where the ``wheel`` package (needed
for PEP 660 editable installs) is unavailable.
"""
from setuptools import setup

setup()
