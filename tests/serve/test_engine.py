"""The serving engine: cache statuses, counters, warm-path guarantees,
coalescing, store warm-start and registry-generation invalidation."""

import threading
import time

import pytest

from repro import registry
from repro.api import Session
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.serve import Engine


@pytest.fixture
def engine(tiny_config):
    return Engine(Session(tiny_config))


class TestEngineCaching:
    def test_cold_then_hot(self, engine, tiny_config):
        first = engine.estimate_request("t481", "cmos")
        second = engine.estimate_request("t481", "cmos")
        assert first.cache_status == "cold"
        assert second.cache_status == "hot"
        assert second.result == first.result
        assert engine.counters["results.cold"] == 1
        assert engine.counters["results.hot"] == 1

    def test_warm_repeat_skips_synthesis_and_characterization(
            self, engine):
        """The acceptance counter check: a repeated identical query
        touches no cache below the result layer."""
        engine.estimate_request("t481", "cmos")
        stats = engine.stats()["caches"]
        assert stats["netlists"]["misses"] == 1
        assert stats["libraries"]["misses"] == 1
        engine.estimate_request("t481", "cmos")
        stats = engine.stats()["caches"]
        # No further netlist/library traffic at all — the repeat was
        # answered entirely from the result cache.
        assert stats["netlists"]["misses"] + stats["netlists"]["hits"] == 1
        assert stats["libraries"]["misses"] + stats["libraries"]["hits"] \
            == 1
        assert stats["results"]["hits"] == 1

    def test_estimation_knob_change_reuses_netlist(self, engine,
                                                   tiny_config):
        """Frequency only affects estimation: re-estimate, don't re-map."""
        engine.estimate_request("t481", "cmos")
        changed = engine.estimate_request(
            "t481", "cmos",
            ExperimentConfig(frequency=2.0e9,
                             n_patterns=tiny_config.n_patterns,
                             state_patterns=tiny_config.state_patterns))
        assert changed.cache_status == "cold"
        stats = engine.stats()["caches"]
        assert stats["netlists"]["misses"] == 1
        assert stats["netlists"]["hits"] == 1
        assert stats["libraries"]["hits"] == 1

    def test_remap_free_requery_does_zero_bitsim_work(self, tiny_config):
        """The regression lock for the activity split: a second query
        that changes only pricing knobs (frequency here) must be served
        from the stats cache — not one bit-parallel pattern simulated."""
        from repro.sim import activity

        activity.clear_cache(reset_counters=True)
        engine = Engine(Session(tiny_config))
        engine.estimate_request("t481", "cmos")
        simulated = activity.cache_info()["simulations"]
        assert simulated >= 1
        requery = engine.estimate_request(
            "t481", "cmos",
            ExperimentConfig(frequency=2.0e9,
                             n_patterns=tiny_config.n_patterns,
                             state_patterns=tiny_config.state_patterns))
        assert requery.cache_status == "cold"  # new result key...
        assert activity.cache_info()["simulations"] == simulated  # ...no sim
        counters = engine.stats()["counters"]
        assert counters["stats.hot"] >= 1
        assert counters["stats.cold"] >= 1
        caches = engine.stats()["caches"]
        assert caches["stats"]["hits"] >= 1

    def test_vdd_change_remaps(self, engine, tiny_config):
        engine.estimate_request("t481", "cmos")
        engine.estimate_request(
            "t481", "cmos",
            ExperimentConfig(vdd=0.8,
                             n_patterns=tiny_config.n_patterns,
                             state_patterns=tiny_config.state_patterns))
        stats = engine.stats()["caches"]
        assert stats["netlists"]["misses"] == 2
        assert stats["libraries"]["misses"] == 2

    def test_alias_and_canonical_share_one_entry(self, engine):
        cold = engine.estimate_request("t481", "generalized")
        via_key = engine.estimate_request("t481", "cntfet-generalized")
        assert cold.cache_status == "cold"
        assert via_key.cache_status == "hot"
        assert via_key.library == "cntfet-generalized"

    def test_bit_identical_to_session_run(self, engine, tiny_config):
        report = engine.estimate_request("C1355", "conventional")
        direct = Session(tiny_config).run("C1355", "conventional")
        assert report.result == direct

    def test_unknown_names_rejected(self, engine):
        with pytest.raises(ExperimentError, match="unknown circuit"):
            engine.estimate_request("nope", "cmos")
        with pytest.raises(ExperimentError, match="unknown library"):
            engine.estimate_request("t481", "nope")

    def test_result_lru_evicts(self, tiny_config):
        engine = Engine(Session(tiny_config), max_results=1)
        engine.estimate_request("t481", "cmos")
        engine.estimate_request("t481", "generalized")  # evicts the first
        again = engine.estimate_request("t481", "cmos")
        assert again.cache_status == "cold"
        # ... but the netlist/library layers still made it cheap.
        assert engine.stats()["caches"]["netlists"]["hits"] == 1


class TestEngineBatch:
    def test_batch_matches_single_queries_in_order(self, tiny_config):
        from repro.schema import PowerQuery

        engine = Engine(Session(tiny_config))
        configs = [ExperimentConfig(frequency=f,
                                    n_patterns=tiny_config.n_patterns,
                                    state_patterns=tiny_config
                                    .state_patterns)
                   for f in (0.5e9, 1.0e9, 2.0e9)]
        queries = [PowerQuery(circuit="t481", library="cmos",
                              config=config) for config in configs]
        reports = engine.estimate_batch(queries)
        assert [r.config.frequency for r in reports] == \
            [0.5e9, 1.0e9, 2.0e9]
        for query, report in zip(queries, reports):
            assert report.result == engine.estimate(query).result
        counters = engine.stats()["counters"]
        assert counters["batch.requests"] == 1
        assert counters["batch.queries"] == 3

    def test_batch_grid_simulates_once(self, tiny_config):
        """The server-side grouping guarantee: an operating-point grid
        over one circuit costs one bit-parallel simulation."""
        from repro.schema import PowerQuery
        from repro.sim import activity

        activity.clear_cache(reset_counters=True)
        engine = Engine(Session(tiny_config))
        queries = [PowerQuery(circuit="t481", library="generalized",
                              config=ExperimentConfig(
                                  frequency=f, fanout=fo,
                                  n_patterns=tiny_config.n_patterns,
                                  state_patterns=tiny_config
                                  .state_patterns))
                   for f in (0.5e9, 1.0e9, 2.0e9) for fo in (1, 3)]
        reports = engine.estimate_batch(queries)
        assert len(reports) == 6
        assert activity.cache_info()["simulations"] == 1
        assert engine.stats()["counters"]["stats.cold"] == 1

    def test_batch_interleaved_groups_still_group(self, tiny_config):
        """Queries arriving interleaved across circuits are re-ordered
        by activity group server-side (answers stay in input order)."""
        from repro.schema import PowerQuery
        from repro.sim import activity

        activity.clear_cache(reset_counters=True)
        engine = Engine(Session(tiny_config))
        frequencies = (0.5e9, 1.0e9)
        queries = [PowerQuery(circuit=circuit, library="cmos",
                              config=ExperimentConfig(
                                  frequency=f,
                                  n_patterns=tiny_config.n_patterns,
                                  state_patterns=tiny_config
                                  .state_patterns))
                   for f in frequencies
                   for circuit in ("t481", "C1908")]
        reports = engine.estimate_batch(queries)
        assert [r.circuit for r in reports] == ["t481", "C1908",
                                               "t481", "C1908"]
        assert activity.cache_info()["simulations"] == 2


class TestEngineCoalescing:
    def test_identical_inflight_queries_coalesce(self, tiny_config):
        engine = Engine(Session(tiny_config))
        release = threading.Event()
        entered = threading.Event()
        original = engine._compute

        def slow_compute(query, deadline=None):
            entered.set()
            release.wait(timeout=30)
            return original(query, deadline)

        engine._compute = slow_compute
        results = {}

        def leader():
            results["leader"] = engine.estimate_request("i8", "cmos")

        def follower():
            entered.wait(timeout=30)
            results["follower"] = engine.estimate_request("i8", "cmos")

        t1 = threading.Thread(target=leader)
        t2 = threading.Thread(target=follower)
        t1.start()
        entered.wait(timeout=30)
        t2.start()
        # Give the follower a moment to register as in-flight, then
        # let the leader finish.
        for _ in range(1000):
            if engine.counters["results.coalesced"]:
                break
            time.sleep(0.001)
        release.set()
        t1.join(timeout=60)
        t2.join(timeout=60)
        assert results["leader"].cache_status == "cold"
        assert results["follower"].cache_status == "coalesced"
        assert results["follower"].result == results["leader"].result
        assert engine.counters["results.cold"] == 1
        assert engine.counters["results.coalesced"] == 1


class TestEngineStoreIntegration:
    def test_answers_append_to_sweep_store(self, tiny_config, tmp_path):
        from repro.sweep.store import open_store

        path = tmp_path / "serve.jsonl"
        engine = Engine(Session(tiny_config), store=path)
        report = engine.estimate_request("t481", "cmos")
        records = open_store(path).records()
        assert len(records) == 1
        assert records[0]["task_key"] == report.query_key
        # The in-memory index tracks appends, so the store file is
        # never re-scanned on later misses.
        assert report.query_key in engine._store_index

    def test_store_is_scanned_once_not_per_miss(self, tiny_config,
                                                tmp_path):
        engine = Engine(Session(tiny_config),
                        store=tmp_path / "serve.jsonl")

        def forbidden(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError(
                "engine must use its index, not per-miss store.get()")

        engine._store.get = forbidden
        engine._store.records = forbidden
        engine.estimate_request("t481", "cmos")
        assert engine.estimate_request(
            "t481", "cmos").cache_status == "hot"

    def test_sweep_store_warm_starts_engine(self, tiny_config, tmp_path):
        """A finished sweep is a warm cache for a fresh server."""
        from repro.sweep.spec import SweepSpec
        from repro.sweep.store import flow_result

        path = tmp_path / "sweep.jsonl"
        spec = SweepSpec(circuits=("t481",), libraries=("cmos",),
                         n_patterns=(tiny_config.n_patterns,),
                         state_patterns=tiny_config.state_patterns)
        Session(tiny_config).sweep(spec, path)

        engine = Engine(Session(tiny_config), store=path)
        report = engine.estimate(spec.expand()[0])
        assert report.cache_status == "hot"
        assert engine.counters["results.store"] == 1
        assert engine.counters.get("results.cold", 0) == 0
        stored = flow_result(
            Session(tiny_config).sweep(spec, path).store.get(
                report.query_key))
        assert report.result == stored


class TestEngineInvalidation:
    def test_registration_change_flushes_caches(self, tiny_config):
        from repro.circuits.adders import ripple_adder_circuit

        engine = Engine(Session(tiny_config))
        engine.estimate_request("t481", "cmos")
        registry.register_circuit(
            "flush-probe", lambda: ripple_adder_circuit(2, name="fp"))
        try:
            again = engine.estimate_request("t481", "cmos")
        finally:
            registry.unregister_circuit("flush-probe")
        assert again.cache_status == "cold"
        assert engine.counters["caches.invalidated"] == 1

    def test_replaced_circuit_not_served_stale_from_store(
            self, tiny_config, tmp_path):
        """Generation invalidation must cover the store index too: a
        re-registered name means a different circuit, so its stored
        record may not be served hot."""
        from repro.circuits.adders import (
            parity_tree_circuit,
            ripple_adder_circuit,
        )

        engine = Engine(Session(tiny_config),
                        store=tmp_path / "serve.jsonl")
        registry.register_circuit(
            "mutable", lambda: ripple_adder_circuit(3, name="mutable"))
        try:
            first = engine.estimate_request("mutable", "cmos")
            registry.register_circuit(
                "mutable", lambda: parity_tree_circuit(8, name="mutable"),
                replace=True)
            second = engine.estimate_request("mutable", "cmos")
            direct = Session(tiny_config).run("mutable", "cmos")
        finally:
            registry.unregister_circuit("mutable", missing_ok=True)
        assert second.cache_status == "cold"
        assert second.result == direct
        assert second.result.gate_count != first.result.gate_count

    def test_leader_spanning_reregistration_is_not_cached(
            self, tiny_config, tmp_path):
        """A computation that raced a re-registration may be answered
        to its caller, but must not poison the caches or the store."""
        from repro.circuits.adders import (
            parity_tree_circuit,
            ripple_adder_circuit,
        )

        engine = Engine(Session(tiny_config),
                        store=tmp_path / "serve.jsonl")
        registry.register_circuit(
            "racy", lambda: ripple_adder_circuit(3, name="racy"))
        original = engine._compute

        def compute_and_rereg(query, deadline=None):
            report = original(query, deadline)
            # The re-registration lands while the leader is "still
            # computing" (before it re-takes the engine lock).
            registry.register_circuit(
                "racy", lambda: parity_tree_circuit(8, name="racy"),
                replace=True)
            return report

        engine._compute = compute_and_rereg
        try:
            stale = engine.estimate_request("racy", "cmos")
            engine._compute = original
            fresh = engine.estimate_request("racy", "cmos")
            direct = Session(tiny_config).run("racy", "cmos")
        finally:
            registry.unregister_circuit("racy", missing_ok=True)
        assert stale.cache_status == "cold"
        # The second query recomputed against the new registration
        # instead of serving the raced result hot.
        assert fresh.cache_status == "cold"
        assert fresh.result == direct
        assert fresh.result.gate_count != stale.result.gate_count

    def test_replaced_circuit_is_recomputed(self, tiny_config):
        from repro.circuits.adders import (
            parity_tree_circuit,
            ripple_adder_circuit,
        )

        engine = Engine(Session(tiny_config))
        registry.register_circuit(
            "mutable", lambda: ripple_adder_circuit(3, name="mutable"))
        try:
            first = engine.estimate_request("mutable", "cmos")
            registry.register_circuit(
                "mutable", lambda: parity_tree_circuit(8, name="mutable"),
                replace=True)
            second = engine.estimate_request("mutable", "cmos")
        finally:
            registry.unregister_circuit("mutable", missing_ok=True)
        assert second.cache_status == "cold"
        assert second.result.gate_count != first.result.gate_count


class TestEngineDiscovery:
    def test_listings(self, engine):
        circuits = {c["key"]: c for c in engine.circuits()}
        assert circuits["t481"]["paper_benchmark"] is True
        libraries = {entry["key"] for entry in engine.libraries()}
        assert {"cmos", "cntfet-generalized"} <= libraries
        backends = engine.backends()
        assert "bitsim" in backends["backends"]
        assert backends["default"] == "bitsim"

    def test_stats_shape(self, engine):
        from repro import __version__

        stats = engine.stats()
        assert stats["version"] == __version__
        assert stats["uptime_s"] >= 0
        assert set(stats["caches"]) == {"results", "netlists", "libraries",
                                        "stats", "timing", "disk"}
        assert set(stats["caches"]["timing"]) >= {"hits", "misses",
                                                  "computes", "disk_hits"}
        assert set(stats["caches"]["disk"]) >= {"verified", "quarantined"}
        assert "stats.hot" in stats["counters"]
        assert "stats.cold" in stats["counters"]
