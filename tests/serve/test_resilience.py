"""The serving resilience layer: client retries against a scripted
flaky server, per-request deadlines, admission-control shedding,
health probes, and graceful drain."""

from __future__ import annotations

import json
import random
import socket
import threading
import time

import pytest

from repro import faults
from repro.api import Session
from repro.errors import DeadlineExceeded, ExperimentError, ServerError
from repro.experiments.config import ExperimentConfig
from repro.resilience import RetryPolicy
from repro.schema import PowerQuery
from repro.serve import Client, Engine, serve


@pytest.fixture(autouse=True)
def clean_faults():
    faults.deactivate()
    yield
    faults.deactivate()


# -- a scripted flaky server --------------------------------------------------

_OK_BODY = json.dumps({"status": "ok"}).encode()
_OK = (b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
       + f"Content-Length: {len(_OK_BODY)}\r\n\r\n".encode() + _OK_BODY)
_BUSY_BODY = json.dumps(
    {"error": {"code": "overloaded", "message": "busy"}}).encode()
_BUSY = (b"HTTP/1.1 503 Service Unavailable\r\n"
         b"Content-Type: application/json\r\n"
         b"Retry-After: 0.01\r\n"
         + f"Content-Length: {len(_BUSY_BODY)}\r\n\r\n".encode()
         + _BUSY_BODY)
_BAD_BODY = json.dumps(
    {"error": {"code": "bad_request", "message": "nope"}}).encode()
_BAD = (b"HTTP/1.1 400 Bad Request\r\nContent-Type: application/json\r\n"
        + f"Content-Length: {len(_BAD_BODY)}\r\n\r\n".encode() + _BAD_BODY)
_DRAIN_BODY = json.dumps(
    {"error": {"code": "draining", "message": "shutting down"}}).encode()
_DRAIN = (b"HTTP/1.1 503 Service Unavailable\r\n"
          b"Content-Type: application/json\r\n"
          b"Retry-After: 1\r\n"
          + f"Content-Length: {len(_DRAIN_BODY)}\r\n\r\n".encode()
          + _DRAIN_BODY)


class FlakyServer:
    """A raw TCP server whose per-connection behavior is scripted.

    Each accepted connection pops the next behavior: ``"ok"`` (full
    200), ``"busy"`` (503 + Retry-After), ``"bad"`` (400), ``"reset"``
    (half a response, then an abortive close), ``"truncated"`` (full
    headers, half the promised body, clean FIN — the client sees
    ``IncompleteRead``), ``"draining"`` (503 whose code is
    ``draining``), ``"slow"`` (never sends headers).  Behaviors past
    the end of the script are ``"ok"``.
    """

    def __init__(self, script):
        self.script = list(script)
        self.served = 0
        self._sock = socket.create_server(("127.0.0.1", 0))
        self._sock.settimeout(0.2)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    @property
    def url(self) -> str:
        host, port = self._sock.getsockname()
        return f"http://{host}:{port}"

    def close(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5)
        self._sock.close()

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            behavior = self.script[self.served] \
                if self.served < len(self.script) else "ok"
            self.served += 1
            # Each connection on its own thread: a "slow" connection
            # must not block the retry that follows it.
            threading.Thread(target=self._handle, args=(conn, behavior),
                             daemon=True).start()

    def _handle(self, conn: socket.socket, behavior: str) -> None:
        try:
            self._serve_one(conn, behavior)
        finally:
            conn.close()

    def _serve_one(self, conn: socket.socket, behavior: str) -> None:
        conn.settimeout(5)
        try:
            self._drain_request(conn)
        except socket.timeout:
            return
        if behavior == "ok":
            conn.sendall(_OK)
        elif behavior == "busy":
            conn.sendall(_BUSY)
        elif behavior == "bad":
            conn.sendall(_BAD)
        elif behavior == "reset":
            # Half the response, then an abortive close (RST): the
            # client sees a connection reset mid-body.
            conn.sendall(_OK[: len(_OK) // 2])
            conn.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            b"\x01\x00\x00\x00\x00\x00\x00\x00")
        elif behavior == "truncated":
            # Complete headers promising the full body, then half of
            # it and a *clean* close — no RST, so the failure is
            # http.client.IncompleteRead, not an OSError.
            conn.sendall(_OK[: len(_OK) - len(_OK_BODY) // 2])
        elif behavior == "draining":
            conn.sendall(_DRAIN)
        elif behavior == "slow":
            # Headers never arrive; the client's timeout must fire.
            time.sleep(1.0)

    @staticmethod
    def _drain_request(conn: socket.socket) -> None:
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = conn.recv(65536)
            if not chunk:
                return
            data += chunk


@pytest.fixture
def flaky():
    servers = []

    def factory(script):
        server = FlakyServer(script)
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.close()


def _client(url, script_policy=None, timeout=5.0):
    sleeps = []
    policy = script_policy if script_policy is not None \
        else RetryPolicy(retries=3, backoff_base_s=0.001,
                         backoff_cap_s=0.01)
    client = Client(url, timeout=timeout, retry=policy,
                    sleep=sleeps.append, rng=random.Random(11))
    return client, sleeps


class TestClientRetries:
    def test_connection_reset_mid_response_is_retried(self, flaky):
        server = flaky(["reset", "ok"])
        client, sleeps = _client(server.url)
        assert client.healthz() == {"status": "ok"}
        assert server.served == 2
        assert client.last_retry_state.attempts == 1
        assert len(sleeps) == 1

    def test_truncated_body_mid_stream_is_retried(self, flaky):
        # A fleet worker SIGKILLed while streaming closes the socket
        # cleanly after a partial body; the promised Content-Length is
        # never delivered, so the failure surfaces as IncompleteRead
        # (an HTTPException, not an OSError) — it must retry too.
        server = flaky(["truncated", "ok"])
        client, sleeps = _client(server.url)
        assert client.healthz() == {"status": "ok"}
        assert server.served == 2
        assert client.last_retry_state.attempts == 1
        assert len(sleeps) == 1

    def test_truncated_body_without_retry_raises_transport_error(
            self, flaky):
        server = flaky(["truncated"])
        client = Client(server.url, timeout=5.0, retry=None)
        with pytest.raises(ServerError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 0
        assert excinfo.value.code == "connection"

    def test_draining_503_first_retry_is_immediate(self, flaky):
        # One draining worker means its fleet siblings are live right
        # now: the first retry goes with zero sleep (ignoring the 1 s
        # Retry-After); only the repeat draining backs off with it.
        server = flaky(["draining", "draining", "ok"])
        client, sleeps = _client(server.url)
        assert client.healthz() == {"status": "ok"}
        assert server.served == 3
        # state.sleeps records every backoff including the zero one;
        # the injected sleep callable only fires for positive delays.
        assert client.last_retry_state.sleeps == [0.0, 0.01]
        assert sleeps == [0.01]

    def test_503_then_success_honors_retry_after(self, flaky):
        server = flaky(["busy", "busy", "ok"])
        client, sleeps = _client(server.url)
        assert client.healthz() == {"status": "ok"}
        assert server.served == 3
        # The server's Retry-After hint (0.01 s) overrode the computed
        # backoff on both sleeps.
        assert sleeps == [0.01, 0.01]

    def test_slow_header_hits_timeout_then_retries(self, flaky):
        server = flaky(["slow", "ok"])
        client, _ = _client(server.url, timeout=0.2)
        start = time.monotonic()
        assert client.healthz() == {"status": "ok"}
        # The first attempt burned ~0.2 s of timeout, not the 1 s the
        # server would have slept.
        assert time.monotonic() - start < 0.9
        assert client.last_retry_state.attempts == 1

    def test_backoff_sleeps_stay_within_policy_bounds(self, flaky):
        server = flaky(["reset", "reset", "reset", "ok"])
        policy = RetryPolicy(retries=3, backoff_base_s=0.001,
                             backoff_cap_s=0.004)
        client, sleeps = _client(server.url, policy)
        assert client.healthz() == {"status": "ok"}
        assert len(sleeps) == 3
        assert all(0.001 <= s <= 0.004 for s in sleeps)

    def test_retries_exhausted_raises_connection_error(self, flaky):
        server = flaky(["reset"] * 10)
        client, sleeps = _client(server.url,
                                 RetryPolicy(retries=2,
                                             backoff_base_s=0.001,
                                             backoff_cap_s=0.002))
        with pytest.raises(ServerError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 0
        assert server.served == 3  # initial try + 2 retries
        assert len(sleeps) == 2

    def test_400_is_not_retried(self, flaky):
        server = flaky(["bad", "ok"])
        client, sleeps = _client(server.url)
        with pytest.raises(ServerError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_request"
        assert server.served == 1
        assert sleeps == []

    def test_total_deadline_bounds_the_attempt_sequence(self, flaky):
        server = flaky(["reset"] * 30)
        # Real sleeps here: the total deadline must stop a 20-retry
        # policy long before its retry budget would.
        client = Client(server.url, timeout=1.0,
                        retry=RetryPolicy(retries=20,
                                          backoff_base_s=0.02,
                                          backoff_cap_s=0.05,
                                          deadline_s=0.15))
        start = time.monotonic()
        with pytest.raises(ServerError):
            client.healthz()
        assert time.monotonic() - start < 1.0
        assert client.last_retry_state.attempts <= 10

    def test_server_error_is_an_experiment_error(self, flaky):
        server = flaky(["bad"])
        client, _ = _client(server.url)
        with pytest.raises(ExperimentError):
            client.healthz()


# -- the real server: deadlines, shedding, probes, drain ---------------------

TINY = ExperimentConfig(n_patterns=64, state_patterns=64)


@pytest.fixture
def live_server():
    servers = []

    def factory(**kwargs):
        engine = Engine(Session(TINY))
        server = serve(engine, **kwargs)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append((server, thread))
        return server

    yield factory
    for server, thread in servers:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def _fast_client(url, retry=None):
    return Client(url, timeout=30.0, retry=retry)


class TestDeadlines:
    def test_deadline_ms_expires_as_504(self, live_server):
        server = live_server()
        client = _fast_client(server.url)
        faults.activate("engine.latency:ms=80,times=1")
        with pytest.raises(ServerError) as excinfo:
            client.estimate("t481", "cmos", deadline_ms=20)
        assert excinfo.value.status == 504
        assert excinfo.value.code == "deadline_exceeded"
        # The aborted query wrote nothing: the same query now succeeds
        # and is served cold, bit-identical to an undeadlined run.
        report = client.estimate("t481", "cmos", deadline_ms=60000)
        direct = Session(TINY).run("t481")["cmos"]
        assert report.result == direct

    def test_generous_deadline_is_harmless(self, live_server):
        server = live_server()
        client = _fast_client(server.url)
        report = client.estimate("i8", "cmos", deadline_ms=600000)
        bare = client.estimate("i8", "cmos")
        assert bare.cache_status == "hot"  # deadline_ms not in the key
        assert bare.result == report.result

    def test_engine_deadline_counter(self):
        engine = Engine(Session(TINY))
        faults.activate("engine.latency:ms=50,times=1")
        with pytest.raises(DeadlineExceeded):
            engine.estimate(PowerQuery("t481", "cmos", TINY,
                                       deadline_ms=10))
        assert engine.counters["deadline.exceeded"] == 1

    def test_invalid_deadline_rejected_as_400(self, live_server):
        server = live_server()
        client = _fast_client(server.url)
        with pytest.raises(ServerError) as excinfo:
            client.estimate("t481", "cmos", deadline_ms=-5)
        assert excinfo.value.status == 400


class TestAdmissionControl:
    def test_overload_sheds_with_429_and_retry_after(self, live_server):
        server = live_server(max_inflight=1)
        slow = _fast_client(server.url)
        faults.activate("engine.latency:ms=500,times=1")
        holder = threading.Thread(
            target=lambda: slow.estimate("t481", "cmos"), daemon=True)
        holder.start()
        time.sleep(0.15)  # let the holder occupy the one slot
        fast = Client(server.url, timeout=30.0, retry=None)
        with pytest.raises(ServerError) as excinfo:
            fast.estimate("i8", "cmos")
        assert excinfo.value.status == 429
        assert excinfo.value.code == "overloaded"
        assert excinfo.value.retry_after_s == 0.5
        holder.join(timeout=30)
        assert server.engine.counters["http.shed"] >= 1
        assert slow.healthz()["counters"]["http.shed"] >= 1

    def test_retrying_client_rides_out_the_shed(self, live_server):
        server = live_server(max_inflight=1)
        faults.activate("engine.latency:ms=300,times=1")
        slow = _fast_client(server.url)
        holder = threading.Thread(
            target=lambda: slow.estimate("t481", "cmos"), daemon=True)
        holder.start()
        time.sleep(0.1)
        patient = _fast_client(
            server.url, retry=RetryPolicy(retries=8, backoff_base_s=0.05,
                                          backoff_cap_s=0.2))
        report = patient.estimate("i8", "cmos")
        assert report.circuit == "i8"
        holder.join(timeout=30)


class TestHealthProbes:
    def test_liveness_and_readiness_split(self, live_server):
        server = live_server()
        client = _fast_client(server.url)
        assert client.live()["status"] == "alive"
        assert client.ready() is True
        health = client.healthz()
        assert health["ready"] is True
        assert health["draining"] is False
        assert "disk" in health["caches"]

    def test_not_ready_until_marked(self, live_server):
        server = live_server(ready=False)
        client = _fast_client(server.url)
        assert client.live()["status"] == "alive"
        assert client.ready() is False
        server.mark_ready()
        assert client.ready() is True


class TestGracefulDrain:
    def test_draining_rejects_new_work_with_503(self, live_server):
        server = live_server()
        client = Client(server.url, timeout=30.0, retry=None)
        client.estimate("i8", "cmos")  # warm, and prove it worked
        server.begin_drain()
        assert client.ready() is False
        with pytest.raises(ServerError) as excinfo:
            client.estimate("i8", "cmos")
        assert excinfo.value.status == 503
        assert excinfo.value.code == "draining"
        assert excinfo.value.retry_after_s == 1.0

    def test_wait_idle_waits_for_inflight_work(self, live_server):
        server = live_server()
        client = _fast_client(server.url)
        faults.activate("engine.latency:ms=300,times=1")
        results = {}
        worker = threading.Thread(
            target=lambda: results.update(
                report=client.estimate("t481", "cmos")), daemon=True)
        worker.start()
        time.sleep(0.1)
        server.begin_drain()
        assert server.wait_idle(timeout=30)
        worker.join(timeout=30)
        # The in-flight request completed normally during the drain.
        assert results["report"].circuit == "t481"
        assert server.inflight == 0


class TestHttpDropFault:
    def test_dropped_connection_is_retried(self, live_server):
        server = live_server()
        client, sleeps = _client(server.url)
        client.timeout = 30.0
        faults.activate("http.drop:times=1")
        report = client.estimate("i8", "cmos")
        assert report.circuit == "i8"
        assert client.last_retry_state.attempts == 1
        assert server.engine.counters["http.dropped"] == 1
