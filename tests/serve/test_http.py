"""The HTTP service: wire-format goldens, discovery endpoints, error
mapping, and the acceptance anchor — ``POST /v1/estimate`` bit-identical
to ``Session.run`` across the full paper grid."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import __version__
from repro.api import Session
from repro.circuits.suite import benchmark_suite
from repro.experiments.config import ExperimentConfig
from repro.schema import SCHEMA_VERSION, PowerQuery, PowerQuoteReport
from repro.serve import Client, Engine, serve
from tests.test_api import PRE_REDESIGN_GOLDEN


@pytest.fixture(scope="module")
def tiny_grid_config():
    """Small enough that the full 12 x 3 grid stays test-suite friendly."""
    return ExperimentConfig(n_patterns=128, state_patterns=128)


@pytest.fixture(scope="module")
def server(tiny_grid_config):
    instance = serve(Engine(Session(tiny_grid_config)))
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    instance.server_close()
    thread.join(timeout=10)


@pytest.fixture(scope="module")
def client(server):
    return Client(server.url)


class TestEstimateEndpoint:
    def test_golden_locked_against_pre_redesign(self, client):
        """The hard acceptance golden: service responses reproduce the
        pre-redesign harness bit for bit at the golden config."""
        config = ExperimentConfig(n_patterns=4096, state_patterns=4096)
        for (circuit, library, gates, delay_s, pd_w, ps_w, pg_w, pt_w,
             edp_js) in PRE_REDESIGN_GOLDEN:
            report = client.estimate(circuit, library, config)
            r = report.result
            assert (r.gate_count, r.delay_s, r.pd_w, r.ps_w, r.pg_w,
                    r.pt_w, r.edp_js) == (gates, delay_s, pd_w, ps_w,
                                          pg_w, pt_w, edp_js), \
                (circuit, library)
            assert report.circuit == circuit
            assert report.library == library

    def test_full_paper_grid_bit_identical_to_session(
            self, client, tiny_grid_config):
        """All 12 paper circuits x 3 paper libraries through HTTP equal
        ``Session.run`` exactly (the acceptance grid, at a pattern
        budget CI can afford; equality is float-exact, so it holds at
        any budget by the same determinism)."""
        session = Session(tiny_grid_config)
        for spec in benchmark_suite():
            via_http = {
                library: client.estimate(spec.name, library).result
                for library in session.libraries
            }
            direct = session.run(spec.name)
            assert via_http == direct, spec.name

    def test_second_query_is_hot_with_identical_payload(self, client):
        config = ExperimentConfig(n_patterns=4096, state_patterns=4096)
        first = client.estimate("t481", "cmos", config)
        second = client.estimate("t481", "cmos", config)
        assert second.cache_status == "hot"
        assert second.result == first.result
        assert second.query_key == first.query_key

    def test_configless_query_uses_server_default(self, client,
                                                  tiny_grid_config):
        report = client.estimate("t481", "generalized")
        assert report.config == tiny_grid_config
        again = client.estimate("t481", "generalized")
        assert again.cache_status == "hot"

    def test_provenance(self, client):
        report = client.estimate("t481", "cmos")
        assert report.server_version == __version__
        assert report.schema_version == SCHEMA_VERSION
        assert report.backend == "bitsim"
        assert report.config_hash
        assert len(report.query_key) == 32

    def test_prepared_query_object(self, client, tiny_grid_config):
        report = client.query(PowerQuery("i8", "cmos", tiny_grid_config))
        assert report.circuit == "i8"
        assert isinstance(report, PowerQuoteReport)


class TestEstimateBatchEndpoint:
    def test_batch_equals_single_queries(self, client, tiny_grid_config):
        from dataclasses import replace

        configs = [replace(tiny_grid_config, frequency=f)
                   for f in (0.5e9, 1.0e9, 2.0e9)]
        queries = [PowerQuery(circuit="t481", library="cmos",
                              config=config) for config in configs]
        reports = client.estimate_batch(queries)
        assert len(reports) == 3
        for query, report in zip(queries, reports):
            single = client.query(query)
            assert report.result == single.result
            assert report.query_key == single.query_key
            assert report.config.frequency == query.config.frequency

    def test_config_less_batch_uses_server_default(self, client,
                                                   tiny_grid_config,
                                                   server):
        payload = {"schema_version": SCHEMA_VERSION,
                   "queries": [{"circuit": "t481", "library": "cmos"}]}
        request = urllib.request.Request(
            f"{server.url}/v1/estimate_batch",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request) as response:
            data = json.loads(response.read())
        assert data["schema_version"] == SCHEMA_VERSION
        report = PowerQuoteReport.from_dict(data["reports"][0])
        assert report.config == tiny_grid_config

    def test_empty_and_malformed_batches_rejected(self, server):
        for payload in ({"schema_version": SCHEMA_VERSION, "queries": []},
                        {"schema_version": SCHEMA_VERSION,
                         "queries": [], "extra": 1},
                        {"schema_version": SCHEMA_VERSION}):
            request = urllib.request.Request(
                f"{server.url}/v1/estimate_batch",
                data=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 400

    def test_oversized_batch_rejected(self, client):
        from repro.errors import ExperimentError
        from repro.schema import MAX_BATCH_QUERIES

        queries = [PowerQuery(circuit="t481", library="cmos")
                   ] * (MAX_BATCH_QUERIES + 1)
        with pytest.raises(ExperimentError, match="limit"):
            client.estimate_batch(queries)

    def test_unknown_circuit_fails_the_whole_batch(self, client,
                                                   tiny_grid_config):
        from repro.errors import ExperimentError

        queries = [PowerQuery(circuit="t481", library="cmos",
                              config=tiny_grid_config),
                   PowerQuery(circuit="nope", library="cmos",
                              config=tiny_grid_config)]
        with pytest.raises(ExperimentError, match="unknown circuit"):
            client.estimate_batch(queries)


class TestOptimizeEndpoint:
    def _query(self, config):
        from repro.schema import OptimizeQuery

        return OptimizeQuery(
            circuit="t481", libraries=("generalized", "cmos"),
            vdds=(0.9,), frequencies=(0.5e9, 1e9, 5e10),
            config=config)

    def test_frontier_over_http_matches_engine(self, client, server,
                                               tiny_grid_config):
        from repro.serve import Engine

        via_http = client.optimize(self._query(tiny_grid_config))
        direct = Engine(Session(tiny_grid_config)).optimize(
            self._query(tiny_grid_config))
        assert via_http.circuit == direct.circuit == "t481"
        assert via_http.n_candidates == direct.n_candidates == 6
        assert via_http.n_infeasible == direct.n_infeasible
        assert len(via_http.frontier) == len(direct.frontier) > 0
        for ours, theirs in zip(via_http.frontier, direct.frontier):
            assert (ours.library, ours.vdd, ours.frequency) == \
                (theirs.library, theirs.vdd, theirs.frequency)
            assert ours.pt_w == theirs.pt_w
            assert ours.energy_per_cycle == theirs.energy_per_cycle

    def test_every_frontier_point_is_estimate_consistent(
            self, client, tiny_grid_config):
        from dataclasses import replace

        report = client.optimize(self._query(tiny_grid_config))
        for point in report.frontier:
            config = replace(tiny_grid_config, vdd=point.vdd,
                             frequency=point.frequency,
                             backend=point.backend)
            single = client.query(PowerQuery(
                circuit="t481", library=point.library, config=config))
            assert single.result.pt_w == point.pt_w
            assert single.query_key == point.query_key

    def test_second_optimize_is_all_hot(self, client, tiny_grid_config):
        first = client.optimize(self._query(tiny_grid_config))
        assert first.frontier
        again = client.optimize(self._query(tiny_grid_config))
        assert all(p.cache_status == "hot" for p in again.frontier)

    def test_config_less_optimize_uses_server_default(self, server):
        payload = {"schema_version": SCHEMA_VERSION, "circuit": "t481",
                   "libraries": ["cmos"], "vdds": [0.9],
                   "frequencies": [1e9]}
        request = urllib.request.Request(
            f"{server.url}/v1/optimize",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=120) as response:
            data = json.loads(response.read())
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["n_candidates"] == 1

    def test_bad_optimize_queries_are_400(self, server):
        bads = [
            {"schema_version": SCHEMA_VERSION},  # no circuit
            {"schema_version": SCHEMA_VERSION, "circuit": "t481",
             "libraries": [], "vdds": [0.9], "frequencies": [1e9]},
            {"schema_version": SCHEMA_VERSION, "circuit": "t481",
             "libraries": ["cmos"], "vdds": [0.9], "frequencies": [1e9],
             "objectives": ["beauty"]},
            {"schema_version": SCHEMA_VERSION, "circuit": "t481",
             "libraries": ["cmos"], "vdds": [-0.9],
             "frequencies": [1e9]},
            {"schema_version": SCHEMA_VERSION, "circuit": "nope",
             "libraries": ["cmos"], "vdds": [0.9], "frequencies": [1e9]},
        ]
        for payload in bads:
            request = urllib.request.Request(
                f"{server.url}/v1/optimize",
                data=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=60)
            assert excinfo.value.code == 400, payload


class TestDiscoveryEndpoints:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["version"] == __version__
        assert health["schema_version"] == SCHEMA_VERSION
        assert "results" in health["caches"]

    def test_circuits(self, client):
        keys = {c["key"] for c in client.circuits()}
        assert {"t481", "C6288", "des"} <= keys

    def test_libraries(self, client):
        keys = {entry["key"] for entry in client.libraries()}
        assert {"cmos", "cntfet-generalized"} <= keys

    def test_backends(self, client):
        payload = client.backends()
        assert "bitsim" in payload["backends"]


class TestErrorMapping:
    def _post_raw(self, server, body: bytes, path="/v1/estimate"):
        request = urllib.request.Request(
            f"{server.url}{path}", data=body,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_unknown_circuit_is_400(self, server):
        status, payload = self._post_raw(
            server, json.dumps({"circuit": "nope",
                                "library": "cmos"}).encode())
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
        assert "unknown circuit" in payload["error"]["message"]

    def test_malformed_json_is_400(self, server):
        status, payload = self._post_raw(server, b"{not json")
        assert status == 400
        assert "bad JSON" in payload["error"]["message"]

    def test_unknown_field_is_400(self, server):
        status, payload = self._post_raw(
            server, json.dumps({"circuit": "t481", "library": "cmos",
                                "surprise": 1}).encode())
        assert status == 400
        assert "unknown PowerQuery" in payload["error"]["message"]

    def test_newer_schema_is_400(self, server):
        status, payload = self._post_raw(
            server, json.dumps({"schema_version": SCHEMA_VERSION + 1,
                                "circuit": "t481",
                                "library": "cmos"}).encode())
        assert status == 400
        assert "schema version" in payload["error"]["message"]

    def test_bad_content_length_is_400_not_a_dropped_socket(self, server):
        import socket

        host, port = server.server_address[:2]
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(b"POST /v1/estimate HTTP/1.1\r\n"
                         b"Host: test\r\n"
                         b"Content-Length: abc\r\n\r\n")
            response = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                response += chunk
        assert response.startswith(b"HTTP/1.1 400")
        assert b"Content-Length" in response

    def test_unknown_path_is_404(self, server):
        status, payload = self._post_raw(
            server, b"{}", path="/v2/estimate")
        assert status == 404

    def test_oversize_body_is_413_and_closes(self, server):
        """The server rejects the declared length without reading the
        body and drops the connection (keep-alive would otherwise
        parse the unread bytes as the next request)."""
        import socket

        from repro.serve.http import MAX_BODY_BYTES

        host, port = server.server_address[:2]
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(
                b"POST /v1/estimate HTTP/1.1\r\n"
                b"Host: test\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode())
            response = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break  # connection closed by the server, as required
                response += chunk
        assert response.startswith(b"HTTP/1.1 413")
        assert b"payload_too_large" in response

    def test_unknown_get_is_404_and_client_raises(self, client):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError, match="unknown path"):
            client._request("/v1/nope")

    def test_unreachable_server_raises_clearly(self):
        from repro.errors import ExperimentError

        dead = Client("http://127.0.0.1:9", timeout=2)
        with pytest.raises(ExperimentError, match="cannot reach"):
            dead.healthz()
