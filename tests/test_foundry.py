"""The library foundry: artifacts, hydration, counters, CLI, service."""

import dataclasses

import pytest

from repro import foundry, registry
from repro.cache import DiskCache, cache_stats, reset_cache_stats
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.power.pattern_sim import (
    reset_spice_solve_count,
    spice_solve_count,
)

VDDS = (0.8, 0.9)


@pytest.fixture
def store(tmp_path, monkeypatch):
    """A fresh enabled artifact store wired in as the default cache."""
    root = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
    monkeypatch.setenv("REPRO_CACHE_DISABLE", "0")
    registry.clear_library_cache()
    foundry.reset_foundry_counters()
    yield DiskCache(root=root, enabled=True)
    registry.clear_library_cache()
    foundry.reset_foundry_counters()


def _artifact_path(store, name, vdd):
    return (store.root / foundry.FOUNDRY_NAMESPACE /
            f"{foundry.artifact_key(name, vdd)}.json")


def _config(vdd):
    return ExperimentConfig(n_patterns=512, state_patterns=512, vdd=vdd)


class TestArtifact:
    def test_build_save_load_round_trip(self, store):
        artifact = foundry.build_artifact("cmos", 0.9, cache=store)
        foundry.save_artifact(artifact, store)
        loaded = foundry.load_artifact("cmos", 0.9, store)
        assert loaded == artifact
        assert loaded.content_hash == artifact.content_hash
        assert loaded.schema_version == foundry.FOUNDRY_SCHEMA_VERSION

    def test_content_hash_excludes_builder_version(self, store):
        artifact = foundry.build_artifact("cmos", 0.9, cache=store)
        renumbered = dataclasses.replace(artifact,
                                         builder_version="99.0.0")
        assert renumbered.content_hash == artifact.content_hash

    def test_alias_and_key_address_the_same_artifact(self, store):
        assert (foundry.artifact_key("cmos32", 0.9)
                == foundry.artifact_key("cmos", 0.9))

    def test_hydration_runs_zero_spice_solves(self, store):
        artifact = foundry.build_artifact("cntfet-conventional", 0.9,
                                          cache=store)
        foundry.save_artifact(artifact, store)
        before = spice_solve_count()
        library = foundry.load_library("conventional", 0.9, store)
        assert library is not None
        # Exercise everything an estimate needs: timing, pin and
        # output capacitance, leakage tables.
        from repro.sim.estimator import _LeakageTables
        for cell in library:
            library.timing(cell.name)
            library.pin_capacitances(cell.name)
            library.output_capacitance(cell.name)
        assert library in _LeakageTables._cache
        assert spice_solve_count() == before
        counters = foundry.foundry_counters()
        assert counters["artifact.hits"] == 1
        assert counters["artifact.misses"] == 0

    def test_hydrated_values_match_live(self, store):
        artifact = foundry.build_artifact("cmos", 0.8, cache=store)
        foundry.save_artifact(artifact, store)
        hydrated = foundry.load_library("cmos", 0.8, store)
        live = registry.build_library("cmos", 0.8)
        for cell in live:
            assert (hydrated.timing(cell.name)
                    == live.timing(cell.name)), cell.name
            assert (hydrated.pin_capacitances(cell.name)
                    == live.pin_capacitances(cell.name)), cell.name


class TestRoundTripBitIdentity:
    def test_paper_benchmarks_at_two_vdds(self, store):
        """Hydrated Session.run equals live float-for-float, 12x2."""
        from repro.api import Session
        from repro.sim import activity

        benchmarks = registry.paper_benchmarks()
        assert len(benchmarks) == 12
        live = {}
        for vdd in VDDS:
            session = Session(_config(vdd))
            for name in benchmarks:
                live[(name, vdd)] = session.run(name, "cmos")

        report = foundry.characterize(["cmos"], VDDS, cache=store)
        assert report.counts()["failed"] == 0

        registry.clear_library_cache()
        activity.clear_cache()
        foundry.reset_foundry_counters()
        reset_spice_solve_count()
        for vdd in VDDS:
            session = Session(_config(vdd))
            for name in benchmarks:
                hydrated = session.run(name, "cmos")
                assert hydrated == live[(name, vdd)], (name, vdd)
        assert spice_solve_count() == 0
        counters = foundry.foundry_counters()
        assert counters["artifact.hits"] == len(VDDS)
        assert counters["artifact.misses"] == 0


class TestMissPaths:
    def test_missing_artifact_is_counted_miss(self, store):
        assert foundry.load_library("cmos", 0.9, store) is None
        counters = foundry.foundry_counters()
        assert counters["artifact.misses"] == 1
        assert counters["artifact.hits"] == 0

    def test_corrupt_artifact_quarantined_clean_miss(self, store):
        artifact = foundry.build_artifact("cmos", 0.9, cache=store)
        foundry.save_artifact(artifact, store)
        path = _artifact_path(store, "cmos", 0.9)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        reset_cache_stats()
        registry.clear_library_cache()
        library = registry.cached_library("cmos", 0.9)
        assert library is not None            # live fallback
        assert cache_stats()["quarantined"] >= 1
        counters = foundry.foundry_counters()
        assert counters["artifact.misses"] >= 1
        assert counters["artifact.hits"] == 0
        assert not path.exists()              # moved aside, not re-read

    def test_stale_schema_version_rejected(self, store):
        artifact = foundry.build_artifact("cmos", 0.9, cache=store)
        key = foundry.save_artifact(artifact, store)
        stored = store.get(foundry.FOUNDRY_NAMESPACE, key)
        stored["schema_version"] = foundry.FOUNDRY_SCHEMA_VERSION + 1
        store.put(foundry.FOUNDRY_NAMESPACE, key, stored)
        assert foundry.load_library("cmos", 0.9, store) is None
        counters = foundry.foundry_counters()
        assert counters["artifact.stale_schema"] == 1
        assert counters["artifact.misses"] == 1

    def test_content_key_mismatch_rejected(self, store):
        artifact = foundry.build_artifact("cmos", 0.9, cache=store)
        key = foundry.save_artifact(artifact, store)
        stored = store.get(foundry.FOUNDRY_NAMESPACE, key)
        stored["library_key"] = "0" * 32
        store.put(foundry.FOUNDRY_NAMESPACE, key, stored)
        assert foundry.load_library("cmos", 0.9, store) is None
        assert foundry.foundry_counters()["artifact.mismatch"] == 1

    def test_truncated_leakage_tables_rejected(self, store):
        artifact = foundry.build_artifact("cmos", 0.9, cache=store)
        key = foundry.save_artifact(artifact, store)
        stored = store.get(foundry.FOUNDRY_NAMESPACE, key)
        del stored["leakage"]["INV"]
        store.put(foundry.FOUNDRY_NAMESPACE, key, stored)
        assert foundry.load_library("cmos", 0.9, store) is None
        assert foundry.foundry_counters()["artifact.invalid"] == 1


class TestCharacterize:
    def test_disabled_cache_refused(self, store):
        with pytest.raises(ExperimentError, match="disabled"):
            foundry.characterize(["cmos"], (0.9,),
                                 cache=DiskCache(root=store.root,
                                                 enabled=False))

    def test_resumable_and_force(self, store):
        first = foundry.characterize(["cmos", "cmos32"], (0.9,),
                                     cache=store)
        assert first.counts() == {"built": 1, "cached": 0, "failed": 0}
        second = foundry.characterize(["cmos"], (0.9,), cache=store)
        assert second.counts()["cached"] == 1
        forced = foundry.characterize(["cmos"], (0.9,), cache=store,
                                      force=True)
        assert forced.counts()["built"] == 1

    def test_all_registered_libraries_are_build_targets(self, store):
        report = foundry.characterize(vdd_points=(0.9,), cache=store)
        built = {outcome.library for outcome in report.outcomes}
        assert built == set(registry.available_libraries())
        assert "cntfet-np-dynamic" in built
        assert report.counts()["failed"] == 0

    def test_report_renders_greppable_summary(self, store):
        report = foundry.characterize(["cmos"], (0.9,), cache=store)
        text = report.render()
        assert "built=1" in text
        assert "failed=0" in text


class TestVerifyAndExport:
    def test_verify_ok_and_mismatch(self, store):
        artifact = foundry.build_artifact("cmos", 0.9, cache=store)
        key = foundry.save_artifact(artifact, store)
        assert foundry.verify_artifact("cmos", 0.9, store)["status"] == "ok"
        stored = store.get(foundry.FOUNDRY_NAMESPACE, key)
        stored["timing"]["INV"][0] *= 2.0
        store.put(foundry.FOUNDRY_NAMESPACE, key, stored)
        outcome = foundry.verify_artifact("cmos", 0.9, store)
        assert outcome["status"] == "mismatch"
        assert outcome["stored_hash"] != outcome["rebuilt_hash"]

    def test_verify_missing(self, store):
        assert (foundry.verify_artifact("cmos", 0.9, store)["status"]
                == "missing")

    def test_export_standalone_store(self, store, tmp_path):
        foundry.characterize(["cmos", "conventional"], (0.9,),
                             cache=store)
        target = tmp_path / "export"
        assert foundry.export_store(str(target), ["cmos"],
                                    cache=store) == 1
        exported = DiskCache(root=target, enabled=True)
        assert foundry.load_library("cmos", 0.9, exported) is not None
        assert foundry.load_library("conventional", 0.9,
                                    exported) is None
        index = foundry.store_index(exported)
        assert len(index) == 1


class TestListing:
    def test_listing_carries_provenance(self, store):
        foundry.characterize(["cmos"], VDDS, cache=store)
        registry.cached_library("cmos", 0.9)
        rows = {row["key"]: row
                for row in foundry.library_listing(store)}
        row = rows["cmos"]
        assert row["characterized_vdds"] == [0.8, 0.9]
        assert row["prebuilt"] is True
        assert [a["schema_version"] for a in row["artifacts"]] \
            == [foundry.FOUNDRY_SCHEMA_VERSION] * 2
        assert all(a["hash"] for a in row["artifacts"])
        assert 0.9 in row["hot_vdds"]
        assert rows["cntfet-np-dynamic"]["artifacts"] == []

    def test_format_helper_renders_rows(self, store):
        foundry.characterize(["cmos"], (0.9,), cache=store)
        lines = "\n".join(foundry.format_library_listing(
            foundry.library_listing(store), verbose=True))
        assert "cmos (aliases: cmos32)" in lines
        assert "artifacts: 1 (vdd: 0.9V)" in lines
        assert "schema=v1" in lines


class TestRegistryIntegration:
    def test_cached_library_prefers_artifact(self, store):
        foundry.characterize(["cmos"], (0.9,), cache=store)
        registry.clear_library_cache()
        reset_spice_solve_count()
        library = registry.cached_library("cmos", 0.9)
        assert spice_solve_count() == 0
        assert foundry.foundry_counters()["artifact.hits"] == 1
        assert registry.cached_library("cmos", 0.9) is library

    def test_artifact_flag_opts_out(self, store):
        foundry.characterize(["cmos"], (0.9,), cache=store)
        entry = registry.library_entry("cmos")
        registry.register_library(
            "cmos", entry.factory, aliases=entry.aliases,
            description=entry.description, artifact=False,
            replace=True)
        try:
            foundry.reset_foundry_counters()
            registry.cached_library("cmos", 0.9)
            counters = foundry.foundry_counters()
            assert counters["artifact.hits"] == 0
            assert counters["artifact.misses"] == 0
        finally:
            registry.register_library(
                "cmos", entry.factory, aliases=entry.aliases,
                description=entry.description, artifact=True,
                replace=True)

    def test_cached_library_vdds_tracks_hot_slots(self, store):
        registry.cached_library("cmos", 0.8)
        registry.cached_library("cmos")
        assert set(registry.cached_library_vdds("cmos32")) \
            == {0.8, None}
        registry.clear_library_cache("cmos")
        assert registry.cached_library_vdds("cmos") == []


class TestEngineSurface:
    def test_stats_grows_foundry_section(self, store, tiny_config):
        from repro.api import Session
        from repro.serve import Engine

        engine = Engine(Session(tiny_config))
        stats = engine.stats()
        section = stats["foundry"]
        for field in ("artifact_hits", "artifact_misses",
                      "artifact_stale_schema", "artifact_mismatch",
                      "artifact_invalid", "spice_solves"):
            assert section[field] == 0, section

    def test_prebuilt_server_answers_with_zero_solves(self, store):
        from repro.api import Session
        from repro.serve import Engine

        config = _config(0.9)
        foundry.characterize(["cmos"], (0.9,), cache=store)
        live = Engine(Session(config)).estimate_request("t481", "cmos")

        registry.clear_library_cache()
        from repro.sim import activity
        activity.clear_cache()
        engine = Engine(Session(config))
        hydrated = engine.estimate_request("t481", "cmos")
        assert hydrated.result == live.result
        section = engine.stats()["foundry"]
        assert section["spice_solves"] == 0
        assert section["artifact_hits"] >= 1

    def test_libraries_payload_shares_listing(self, store):
        from repro.serve import Engine

        foundry.characterize(["cmos"], (0.9,), cache=store)
        rows = {row["key"]: row for row in Engine.libraries()}
        assert rows["cmos"]["characterized_vdds"] == [0.9]
        assert rows["cmos"]["artifacts"][0]["hash"]


class TestFoundryCli:
    def test_build_list_verify_export(self, store, tmp_path, capsys):
        from repro.cli import main

        root = str(store.root)
        assert main(["foundry", "build", "--libraries", "cmos",
                     "--vdd", "0.9", "--cache-dir", root]) == 0
        out = capsys.readouterr().out
        assert "built=1" in out

        assert main(["foundry", "list", "--cache-dir", root]) == 0
        out = capsys.readouterr().out
        assert "artifacts: 1 (vdd: 0.9V)" in out

        assert main(["foundry", "verify", "--libraries", "cmos",
                     "--vdd", "0.9", "--cache-dir", root]) == 0
        out = capsys.readouterr().out
        assert "0 problem(s)" in out

        # With no axes, verify covers exactly what the store holds.
        assert main(["foundry", "verify", "--cache-dir", root]) == 0
        out = capsys.readouterr().out
        assert "cmos @ 0.9V" in out
        assert "0 problem(s)" in out
        assert "native" not in out

        target = str(tmp_path / "exported")
        assert main(["foundry", "export", target, "--cache-dir",
                     root]) == 0
        out = capsys.readouterr().out
        assert "exported 1 artifact(s)" in out
        exported = DiskCache(root=tmp_path / "exported", enabled=True)
        assert len(foundry.store_index(exported)) == 1

    def test_libraries_cli_shows_provenance(self, store, capsys):
        from repro.cli import main

        foundry.characterize(["cmos"], (0.9,), cache=store)
        assert main(["libraries"]) == 0
        out = capsys.readouterr().out
        assert "artifacts: 1 (vdd: 0.9V)" in out
        assert "cntfet-np-dynamic" in out
        assert "estimator backends:" in out
