"""Netlist construction and queries."""

import pytest

from repro.devices.ambipolar import AmbipolarCNTFET
from repro.devices.parameters import CMOS_32NM, CNTFET_32NM
from repro.errors import NetlistError
from repro.spice.netlist import Circuit, GROUND, canonical_node


class TestConstruction:
    def test_all_element_kinds(self):
        ckt = Circuit("all")
        ckt.add_vsource("v1", "a", GROUND, 1.0)
        ckt.add_isource("i1", "a", "b", 1e-6)
        ckt.add_resistor("r1", "b", "c", 100.0)
        ckt.add_capacitor("c1", "c", GROUND, 1e-15)
        ckt.add_mosfet("m1", "c", "a", GROUND, CMOS_32NM.nmos)
        ckt.add_ambipolar("ma", "c", "a", "b", GROUND,
                          AmbipolarCNTFET(CNTFET_32NM.nmos), 0.9)
        assert len(ckt.elements) == 6
        assert ckt.element("m1").params.polarity == "n"

    def test_node_names_exclude_ground(self):
        ckt = Circuit("n")
        ckt.add_resistor("r1", "a", "gnd", 1.0)
        ckt.add_resistor("r2", "a", "b", 1.0)
        assert set(ckt.node_names()) == {"a", "b"}

    def test_unknown_element_lookup(self):
        with pytest.raises(NetlistError):
            Circuit("x").element("nope")

    def test_time_dependent_source(self):
        ckt = Circuit("t")
        source = ckt.add_vsource("v1", "a", GROUND, lambda t: 2.0 * t)
        assert source.voltage(0.5) == 1.0

    def test_voltage_sources_listing(self):
        ckt = Circuit("vs")
        ckt.add_vsource("v1", "a", GROUND, 1.0)
        ckt.add_vsource("v2", "b", GROUND, 2.0)
        assert [s.name for s in ckt.voltage_sources()] == ["v1", "v2"]

    def test_capacitor_validation(self):
        with pytest.raises(NetlistError):
            Circuit("c").add_capacitor("c1", "a", GROUND, -1e-15)


class TestCanonicalNode:
    @pytest.mark.parametrize("alias", ["0", "gnd", "GND", "vss", "VSS"])
    def test_ground_aliases(self, alias):
        assert canonical_node(alias) == GROUND

    def test_regular_names_untouched(self):
        assert canonical_node("out") == "out"
