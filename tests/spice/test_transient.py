"""Trapezoidal transient integrator."""

import math

import numpy as np
import pytest

from repro.devices.parameters import CMOS_32NM
from repro.errors import SimulationError
from repro.spice import (
    Circuit,
    GROUND,
    crossing_time,
    measure_swing,
    piecewise_linear,
    pulse,
    transient,
)

VDD = CMOS_32NM.vdd


class TestRCNetworks:
    def test_rc_charging_matches_analytic(self):
        r, c = 10e3, 1e-15  # tau = 10 ps
        ckt = Circuit("rc")
        ckt.add_vsource("vs", "in", GROUND, 1.0)
        ckt.add_resistor("r1", "in", "out", r)
        ckt.add_capacitor("c1", "out", GROUND, c)
        result = transient(ckt, stop_time=50e-12, step=0.05e-12,
                           initial={"in": 1.0, "out": 0.0})
        tau = r * c
        for t_check in (5e-12, 10e-12, 30e-12):
            idx = int(round(t_check / 0.05e-12))
            expected = 1.0 - math.exp(-result.times[idx] / tau)
            assert result.voltage("out")[idx] == pytest.approx(
                expected, abs=0.01)

    def test_rc_discharge(self):
        ckt = Circuit("rc2")
        ckt.add_vsource("vs", "in", GROUND, 0.0)
        ckt.add_resistor("r1", "in", "out", 1e3)
        ckt.add_capacitor("c1", "out", GROUND, 1e-15)
        result = transient(ckt, stop_time=20e-12, step=0.02e-12,
                           initial={"out": 1.0})
        assert result.final_voltage("out") < 0.01

    def test_capacitor_blocks_dc(self):
        """With no initial kick the capacitor holds its DC solution."""
        ckt = Circuit("dc-hold")
        ckt.add_vsource("vs", "in", GROUND, 0.5)
        ckt.add_resistor("r1", "in", "out", 1e3)
        ckt.add_capacitor("c1", "out", GROUND, 1e-15)
        result = transient(ckt, stop_time=5e-12, step=0.05e-12)
        assert np.allclose(result.voltage("out"), 0.5, atol=1e-6)


class TestInverterTransient:
    def _inverter(self, source):
        ckt = Circuit("inv")
        ckt.add_vsource("vdd", "vdd", GROUND, VDD)
        ckt.add_vsource("vin", "in", GROUND, source)
        ckt.add_mosfet("mp", "out", "in", "vdd", CMOS_32NM.pmos)
        ckt.add_mosfet("mn", "out", "in", GROUND, CMOS_32NM.nmos)
        ckt.add_capacitor("cl", "out", GROUND, 208e-18)
        return ckt

    def test_propagation_delay_near_analytic_fo3(self):
        """Transient tpHL within ~25% of the analytic 20 ps FO3 figure."""
        ckt = self._inverter(pulse(0.0, VDD, 10e-12, 2e-12, 150e-12))
        result = transient(ckt, stop_time=120e-12, step=0.25e-12)
        t_in = crossing_time(result.times, result.voltage("in"), VDD / 2)
        t_out = crossing_time(result.times, result.voltage("out"), VDD / 2,
                              rising=False)
        assert (t_out - t_in) == pytest.approx(20e-12, rel=0.25)

    def test_full_swing(self):
        ckt = self._inverter(pulse(0.0, VDD, 10e-12, 2e-12, 60e-12))
        result = transient(ckt, stop_time=150e-12, step=0.5e-12)
        assert measure_swing(result.voltage("out")) == pytest.approx(
            VDD, abs=0.02)


class TestSourcesAndMeasures:
    def test_pulse_shape(self):
        wave = pulse(0.0, 1.0, delay=1.0, rise=1.0, width=2.0)
        assert wave(0.5) == 0.0
        assert wave(1.5) == pytest.approx(0.5)
        assert wave(3.0) == 1.0
        assert wave(4.5) == pytest.approx(0.5)
        assert wave(10.0) == 0.0

    def test_pulse_periodic(self):
        wave = pulse(0.0, 1.0, delay=0.0, rise=0.1, width=0.4, period=1.0)
        assert wave(0.2) == 1.0
        assert wave(1.2) == 1.0
        assert wave(2.7) == 0.0

    def test_piecewise_linear(self):
        wave = piecewise_linear([(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)])
        assert wave(0.5) == pytest.approx(0.5)
        assert wave(1.5) == pytest.approx(0.75)
        assert wave(5.0) == pytest.approx(0.5)

    def test_crossing_time_interpolates(self):
        times = np.array([0.0, 1.0, 2.0])
        values = np.array([0.0, 0.0, 1.0])
        assert crossing_time(times, values, 0.25) == pytest.approx(1.25)

    def test_crossing_time_not_found(self):
        with pytest.raises(SimulationError):
            crossing_time(np.array([0.0, 1.0]), np.array([0.0, 0.1]), 0.5)

    def test_invalid_transient_arguments(self):
        ckt = Circuit("x")
        ckt.add_vsource("v", "a", GROUND, 1.0)
        with pytest.raises(SimulationError):
            transient(ckt, stop_time=0.0, step=1e-12)
        with pytest.raises(SimulationError):
            transient(ckt, stop_time=1e-12, step=0.0)
