"""DC operating-point solver: linear exactness, nonlinear robustness."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.devices.parameters import CMOS_32NM
from repro.errors import NetlistError
from repro.spice import Circuit, GROUND, dc_sweep, operating_point

VDD = CMOS_32NM.vdd


def _divider(r1, r2, v=1.0):
    ckt = Circuit("divider")
    ckt.add_vsource("v1", "top", GROUND, v)
    ckt.add_resistor("r1", "top", "mid", r1)
    ckt.add_resistor("r2", "mid", GROUND, r2)
    return ckt


class TestLinearNetworks:
    def test_divider_exact(self):
        sol = operating_point(_divider(1000.0, 3000.0))
        assert sol.voltage("mid") == pytest.approx(0.75, abs=1e-9)

    def test_source_current_sign(self):
        """Branch current flows + to - inside the source: negative when
        the source delivers power."""
        sol = operating_point(_divider(1000.0, 1000.0, v=2.0))
        assert sol.source_current("v1") == pytest.approx(-1e-3, rel=1e-9)

    def test_current_source_into_resistor(self):
        ckt = Circuit("isrc")
        ckt.add_isource("i1", GROUND, "out", 1e-3)
        ckt.add_resistor("r1", "out", GROUND, 2000.0)
        sol = operating_point(ckt)
        assert sol.voltage("out") == pytest.approx(2.0, rel=1e-9)

    def test_two_sources_superpose(self):
        ckt = Circuit("two")
        ckt.add_vsource("va", "a", GROUND, 1.0)
        ckt.add_vsource("vb", "b", GROUND, 2.0)
        ckt.add_resistor("ra", "a", "mid", 1000.0)
        ckt.add_resistor("rb", "b", "mid", 1000.0)
        ckt.add_resistor("rg", "mid", GROUND, 1000.0)
        sol = operating_point(ckt)
        assert sol.voltage("mid") == pytest.approx(1.0, rel=1e-9)

    def test_ground_aliases(self):
        ckt = Circuit("alias")
        ckt.add_vsource("v1", "top", "gnd", 1.0)
        ckt.add_resistor("r1", "top", "0", 100.0)
        sol = operating_point(ckt)
        assert sol.voltage("gnd") == 0.0
        assert sol.source_current("v1") == pytest.approx(-0.01, rel=1e-9)

    @given(st.lists(st.floats(min_value=10.0, max_value=1e6), min_size=2,
                    max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_resistor_ladder_matches_closed_form(self, resistances):
        """Series ladder: node voltages follow the resistive divide."""
        ckt = Circuit("ladder")
        ckt.add_vsource("v1", "n0", GROUND, 1.0)
        for k, r in enumerate(resistances):
            bottom = GROUND if k == len(resistances) - 1 else f"n{k + 1}"
            ckt.add_resistor(f"r{k}", f"n{k}", bottom, r)
        sol = operating_point(ckt)
        total = sum(resistances)
        below = total
        for k, r in enumerate(resistances[:-1]):
            below -= r
            assert sol.voltage(f"n{k + 1}") == pytest.approx(
                below / total, rel=1e-7, abs=1e-9)


class TestTransistorCircuits:
    def _inverter(self, vin):
        ckt = Circuit("inv")
        ckt.add_vsource("vdd", "vdd", GROUND, VDD)
        ckt.add_vsource("vin", "in", GROUND, vin)
        ckt.add_mosfet("mp", "out", "in", "vdd", CMOS_32NM.pmos)
        ckt.add_mosfet("mn", "out", "in", GROUND, CMOS_32NM.nmos)
        return ckt

    def test_inverter_rails(self):
        assert operating_point(self._inverter(0.0)).voltage("out") == \
            pytest.approx(VDD, abs=2e-3)
        assert operating_point(self._inverter(VDD)).voltage("out") == \
            pytest.approx(0.0, abs=2e-3)

    def test_vtc_monotone_decreasing(self):
        ckt = self._inverter(0.0)
        sols = dc_sweep(ckt, "vin", np.linspace(0.0, VDD, 19))
        outs = [s.voltage("out") for s in sols]
        assert all(b <= a + 1e-6 for a, b in zip(outs, outs[1:]))
        # sweep restores the original source value
        assert ckt.element("vin").voltage() == 0.0

    def test_stack_effect(self):
        """Series off-transistors leak far less than a single device."""
        def leak(n_series):
            ckt = Circuit("stack")
            ckt.add_vsource("vdd", "vdd", GROUND, VDD)
            previous = "vdd"
            for k in range(n_series):
                nxt = GROUND if k == n_series - 1 else f"x{k}"
                ckt.add_mosfet(f"m{k}", previous, GROUND, nxt,
                               CMOS_32NM.nmos)
                previous = nxt
            return -operating_point(ckt).source_current("vdd")

        single, double, triple = leak(1), leak(2), leak(3)
        assert single > 2 * double > 0
        assert double > triple > 0

    def test_transmission_gate_passes_rail(self):
        ckt = Circuit("tg")
        ckt.add_vsource("vdd", "vdd", GROUND, VDD)
        ckt.add_mosfet("mn", "vdd", "vdd", "out", CMOS_32NM.nmos)
        ckt.add_mosfet("mp", "vdd", GROUND, "out", CMOS_32NM.pmos)
        ckt.add_resistor("rl", "out", GROUND, 1e9)
        sol = operating_point(ckt)
        assert sol.voltage("out") == pytest.approx(VDD, abs=5e-3)


class TestErrorsAndEdgeCases:
    def test_unknown_node_query(self):
        sol = operating_point(_divider(100.0, 100.0))
        with pytest.raises(NetlistError):
            sol.voltage("nope")
        with pytest.raises(NetlistError):
            sol.source_current("nope")

    def test_duplicate_element_rejected(self):
        ckt = Circuit("dup")
        ckt.add_resistor("r1", "a", GROUND, 100.0)
        with pytest.raises(NetlistError):
            ckt.add_resistor("r1", "a", GROUND, 200.0)

    def test_nonpositive_resistance_rejected(self):
        ckt = Circuit("bad")
        with pytest.raises(NetlistError):
            ckt.add_resistor("r1", "a", GROUND, 0.0)

    def test_sweep_requires_voltage_source(self):
        ckt = _divider(100.0, 100.0)
        with pytest.raises(NetlistError):
            dc_sweep(ckt, "r1", [0.1, 0.2])

    def test_empty_circuit(self):
        sol = operating_point(Circuit("empty"))
        assert sol.node_voltages == {}
