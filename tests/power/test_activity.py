"""Activity factors: the paper's Section 3 examples."""

import pytest

from repro.power.activity import (
    activity_factor,
    output_one_probability,
    switching_probability,
)


class TestPaperExamples:
    def test_nand2_is_25_percent(self, mlib):
        """'For 2-input NOR and NAND gates ... an activity factor of
        25%.'"""
        assert activity_factor(mlib.cell("NAND2")) == pytest.approx(0.25)

    def test_nor2_is_25_percent(self, mlib):
        assert activity_factor(mlib.cell("NOR2")) == pytest.approx(0.25)

    def test_xor2_is_50_percent(self, mlib):
        """'for 2-input XOR gates, the activity factor is 50%.'"""
        assert activity_factor(mlib.cell("XOR2")) == pytest.approx(0.50)

    def test_embedded_xor_does_not_blow_up_activity(self, glib):
        """Section 4: embedding XOR in complex generalized gates does
        not increase the overall activity factor."""
        gnand = activity_factor(glib.cell("GNAND2A"))
        nand = activity_factor(glib.cell("NAND2"))
        assert gnand <= 2 * nand
        mean_generalized = sum(
            activity_factor(c) for c in glib if c.generalized) / 28
        mean_conventional = sum(
            activity_factor(c) for c in glib if not c.generalized) / 18
        assert mean_generalized == pytest.approx(mean_conventional, abs=0.12)


class TestDefinitions:
    def test_activity_is_minority_fraction(self, mlib):
        cell = mlib.cell("NAND3")
        p1 = output_one_probability(cell)
        assert p1 == pytest.approx(7 / 8)
        assert activity_factor(cell) == pytest.approx(1 / 8)

    def test_switching_probability(self, mlib):
        cell = mlib.cell("NAND2")
        assert switching_probability(cell) == pytest.approx(
            2 * 0.75 * 0.25)

    def test_inverter_is_maximal(self, mlib):
        assert activity_factor(mlib.cell("INV")) == pytest.approx(0.5)
        assert switching_probability(mlib.cell("INV")) == pytest.approx(0.5)

    def test_bounds(self, glib):
        for cell in glib:
            a = activity_factor(cell)
            assert 0.0 <= a <= 0.5
            s = switching_probability(cell)
            assert 0.0 <= s <= 0.5
