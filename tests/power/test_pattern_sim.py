"""Circuit-level pattern quantification and its cache."""

import pytest

from repro.devices.model import off_current
from repro.devices.parameters import CMOS_32NM, CNTFET_32NM
from repro.power.pattern_sim import PatternSimulator
from repro.power.patterns import LeakagePattern


def _pattern(key_tree):
    return LeakagePattern(key_tree)


D = ("d",)


class TestSingleDevice:
    def test_matches_model_off_current(self):
        sim = PatternSimulator(CMOS_32NM)
        i = sim.off_current(_pattern(D))
        assert i == pytest.approx(off_current(CMOS_32NM.nmos, 0.9),
                                  rel=1e-6)


class TestStackEffects:
    def test_parallel_adds_linearly(self):
        sim = PatternSimulator(CMOS_32NM)
        single = sim.off_current(_pattern(D))
        triple = sim.off_current(_pattern(("p", D, D, D)))
        assert triple == pytest.approx(3 * single, rel=1e-6)

    def test_series_suppresses(self):
        """The stack effect: 2 series devices leak less than half of
        one device (Fig. 4's '< Ileak')."""
        sim = PatternSimulator(CMOS_32NM)
        single = sim.off_current(_pattern(D))
        double = sim.off_current(_pattern(("s", D, D)))
        triple = sim.off_current(_pattern(("s", D, D, D)))
        assert double < 0.5 * single
        assert triple < double

    def test_fig4_ratio_exceeds_three(self):
        """Fig. 4: [0 0 0] vs [1 1 1] on NOR3 differ by more than 3x."""
        sim = PatternSimulator(CMOS_32NM)
        ratio = (sim.off_current(_pattern(("p", D, D, D)))
                 / sim.off_current(_pattern(("s", D, D, D))))
        assert ratio > 3.0

    def test_mixed_tree(self):
        sim = PatternSimulator(CMOS_32NM)
        mixed = sim.off_current(_pattern(("s", D, ("p", D, D))))
        single = sim.off_current(_pattern(D))
        assert 0 < mixed < single


class TestTechnologies:
    def test_cntfet_order_of_magnitude_lower(self):
        cmos = PatternSimulator(CMOS_32NM)
        cnt = PatternSimulator(CNTFET_32NM)
        for tree in (D, ("s", D, D), ("p", D, D, D)):
            ratio = (cmos.off_current(_pattern(tree))
                     / cnt.off_current(_pattern(tree)))
            assert ratio > 5


class TestCache:
    def test_each_pattern_solved_once(self):
        sim = PatternSimulator(CMOS_32NM)
        for _ in range(5):
            sim.off_current(_pattern(D))
            sim.off_current(_pattern(("s", D, D)))
        assert sim.solves == 2
        assert sim.cache_size == 2
        assert sim.pattern_keys == {"d", "s(d,d)"}

    def test_currents_carry_device_count(self):
        sim = PatternSimulator(CMOS_32NM)
        currents = sim.currents(_pattern(("p", D, ("s", D, D))))
        assert currents.n_devices == 3
