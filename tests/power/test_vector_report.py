"""Per-input-vector leakage reports."""

import pytest

from repro.power.pattern_sim import PatternSimulator
from repro.power.vector_report import (
    cell_leakage_report,
    library_leakage_reports,
)


class TestCellReports:
    def test_inverter_is_vector_independent(self, mlib):
        report = cell_leakage_report(mlib.cell("INV"), mlib)
        assert len(report.rows) == 2
        assert report.rows[0].i_off == pytest.approx(report.rows[1].i_off)
        assert report.spread == pytest.approx(1.0)

    def test_nor3_spread_matches_fig4(self, mlib):
        """The NOR3 worst/best vector ratio is the Fig. 4 contrast."""
        report = cell_leakage_report(mlib.cell("NOR3"), mlib)
        assert report.worst_vector.vector == (False, False, False)
        assert report.best_vector.vector == (True, True, True)
        assert report.spread > 3.0

    def test_mean_matches_characterization(self, mlib):
        """The vector-report average equals the characterizer's Ioff."""
        from repro.power.characterize import characterize_cell
        from repro.power.model import PowerParameters
        cell = mlib.cell("AOI21")
        simulator = PatternSimulator(mlib.tech)
        report = cell_leakage_report(cell, mlib, simulator)
        char = characterize_cell(cell, mlib, simulator, PowerParameters())
        assert report.mean_i_off == pytest.approx(char.mean_i_off,
                                                  rel=1e-12)
        assert report.mean_i_gate == pytest.approx(char.mean_i_gate,
                                                   rel=1e-12)

    def test_render(self, mlib):
        text = cell_leakage_report(mlib.cell("NAND2"), mlib).render()
        assert "NAND2" in text
        assert "[0 0]" in text


class TestLibraryReports:
    def test_all_cells_covered(self, clib):
        reports = library_leakage_reports(clib)
        assert len(reports) == len(clib)
        assert all(len(r.rows) >= 2 for r in reports)

    def test_tg_cells_leak_more_per_stage(self, glib):
        """The off TG contributes two parallel devices, so XNOR2's
        output-stage leakage is twice the inverter's."""
        xnor = cell_leakage_report(glib.cell("XNOR2"), glib)
        inv = cell_leakage_report(glib.cell("INV"), glib)
        # XNOR2 = 2 complement inverters + TG pair: 2*inv + 2*inv-like
        assert xnor.mean_i_off == pytest.approx(4 * inv.mean_i_off,
                                                rel=1e-6)
