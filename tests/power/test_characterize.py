"""Library characterization (Fig. 5 flow) and the Section 4 comparison."""

import pytest

from repro.power.characterize import characterize_cell, characterize_library
from repro.power.compare import compare_libraries
from repro.power.model import PowerParameters
from repro.power.pattern_sim import PatternSimulator


@pytest.fixture(scope="module")
def cnt_report(glib):
    return characterize_library(glib)


@pytest.fixture(scope="module")
def cmos_report(mlib):
    return characterize_library(mlib)


class TestCellCharacterization:
    def test_inverter_static_power_is_ioff_vdd(self, mlib):
        """For the inverter, PS must equal the single-device
        off-current times VDD (Eq. 4) for every vector."""
        params = PowerParameters()
        sim = PatternSimulator(mlib.tech)
        report = characterize_cell(mlib.cell("INV"), mlib, sim, params)
        from repro.devices.model import off_current
        expected = off_current(mlib.tech.nmos, 0.9) * 0.9
        assert report.power.static == pytest.approx(expected, rel=1e-6)

    def test_dynamic_power_formula(self, mlib):
        params = PowerParameters()
        sim = PatternSimulator(mlib.tech)
        report = characterize_cell(mlib.cell("NAND2"), mlib, sim, params)
        expected = (report.activity * report.load_capacitance
                    * params.frequency * params.vdd**2)
        assert report.power.dynamic == pytest.approx(expected)
        assert report.power.short_circuit == pytest.approx(0.15 * expected)

    def test_distinct_patterns_counted(self, mlib):
        params = PowerParameters()
        sim = PatternSimulator(mlib.tech)
        report = characterize_cell(mlib.cell("NOR3"), mlib, sim, params)
        # NOR3 vectors reduce to: p(d,d,d), s+p mixes, s(d,d,d) ...
        assert 2 <= report.distinct_patterns <= 8


class TestLibraryReports:
    def test_all_cells_characterized(self, cnt_report, glib):
        assert set(cnt_report.cells) == set(glib.names)

    def test_pattern_reuse_across_cells(self, cnt_report):
        """The whole 46-cell library needs only a few dozen SPICE
        solves — the point of the classification method."""
        assert cnt_report.pattern_solves == cnt_report.distinct_patterns
        assert cnt_report.distinct_patterns < 46

    def test_gate_leak_fractions_match_paper(self, cnt_report, cmos_report):
        """PG ~ 10% of PS for CMOS, < 1% for CNTFET (Section 4)."""
        assert cmos_report.gate_leak_fraction_of_static() == pytest.approx(
            0.10, abs=0.04)
        assert cnt_report.gate_leak_fraction_of_static() < 0.01

    def test_subset(self, cmos_report):
        sub = cmos_report.subset(["INV", "NAND2"])
        assert set(sub.cells) == {"INV", "NAND2"}


class TestComparison:
    def test_section4_claims(self, cnt_report, cmos_report):
        cmp = compare_libraries(cnt_report, cmos_report)
        assert len(cmp.common_cells) == 20
        # 27% dynamic saving in the paper; we land in the same band.
        assert 0.20 <= cmp.dynamic_saving <= 0.40
        # one order of magnitude static gap
        assert 7 <= cmp.static_ratio <= 14
        # 28% total saving in the paper
        assert 0.22 <= cmp.total_saving <= 0.42
        # equal average activity factors
        assert cmp.candidate_activity == pytest.approx(
            cmp.reference_activity, abs=1e-9)

    def test_summary_lines_render(self, cnt_report, cmos_report):
        lines = compare_libraries(cnt_report, cmos_report).summary_lines()
        assert any("dynamic" in line for line in lines)

    def test_static_two_orders_below_dynamic(self, cnt_report):
        """Section 4: static power is about two orders of magnitude
        below dynamic power for the CNTFET families."""
        mean = cnt_report.mean_power()
        assert mean.static < mean.dynamic / 30
