"""Equations 1-5 and the EDP definition."""

import pytest

from repro.errors import ExperimentError
from repro.power.model import (
    PowerBreakdown,
    PowerParameters,
    SHORT_CIRCUIT_FRACTION,
    dynamic_power,
    energy_delay_product,
    gate_leakage_power,
    short_circuit_power,
    static_power,
)

PARAMS = PowerParameters()  # the paper's 0.9 V / 1 GHz / fanout 3


class TestEquations:
    def test_eq2_dynamic(self):
        """PD = alpha C f VDD^2."""
        assert dynamic_power(0.25, 200e-18, PARAMS) == pytest.approx(
            0.25 * 200e-18 * 1e9 * 0.81)

    def test_eq3_short_circuit_is_15_percent(self):
        assert SHORT_CIRCUIT_FRACTION == 0.15
        assert short_circuit_power(10e-6) == pytest.approx(1.5e-6)

    def test_eq4_static(self):
        assert static_power(3e-9, PARAMS) == pytest.approx(2.7e-9)

    def test_eq5_gate_leak(self):
        assert gate_leakage_power(0.15e-9, PARAMS) == pytest.approx(0.135e-9)

    def test_eq1_total(self):
        b = PowerBreakdown(10.0, 1.5, 0.5, 0.05)
        assert b.total == pytest.approx(12.05)


class TestEdpDefinition:
    def test_matches_paper_c2670_cmos(self):
        """Table 1, C2670/CMOS: 25.42 uW at 320 ps -> 8.13e-24 J*s."""
        edp = energy_delay_product(25.42e-6, 320e-12, PARAMS)
        assert edp / 1e-24 == pytest.approx(8.13, abs=0.01)

    def test_matches_paper_c2670_generalized(self):
        """Table 1, C2670/generalized: 12.70 uW at 52 ps -> 0.66e-24."""
        edp = energy_delay_product(12.70e-6, 52e-12, PARAMS)
        assert edp / 1e-24 == pytest.approx(0.66, abs=0.01)

    def test_matches_paper_c6288_cmos(self):
        """Table 1's largest entry: 143.53 uW at 1268 ps -> 181.96e-24."""
        edp = energy_delay_product(143.53e-6, 1268e-12, PARAMS)
        assert edp / 1e-24 == pytest.approx(181.96, abs=0.5)


class TestBreakdownAlgebra:
    def test_addition(self):
        a = PowerBreakdown(1.0, 0.15, 0.1, 0.01)
        b = PowerBreakdown(2.0, 0.30, 0.2, 0.02)
        total = a + b
        assert total.dynamic == pytest.approx(3.0)
        assert total.gate_leak == pytest.approx(0.03)

    def test_scaling(self):
        a = PowerBreakdown(2.0, 0.3, 0.2, 0.02).scaled(0.5)
        assert a.dynamic == pytest.approx(1.0)
        assert a.static == pytest.approx(0.1)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"vdd": 0.0}, {"frequency": -1.0}, {"fanout": 0},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ExperimentError):
            PowerParameters(**kwargs)

    def test_paper_defaults(self):
        assert PARAMS.vdd == 0.9
        assert PARAMS.frequency == 1e9
        assert PARAMS.fanout == 3
