"""Off-current pattern classification (Section 3.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TopologyError
from repro.gates.cells import nfet, pfet
from repro.gates.topology import conduction, dual, parallel, series
from repro.power.patterns import (
    cell_patterns,
    count_on_devices,
    library_patterns,
    off_pattern,
    stage_patterns,
)

VARS = ["a", "b", "c"]


class TestPaperExamples:
    def test_nor3_input_vector_equivalence(self, mlib):
        """Section 3.2: NOR3 with [1 1 0] and [1 0 1] generates the
        same Ioff pattern."""
        nor3 = mlib.cell("NOR3")
        p110 = stage_patterns(nor3, (True, True, False))
        p101 = stage_patterns(nor3, (True, False, True))
        assert [p.key for p in p110] == [p.key for p in p101]

    def test_nor3_fig4_patterns(self, mlib):
        """Fig. 4: [0 0 0] leaves three parallel off devices, [1 1 1]
        a three-deep series stack."""
        nor3 = mlib.cell("NOR3")
        assert stage_patterns(nor3, (False,) * 3)[0].key == "p(d,d,d)"
        assert stage_patterns(nor3, (True,) * 3)[0].key == "s(d,d,d)"

    def test_off_transmission_gate_is_two_devices(self, glib):
        """Section 3: TG leakage is twice a single transistor — the off
        pair reduces to p(d,d)."""
        xnor = glib.cell("XNOR2")
        patterns = stage_patterns(xnor, (True, False))
        output_pattern = patterns[-1]
        assert output_pattern.key == "p(d,d)"
        assert output_pattern.n_devices == 2

    def test_library_pattern_count_small(self, glib):
        """The classification collapses 46 cells x all vectors into a
        few dozen patterns (the paper found 26; our reconstruction of
        the library yields a nearby count)."""
        keys = library_patterns(glib)
        assert 10 <= len(keys) <= 40

    def test_inverter_single_device(self, mlib):
        inv = mlib.cell("INV")
        assert stage_patterns(inv, (False,))[0].key == "d"
        assert stage_patterns(inv, (True,))[0].key == "d"


class TestReduction:
    def test_on_devices_shorted(self):
        # series(a on, b off): pattern is just the off device
        net = series(nfet("a"), nfet("b"))
        pattern = off_pattern(net, {"a": True, "b": False})
        assert pattern.key == "d"

    def test_parallel_on_branch_removes_offs(self):
        # In PU of NAND2 with a=1, b=0: p-fets, one on -> whole net
        # conducts, so it has no off pattern; check the PD instead.
        net = series(nfet("a"), nfet("b"))  # PD of NAND2
        pattern = off_pattern(net, {"a": True, "b": False})
        assert pattern.n_devices == 1

    def test_shorted_off_branch_dropped(self):
        # parallel(off, series(on, on)) conducts -> raises
        net = parallel(nfet("a"), series(nfet("b"), nfet("c")))
        with pytest.raises(TopologyError):
            off_pattern(net, {"a": False, "b": True, "c": True})

    def test_nested_reduction(self):
        # series(off, parallel(off, on)) -> the parallel node conducts
        # and is dropped, leaving a single off device.
        net = series(nfet("a"), parallel(nfet("b"), pfet("c")))
        pattern = off_pattern(net, {"a": False, "b": False, "c": False})
        assert pattern.key == "d"

    def test_canonical_ordering(self):
        n1 = parallel(nfet("a"), series(nfet("b"), nfet("c")))
        n2 = parallel(series(nfet("c"), nfet("b")), nfet("a"))
        values = {"a": False, "b": False, "c": False}
        assert off_pattern(n1, values).key == off_pattern(n2, values).key


@st.composite
def off_networks(draw, depth=2):
    """Random networks together with an assignment they are off under."""
    if depth == 0 or draw(st.booleans()):
        name = draw(st.sampled_from(VARS))
        return nfet(name) if draw(st.booleans()) else pfet(name)
    children = draw(st.lists(off_networks(depth=depth - 1),
                             min_size=2, max_size=3))
    return (series if draw(st.booleans()) else parallel)(*children)


class TestProperties:
    @given(net=off_networks(), values=st.fixed_dictionaries(
        {v: st.booleans() for v in VARS}))
    @settings(max_examples=200, deadline=None)
    def test_exactly_one_network_has_a_pattern(self, net, values):
        """For any network and vector, exactly one of {net, dual(net)}
        is off, and its pattern is non-empty."""
        off_net = dual(net) if conduction(net, values) else net
        pattern = off_pattern(off_net, values)
        assert pattern.n_devices >= 1
        with pytest.raises(TopologyError):
            off_pattern(dual(off_net), values)

    @given(net=off_networks(), values=st.fixed_dictionaries(
        {v: st.booleans() for v in VARS}))
    @settings(max_examples=150, deadline=None)
    def test_pattern_devices_bounded_by_off_devices(self, net, values):
        off_net = dual(net) if conduction(net, values) else net
        pattern = off_pattern(off_net, values)
        from repro.gates.topology import device_count
        assert pattern.n_devices <= device_count(off_net)


class TestCellPatterns:
    def test_covers_all_vectors(self, mlib):
        nand2 = mlib.cell("NAND2")
        mapping = cell_patterns(nand2)
        assert len(mapping) == 4
        for patterns in mapping.values():
            assert len(patterns) == 1  # single stage

    def test_multi_stage_cells_have_pattern_per_stage(self, mlib):
        and2 = mlib.cell("AND2")
        patterns = stage_patterns(and2, (True, True))
        assert len(patterns) == 2  # NAND stage + inverter stage

    def test_complement_inverters_contribute(self, glib):
        """TG cells include their complement inverters in the leakage."""
        xor2 = glib.cell("XOR2")
        patterns = stage_patterns(xor2, (False, False))
        assert len(patterns) == 3  # a#bar, b#bar, output stage


class TestStageVectorGroups:
    """The batched per-cell evaluation behind the vectorized leakage
    tables: groups partition the vectors and agree with the per-vector
    machinery on every cell of every library."""

    def test_groups_partition_all_vectors(self, glib):
        import numpy as np

        from repro.power.patterns import stage_vector_groups

        for cell in glib:
            n_vectors = 1 << cell.n_inputs
            for stage, groups in stage_vector_groups(cell):
                seen = np.concatenate([vectors for _, vectors in groups])
                assert sorted(seen.tolist()) == list(range(n_vectors))

    def test_matches_per_vector_stage_patterns(self, glib, mlib):
        from repro.power.patterns import (
            stage_off_pattern,
            stage_on_devices,
            stage_vector_groups,
        )

        for library in (glib, mlib):
            for cell in library:
                per_vector = {}
                on_counts = {}
                for stage, groups in stage_vector_groups(cell):
                    for assignment, vectors in groups:
                        pattern = stage_off_pattern(stage, assignment)
                        on = stage_on_devices(stage, assignment)
                        for vector in vectors.tolist():
                            per_vector.setdefault(vector, []).append(
                                pattern.key)
                            on_counts[vector] = on_counts.get(vector,
                                                              0) + on
                for vector in range(1 << cell.n_inputs):
                    values = tuple(bool((vector >> i) & 1)
                                   for i in range(cell.n_inputs))
                    reference = [p.key
                                 for p in stage_patterns(cell, values)]
                    assert per_vector[vector] == reference, cell.name
                    assert on_counts[vector] == count_on_devices(
                        cell, values), cell.name


class TestLeakageTablesBitIdentity:
    def test_vectorized_build_matches_reference_loop(self, mlib):
        """The batched `_LeakageTables` cold build reproduces the
        historical 2^k x stage_patterns loop bit for bit."""
        import numpy as np

        from repro.power.pattern_sim import PatternSimulator
        from repro.sim.estimator import _LeakageTables

        tables = _LeakageTables(mlib)
        simulator = PatternSimulator(mlib.tech)
        ig_unit = mlib.tech.nmos.ig_on
        for cell in mlib:
            k = cell.n_inputs
            off = np.zeros(1 << k)
            gate = np.zeros(1 << k)
            for vector in range(1 << k):
                values = tuple(bool((vector >> i) & 1) for i in range(k))
                off[vector] = sum(simulator.off_current(p)
                                  for p in stage_patterns(cell, values))
                gate[vector] = count_on_devices(cell, values) * ig_unit
            assert np.array_equal(tables.i_off[cell.name], off), cell.name
            assert np.array_equal(tables.i_gate[cell.name],
                                  gate), cell.name
