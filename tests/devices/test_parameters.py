"""Parameter dataclass validation and technology construction."""

import pytest

from repro.devices.parameters import (
    CMOS_32NM,
    CNTFET_32NM,
    DeviceParams,
    TechnologyParams,
    cmos_32nm,
    cntfet_32nm,
)
from repro.errors import DeviceModelError
from repro.units import AF


def _params(**overrides):
    base = dict(
        name="t-n", polarity="n", vth=0.3, n_factor=1.5, i_spec=1e-7,
        lambda_ch=0.1, dibl=0.05, c_gate=20 * AF, c_pol=0.0,
        c_sd=20 * AF, ig_on=1e-10, vdd_ref=0.9,
    )
    base.update(overrides)
    return DeviceParams(**base)


class TestDeviceParams:
    def test_valid_construction(self):
        assert _params().polarity == "n"

    @pytest.mark.parametrize("field,value", [
        ("polarity", "x"),
        ("vth", -0.1),
        ("vth", 0.0),
        ("n_factor", 0.9),
        ("i_spec", 0.0),
        ("c_gate", -1e-18),
        ("ig_on", -1e-12),
    ])
    def test_invalid_fields_rejected(self, field, value):
        with pytest.raises(DeviceModelError):
            _params(**{field: value})

    def test_as_polarity_flips_only_polarity(self):
        n = _params()
        p = n.as_polarity("p")
        assert p.polarity == "p"
        assert p.vth == n.vth
        assert p.i_spec == n.i_spec
        assert p.name == "t-p"

    def test_as_polarity_identity(self):
        n = _params()
        assert n.as_polarity("n") is n


class TestTechnologyParams:
    def test_device_lookup(self):
        tech = cmos_32nm()
        assert tech.device("n").polarity == "n"
        assert tech.device("p").polarity == "p"
        with pytest.raises(DeviceModelError):
            tech.device("x")

    def test_mismatched_polarities_rejected(self):
        n = _params()
        with pytest.raises(DeviceModelError):
            TechnologyParams(name="bad", vdd=0.9, nmos=n, pmos=n,
                             ambipolar=False, area_per_device=1.0)

    def test_zero_vdd_rejected(self):
        n = _params()
        with pytest.raises(DeviceModelError):
            TechnologyParams(name="bad", vdd=0.0, nmos=n,
                             pmos=n.as_polarity("p"),
                             ambipolar=False, area_per_device=1.0)

    def test_with_vdd(self):
        low = cmos_32nm().with_vdd(0.7)
        assert low.vdd == 0.7
        assert low.nmos == cmos_32nm().nmos

    def test_singletons_match_factories(self):
        assert CMOS_32NM == cmos_32nm()
        assert CNTFET_32NM == cntfet_32nm()

    def test_paper_capacitance_assumption(self):
        """Unit gate, drain and source capacitances are identical
        (Section 4)."""
        for tech in (CMOS_32NM, CNTFET_32NM):
            assert tech.nmos.c_gate == tech.nmos.c_sd

    def test_ambipolar_flags(self):
        assert CNTFET_32NM.ambipolar
        assert not CMOS_32NM.ambipolar
        assert CNTFET_32NM.nmos.c_pol > 0
        assert CMOS_32NM.nmos.c_pol == 0.0
