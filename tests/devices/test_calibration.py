"""Calibration lock-in: the parameter sets hit the paper's anchors.

These tests pin the quantities the paper quotes in Section 4; if a
parameter edit moves any of them, the reproduction claims in
EXPERIMENTS.md stop being valid, so the bands here are deliberately
tight.
"""

import pytest

from repro.devices.calibrate import (
    effective_resistance,
    fanout_load_capacitance,
    fo_delay,
    inverter_input_capacitance,
    technology_report,
)
from repro.devices.model import off_current, on_current
from repro.devices.parameters import CMOS_32NM, CNTFET_32NM
from repro.units import AF, NA, PS


class TestCapacitanceAnchors:
    def test_cmos_inverter_cin_is_52_af(self):
        assert inverter_input_capacitance(CMOS_32NM) == pytest.approx(
            52 * AF, rel=1e-9)

    def test_cntfet_inverter_cin_is_36_af(self):
        assert inverter_input_capacitance(CNTFET_32NM) == pytest.approx(
            36 * AF, rel=1e-9)

    def test_input_capacitance_gap_31_percent(self):
        """Paper: '36 aF ... 52 aF for CMOS inverters (31% difference)'."""
        gap = 1 - (inverter_input_capacitance(CNTFET_32NM)
                   / inverter_input_capacitance(CMOS_32NM))
        assert gap == pytest.approx(0.31, abs=0.01)

    def test_fanout3_load_includes_drain_caps(self):
        load = fanout_load_capacitance(CMOS_32NM, fanout=3)
        assert load == pytest.approx((3 * 52 + 2 * 26) * AF, rel=1e-9)


class TestLeakageAnchors:
    def test_cmos_off_current_about_3na(self):
        assert off_current(CMOS_32NM.nmos, 0.9) == pytest.approx(
            3.0 * NA, rel=0.05)

    def test_cntfet_off_current_about_0p3na(self):
        assert off_current(CNTFET_32NM.nmos, 0.9) == pytest.approx(
            0.3 * NA, rel=0.05)

    def test_one_order_of_magnitude_gap(self):
        ratio = (off_current(CMOS_32NM.nmos, 0.9)
                 / off_current(CNTFET_32NM.nmos, 0.9))
        assert 8 <= ratio <= 13

    def test_gate_leakage_two_orders_apart(self):
        """High-k CNT stack: Ig two orders below the CMOS oxide."""
        assert CMOS_32NM.nmos.ig_on / CNTFET_32NM.nmos.ig_on == pytest.approx(
            100, rel=0.1)


class TestDelayAnchors:
    def test_fo3_ratio_is_five(self):
        """Deng et al. [10]: intrinsic CNTFET delay 5x below MOSFET."""
        ratio = fo_delay(CMOS_32NM) / fo_delay(CNTFET_32NM)
        assert ratio == pytest.approx(5.0, rel=0.03)

    def test_cmos_fo3_near_20ps(self):
        assert fo_delay(CMOS_32NM) == pytest.approx(20 * PS, rel=0.05)

    def test_cntfet_stronger_drive(self):
        assert (effective_resistance(CNTFET_32NM)
                < effective_resistance(CMOS_32NM) / 2)

    def test_on_currents_in_realistic_band(self):
        assert 1e-6 < on_current(CMOS_32NM.nmos, 0.9) < 50e-6
        assert 1e-6 < on_current(CNTFET_32NM.nmos, 0.9) < 50e-6


class TestReport:
    def test_report_fields_consistent(self):
        report = technology_report(CMOS_32NM)
        assert report.name == "cmos-32nm"
        assert report.cin_inverter_af == pytest.approx(52.0)
        assert report.ion_ioff_ratio > 100
        assert "cmos-32nm" in str(report)
