"""Unit and property tests for the EKV-style compact model."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.devices.model import (
    drain_current,
    gate_leakage_current,
    off_current,
    on_current,
    output_conductance,
    transconductance,
)
from repro.devices.parameters import CMOS_32NM, CNTFET_32NM

NMOS = CMOS_32NM.nmos
PMOS = CMOS_32NM.pmos
VDD = CMOS_32NM.vdd

voltages = st.floats(min_value=-1.2, max_value=1.2,
                     allow_nan=False, allow_infinity=False)


class TestBasicBehaviour:
    def test_zero_bias_zero_current(self):
        assert drain_current(NMOS, 0.5, 0.0) == pytest.approx(0.0, abs=1e-18)

    def test_on_current_positive(self):
        assert drain_current(NMOS, VDD, VDD) > 1e-6

    def test_off_current_small_but_nonzero(self):
        ioff = drain_current(NMOS, 0.0, VDD)
        assert 1e-10 < ioff < 1e-7

    def test_subthreshold_slope_matches_n_factor(self):
        """Deep in subthreshold, current drops ~10x per n*Vt*ln(10) of
        gate underdrive (measured below the EKV transition region)."""
        vt = 0.025852
        decade = NMOS.n_factor * vt * math.log(10.0)
        i1 = drain_current(NMOS, -2 * decade, VDD)
        i2 = drain_current(NMOS, -3 * decade, VDD)
        assert i1 / i2 == pytest.approx(10.0, rel=0.05)

    def test_saturation_weakly_increasing_with_vds(self):
        i1 = drain_current(NMOS, VDD, 0.6)
        i2 = drain_current(NMOS, VDD, 0.9)
        assert i2 > i1
        # but well short of doubling: saturation
        assert i2 / i1 < 1.3

    def test_pmos_mirrors_nmos(self):
        i_n = drain_current(NMOS, 0.9, 0.9)
        i_p = drain_current(PMOS, -0.9, -0.9)
        assert i_p == pytest.approx(-i_n, rel=1e-12)

    def test_reverse_vds_antisymmetry(self):
        """Swapping drain and source flips the sign: I(vgs, -v) relates
        to the mirrored device orientation."""
        forward = drain_current(NMOS, 0.45, 0.3)
        backward = drain_current(NMOS, 0.45 - 0.3, -0.3)
        assert backward == pytest.approx(-forward, rel=1e-9)


class TestDerivatives:
    def test_transconductance_positive_in_conduction(self):
        assert transconductance(NMOS, 0.6, 0.9) > 0

    def test_output_conductance_positive(self):
        assert output_conductance(NMOS, 0.6, 0.5) > 0

    @given(vgs=voltages, vds=voltages)
    @settings(max_examples=60, deadline=None)
    def test_gm_matches_finite_difference(self, vgs, vds):
        h = 1e-4
        numeric = (drain_current(NMOS, vgs + h, vds)
                   - drain_current(NMOS, vgs - h, vds)) / (2 * h)
        assert transconductance(NMOS, vgs, vds) == pytest.approx(
            numeric, rel=1e-3, abs=1e-12)

    @given(vgs=voltages, vds=voltages)
    @settings(max_examples=60, deadline=None)
    def test_current_is_continuous(self, vgs, vds):
        """No jumps around the operating point (model is smooth)."""
        h = 1e-7
        i0 = drain_current(NMOS, vgs, vds)
        i1 = drain_current(NMOS, vgs + h, vds + h)
        assert abs(i1 - i0) < 1e-3 * (abs(i0) + 1e-9) + 1e-9


class TestMonotonicity:
    @given(vds=st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_current_monotone_in_vgs(self, vds):
        currents = [drain_current(NMOS, v / 10.0, vds) for v in range(0, 11)]
        assert all(b >= a for a, b in zip(currents, currents[1:]))

    @given(vgs=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_current_monotone_in_vds(self, vgs):
        currents = [drain_current(NMOS, vgs, v / 10.0) for v in range(0, 11)]
        assert all(b >= a - 1e-15 for a, b in zip(currents, currents[1:]))


class TestConvenienceCurrents:
    def test_off_current_equals_explicit_bias(self):
        assert off_current(NMOS, VDD) == pytest.approx(
            abs(drain_current(NMOS, 0.0, VDD)))

    def test_off_current_pmos_equals_nmos(self):
        """The paper's Section 3.2 symmetry assumption holds exactly."""
        assert off_current(PMOS, VDD) == pytest.approx(
            off_current(NMOS, VDD), rel=1e-12)

    def test_on_current_much_larger_than_off(self):
        assert on_current(NMOS, VDD) / off_current(NMOS, VDD) > 100

    def test_cntfet_lower_leakage_than_cmos(self):
        assert (off_current(CNTFET_32NM.nmos, 0.9)
                < off_current(CMOS_32NM.nmos, 0.9) / 5)


class TestGateLeakage:
    def test_full_bias_equals_ig_on(self):
        assert gate_leakage_current(NMOS, NMOS.vdd_ref) == pytest.approx(
            NMOS.ig_on)

    def test_sign_follows_vox(self):
        assert gate_leakage_current(NMOS, -0.9) < 0

    def test_steep_reduction_at_low_bias(self):
        assert gate_leakage_current(NMOS, 0.45) < 0.2 * NMOS.ig_on

    def test_zero_at_zero(self):
        assert gate_leakage_current(NMOS, 0.0) == 0.0
