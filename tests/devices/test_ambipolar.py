"""The ambipolar device abstraction of Fig. 1."""

import pytest

from repro.devices.ambipolar import (
    AmbipolarCNTFET,
    Polarity,
    polarity_from_gate_level,
)
from repro.devices.model import drain_current
from repro.devices.parameters import CNTFET_32NM
from repro.errors import DeviceModelError

VDD = CNTFET_32NM.vdd
DEVICE = AmbipolarCNTFET(CNTFET_32NM.nmos)


class TestPolarityConfiguration:
    def test_fig1_convention(self):
        """Polarity gate at 0 -> n-type; at 1 -> p-type (Fig. 1b/c)."""
        assert polarity_from_gate_level(0) is Polarity.N
        assert polarity_from_gate_level(1) is Polarity.P

    def test_invalid_level_rejected(self):
        with pytest.raises(DeviceModelError):
            polarity_from_gate_level(2)

    def test_configured_parameters(self):
        assert DEVICE.configured(Polarity.N).polarity == "n"
        assert DEVICE.configured(Polarity.P).polarity == "p"

    def test_must_build_from_n_base(self):
        with pytest.raises(DeviceModelError):
            AmbipolarCNTFET(CNTFET_32NM.pmos)


class TestBehaviouralModel:
    def test_n_corner_matches_unipolar(self):
        """With the polarity gate at 0 V the pair behaves as the n FET."""
        i_pair = DEVICE.drain_current(VDD, 0.0, VDD, 0.0, VDD)
        i_n = drain_current(CNTFET_32NM.nmos, VDD, VDD)
        assert i_pair == pytest.approx(i_n, rel=1e-12)

    def test_p_corner_matches_unipolar(self):
        """With the polarity gate at VDD the pair behaves as the p FET."""
        i_pair = DEVICE.drain_current(0.0, VDD, 0.0, VDD, VDD)
        i_p = drain_current(CNTFET_32NM.pmos, 0.0 - VDD, 0.0 - VDD)
        assert i_pair == pytest.approx(i_p, rel=1e-12)

    def test_n_configured_off_state(self):
        """n-configured device with gate low conducts only leakage."""
        i = DEVICE.drain_current(0.0, 0.0, VDD, 0.0, VDD)
        assert abs(i) < 1e-9

    def test_blend_is_bounded_by_corners(self):
        i_n = DEVICE.drain_current(VDD, 0.0, VDD, 0.0, VDD)
        i_mid = DEVICE.drain_current(VDD, VDD / 2, VDD, 0.0, VDD)
        assert abs(i_mid) <= abs(i_n) + 1e-15

    def test_invalid_vdd_rejected(self):
        with pytest.raises(DeviceModelError):
            DEVICE.drain_current(0.0, 0.0, 0.9, 0.0, 0.0)
