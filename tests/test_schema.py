"""The versioned power-query wire schema: strict (de)serialization,
key compatibility with sweep tasks, and the shared store-record shape."""

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig, PAPER_CONFIG
from repro.experiments.flow import CircuitFlowResult
from repro.schema import (
    PowerQuery,
    PowerQuoteReport,
    SCHEMA_VERSION,
    TASK_SCHEMA_VERSION,
    flow_from_record,
    quote_from_record,
    store_record,
)
from repro.sweep.spec import SweepTask


def _flow(**overrides):
    base = dict(circuit="t481", library="cmos", gate_count=50,
                delay_s=5.445543603246099e-10,
                pd_w=3.0540394285714302e-06,
                ps_w=2.392227760796267e-07,
                pg_w=1.903500000000001e-08,
                pt_w=3.7704031189367715e-06,
                edp_js=2.053189458598528e-24)
    base.update(overrides)
    return CircuitFlowResult(**base)


class TestPowerQuery:
    def test_round_trip(self):
        query = PowerQuery("t481", "cmos",
                           ExperimentConfig(n_patterns=4096,
                                            state_patterns=4096))
        again = PowerQuery.from_dict(query.to_dict())
        assert again == query
        assert again.query_key == query.query_key

    def test_query_key_equals_sweep_task_key(self):
        """The service cache and the sweep store share keys by design."""
        config = ExperimentConfig(vdd=0.8, n_patterns=2048,
                                  state_patterns=2048)
        query = PowerQuery("C1355", "cntfet-generalized", config)
        task = SweepTask("C1355", "cntfet-generalized", config)
        assert query.query_key == task.task_key
        assert isinstance(task, PowerQuery)

    def test_key_depends_on_every_determinant(self):
        base = PowerQuery("t481", "cmos", PAPER_CONFIG)
        assert PowerQuery("i8", "cmos", PAPER_CONFIG).query_key \
            != base.query_key
        assert PowerQuery("t481", "cntfet-generalized",
                          PAPER_CONFIG).query_key != base.query_key
        changed = ExperimentConfig(frequency=2.0e9)
        assert PowerQuery("t481", "cmos", changed).query_key \
            != base.query_key

    def test_unknown_fields_rejected(self):
        with pytest.raises(ExperimentError, match="unknown PowerQuery"):
            PowerQuery.from_dict({"circuit": "t481", "library": "cmos",
                                  "circiut": "typo"})

    def test_newer_schema_rejected(self):
        with pytest.raises(ExperimentError, match="schema version"):
            PowerQuery.from_dict({"schema_version": SCHEMA_VERSION + 1,
                                  "circuit": "t481", "library": "cmos"})

    def test_missing_config_takes_default(self):
        default = ExperimentConfig(n_patterns=512, state_patterns=512)
        query = PowerQuery.from_dict(
            {"circuit": "t481", "library": "cmos"},
            default_config=default)
        assert query.config == default
        bare = PowerQuery.from_dict({"circuit": "t481", "library": "cmos"})
        assert bare.config == PAPER_CONFIG

    def test_bad_subject_fields_rejected(self):
        with pytest.raises(ExperimentError, match="non-empty string"):
            PowerQuery.from_dict({"circuit": "", "library": "cmos"})
        with pytest.raises(ExperimentError, match="non-empty string"):
            PowerQuery.from_dict({"circuit": "t481", "library": 3})
        with pytest.raises(ExperimentError, match="JSON object"):
            PowerQuery.from_dict(["t481", "cmos"])


class TestPowerQuoteReport:
    def test_round_trip_is_bit_exact(self):
        query = PowerQuery("t481", "cmos", PAPER_CONFIG)
        report = PowerQuoteReport.from_flow(
            query, _flow(), server_version="1.2.3", cache_status="cold",
            elapsed_s=0.25)
        # Through actual JSON text, as the HTTP layer would.
        again = PowerQuoteReport.from_dict(
            json.loads(json.dumps(report.to_dict())))
        assert again == report
        assert again.result == _flow()

    def test_provenance_fields(self):
        config = ExperimentConfig(n_patterns=4096, state_patterns=4096)
        query = PowerQuery("t481", "cmos", config)
        report = PowerQuoteReport.from_flow(query, _flow(),
                                            server_version="x")
        assert report.schema_version == SCHEMA_VERSION
        assert report.backend == "bitsim"
        assert report.query_key == query.query_key
        assert report.config_hash
        assert report.config == config

    def test_with_status_validates(self):
        report = PowerQuoteReport.from_flow(
            PowerQuery("t481", "cmos"), _flow())
        hot = report.with_status("hot", 0.001)
        assert hot.cache_status == "hot"
        assert hot.result == report.result
        with pytest.raises(ExperimentError, match="cache_status"):
            report.with_status("lukewarm", 0.0)

    def test_unknown_fields_rejected(self):
        data = PowerQuoteReport.from_flow(
            PowerQuery("t481", "cmos"), _flow()).to_dict()
        data["surprise"] = 1
        with pytest.raises(ExperimentError,
                           match="unknown PowerQuoteReport"):
            PowerQuoteReport.from_dict(data)

    def test_missing_required_field_rejected(self):
        data = PowerQuoteReport.from_flow(
            PowerQuery("t481", "cmos"), _flow()).to_dict()
        del data["result"]
        with pytest.raises(ExperimentError, match="missing"):
            PowerQuoteReport.from_dict(data)

    def test_unknown_result_field_rejected_not_typeerror(self):
        """A newer peer's extra result field must fail the strict
        contract, not escape as a TypeError from the constructor."""
        data = PowerQuoteReport.from_flow(
            PowerQuery("t481", "cmos"), _flow()).to_dict()
        data["result"]["p_novel_w"] = 1.0
        with pytest.raises(ExperimentError, match="result fields"):
            PowerQuoteReport.from_dict(data)
        del data["result"]["p_novel_w"]
        del data["result"]["pt_w"]
        with pytest.raises(ExperimentError, match="missing fields"):
            PowerQuoteReport.from_dict(data)

    def test_malformed_record_result_rejected(self):
        with pytest.raises(ExperimentError, match="JSON object"):
            flow_from_record({"result": "oops"})


class TestSchemaV2TimingFields:
    """v2's optional delay/fmax/energy/PDP derivatives on the quote."""

    def _report(self, frequency=1.0e9, **flow_overrides):
        from dataclasses import replace

        query = PowerQuery("t481", "cmos",
                           replace(PAPER_CONFIG, frequency=frequency))
        return PowerQuoteReport.from_flow(query, _flow(**flow_overrides))

    def test_from_flow_derives_timing_fields(self):
        flow = _flow()
        report = self._report(frequency=2.0e9)
        assert report.delay_ns == flow.delay_s / 1e-9
        assert report.fmax_hz == 1.0 / flow.delay_s
        assert report.energy_per_cycle == flow.pt_w / 2.0e9
        assert report.pdp == flow.pt_w * flow.delay_s

    def test_zero_delay_has_no_finite_fmax(self):
        report = self._report(delay_s=0.0, edp_js=0.0)
        assert report.fmax_hz is None
        assert report.delay_ns == 0.0

    def test_round_trip_preserves_timing_fields(self):
        report = self._report()
        again = PowerQuoteReport.from_dict(
            json.loads(json.dumps(report.to_dict())))
        assert again.delay_ns == report.delay_ns
        assert again.fmax_hz == report.fmax_hz
        assert again.energy_per_cycle == report.energy_per_cycle
        assert again.pdp == report.pdp

    def test_v1_payload_still_parses(self):
        """Records written before v2 lack the fields entirely."""
        payload = self._report().to_dict()
        for field in ("delay_ns", "fmax_hz", "energy_per_cycle", "pdp"):
            assert field in payload
            del payload[field]
        payload["schema_version"] = 1
        old = PowerQuoteReport.from_dict(payload)
        assert old.delay_ns is None
        assert old.fmax_hz is None
        assert old.energy_per_cycle is None
        assert old.pdp is None
        assert old.result == _flow()

    def test_absent_optional_fields_not_serialized_as_null(self):
        """A v1-shaped report round-trips without emitting nulls."""
        payload = self._report().to_dict()
        for field in ("delay_ns", "fmax_hz", "energy_per_cycle", "pdp"):
            del payload[field]
        payload["schema_version"] = 1
        old = PowerQuoteReport.from_dict(payload)
        emitted = old.to_dict()
        for field in ("delay_ns", "energy_per_cycle", "pdp"):
            assert field not in emitted


class TestStoreRecordShape:
    def test_matches_sweep_store_layout(self):
        """store_record writes exactly what the sweep stores hold."""
        from repro.sweep.store import record_for

        config = ExperimentConfig(n_patterns=2048, state_patterns=2048)
        task = SweepTask("t481", "cmos", config)
        flow = _flow()
        via_schema = store_record(task, flow, 1.5)
        via_store = record_for(task, flow, 1.5)
        assert via_schema == via_store
        assert set(via_schema) == {"task_key", "circuit", "library",
                                   "config", "result", "elapsed_s"}
        assert via_schema["task_key"] == task.task_key
        assert flow_from_record(via_schema) == flow

    def test_quote_from_record(self):
        config = ExperimentConfig(n_patterns=2048, state_patterns=2048)
        record = store_record(PowerQuery("t481", "cmos", config),
                              _flow(), 0.7)
        quote = quote_from_record(record, server_version="v")
        assert quote.cache_status == "hot"
        assert quote.circuit == "t481"
        assert quote.query_key == record["task_key"]
        assert quote.result == _flow()

    def test_task_schema_version_reexported(self):
        from repro.sweep import spec

        assert spec.TASK_SCHEMA_VERSION == TASK_SCHEMA_VERSION


class TestBatchEnvelopes:
    def _queries(self):
        return [PowerQuery(circuit="t481", library="cmos"),
                PowerQuery(circuit="C1908", library="generalized",
                           config=ExperimentConfig(frequency=2.0e9))]

    def test_request_round_trip(self):
        from repro.schema import batch_request_payload, queries_from_batch

        queries = self._queries()
        payload = json.loads(json.dumps(batch_request_payload(queries)))
        assert payload["schema_version"] == SCHEMA_VERSION
        assert queries_from_batch(payload) == queries

    def test_request_default_config_applies(self):
        from repro.schema import queries_from_batch

        fallback = ExperimentConfig(n_patterns=512, state_patterns=512)
        payload = {"schema_version": SCHEMA_VERSION,
                   "queries": [{"circuit": "t481", "library": "cmos"}]}
        query, = queries_from_batch(payload, default_config=fallback)
        assert query.config == fallback

    def test_request_strictness(self):
        from repro.schema import MAX_BATCH_QUERIES, queries_from_batch

        with pytest.raises(ExperimentError, match="non-empty"):
            queries_from_batch({"schema_version": SCHEMA_VERSION,
                                "queries": []})
        with pytest.raises(ExperimentError, match="unknown batch"):
            queries_from_batch({"schema_version": SCHEMA_VERSION,
                                "queries": [], "surprise": 1})
        with pytest.raises(ExperimentError, match="schema version"):
            queries_from_batch({"schema_version": SCHEMA_VERSION + 1,
                                "queries": [{}]})
        too_many = [{"circuit": "t481", "library": "cmos"}
                    ] * (MAX_BATCH_QUERIES + 1)
        with pytest.raises(ExperimentError, match="limit"):
            queries_from_batch({"schema_version": SCHEMA_VERSION,
                                "queries": too_many})
        with pytest.raises(ExperimentError, match="JSON object"):
            queries_from_batch([])

    def test_response_round_trip_is_float_exact(self):
        from repro.schema import (
            batch_response_payload,
            reports_from_batch,
        )

        reports = [PowerQuoteReport.from_flow(query, _flow())
                   for query in self._queries()]
        payload = json.loads(json.dumps(batch_response_payload(reports)))
        assert reports_from_batch(payload) == reports

    def test_response_strictness(self):
        from repro.schema import reports_from_batch

        with pytest.raises(ExperimentError, match="must be a list"):
            reports_from_batch({"schema_version": SCHEMA_VERSION,
                                "reports": {}})
        with pytest.raises(ExperimentError, match="unknown batch"):
            reports_from_batch({"schema_version": SCHEMA_VERSION,
                                "reports": [], "surprise": 1})
