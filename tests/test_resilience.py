"""Deadlines and retry policies (repro.resilience)."""

from __future__ import annotations

import random

import pytest

from repro.errors import DeadlineExceeded
from repro.resilience import (
    Deadline,
    RetryPolicy,
    parse_retry_after,
)


class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline(None)
        assert deadline.remaining() is None
        assert not deadline.expired()
        deadline.check("anything")  # must not raise

    def test_bounded_counts_down(self):
        deadline = Deadline(10.0)
        remaining = deadline.remaining()
        assert 0 < remaining <= 10.0

    def test_expired_raises_with_stage(self):
        deadline = Deadline.after_ms(0.0001)
        while not deadline.expired():
            pass
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check("map")
        assert excinfo.value.stage == "map"
        assert "map" in str(excinfo.value)

    def test_after_ms_none_is_unbounded(self):
        assert Deadline.after_ms(None).remaining() is None
        assert Deadline.after_ms(250).seconds == pytest.approx(0.25)


class TestRetryState:
    def _state(self, policy, sleeps):
        return policy.start(sleep=sleeps.append, rng=random.Random(7))

    def test_retry_budget_is_bounded(self):
        sleeps = []
        state = self._state(RetryPolicy(retries=2), sleeps)
        assert state.retry()
        assert state.retry()
        assert not state.retry()  # third failure exhausts retries=2
        assert state.attempts == 3
        assert len(sleeps) == 2

    def test_backoff_stays_within_decorrelated_jitter_bounds(self):
        policy = RetryPolicy(retries=10, backoff_base_s=0.05,
                             backoff_cap_s=2.0)
        sleeps = []
        state = self._state(policy, sleeps)
        previous = policy.backoff_base_s
        for _ in range(10):
            assert state.retry()
            delay = sleeps[-1]
            assert policy.backoff_base_s <= delay <= policy.backoff_cap_s
            assert delay <= max(previous * 3, policy.backoff_base_s)
            previous = max(delay, policy.backoff_base_s)

    def test_retry_after_hint_overrides_backoff(self):
        sleeps = []
        state = self._state(RetryPolicy(retries=3, backoff_cap_s=2.0),
                            sleeps)
        assert state.retry(retry_after_s=0.7)
        assert sleeps == [0.7]
        # ... but is still capped by the policy.
        assert state.retry(retry_after_s=99.0)
        assert sleeps[-1] == 2.0

    def test_total_deadline_stops_retrying(self):
        # A deadline shorter than any possible backoff: the first
        # retry would outlive it, so no sleep happens at all.
        policy = RetryPolicy(retries=5, backoff_base_s=0.2,
                             deadline_s=0.05)
        sleeps = []
        state = self._state(policy, sleeps)
        assert not state.retry()
        assert sleeps == []

    def test_sleeps_are_recorded(self):
        sleeps = []
        state = self._state(RetryPolicy(retries=2), sleeps)
        state.retry()
        assert state.sleeps == sleeps


class TestParseRetryAfter:
    def test_seconds_forms(self):
        assert parse_retry_after("1") == 1.0
        assert parse_retry_after(" 0.5 ") == 0.5
        assert parse_retry_after("0") == 0.0

    def test_invalid_forms_are_none(self):
        assert parse_retry_after(None) is None
        assert parse_retry_after("Wed, 21 Oct 2026 07:28:00 GMT") is None
        assert parse_retry_after("-3") is None
