"""Shared fixtures: libraries and configurations are session-scoped
because building and characterizing them is the expensive part of the
suite."""

from __future__ import annotations

import os

import pytest

from repro.cache import ENV_CACHE_DISABLE
from repro.devices.parameters import cmos_32nm, cntfet_32nm

# The suite must be hermetic: several tests assert exact SPICE solve
# counts, which a warm persistent cache would zero out.  Tests that
# exercise the disk cache construct an explicit DiskCache instead.
os.environ[ENV_CACHE_DISABLE] = "1"
from repro.experiments.config import ExperimentConfig
from repro.gates.ambipolar_library import generalized_cntfet_library
from repro.gates.conventional import cmos_library, conventional_cntfet_library


@pytest.fixture(scope="session")
def cmos_tech():
    return cmos_32nm()


@pytest.fixture(scope="session")
def cntfet_tech():
    return cntfet_32nm()


@pytest.fixture(scope="session")
def glib():
    """The 46-cell generalized ambipolar CNTFET library."""
    return generalized_cntfet_library()


@pytest.fixture(scope="session")
def clib():
    """The conventional (MOSFET-like) CNTFET library."""
    return conventional_cntfet_library()


@pytest.fixture(scope="session")
def mlib():
    """The CMOS reference library."""
    return cmos_library()


@pytest.fixture(scope="session")
def tiny_config():
    """A pattern budget small enough for unit tests."""
    return ExperimentConfig(n_patterns=2048, state_patterns=2048)
