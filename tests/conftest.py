"""Shared fixtures: libraries and configurations are session-scoped
because building and characterizing them is the expensive part of the
suite."""

from __future__ import annotations

import pytest

from repro.devices.parameters import cmos_32nm, cntfet_32nm
from repro.experiments.config import ExperimentConfig
from repro.gates.ambipolar_library import generalized_cntfet_library
from repro.gates.conventional import cmos_library, conventional_cntfet_library


@pytest.fixture(scope="session")
def cmos_tech():
    return cmos_32nm()


@pytest.fixture(scope="session")
def cntfet_tech():
    return cntfet_32nm()


@pytest.fixture(scope="session")
def glib():
    """The 46-cell generalized ambipolar CNTFET library."""
    return generalized_cntfet_library()


@pytest.fixture(scope="session")
def clib():
    """The conventional (MOSFET-like) CNTFET library."""
    return conventional_cntfet_library()


@pytest.fixture(scope="session")
def mlib():
    """The CMOS reference library."""
    return cmos_library()


@pytest.fixture(scope="session")
def tiny_config():
    """A pattern budget small enough for unit tests."""
    return ExperimentConfig(n_patterns=2048, state_patterns=2048)
