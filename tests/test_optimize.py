"""The design-space optimizer (:mod:`repro.optimize`): frontier
correctness against an independent brute force, Pareto invariants,
timing-infeasibility pruning, cache economy and the Session facade.

The brute force deliberately avoids :mod:`repro.optimize`'s own
evaluation path: it prices every grid point with
:func:`repro.sim.estimator.estimate_many` directly, filters by the
timing report and applies the textbook O(n^2) dominance definition —
so agreement is evidence, not tautology.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.api import Session
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.flow import (
    flow_from_power_report,
    map_subject,
    synthesized_benchmark,
)
from repro.optimize import (
    frontier_point,
    normalized_value,
    pareto_frontier,
)
from repro.registry import cached_library, canonical_library
from repro.schema import (
    DEFAULT_OBJECTIVES,
    OPTIMIZE_OBJECTIVES,
    FrontierPoint,
    OptimizeQuery,
    OptimizeReport,
    PowerQuery,
    PowerQuoteReport,
)
from repro.serve import Engine
from repro.sim import activity
from repro.sim.activity import simulation_stats
from repro.sim.estimator import estimate_many
from repro.timing import timing_report

TINY = ExperimentConfig(n_patterns=1024, state_patterns=512)

#: A grid whose 20 GHz points are infeasible on t481 for both paper
#: CNTFET libraries while the rest stay feasible.
GRID = dict(circuit="t481",
            libraries=("generalized", "conventional"),
            vdds=(0.7, 0.9),
            frequencies=(0.5e9, 1e9, 2e9, 2e10))


def tiny_query(**overrides):
    fields = dict(GRID, config=TINY)
    fields.update(overrides)
    return OptimizeQuery(**fields)


def brute_force_frontier(query):
    """Independent evaluation: estimate_many over the full grid, then
    timing-filter, then textbook dominance."""
    points = []
    for alias in query.libraries:
        library_key = canonical_library(alias)
        for vdd in query.vdds:
            library = cached_library(library_key, vdd)
            config = replace(query.config, vdd=vdd)
            netlist = map_subject(
                synthesized_benchmark(query.circuit, config.synthesize),
                library, config)
            timing = timing_report(netlist)
            feasible = [f for f in query.frequencies
                        if 1.0 / f >= timing.critical_delay_s]
            if not feasible:
                continue
            stats = simulation_stats(netlist, config.n_patterns,
                                     config.seed, config.state_patterns)
            configs = [replace(config, frequency=f) for f in feasible]
            reports = estimate_many(netlist, stats,
                                    [c.power_parameters for c in configs])
            for point_config, report in zip(configs, reports):
                point_query = PowerQuery(query.circuit, library_key,
                                         point_config)
                flow = flow_from_power_report(
                    report, point_config, circuit=query.circuit,
                    library=library_key)
                quote = PowerQuoteReport.from_flow(point_query, flow)
                points.append(frontier_point(
                    quote, vdd, point_config.frequency,
                    library_key, "bitsim"))
    # textbook O(n^2) dominance, no sorting tricks
    def dominates(a, b):
        av = [normalized_value(a, o) for o in query.objectives]
        bv = [normalized_value(b, o) for o in query.objectives]
        return (all(x <= y for x, y in zip(av, bv))
                and any(x < y for x, y in zip(av, bv)))

    return [p for p in points
            if not any(dominates(q, p) for q in points if q is not p)]


def point_identity(point):
    return (point.library, point.backend, point.vdd, point.frequency)


class TestRunOptimize:
    @pytest.fixture(scope="class")
    def report(self):
        return Engine(Session(TINY)).optimize(tiny_query())

    def test_counter_identity(self, report):
        assert report.n_candidates == 16
        assert (report.n_infeasible + report.n_dominated
                + len(report.frontier)) == report.n_candidates

    def test_matches_brute_force(self, report):
        expected = brute_force_frontier(tiny_query())
        assert len(report.frontier) == len(expected)
        got = {point_identity(p) for p in report.frontier}
        want = {point_identity(p) for p in expected}
        assert got == want
        # and the numbers agree float for float (both paths reduce to
        # the same estimate_many/timing machinery)
        by_id = {point_identity(p): p for p in expected}
        for point in report.frontier:
            other = by_id[point_identity(point)]
            assert point.pt_w == other.pt_w
            assert point.delay_ns == other.delay_ns
            assert point.energy_per_cycle == other.energy_per_cycle
            assert point.pdp == other.pdp

    def test_no_dominated_point_in_frontier(self, report):
        objectives = report.objectives
        for a in report.frontier:
            av = [normalized_value(a, o) for o in objectives]
            for b in report.frontier:
                if a is b:
                    continue
                bv = [normalized_value(b, o) for o in objectives]
                assert not (all(x <= y for x, y in zip(bv, av))
                            and any(x < y for x, y in zip(bv, av))), \
                    (point_identity(b), "dominates", point_identity(a))

    def test_infeasible_points_excluded(self, report):
        assert report.n_infeasible > 0
        for point in report.frontier:
            assert point.slack_ns >= 0.0
            assert 1.0 / point.frequency >= point.delay_ns * 1e-9

    def test_deterministic_ordering(self, report):
        again = Engine(Session(TINY)).optimize(tiny_query())
        assert [point_identity(p) for p in again.frontier] == \
            [point_identity(p) for p in report.frontier]

    def test_provenance(self, report):
        for point in report.frontier:
            assert len(point.query_key) == 32
            assert point.cache_status in ("cold", "hot")


class TestCacheEconomy:
    def test_cold_run_simulates_once_per_mapping_warm_run_never(self):
        engine = Engine(Session(TINY))
        activity.clear_cache(reset_counters=True)
        cold = engine.optimize(tiny_query())
        cold_sims = activity.cache_info()["simulations"]
        # one simulation per (library, vdd) mapping with feasible
        # points, not one per operating point
        assert 0 < cold_sims <= len(GRID["libraries"]) * len(GRID["vdds"])
        warm = engine.optimize(tiny_query())
        assert activity.cache_info()["simulations"] == cold_sims
        assert all(p.cache_status == "hot" for p in warm.frontier)
        assert [point_identity(p) for p in warm.frontier] == \
            [point_identity(p) for p in cold.frontier]

    def test_optimize_warm_starts_single_point_estimates(self):
        engine = Engine(Session(TINY))
        report = engine.optimize(tiny_query())
        point = report.frontier[0]
        config = replace(TINY, vdd=point.vdd, frequency=point.frequency,
                         backend=point.backend)
        quote = engine.estimate(PowerQuery(
            circuit="t481", library=point.library, config=config))
        assert quote.cache_status == "hot"
        assert quote.result.pt_w == point.pt_w

    def test_engine_counters(self):
        engine = Engine(Session(TINY))
        engine.optimize(tiny_query())
        assert engine.counters["optimize.requests"] == 1
        assert engine.counters["optimize.candidates"] == 16
        assert engine.counters["optimize.infeasible"] > 0
        assert engine.counters["optimize.frontier"] > 0
        caches = engine.stats()["caches"]
        assert "timing" in caches
        assert caches["timing"]["computes"] + caches["timing"]["hits"] > 0


class TestParetoFrontier:
    def make_point(self, pt_w, frequency, library="lib", vdd=0.9):
        return FrontierPoint(
            library=library, backend="bitsim", vdd=vdd,
            frequency=frequency, gate_count=1, delay_ns=0.1,
            fmax_hz=1e10, slack_ns=0.1, pd_w=pt_w, ps_w=0.0, pg_w=0.0,
            pt_w=pt_w, energy_per_cycle=pt_w / frequency,
            pdp=pt_w * 1e-10, edp_js=1e-25)

    def test_strict_dominance_removes(self):
        worse = self.make_point(2.0, 1e9)
        better = self.make_point(1.0, 2e9)
        frontier, dominated = pareto_frontier([worse, better],
                                              ("power", "frequency"))
        assert frontier == [better]
        assert dominated == 1

    def test_tradeoff_keeps_both(self):
        low_power = self.make_point(1.0, 1e9)
        fast = self.make_point(2.0, 2e9)
        frontier, dominated = pareto_frontier([low_power, fast],
                                              ("power", "frequency"))
        assert dominated == 0
        assert set(map(point_identity, frontier)) == \
            {point_identity(low_power), point_identity(fast)}

    def test_equal_vectors_both_survive(self):
        one = self.make_point(1.0, 1e9, library="a")
        two = self.make_point(1.0, 1e9, library="b")
        frontier, dominated = pareto_frontier([two, one],
                                              ("power", "frequency"))
        assert dominated == 0
        # deterministic tiebreak: library ascending
        assert [p.library for p in frontier] == ["a", "b"]

    def test_empty(self):
        assert pareto_frontier([], ("power",)) == ([], 0)

    def test_single_objective_keeps_only_min(self):
        points = [self.make_point(w, 1e9, vdd=v)
                  for w, v in ((3.0, 0.7), (1.0, 0.8), (2.0, 0.9))]
        frontier, dominated = pareto_frontier(points, ("power",))
        assert [p.pt_w for p in frontier] == [1.0]
        assert dominated == 2


class TestOptimizeQueryValidation:
    def test_normalizes_and_sorts_axes(self):
        query = OptimizeQuery(circuit="t481", libraries=("generalized",),
                              vdds=(0.9, 0.7, 0.9),
                              frequencies=(2e9, 1e9), config=TINY)
        assert query.vdds == (0.7, 0.9)
        assert query.frequencies == (1e9, 2e9)
        assert query.objectives == DEFAULT_OBJECTIVES
        assert query.n_candidates == 4

    def test_rejects_unknown_objective(self):
        with pytest.raises(ExperimentError):
            OptimizeQuery(circuit="t481", libraries=("generalized",),
                          vdds=(0.9,), frequencies=(1e9,),
                          objectives=("power", "beauty"), config=TINY)

    def test_rejects_nonpositive_axes(self):
        for bad in ({"vdds": (0.0,)}, {"vdds": (-0.9,)},
                    {"frequencies": (0.0,)}, {"frequencies": (-1e9,)}):
            with pytest.raises(ExperimentError):
                tiny_query(**bad)

    def test_rejects_empty_axes(self):
        for bad in ({"libraries": ()}, {"vdds": ()},
                    {"frequencies": ()}, {"backends": ()},
                    {"objectives": ()}):
            with pytest.raises(ExperimentError):
                tiny_query(**bad)

    def test_rejects_oversized_grid(self):
        with pytest.raises(ExperimentError):
            tiny_query(vdds=tuple(0.5 + i * 1e-4 for i in range(70)),
                       frequencies=tuple(1e9 + i for i in range(60)))

    def test_unknown_circuit_and_library_fail_cleanly(self):
        engine = Engine(Session(TINY))
        with pytest.raises(ExperimentError):
            engine.optimize(tiny_query(circuit="nonesuch"))
        with pytest.raises(ExperimentError):
            engine.optimize(tiny_query(libraries=("nonesuch",)))

    def test_wire_roundtrip(self):
        query = tiny_query(objectives=("energy", "fmax"),
                           deadline_ms=5000.0)
        restored = OptimizeQuery.from_dict(query.to_dict())
        assert restored == query

    def test_report_wire_roundtrip(self):
        report = Engine(Session(TINY)).optimize(tiny_query())
        restored = OptimizeReport.from_dict(report.to_dict())
        assert restored == report


class TestSessionFacade:
    def test_session_optimize_defaults_to_session_scope(self):
        session = Session(TINY, libraries=("generalized",))
        report = session.optimize("t481", frequencies=(1e9, 2e9))
        assert report.circuit == "t481"
        assert {p.library for p in report.frontier} == \
            {"cntfet-generalized"}
        assert {p.vdd for p in report.frontier} == {TINY.vdd}

    def test_alias_axes_collapse(self):
        session = Session(TINY)
        report = session.optimize(
            "t481", libraries=("generalized", "cntfet-generalized"),
            frequencies=(1e9,))
        assert report.n_candidates == 1

    def test_objectives_echoed(self):
        session = Session(TINY, libraries=("generalized",))
        report = session.optimize("t481", objectives=("energy", "vdd"),
                                  vdds=(0.8, 0.9))
        assert report.objectives == ("energy", "vdd")
        for objective in report.objectives:
            assert objective in OPTIMIZE_OBJECTIVES
