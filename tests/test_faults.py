"""The fault-injection harness (repro.faults): spec grammar,
deterministic budgets, cross-process tickets, and the injection-point
helpers production code calls."""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro import faults
from repro.errors import ExperimentError
from repro.faults import FaultPlan, FaultRule, parse_spec


@pytest.fixture(autouse=True)
def clean_plan():
    """Every test starts and ends without a programmatic override."""
    faults.deactivate()
    yield
    faults.deactivate()


class TestSpecGrammar:
    def test_single_clause_defaults(self):
        (rule,) = parse_spec("cache.corrupt_read")
        assert rule == FaultRule("cache.corrupt_read", times=1,
                                 match="", ms=0.0)

    def test_full_clause(self):
        (rule,) = parse_spec("engine.latency:times=inf,match=C1908,ms=50")
        assert rule.times is None
        assert rule.match == "C1908"
        assert rule.ms == 50.0

    def test_multiple_clauses(self):
        rules = parse_spec("worker.crash:times=2;http.drop")
        assert [r.point for r in rules] == ["worker.crash", "http.drop"]

    def test_empty_spec_is_no_rules(self):
        assert parse_spec("") == ()
        assert parse_spec(" ; ") == ()

    def test_unknown_point_rejected(self):
        with pytest.raises(ExperimentError, match="unknown fault point"):
            parse_spec("cache.explode")

    def test_bad_options_rejected(self):
        with pytest.raises(ExperimentError, match="unknown fault option"):
            parse_spec("http.drop:prob=0.5")
        with pytest.raises(ExperimentError, match="name=value"):
            parse_spec("http.drop:times")
        with pytest.raises(ExperimentError, match=">= 1 or inf"):
            parse_spec("http.drop:times=0")
        with pytest.raises(ExperimentError, match=">= 0"):
            parse_spec("engine.latency:ms=-1")


class TestDeterministicBudgets:
    def test_times_bounds_firing_exactly(self):
        plan = FaultPlan.from_spec("http.drop:times=2")
        assert plan.fire("http.drop") is not None
        assert plan.fire("http.drop") is not None
        assert plan.fire("http.drop") is None
        assert len(plan.fired) == 2

    def test_inf_never_exhausts(self):
        plan = FaultPlan.from_spec("http.drop:times=inf")
        for _ in range(10):
            assert plan.fire("http.drop") is not None

    def test_match_filters_on_context(self):
        plan = FaultPlan.from_spec("worker.crash:match=C1908,times=inf")
        assert plan.fire("worker.crash", "t481/cmos") is None
        assert plan.fire("worker.crash", "C1908/cmos") is not None

    def test_unlisted_point_never_fires(self):
        plan = FaultPlan.from_spec("http.drop")
        assert plan.fire("cache.corrupt_read") is None

    def test_first_matching_rule_wins(self):
        plan = FaultPlan.from_spec(
            "engine.latency:match=a,ms=10;engine.latency:ms=20")
        assert plan.fire("engine.latency", "xyz").ms == 20
        assert plan.fire("engine.latency", "abc").ms == 10


class TestCrossProcessTickets:
    def test_shared_budget_claimed_once(self, tmp_path):
        spec = "cache.corrupt_read:times=1"
        plan_a = FaultPlan.from_spec(spec, str(tmp_path))
        plan_b = FaultPlan.from_spec(spec, str(tmp_path))
        # Two plans (standing in for two processes) share one ticket.
        assert plan_a.fire("cache.corrupt_read") is not None
        assert plan_b.fire("cache.corrupt_read") is None

    def test_fired_faults_logged_as_jsonl(self, tmp_path):
        plan = FaultPlan.from_spec("http.drop:times=2", str(tmp_path))
        plan.fire("http.drop", "a")
        plan.fire("http.drop", "b")
        log = tmp_path / "faults.log"
        entries = [json.loads(line)
                   for line in log.read_text().splitlines()]
        assert [e["context"] for e in entries] == ["a", "b"]
        assert all(e["point"] == "http.drop" for e in entries)
        assert all(e["pid"] == os.getpid() for e in entries)


class TestPlanSelection:
    def test_no_env_means_inert(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_FAULTS, raising=False)
        assert not faults.current_plan().active()
        assert faults.fire("http.drop") is None

    def test_env_spec_is_parsed_and_cached(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "http.drop:times=1")
        plan = faults.current_plan()
        assert plan.active()
        assert faults.current_plan() is plan  # stable while env stable
        monkeypatch.setenv(faults.ENV_FAULTS, "http.drop:times=2")
        assert faults.current_plan() is not plan

    def test_activate_overrides_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "http.drop:times=inf")
        plan = faults.activate("cache.corrupt_read:times=1")
        assert faults.current_plan() is plan
        assert faults.fire("http.drop") is None
        assert faults.fire("cache.corrupt_read") is not None
        faults.deactivate()
        assert faults.fire("http.drop") is not None


class TestInjectionHelpers:
    def test_corrupt_is_deterministic_and_unparseable(self):
        text = json.dumps({"__repro_cache__": 1, "value": [1, 2, 3]})
        garbled = faults.corrupt(text)
        assert garbled == faults.corrupt(text)
        assert faults.CORRUPTION_MARKER in garbled
        with pytest.raises(ValueError):
            json.loads(garbled)

    def test_sleep_latency_sleeps_only_when_fired(self):
        faults.activate("engine.latency:ms=1,times=1")
        assert faults.sleep_latency("engine.latency") == pytest.approx(0.001)
        assert faults.sleep_latency("engine.latency") == 0.0

    def test_maybe_crash_worker_refuses_in_main_process(self):
        faults.activate("worker.crash:times=inf")
        assert multiprocessing.current_process().name == "MainProcess"
        faults.maybe_crash_worker("anything")  # must not kill the suite
        assert faults.current_plan().fired == []
