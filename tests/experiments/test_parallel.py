"""The process-parallel experiment runner."""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import parallel_map, resolve_jobs
from repro.experiments.table1 import reproduce_table1

#: Tiny but non-degenerate budget: parallel/serial equality must hold
#: bit-for-bit at any pattern count because every task owns its seed.
TINY = ExperimentConfig(n_patterns=2048, state_patterns=2048)
SUBSET = ["C1908", "t481"]


def _square(x):
    return x * x


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_process_pool_preserves_order(self):
        assert parallel_map(_square, range(10), jobs=2) == [
            x * x for x in range(10)]

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1


class TestTable1Parallel:
    def test_parallel_results_bit_identical_to_serial(self):
        serial = reproduce_table1(TINY, benchmarks=SUBSET)
        parallel = reproduce_table1(TINY, benchmarks=SUBSET, jobs=2)
        assert serial.benchmark_order == parallel.benchmark_order
        for name in serial.benchmark_order:
            for key, expected in serial.results[name].items():
                # Frozen dataclasses of floats: equality is bit-exact.
                assert parallel.results[name][key] == expected

    def test_cli_accepts_jobs_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["table1", "--fast", "--jobs", "4"])
        assert args.jobs == 4
        args = build_parser().parse_args(["library", "--jobs", "2"])
        assert args.jobs == 2
