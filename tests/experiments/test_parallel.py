"""The process-parallel experiment runner."""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import parallel_map, resolve_jobs
from repro.experiments.table1 import reproduce_table1

#: Tiny but non-degenerate budget: parallel/serial equality must hold
#: bit-for-bit at any pattern count because every task owns its seed.
TINY = ExperimentConfig(n_patterns=2048, state_patterns=2048)
SUBSET = ["C1908", "t481"]


def _square(x):
    return x * x


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_process_pool_preserves_order(self):
        assert parallel_map(_square, range(10), jobs=2) == [
            x * x for x in range(10)]

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_resolve_jobs(self):
        import os

        cpus = os.cpu_count() or 1
        assert resolve_jobs(1) == 1
        # Requests are clamped to the CPU count: oversubscribing a
        # CPU-bound grid only adds scheduling overhead.
        assert resolve_jobs(3) == min(3, cpus)
        assert resolve_jobs(10 * cpus) == cpus
        assert resolve_jobs(0) == cpus
        assert resolve_jobs(None) == cpus

    def test_stream_callback_in_order(self):
        seen = []
        from repro.experiments.parallel import parallel_map_stream

        result = parallel_map_stream(
            _square, [3, 1, 2], jobs=1,
            callback=lambda item, value: seen.append((item, value)))
        assert result == [9, 1, 4]
        assert seen == [(3, 9), (1, 1), (2, 4)]

    def test_stream_pool_path(self, monkeypatch):
        """The as_completed pool path: ordered results, every task's
        callback fired (completion order), any chunking remainder
        handled.  cpu_count is patched so a 1-CPU CI machine still
        exercises a real 2-worker pool."""
        from repro.experiments import parallel as parallel_module
        from repro.experiments.parallel import parallel_map_stream

        monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 2)
        seen = []
        result = parallel_map_stream(
            _square, list(range(7)), jobs=2, chunksize=3,
            callback=lambda item, value: seen.append((item, value)))
        assert result == [x * x for x in range(7)]
        assert sorted(seen) == [(x, x * x) for x in range(7)]


class TestTable1Parallel:
    def test_parallel_results_bit_identical_to_serial(self):
        serial = reproduce_table1(TINY, benchmarks=SUBSET)
        parallel = reproduce_table1(TINY, benchmarks=SUBSET, jobs=2)
        assert serial.benchmark_order == parallel.benchmark_order
        for name in serial.benchmark_order:
            for key, expected in serial.results[name].items():
                # Frozen dataclasses of floats: equality is bit-exact.
                assert parallel.results[name][key] == expected

    def test_cli_accepts_jobs_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["table1", "--fast", "--jobs", "4"])
        assert args.jobs == 4
        args = build_parser().parse_args(["library", "--jobs", "2"])
        assert args.jobs == 2
