"""Unit tests for the A1 ablation sweeps (small sweep points)."""

from repro.experiments.ablations import (
    fanout_sweep,
    pattern_cache_effectiveness,
    polarity_cap_sensitivity,
    supply_sweep,
)


class TestSupplySweep:
    def test_monotone_power_and_delay(self):
        points = supply_sweep([0.7, 0.9, 1.1])
        assert points[0].mean_power < points[1].mean_power
        assert points[1].mean_power < points[2].mean_power
        assert points[0].fo3_delay > points[1].fo3_delay
        assert points[1].fo3_delay > points[2].fo3_delay

    def test_power_scales_superlinearly(self):
        """PD ~ VDD^2 plus leakage growth: more than linear in VDD."""
        points = supply_sweep([0.6, 1.2])
        ratio = points[1].mean_power / points[0].mean_power
        assert ratio > 2.0


class TestPolarityCapSensitivity:
    def test_saving_erodes_with_back_gate_coupling(self):
        points = polarity_cap_sensitivity([0.0, 6.0, 18.0])
        savings = [p.total_saving for p in points]
        assert savings[0] >= savings[1] >= savings[2]

    def test_baseline_point_keeps_substantial_saving(self):
        point = polarity_cap_sensitivity([6.0])[0]
        # XOR-rich mapped circuit: the generalized library's win at the
        # baseline back-gate assumption (paper's library-level: 28%)
        assert 0.30 <= point.total_saving <= 0.55


class TestFanoutSweep:
    def test_saving_stable_across_fanouts(self):
        points = fanout_sweep([1, 3, 6])
        for point in points:
            assert 0.15 <= point.saving <= 0.45
        # heavier fanout pushes the comparison toward the pure
        # inverter-capacitance ratio (31% saving); lighter fanout is
        # dominated by intrinsic/static terms where CNTFETs win bigger.
        # Either way the drift across fanouts stays small.
        assert abs(points[2].saving - points[0].saving) < 0.08


class TestPatternCache:
    def test_payoff_counts(self):
        result = pattern_cache_effectiveness()
        assert result.cell_vector_pairs == 620  # sum of 2^k over 46 cells
        assert result.distinct_patterns < 50
        assert result.reduction > 10
