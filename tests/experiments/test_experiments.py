"""Experiment harnesses: configuration, flow, Table 1 orderings,
library study and figure reproductions."""

import pytest

from repro.circuits.suite import CMOS, CONVENTIONAL, GENERALIZED
from repro.experiments.config import ExperimentConfig, PAPER_CONFIG
from repro.experiments.figures import (
    reproduce_fig2_transmission,
    reproduce_fig4_patterns,
    reproduce_fig5_flow,
)
from repro.experiments.flow import run_circuit_flow
from repro.experiments.library_power import reproduce_library_study
from repro.experiments.reporting import format_ratio, format_saving, render_table
from repro.experiments.table1 import reproduce_table1


class TestConfig:
    def test_paper_defaults(self):
        assert PAPER_CONFIG.vdd == 0.9
        assert PAPER_CONFIG.frequency == 1e9
        assert PAPER_CONFIG.n_patterns == 640_000
        assert PAPER_CONFIG.fanout == 3

    def test_scaled(self):
        small = PAPER_CONFIG.scaled(1000)
        assert small.n_patterns == 1000
        assert small.state_patterns == 1000
        assert small.vdd == PAPER_CONFIG.vdd

    def test_scaled_preserves_explicit_state_budget(self):
        """An explicitly-smaller state budget survives rescaling."""
        explicit = ExperimentConfig(n_patterns=16_384, state_patterns=1000)
        assert explicit.scaled(8192).state_patterns == 1000
        assert explicit.scaled(640_000).state_patterns == 1000
        # ... and is still clamped to a budget below it.
        assert explicit.scaled(500).state_patterns == 500

    def test_scaled_preserves_explicitly_raised_state_budget(self):
        """A deliberately raised budget is explicit too, not a clamp."""
        raised = ExperimentConfig(n_patterns=640_000,
                                  state_patterns=131_072)
        assert raised.scaled(640_000).state_patterns == 131_072
        assert raised.scaled(200_000).state_patterns == 131_072
        assert raised.scaled(1000).state_patterns == 1000

    def test_scaled_up_restores_default_clamp(self):
        """A state budget that merely tracked the clamp is re-derived,
        so scaling a fast config back up restores the 64 K default."""
        from repro.experiments.config import DEFAULT_STATE_PATTERNS, FAST_CONFIG

        assert FAST_CONFIG.state_patterns == FAST_CONFIG.n_patterns
        restored = FAST_CONFIG.scaled(640_000)
        assert restored.state_patterns == DEFAULT_STATE_PATTERNS
        assert PAPER_CONFIG.scaled(640_000) == PAPER_CONFIG

    def test_pattern_budgets_validated(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError, match="n_patterns"):
            ExperimentConfig(n_patterns=0)
        with pytest.raises(ExperimentError, match="n_patterns"):
            ExperimentConfig(n_patterns=-1)
        with pytest.raises(ExperimentError, match="state_patterns"):
            ExperimentConfig(state_patterns=0)

    def test_round_trip(self):
        config = ExperimentConfig(n_patterns=1024, state_patterns=512,
                                  vdd=0.8, backend="bitsim")
        assert ExperimentConfig.from_dict(config.to_dict()) == config
        with pytest.raises(Exception, match="unknown ExperimentConfig"):
            ExperimentConfig.from_dict({"bogus": 1})


class TestReporting:
    def test_render_table(self):
        text = render_table(["a", "bb"], [["1", "2"], ["33", "4"]], "T")
        assert "T" in text and "33" in text

    def test_ratio_and_saving(self):
        assert format_ratio(10.0, 2.0) == "5.0x"
        assert format_saving(10.0, 4.0) == "60.0%"


class TestFlow:
    def test_result_consistency(self, glib, tiny_config):
        from repro.circuits.adders import ripple_adder_circuit
        result = run_circuit_flow(ripple_adder_circuit(4), glib, tiny_config)
        # PT = 1.15 PD + PS + PG (Table 1's internal relationship)
        assert result.pt_w == pytest.approx(
            1.15 * result.pd_w + result.ps_w + result.pg_w, rel=1e-9)
        assert result.edp_js == pytest.approx(
            result.pt_w / tiny_config.frequency * result.delay_s)
        assert result.gate_count > 0


@pytest.fixture(scope="module")
def mini_table1():
    config = ExperimentConfig(n_patterns=4096, state_patterns=4096)
    return reproduce_table1(config, benchmarks=["t481", "C1355"])


class TestTable1:
    def test_all_libraries_present(self, mini_table1):
        for name in ("t481", "C1355"):
            assert set(mini_table1.results[name]) == {
                GENERALIZED, CONVENTIONAL, CMOS}

    def test_paper_orderings_hold(self, mini_table1):
        """The reproduction targets: generalized <= conventional < CMOS
        for power; CMOS much slower than both CNTFET libraries."""
        for name in mini_table1.benchmark_order:
            rows = mini_table1.results[name]
            assert rows[GENERALIZED].pt_w < rows[CMOS].pt_w
            assert rows[CONVENTIONAL].pt_w < rows[CMOS].pt_w
            assert rows[CMOS].delay_s > 3 * rows[CONVENTIONAL].delay_s
            assert rows[GENERALIZED].edp_js < rows[CMOS].edp_js / 3

    def test_static_far_below_dynamic(self, mini_table1):
        """Section 4: PS is 1-2 orders below PD in every technology."""
        for rows in mini_table1.results.values():
            for row in rows.values():
                assert row.ps_w < row.pd_w / 5

    def test_averages_and_improvements(self, mini_table1):
        avg = mini_table1.averages(GENERALIZED)
        assert avg.gate_count > 0
        improvements = mini_table1.improvement_vs_cmos(GENERALIZED)
        assert set(improvements) == {"gates", "delay", "pd", "ps", "pt",
                                     "edp"}

    def test_render(self, mini_table1):
        text = mini_table1.render()
        assert "cntfet-generalized" in text
        assert "Improvement vs CMOS" in text
        assert "(paper avg)" in text


class TestLibraryStudy:
    def test_section4_anchors(self):
        study = reproduce_library_study()
        assert study.cntfet_inverter_cin_af == pytest.approx(36.0)
        assert study.cmos_inverter_cin_af == pytest.approx(52.0)
        assert 10 <= study.distinct_patterns <= 40
        assert 0.20 <= study.comparison.total_saving <= 0.42
        assert study.comparison.reference_gate_leak_fraction == pytest.approx(
            0.10, abs=0.04)
        assert study.comparison.candidate_gate_leak_fraction < 0.01
        assert "46" in study.render() or "patterns" in study.render()


class TestFigures:
    def test_fig2_transmission_gate_beats_single_device(self):
        result = reproduce_fig2_transmission()
        assert result.tg_degradation < 0.01           # full rail
        assert result.single_device_degradation > 0.1  # threshold drop
        assert "Fig. 2" in result.render()

    def test_fig4_ratio_exceeds_three(self):
        result = reproduce_fig4_patterns()
        assert result.ratio > 3.0
        assert result.parallel_pattern == "p(d,d,d)"
        assert result.series_pattern == "s(d,d,d)"
        assert result.parallel_current == pytest.approx(
            3 * result.single_device_current, rel=1e-6)

    def test_fig5_flow_savings(self):
        result = reproduce_fig5_flow()
        assert result.n_cells == 46
        assert result.simulation_savings > 10
        assert result.distinct_patterns == result.distinct_patterns
        assert "reduction" in result.render()
