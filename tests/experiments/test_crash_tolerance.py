"""Worker-crash tolerance of the parallel runner.

Workers are hard-killed (``os._exit``) on command via one-shot ticket
files, so every test is deterministic: a task crashes exactly the
scripted number of times, across any process the pool schedules it on.
cpu_count is patched to 2 so a 1-CPU CI machine still exercises a real
pool.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import WorkerCrashError
from repro.experiments import parallel as parallel_module
from repro.experiments.parallel import parallel_map_stream


@pytest.fixture(autouse=True)
def two_cpus(monkeypatch):
    monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 2)


def _scripted(item):
    """Crash the hosting worker ``crashes`` times, then compute.

    ``item`` is ``(value, crashes, state_dir)``.  Each crash claims an
    exclusive ticket file, so the budget holds across every process
    that ever picks the task up — exactly the discipline
    :mod:`repro.faults` uses for ``worker.crash``.
    """
    value, crashes, state_dir = item
    for ticket in range(crashes):
        path = os.path.join(state_dir, f"crash-{value}-{ticket}")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        os._exit(23)
    return value * 10


def _items(tmp_path, crashes_by_value):
    return [(value, crashes, str(tmp_path))
            for value, crashes in crashes_by_value]


class TestCrashRetry:
    def test_single_crash_is_retried_to_completion(self, tmp_path):
        items = _items(tmp_path, [(0, 0), (1, 1), (2, 0), (3, 0)])
        retried = []
        result = parallel_map_stream(_scripted, items, jobs=2,
                                     chunksize=2,
                                     on_retry=retried.append)
        assert result == [0, 10, 20, 30]
        # At least the crashing task was retried; chunk-mates that
        # were in flight on the dead worker may ride along.
        assert any(item[0] == 1 for item in retried)

    def test_callback_fires_exactly_once_per_task(self, tmp_path):
        items = _items(tmp_path, [(v, 1 if v == 2 else 0)
                                  for v in range(6)])
        seen = []
        result = parallel_map_stream(
            _scripted, items, jobs=2, chunksize=3,
            callback=lambda item, value: seen.append(item[0]))
        assert result == [v * 10 for v in range(6)]
        assert sorted(seen) == list(range(6))

    def test_repeat_offender_is_poisoned_and_rest_completes(self, tmp_path):
        # Value 1 crashes every worker it ever touches (far beyond the
        # retry budget); everything else must still complete.
        items = _items(tmp_path, [(0, 0), (1, 99), (2, 0), (3, 0)])
        poisoned = []
        result = parallel_map_stream(
            _scripted, items, jobs=2, chunksize=1, crash_retries=1,
            on_poison=lambda item, error: poisoned.append((item, error)))
        assert result == [0, None, 20, 30]
        assert [item[0] for item, _ in poisoned] == [1]
        assert isinstance(poisoned[0][1], WorkerCrashError)
        assert "quarantined" in str(poisoned[0][1])

    def test_poison_without_handler_raises(self, tmp_path):
        items = _items(tmp_path, [(0, 0), (1, 99)])
        with pytest.raises(WorkerCrashError):
            parallel_map_stream(_scripted, items, jobs=2, chunksize=1,
                                crash_retries=1)

    def test_innocent_bystander_survives_isolation(self, tmp_path):
        # Two tasks chunked together; only one of them crashes (more
        # rounds than the retry budget).  The bystander shares every
        # suspect round but must be cleared by its isolated run.
        items = _items(tmp_path, [(1, 3), (2, 0)])
        poisoned = []
        result = parallel_map_stream(
            _scripted, items, jobs=2, chunksize=2, crash_retries=1,
            on_poison=lambda item, error: poisoned.append(item[0]))
        assert result[1] == 20  # the bystander's real result
        assert 2 not in poisoned

    def test_task_exception_propagates_not_retried(self, tmp_path):
        with pytest.raises(ValueError, match="task bug"):
            parallel_map_stream(_raiser, [(1, 0, str(tmp_path))], jobs=2)


def _raiser(item):
    raise ValueError("task bug, not a crash")
