"""Chaos drills of the multi-worker serving fleet.

The fleet's promises under fire, exercised with real processes:

* a worker SIGKILLed **mid-request** under load is invisible to
  clients — every request succeeds (via retry onto a sibling) and
  every answer stays bit-identical to a local
  :meth:`~repro.api.Session.run`;
* a crash-looping worker gets **benched** and the degraded fleet
  answers the service port with a structured 503 + ``Retry-After``
  instead of refusing connections;
* cold workers hitting one key simulate **once fleet-wide**
  (cross-process single-flight), and a leader that died mid-compute
  has its stale lock taken over instead of deadlocking followers.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import ServerError
from repro.experiments.config import ExperimentConfig
from repro.resilience import RetryPolicy
from repro.serve import Client, FleetConfig, FleetSupervisor

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
SRC = os.path.join(REPO_ROOT, "src")

#: The tiny operating point every drill uses (seconds, not minutes).
TINY = ExperimentConfig(n_patterns=64, state_patterns=64)

CIRCUIT, LIBRARY = "t481", "cntfet-generalized"


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _get(url: str, timeout: float = 5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _wait(predicate, timeout_s: float, message: str) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(message)


@pytest.fixture
def fleet_env(tmp_path, monkeypatch):
    """A private disk cache + faults dir inherited by forked workers."""
    cache_dir = tmp_path / "cache"
    faults_dir = tmp_path / "faults"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    monkeypatch.delenv("REPRO_CACHE_DISABLE", raising=False)
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_DIR", raising=False)
    return {"cache": cache_dir, "faults": faults_dir}


def _start_fleet(workers: int, **overrides) -> FleetSupervisor:
    config = FleetConfig(workers=workers, port=0, config=TINY,
                         backoff_base_s=0.05, backoff_cap_s=0.5,
                         **overrides)
    fleet = FleetSupervisor(config)
    fleet.start()
    return fleet


class TestKill9MidRequest:
    """SIGKILL a worker mid-request under load: zero client failures."""

    def test_kill9_under_load_is_invisible_and_bit_identical(
            self, fleet_env, monkeypatch, tmp_path):
        from repro.api import Session

        # One fleet-wide kill ticket: a worker dies after admitting
        # and reading an /v1/estimate request, before answering.
        monkeypatch.setenv("REPRO_FAULTS",
                           "worker.kill9:times=1,match=/v1/estimate")
        monkeypatch.setenv("REPRO_FAULTS_DIR",
                           str(fleet_env["faults"]))
        fleet = _start_fleet(3)
        try:
            _wait(lambda: fleet.n_ready() == 3, 60,
                  "fleet never became ready")
            results = []
            errors = []

            def load(index: int) -> None:
                client = Client(fleet.service_url, timeout=60.0,
                                retry=RetryPolicy(retries=6,
                                                  backoff_base_s=0.02,
                                                  backoff_cap_s=0.5))
                for _ in range(6):
                    try:
                        results.append(
                            client.estimate(CIRCUIT, LIBRARY, TINY))
                    except ServerError as exc:
                        errors.append(exc)

            threads = [threading.Thread(target=load, args=(i,))
                       for i in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert not errors, f"client-visible failures: {errors}"
            assert len(results) == 18
            direct = Session(TINY).run(CIRCUIT, LIBRARY)
            assert all(report.result == direct for report in results)

            # The fault actually fired and the supervisor healed it.
            log = fleet_env["faults"] / "faults.log"
            fired = [json.loads(line)
                     for line in log.read_text().splitlines()]
            assert [entry["point"] for entry in fired] == ["worker.kill9"]
            _wait(lambda: fleet.stats()["restarts_total"] >= 1, 30,
                  "supervisor never restarted the killed worker")
            _wait(lambda: fleet.n_live() == 3, 30,
                  "fleet never returned to full strength")
        finally:
            fleet.shutdown()


class TestCrashLoopBenching:
    """A doomed worker is benched; the fleet degrades with 503s."""

    def test_crash_loop_benches_and_degraded_503_has_retry_after(
            self, fleet_env, monkeypatch):
        # Every estimate kills the (only) worker: a crash loop.
        monkeypatch.setenv("REPRO_FAULTS",
                           "worker.kill9:times=inf,match=/v1/estimate")
        fleet = _start_fleet(1, crash_loop_threshold=2,
                             crash_loop_window_s=60.0)
        try:
            _wait(lambda: fleet.n_ready() == 1, 60,
                  "fleet never became ready")
            client = Client(fleet.service_url, timeout=10.0, retry=None)

            # Keep offering load: every estimate SIGKILLs the worker,
            # so each request either dies on the wire or meets the
            # transient degraded responder — until the supervisor
            # benches the slot.
            deadline = time.monotonic() + 60.0
            while (time.monotonic() < deadline
                   and fleet.stats()["n_benched"] < 1):
                try:
                    client.estimate(CIRCUIT, LIBRARY, TINY)
                except ServerError:
                    pass
                time.sleep(0.05)

            stats = fleet.stats()
            assert stats["n_benched"] == 1, \
                "crash-looping worker was never benched"
            assert stats["status"] == "degraded"
            assert stats["workers"][0]["state"] == "benched"
            assert stats["deaths_total"] >= 2
            # Once benched, the degraded responder owns the port: the
            # 503 is stable, not a race.
            with pytest.raises(ServerError) as excinfo:
                client.estimate(CIRCUIT, LIBRARY, TINY)
            assert excinfo.value.code == "degraded"
            assert excinfo.value.retry_after_s is not None
        finally:
            fleet.shutdown()


class TestCrossProcessSingleFlight:
    """N cold workers, one key: exactly one simulation fleet-wide."""

    def _admin_ports(self, fleet: FleetSupervisor, n: int):
        def ports():
            return [row["admin_port"]
                    for row in fleet.stats()["workers"]
                    if row["admin_port"]]
        _wait(lambda: len(ports()) == n, 30,
              "workers never heartbeated their admin ports")
        return ports()

    def test_concurrent_cold_queries_simulate_once(self, fleet_env):
        fleet = _start_fleet(3)
        try:
            _wait(lambda: fleet.n_ready() == 3, 60,
                  "fleet never became ready")
            # Hit each worker's *private admin* endpoint directly —
            # the service port might route all three connections to
            # one worker, which would test in-process coalescing
            # instead of the cross-process path.
            ports = self._admin_ports(fleet, 3)
            results = {}

            def cold_query(port: int) -> None:
                client = Client(f"http://127.0.0.1:{port}",
                                timeout=60.0, retry=None)
                results[port] = client.estimate(CIRCUIT, LIBRARY, TINY)

            threads = [threading.Thread(target=cold_query, args=(port,))
                       for port in ports]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert len(results) == 3
            reports = list(results.values())
            assert all(report.result == reports[0].result
                       for report in reports)

            aggregate = fleet.stats()["aggregate"]
            # The acceptance meter: summed across every worker, the
            # one key cost exactly one simulation.
            assert aggregate["counters"]["stats.cold"] == 1
            disk = aggregate["caches"]["disk"]
            assert disk["flight_leader"] == 1
            # The two non-leaders either waited on the leader's lock
            # (followers) or arrived after it published and took a
            # plain disk hit — scheduling jitter decides which.
            assert disk["flight_follower"] <= 2
            assert disk["flight_timeout"] == 0
        finally:
            fleet.shutdown()

    def test_dead_leaders_stale_lock_is_taken_over(self, fleet_env):
        # Round 1: let the fleet compute the entry so we learn the
        # activity key's on-disk paths.
        fleet = _start_fleet(1)
        try:
            _wait(lambda: fleet.n_ready() == 1, 60,
                  "fleet never became ready")
            client = Client(fleet.service_url, timeout=60.0, retry=None)
            first = client.estimate(CIRCUIT, LIBRARY, TINY)
        finally:
            fleet.shutdown()

        activity_dir = fleet_env["cache"] / "activity"
        entries = list(activity_dir.glob("*.json"))
        assert entries, "fleet never persisted the simulation"
        key = entries[0].stem

        # A leader died mid-compute: its entry never landed, but its
        # lock file (with a now-dead pid) did.  Fork-and-reap gives a
        # real dead pid on this host.
        import multiprocessing
        proc = multiprocessing.get_context("fork").Process(
            target=lambda: None)
        proc.start()
        dead_pid = proc.pid
        proc.join()
        for entry in entries:
            entry.unlink()
        lock_dir = fleet_env["cache"] / "_locks" / "activity"
        lock_dir.mkdir(parents=True, exist_ok=True)
        (lock_dir / f"{key}.lock").write_text(json.dumps(
            {"pid": dead_pid, "host": os.uname().nodename,
             "time": time.time()}))

        # Round 2: a fresh, cold fleet must take the stale lock over
        # and answer — not deadlock waiting for a ghost.
        fleet = _start_fleet(1)
        try:
            _wait(lambda: fleet.n_ready() == 1, 60,
                  "fleet never became ready")
            client = Client(fleet.service_url, timeout=60.0, retry=None)
            start = time.monotonic()
            second = client.estimate(CIRCUIT, LIBRARY, TINY)
            elapsed = time.monotonic() - start
            assert second.result == first.result
            # Takeover is prompt (dead-pid detection, not the age
            # fallback): well within the 30 s staleness window.
            assert elapsed < 20.0
            disk = fleet.stats()["aggregate"]["caches"]["disk"]
            assert disk["flight_takeover"] == 1
        finally:
            fleet.shutdown()


class TestFleetCLI:
    """The real ``repro serve --workers N`` process end to end."""

    def test_cli_fleet_serves_heals_and_drains(self, fleet_env,
                                               tmp_path):
        port = _free_port()
        control = _free_port()
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        env["REPRO_CACHE_DIR"] = str(fleet_env["cache"])
        env.pop("REPRO_FAULTS", None)
        env.pop("REPRO_FAULTS_DIR", None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--host", "127.0.0.1", "--port", str(port),
             "--control-port", str(control),
             "--workers", "3",
             "--patterns", "64", "--state-patterns", "64"],
            cwd=REPO_ROOT, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        base = f"http://127.0.0.1:{port}"
        control_base = f"http://127.0.0.1:{control}"
        try:
            def ready():
                if proc.poll() is not None:
                    raise AssertionError(
                        f"fleet exited early: {proc.stdout.read()}")
                try:
                    payload = _get(f"{control_base}/v1/healthz")
                    return payload["n_ready"] == 3
                except (urllib.error.URLError, OSError,
                        ConnectionError):
                    return False

            _wait(ready, 90, "CLI fleet never became ready")

            client = Client(base, timeout=60.0)
            report = client.estimate(CIRCUIT, LIBRARY, TINY)
            assert report.result.gate_count > 0

            # Kill one worker directly; the supervisor must replace it.
            payload = _get(f"{control_base}/v1/healthz")
            victim = next(row["pid"] for row in payload["workers"]
                          if row["pid"])
            os.kill(victim, signal.SIGKILL)
            _wait(lambda: _get(f"{control_base}/v1/healthz")
                  ["restarts_total"] >= 1, 30,
                  "CLI fleet never restarted the killed worker")
            _wait(lambda: _get(f"{control_base}/v1/healthz")
                  ["n_live"] == 3, 30,
                  "CLI fleet never returned to 3 live workers")

            # `repro fleet status` renders the same payload.
            status = subprocess.run(
                [sys.executable, "-m", "repro", "fleet", "status",
                 "--url", control_base],
                cwd=REPO_ROOT, env=env, capture_output=True, text=True,
                timeout=30)
            assert status.returncode == 0, status.stderr
            assert "3/3 live" in status.stdout
            assert "restart" in status.stdout

            # SIGTERM: rolling drain, exit 0.
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0, out
            assert "fleet shutdown complete" in out
            log_dir = os.environ.get("REPRO_FLEET_LOG_DIR")
            if log_dir:  # CI artifact hook
                os.makedirs(log_dir, exist_ok=True)
                with open(os.path.join(log_dir, "supervisor.log"),
                          "w", encoding="utf-8") as handle:
                    handle.write(out)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
