"""Graceful shutdown of the real server process.

These tests exercise ``python -m repro serve`` as an actual OS
process: SIGTERM must drain (finish what is in flight, refuse new
work) and exit 0 — the contract a supervisor like systemd or
Kubernetes relies on to roll the service without dropping requests.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
SRC = os.path.join(REPO_ROOT, "src")


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _get(url: str, timeout: float = 2.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _wait_ready(base: str, proc, timeout_s: float = 60.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out = proc.stdout.read() if proc.stdout else ""
            raise AssertionError(
                f"server exited early ({proc.returncode}): {out}")
        try:
            if _get(f"{base}/v1/healthz/ready")["status"] == "ready":
                return
        except (urllib.error.URLError, OSError, ConnectionError):
            pass  # 503 while warming arrives here as HTTPError
        time.sleep(0.05)
    raise AssertionError("server never became ready")


@pytest.fixture
def server(tmp_path):
    """A real ``repro serve`` subprocess; yields (proc, base_url)."""
    procs = []

    def start(*extra_args, env_extra=None):
        port = _free_port()
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        env.pop("REPRO_FAULTS", None)
        env.pop("REPRO_FAULTS_DIR", None)
        env.update(env_extra or {})
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--host", "127.0.0.1", "--port", str(port),
             "--patterns", "64", "--state-patterns", "64",
             *extra_args],
            cwd=REPO_ROOT, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        procs.append(proc)
        base = f"http://127.0.0.1:{port}"
        _wait_ready(base, proc)
        return proc, base

    yield start
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


class TestSigterm:
    def test_idle_sigterm_drains_and_exits_zero(self, server):
        proc, base = server()
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
        out = proc.stdout.read()
        assert "SIGTERM: draining" in out
        assert "shutdown complete" in out

    def test_sigterm_finishes_inflight_request_first(self, server):
        # An engine.latency fault holds one request open long enough
        # to SIGTERM around it; the request must still answer 200.
        proc, base = server(
            env_extra={"REPRO_FAULTS": "engine.latency:ms=1500,times=1"})

        outcome = {}

        def query():
            body = json.dumps({"circuit": "t481",
                               "library": "cmos"}).encode("utf-8")
            request = urllib.request.Request(
                f"{base}/v1/estimate", data=body,
                headers={"Content-Type": "application/json"})
            try:
                with urllib.request.urlopen(request, timeout=90) as resp:
                    outcome["status"] = resp.status
                    outcome["body"] = json.loads(resp.read())
            except Exception as exc:  # surfaced by the main thread
                outcome["error"] = exc

        worker = threading.Thread(target=query)
        worker.start()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if _get(f"{base}/v1/healthz")["inflight"] >= 1:
                break
            time.sleep(0.02)
        else:
            raise AssertionError("request never showed up in flight")

        proc.send_signal(signal.SIGTERM)
        # While draining, readiness flips and new work is refused.
        try:
            payload = _get(f"{base}/v1/healthz/ready")
            assert not payload.get("ready", True)
        except urllib.error.HTTPError as exc:
            assert exc.code == 503

        worker.join(timeout=90)
        assert proc.wait(timeout=90) == 0
        assert outcome.get("status") == 200, outcome
        assert outcome["body"]["circuit"] == "t481"
        out = proc.stdout.read()
        assert "draining (1 request(s) in flight)" in out
        assert "shutdown complete" in out
