"""Chaos suite: sweeps under injected faults.

The contract under test is the resilience tentpole's headline claim:
with ``REPRO_FAULTS`` firing (workers hard-killed mid-grid), the sweep
still completes and its stored records are **bit-identical** to a
clean run — retries are invisible to the numbers.

Fault budgets are shared across worker processes through
``REPRO_FAULTS_DIR`` ticket files; without it every fresh worker would
re-read the env and crash again, turning a one-shot fault into a
poison pill (which is exactly what the quarantine test exploits, via
``times=inf``).
"""

from __future__ import annotations

import json

import pytest

from repro import faults
from repro.api import Session
from repro.experiments import parallel as parallel_module
from repro.sweep.spec import SweepSpec


def _tiny_spec() -> SweepSpec:
    # 2 activity groups (one per library) x 2 pricing points each.
    return SweepSpec(circuits=("t481",),
                     libraries=("cmos", "cntfet-conventional"),
                     frequency=(1.0e9, 2.0e9),
                     n_patterns=(256,), state_patterns=256)


def _by_key(report):
    """Stored records keyed by task, with wall-clock noise dropped."""
    records = {}
    for record in report.store.records():
        record = dict(record)
        record.pop("elapsed_s", None)
        records[record["task_key"]] = record
    return records


@pytest.fixture(autouse=True)
def chaos_env(monkeypatch):
    """Two visible CPUs (the pool path must run on 1-CPU CI) and no
    leftover fault plan from other tests."""
    monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 2)
    monkeypatch.delenv(faults.ENV_FAULTS, raising=False)
    monkeypatch.delenv(faults.ENV_FAULTS_DIR, raising=False)
    faults.deactivate()
    yield
    faults.deactivate()


class TestCrashChaos:
    def test_worker_crash_is_bit_identical_to_clean_run(
            self, tmp_path, monkeypatch):
        clean = Session(jobs=1).sweep(_tiny_spec())
        assert clean.retried == 0 and clean.quarantined == 0

        state_dir = tmp_path / "faults"
        state_dir.mkdir()
        monkeypatch.setenv(faults.ENV_FAULTS, "worker.crash:times=1")
        monkeypatch.setenv(faults.ENV_FAULTS_DIR, str(state_dir))
        chaotic = Session(jobs=2).sweep(_tiny_spec())

        assert chaotic.retried >= 1
        assert chaotic.quarantined == 0
        assert chaotic.executed == clean.executed == 4
        assert _by_key(chaotic) == _by_key(clean)
        assert "quarantined=0" in chaotic.render()

        # The kill is on the record: one worker.crash line in the
        # shared fault log, written by the process that died.
        entries = [json.loads(line) for line in
                   (state_dir / "faults.log").read_text().splitlines()]
        assert [e["point"] for e in entries] == ["worker.crash"]
        assert "t481/" in entries[0]["context"]

    def test_persistent_crasher_is_quarantined_not_fatal(
            self, monkeypatch):
        # The cmos group kills every worker that ever touches it —
        # including the final single-worker isolation run — so its
        # tasks must end up poisoned while the other library's points
        # complete normally.
        monkeypatch.setenv(faults.ENV_FAULTS,
                           "worker.crash:times=inf,match=cmos")
        report = Session(jobs=2).sweep(_tiny_spec())

        assert report.quarantined == 2
        assert "quarantined=2" in report.render()
        store = report.store
        done = {record["task_key"] for record in store.records()}
        assert len(done) == 2
        assert all(record["library"] == "cntfet-conventional"
                   for record in store.records())
        poisoned = store.poison_keys()
        assert len(poisoned) == 2 and not (poisoned & done)
        poison = [record for record in store.all_records()
                  if record.get("poison")]
        assert all("quarantined" in record["reason"]
                   for record in poison)

    def test_quarantine_does_not_block_a_resumed_clean_run(
            self, monkeypatch):
        # A resume against the same store with the fault gone: the
        # poisoned keys are invisible to keys(), so the clean run
        # executes them and the grid finally completes in full.
        monkeypatch.setenv(faults.ENV_FAULTS,
                           "worker.crash:times=inf,match=cmos")
        first = Session(jobs=2).sweep(_tiny_spec())
        assert first.quarantined == 2

        monkeypatch.delenv(faults.ENV_FAULTS)
        resumed = Session(jobs=1).sweep(_tiny_spec(), store=first.store)
        assert resumed.executed == 2  # just the formerly poisoned pair
        assert resumed.quarantined == 0
        assert len(resumed.store.keys()) == 4
        assert _by_key(resumed) == _by_key(Session(jobs=1).sweep(
            _tiny_spec()))
