"""The parametric circuit-family grammar: ``family(param=value,...)``
specs anywhere a circuit name is accepted.

Covers the grammar itself (parse / normalize / error paths), instance
resolution through the registry (content-addressed, no generation
bump), the ``synth:rand`` family, and end-to-end flow through
:class:`repro.api.Session` and sweep stores.
"""

from __future__ import annotations

import pytest

from repro import registry
from repro.synth.aig import Aig
from repro.circuits.families import random_mapped_netlist, synth_rand
from repro.errors import ExperimentError
from repro.registry import (
    available_circuit_families,
    available_circuits,
    build_circuit,
    canonical_circuit,
    circuit_entry,
    circuit_family_entry,
    is_family_spec,
    normalize_family_spec,
    parse_family_spec,
    register_circuit_family,
    resolve_family_spec,
    unregister_circuit_family,
)
from repro.schema import PowerQuery
from repro.sweep.runner import run_sweep
from repro.sweep.spec import SweepSpec
from repro.sweep.store import JsonlResultStore

CANONICAL = "synth:rand(gates=60,seed=1,inputs=64,outputs=32)"


class TestSpecGrammar:
    def test_is_family_spec_is_syntactic(self):
        assert is_family_spec("synth:rand(gates=3)")
        assert is_family_spec("no-such-family()")
        assert not is_family_spec("t481")
        assert not is_family_spec("synth:rand(")
        assert not is_family_spec("f(g(x))")

    def test_parse_overlays_defaults(self):
        family, params = parse_family_spec("synth:rand(gates=80)")
        assert family == "synth:rand"
        assert params == {"gates": 80, "seed": 7,
                          "inputs": 64, "outputs": 32}
        assert isinstance(params["gates"], int)

    def test_parse_tolerates_whitespace(self):
        _, params = parse_family_spec("synth:rand( gates = 80 , seed=3 )")
        assert (params["gates"], params["seed"]) == (80, 3)

    def test_unknown_family_rejected(self):
        with pytest.raises(ExperimentError, match="circuit family"):
            parse_family_spec("synth:nope(gates=3)")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ExperimentError, match="no parameter"):
            parse_family_spec("synth:rand(depth=3)")

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(ExperimentError, match="given twice"):
            parse_family_spec("synth:rand(gates=3,gates=4)")

    def test_malformed_argument_rejected(self):
        with pytest.raises(ExperimentError, match="param=value"):
            parse_family_spec("synth:rand(gates)")

    def test_bad_value_rejected(self):
        with pytest.raises(ExperimentError, match="not a valid int"):
            parse_family_spec("synth:rand(gates=many)")

    def test_normalize_makes_every_parameter_explicit(self):
        # any spelling, any order -> one canonical string
        assert normalize_family_spec("synth:rand(seed=1,gates=60)") == \
            CANONICAL
        assert normalize_family_spec("synth:rand(gates=60,seed=1)") == \
            CANONICAL
        assert normalize_family_spec(CANONICAL) == CANONICAL


class TestResolution:
    def test_resolve_registers_instance(self):
        key = resolve_family_spec("synth:rand(gates=60,seed=1)")
        assert key == CANONICAL
        assert key in available_circuits()
        entry = circuit_entry(key)
        assert entry.family == "synth:rand"

    def test_canonical_circuit_accepts_any_spelling(self):
        assert canonical_circuit("synth:rand(seed=1,gates=60)") == CANONICAL
        assert canonical_circuit(CANONICAL) == CANONICAL
        # plain names keep resolving as before
        assert canonical_circuit("t481") == "t481"

    def test_resolve_does_not_bump_generation(self):
        spec = "synth:rand(gates=61,seed=987)"
        before = registry.generation()
        key = resolve_family_spec(spec)
        assert key in available_circuits()
        assert registry.generation() == before

    def test_family_registered_in_listing(self):
        assert "synth:rand" in available_circuit_families()
        entry = circuit_family_entry("synth:rand")
        assert dict(entry.defaults) == {"gates": 50000, "seed": 7,
                                        "inputs": 64, "outputs": 32}

    def test_replace_purges_instances_and_bumps(self):
        register_circuit_family(
            "test:fam", lambda n=4: synth_rand(gates=n, seed=0),
            defaults={"n": 4}, replace=True)
        try:
            key = resolve_family_spec("test:fam(n=5)")
            assert key in available_circuits()
            before = registry.generation()
            register_circuit_family(
                "test:fam", lambda n=4: synth_rand(gates=n, seed=1),
                defaults={"n": 4}, replace=True)
            assert key not in available_circuits()
            assert registry.generation() > before
        finally:
            unregister_circuit_family("test:fam", missing_ok=True)
        assert "test:fam" not in available_circuit_families()

    def test_unregister_purges_instances(self):
        register_circuit_family(
            "test:gone", lambda n=4: synth_rand(gates=n, seed=0),
            defaults={"n": 4})
        key = resolve_family_spec("test:gone(n=6)")
        unregister_circuit_family("test:gone")
        assert key not in available_circuits()
        with pytest.raises(ExperimentError):
            parse_family_spec("test:gone(n=6)")

    def test_unspellable_default_rejected(self):
        with pytest.raises(ExperimentError, match="cannot be spelled"):
            register_circuit_family(
                "test:bad", lambda xs=(): synth_rand(gates=4, seed=0),
                defaults={"xs": (1, 2)})
        assert "test:bad" not in available_circuit_families()


class TestSynthRand:
    def test_builds_the_requested_interface(self):
        aig = synth_rand(gates=40, seed=2, inputs=8, outputs=4)
        assert isinstance(aig, Aig)
        assert aig.n_pis == 8
        assert aig.n_pos == 4
        assert aig.n_nodes >= 40

    def test_deterministic_per_seed(self):
        one = synth_rand(gates=50, seed=3, inputs=8, outputs=4)
        two = synth_rand(gates=50, seed=3, inputs=8, outputs=4)
        assert one.n_nodes == two.n_nodes
        assert one.name == two.name
        other = synth_rand(gates=50, seed=4, inputs=8, outputs=4)
        assert (one.n_nodes, one.name) != (other.n_nodes, other.name)

    def test_instance_builds_through_registry(self):
        key = resolve_family_spec("synth:rand(gates=40,seed=2,"
                                  "inputs=8,outputs=4)")
        aig = build_circuit(key)
        assert aig.n_pis == 8 and aig.n_pos == 4

    def test_random_mapped_netlist_is_valid_and_deterministic(self, mlib):
        one = random_mapped_netlist(mlib, gates=30, seed=5)
        two = random_mapped_netlist(mlib, gates=30, seed=5)
        assert len(one.gates) == 30
        assert [g.cell for g in one.gates] == [g.cell for g in two.gates]
        assert [g.inputs for g in one.gates] == [
            g.inputs for g in two.gates]
        other = random_mapped_netlist(mlib, gates=30, seed=6)
        assert [g.cell for g in one.gates] != [g.cell for g in other.gates]


class TestEndToEnd:
    SPEC = "synth:rand(gates=120,seed=3,inputs=16,outputs=8)"

    def test_session_runs_a_family_spec(self, tiny_config):
        from repro.api import Session

        flow = Session(tiny_config).run(self.SPEC, "cmos")
        assert flow.circuit == normalize_family_spec(self.SPEC)
        assert flow.gate_count > 0
        assert flow.pt_w > 0

    def test_sweep_resumes_family_points_from_store(self, tmp_path):
        spec = SweepSpec(circuits=(self.SPEC,), libraries=("cmos",),
                         vdd=(0.9,), n_patterns=(512,))
        # the spec canonicalizes eagerly, so task keys are spelled-out
        assert spec.circuits == (normalize_family_spec(self.SPEC),)
        store = JsonlResultStore(tmp_path / "fam.jsonl")
        first = run_sweep(spec, store)
        assert (first.total, first.cached, first.executed) == (1, 0, 1)

        # a different spelling of the same point resumes from the store
        respelled = SweepSpec(
            circuits=("synth:rand(outputs=8,seed=3,gates=120,inputs=16)",),
            libraries=("cmos",), vdd=(0.9,), n_patterns=(512,))
        again = run_sweep(respelled, store)
        assert (again.total, again.cached, again.executed) == (1, 1, 0)

    def test_sweep_spec_rejects_bad_family_specs(self):
        with pytest.raises(ExperimentError, match="no parameter"):
            SweepSpec(circuits=("synth:rand(depth=9)",),
                      libraries=("cmos",), vdd=(0.9,), n_patterns=(512,))
        with pytest.raises(ExperimentError, match="unknown circuits"):
            SweepSpec(circuits=("nonsense",), libraries=("cmos",),
                      vdd=(0.9,), n_patterns=(512,))

    def test_family_parameters_fork_query_keys(self):
        base = PowerQuery(circuit=canonical_circuit(self.SPEC),
                          library="cmos")
        other = PowerQuery(
            circuit=canonical_circuit("synth:rand(gates=120,seed=4,"
                                      "inputs=16,outputs=8)"),
            library="cmos")
        assert base.query_key != other.query_key
