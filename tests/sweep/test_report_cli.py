"""Sweep reporting pivots and the ``repro sweep`` CLI commands."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.errors import ExperimentError
from repro.sweep.report import render_csv, render_table1, render_vdd_series
from repro.sweep.runner import run_sweep
from repro.sweep.spec import SweepSpec
from repro.sweep.store import JsonlResultStore

#: One small grid shared (session-cached via lru_cache-warmed workers)
#: by every reporting test.
SPEC = SweepSpec(circuits=("t481",), libraries=("generalized", "cmos"),
                 vdd=(0.8, 0.9), n_patterns=(1024,))


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    path = tmp_path_factory.mktemp("sweep") / "store.jsonl"
    store = JsonlResultStore(path)
    run_sweep(SPEC, store)
    return store


class TestReportPivots:
    def test_table1_pivot(self, store):
        text = render_table1(store.records())
        assert "### VDD=0.8 V, f=1 GHz, fanout=3, 1024 patterns" in text
        assert "### VDD=0.9 V" in text
        assert "**cntfet-generalized**" in text and "**cmos**" in text
        assert "| t481 |" in text

    def test_vdd_series_pivot(self, store):
        text = render_vdd_series(store.records())
        assert "### t481 on cntfet-generalized" in text
        assert "### t481 on cmos" in text
        # One row per supply voltage, ascending.
        block = text.split("### t481 on cmos")[1]
        assert block.index("| 0.8 |") < block.index("| 0.9 |")

    def test_csv_dump(self, store):
        text = render_csv(store.records())
        lines = text.strip().splitlines()
        assert lines[0].startswith("circuit,library,vdd,")
        assert len(lines) == 1 + SPEC.size()

    def test_backends_never_merge(self, store):
        """Records from different estimator backends stay in separate
        blocks/series and are never averaged together."""
        import copy

        records = [record for record in store.records()
                   if record["config"]["vdd"] == 0.9]
        other = []
        for record in records:
            clone = copy.deepcopy(record)
            clone["config"]["backend"] = "spice-transient"
            clone["task_key"] = record["task_key"] + "-spice"
            other.append(clone)
        mixed = records + other
        table = render_table1(mixed)
        assert ", spice-transient" in table
        # Two point blocks, each listing t481 exactly once per library.
        for block in table.split("### ")[1:]:
            assert block.count("| t481 |") == 2  # two libraries
            assert "Average" not in block        # never across backends
        series = render_vdd_series(mixed)
        assert series.count("### t481 on cmos") == 2
        csv_text = render_csv(mixed)
        assert "backend" in csv_text.splitlines()[0]
        assert csv_text.count("spice-transient") == len(other)

    def test_legacy_records_without_backend_field(self, store):
        """Pre-backend stores report as bitsim (no crash, no suffix)."""
        import copy

        legacy = []
        for record in store.records():
            clone = copy.deepcopy(record)
            del clone["config"]["backend"]
            legacy.append(clone)
        assert "spice" not in render_table1(legacy)
        assert render_csv(legacy).count(",bitsim,") == len(legacy)

    def test_empty_store_rejected(self, tmp_path):
        empty = JsonlResultStore(tmp_path / "empty.jsonl")
        with pytest.raises(ExperimentError, match="no points"):
            render_table1(empty.records())
        with pytest.raises(ExperimentError, match="no points"):
            render_vdd_series(empty.records())


class TestSweepCli:
    def test_parser_accepts_sweep_flags(self):
        args = build_parser().parse_args(
            ["sweep", "run", "--vdd", "0.8,0.9", "--circuits", "t481",
             "--store", "s.jsonl", "--jobs", "2", "--quiet"])
        assert args.vdd == "0.8,0.9"
        assert args.store == "s.jsonl"
        assert args.jobs == 2

    def test_run_report_status_roundtrip(self, tmp_path, capsys):
        store = str(tmp_path / "cli.jsonl")
        grid = ["--circuits", "t481", "--libraries", "cmos",
                "--vdd", "0.8,0.9", "--patterns", "512"]
        assert main(["sweep", "run", *grid, "--store", store,
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "executed=2" in out and "cached=0" in out

        # Re-run: everything served from the store.
        assert main(["sweep", "run", *grid, "--store", store,
                     "--quiet"]) == 0
        assert "executed=0" in capsys.readouterr().out

        assert main(["sweep", "status", *grid, "--store", store]) == 0
        assert "missing=0" in capsys.readouterr().out

        assert main(["sweep", "report", "--store", store,
                     "--pivot", "vdd"]) == 0
        assert "t481 on cmos" in capsys.readouterr().out

    def test_status_incomplete_exits_nonzero(self, tmp_path, capsys):
        store = str(tmp_path / "missing.jsonl")
        assert main(["sweep", "status", "--circuits", "t481",
                     "--libraries", "cmos", "--patterns", "512",
                     "--store", store]) == 1
        assert "missing=1" in capsys.readouterr().out

    def test_spec_emit_and_reuse(self, tmp_path, capsys):
        spec_file = str(tmp_path / "spec.json")
        assert main(["sweep", "spec", "--circuits", "t481",
                     "--vdd", "0.8", "--patterns", "512",
                     "--libraries", "cmos", "-o", spec_file]) == 0
        assert "1 points" in capsys.readouterr().out

        # Axis flags override the spec file's entries.
        store = str(tmp_path / "spec-run.jsonl")
        assert main(["sweep", "run", "--spec", spec_file,
                     "--vdd", "0.9", "--store", store, "--quiet"]) == 0
        assert "total=1" in capsys.readouterr().out
        loaded = JsonlResultStore(store)
        assert [record["config"]["vdd"]
                for record in loaded.records()] == [0.9]

    def test_report_to_file_and_csv(self, tmp_path, capsys):
        store = str(tmp_path / "csv.jsonl")
        assert main(["sweep", "run", "--circuits", "t481", "--libraries",
                     "cmos", "--patterns", "512", "--store", store,
                     "--quiet"]) == 0
        capsys.readouterr()
        out_file = str(tmp_path / "dump.csv")
        assert main(["sweep", "report", "--store", store,
                     "--format", "csv", "-o", out_file]) == 0
        assert "wrote" in capsys.readouterr().out
        with open(out_file, "r", encoding="utf-8") as handle:
            header = handle.readline()
        assert header.startswith("circuit,library,vdd,")

    def test_bad_synthesize_flag(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "run", "--synthesize", "maybe"])
