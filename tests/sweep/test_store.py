"""Result store backends and resume semantics."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.flow import CircuitFlowResult
from repro.sweep.spec import SweepSpec
from repro.sweep.store import (
    JsonlResultStore,
    SqliteResultStore,
    flow_result,
    open_store,
    record_for,
    require_store,
    sweep_status,
)


def _fake_record(key_suffix: str = "a", pt_w: float = 1e-6) -> dict:
    return {
        "task_key": f"key-{key_suffix}",
        "circuit": "t481",
        "library": "cmos",
        "config": SweepSpec(circuits=("t481",)).expand()[0].config.to_dict(),
        "result": {
            "circuit": "t481", "library": "cmos", "gate_count": 50,
            "delay_s": 5.445e-10, "pd_w": 2.4e-6, "ps_w": 2.1e-7,
            "pg_w": 1.7e-8, "pt_w": pt_w, "edp_js": 1.6e-24,
        },
        "elapsed_s": 0.01,
    }


class TestOpenStore:
    def test_suffix_dispatch(self, tmp_path):
        assert isinstance(open_store(tmp_path / "s.jsonl"), JsonlResultStore)
        assert isinstance(open_store(tmp_path / "s.txt"), JsonlResultStore)
        assert isinstance(open_store(tmp_path / "s.sqlite"),
                          SqliteResultStore)
        assert isinstance(open_store(tmp_path / "s.db"), SqliteResultStore)

    def test_require_store_missing(self, tmp_path):
        with pytest.raises(ExperimentError, match="does not exist"):
            require_store(tmp_path / "absent.jsonl")

    def test_open_for_read_creates_nothing(self, tmp_path):
        from repro.sweep.store import open_store_for_read

        path = tmp_path / "absent.sqlite"
        store = open_store_for_read(path)
        assert store.keys() == set()
        assert not path.exists()
        # An existing sqlite store still opens as sqlite.
        real = tmp_path / "real.sqlite"
        SqliteResultStore(real).append(_fake_record("a"))
        assert open_store_for_read(real).keys() == {"key-a"}


@pytest.mark.parametrize("suffix", ["jsonl", "sqlite"])
class TestBackends:
    def test_roundtrip_and_keys(self, tmp_path, suffix):
        store = open_store(tmp_path / f"s.{suffix}")
        assert store.keys() == set()
        assert len(store) == 0
        store.append(_fake_record("a"))
        store.append(_fake_record("b"))
        assert store.keys() == {"key-a", "key-b"}
        assert len(store) == 2
        assert store.get("key-a")["circuit"] == "t481"
        assert store.get("key-zzz") is None

    def test_last_write_wins(self, tmp_path, suffix):
        store = open_store(tmp_path / f"s.{suffix}")
        store.append(_fake_record("a", pt_w=1e-6))
        store.append(_fake_record("a", pt_w=2e-6))
        records = store.records()
        assert len(records) == 1
        assert records[0]["result"]["pt_w"] == 2e-6

    def test_reopen_persists(self, tmp_path, suffix):
        path = tmp_path / f"s.{suffix}"
        open_store(path).append(_fake_record("a"))
        assert open_store(path).keys() == {"key-a"}


class TestJsonlRobustness:
    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = JsonlResultStore(path)
        store.append(_fake_record("a"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"task_key": "key-b", "trunc')  # killed writer
        assert store.keys() == {"key-a"}
        assert len(store.records()) == 1

    def test_blank_lines_and_foreign_json_skipped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = JsonlResultStore(path)
        store.append(_fake_record("a"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n[1, 2, 3]\n{}\n")
        assert store.keys() == {"key-a"}


class TestRecordHelpers:
    def test_record_roundtrips_floats_exactly(self, tmp_path):
        flow = CircuitFlowResult(
            circuit="t481", library="cmos", gate_count=50,
            delay_s=5.445543603246099e-10, pd_w=3.02435612524462e-06,
            ps_w=2.3945957189475917e-07, pg_w=1.9035000000000014e-08,
            pt_w=3.7365041159260723e-06, edp_js=2.0347296086983944e-24)
        task = SweepSpec(circuits=("t481",),
                         libraries=("cmos",)).expand()[0]
        record = record_for(task, flow, 0.5)
        store = JsonlResultStore(tmp_path / "s.jsonl")
        store.append(record)
        loaded = store.records()[0]
        # JSON round-trips doubles exactly: frozen-dataclass equality
        # is bit-exact.
        assert flow_result(loaded) == flow
        assert json.dumps(loaded["result"], sort_keys=True) == \
               json.dumps(record["result"], sort_keys=True)


class TestStatus:
    def test_counts_and_missing_preview(self, tmp_path):
        spec = SweepSpec(circuits=("t481",), libraries=("cmos",),
                         vdd=(0.8, 0.9), n_patterns=(1024,))
        store = JsonlResultStore(tmp_path / "s.jsonl")
        tasks = spec.expand()
        record = _fake_record("x")
        record["task_key"] = tasks[0].task_key
        store.append(record)
        status = sweep_status(spec, store)
        assert status["total"] == 2
        assert status["done"] == 1
        assert status["missing"] == 1
        assert status["missing_preview"][0]["vdd"] == tasks[1].config.vdd
