"""The grouped sweep runner: one simulation per activity group,
bit-identical to the per-point path — including the full 12x3 paper
grid acceptance check."""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.experiments.config import ExperimentConfig
from repro.sim import activity
from repro.sweep.runner import (
    activity_group_key,
    group_tasks,
    run_sweep_task,
)
from repro.sweep.spec import SweepSpec
from repro.sweep.store import flow_result

PATTERNS = 2048

FIVE_FREQUENCIES = (0.5e9, 1.0e9, 1.5e9, 2.0e9, 2.5e9)


def _smoke_spec(**overrides) -> SweepSpec:
    base = dict(circuits=("t481", "C1908"),
                libraries=("generalized", "cmos"),
                frequency=FIVE_FREQUENCIES,
                n_patterns=(PATTERNS,), state_patterns=PATTERNS)
    base.update(overrides)
    return SweepSpec(**base)


class TestGrouping:
    def test_2x2x5_grid_collapses_to_4_groups(self):
        spec = _smoke_spec()
        tasks = spec.expand()
        assert len(tasks) == 20
        groups = group_tasks(tasks)
        assert len(groups) == 4
        assert sorted(len(group) for group in groups) == [5, 5, 5, 5]
        # Grid order is preserved within and across groups.
        flat = [task.task_key for group in groups for task in group]
        assert len(set(flat)) == 20

    def test_pricing_axes_share_a_group(self):
        spec = _smoke_spec(circuits=("t481",), libraries=("cmos",),
                           vdd=(0.8, 0.9), fanout=(1, 3))
        keys = {activity_group_key(task) for task in spec.expand()}
        assert len(keys) == 1

    def test_activity_axes_split_groups(self):
        spec = _smoke_spec(circuits=("t481",), libraries=("cmos",),
                           frequency=(1.0e9,), n_patterns=(512, 1024))
        keys = {activity_group_key(task) for task in spec.expand()}
        assert len(keys) == 2


class TestGroupedExecution:
    def test_one_simulation_per_group(self, tmp_path):
        activity.clear_cache()
        spec = _smoke_spec()
        report = Session().sweep(spec, tmp_path / "smoke.jsonl")
        assert report.executed == 20
        assert report.groups == 4
        # The four groups have four distinct netlist structures here
        # (two circuits x two structurally different libraries).
        assert report.simulations == 4
        assert "groups=4" in report.render()
        assert "simulations=4" in report.render()

        again = Session().sweep(spec, tmp_path / "smoke.jsonl")
        assert again.executed == 0
        assert again.simulations == 0

    def test_bit_identical_to_per_point_path(self, tmp_path):
        spec = _smoke_spec(frequency=(0.5e9, 2.0e9), vdd=(0.8, 0.9),
                           fanout=(1, 3))
        report = Session().sweep(spec, tmp_path / "grid.jsonl")
        store = report.store
        for task in spec.expand():
            grouped = store.get(task.task_key)
            per_point = run_sweep_task(task)
            assert grouped["result"] == per_point["result"]
            assert flow_result(grouped) == flow_result(per_point)

    def test_non_bitsim_backend_falls_back_per_point(self, tmp_path):
        spec = SweepSpec(circuits=("t481",), libraries=("generalized",),
                         frequency=(1.0e9, 2.0e9), n_patterns=(512,),
                         state_patterns=512, backend="spice-transient")
        report = Session().sweep(spec, tmp_path / "transient.jsonl")
        assert report.executed == 2
        assert report.groups == 1
        # The fallback still shares the cached activity: one simulation.
        assert report.simulations <= 1
        for task in spec.expand():
            stored = report.store.get(task.task_key)
            per_point = run_sweep_task(task)
            assert stored["result"] == per_point["result"]


class TestFullPaperGridIdentity:
    """The acceptance criterion: the grouped runner reproduces the
    per-point ``estimate_circuit_power`` path bit for bit across the
    full 12-benchmark x 3-library paper grid at 4096 patterns."""

    @pytest.fixture(scope="class")
    def grid(self):
        spec = SweepSpec(frequency=(1.0e9, 2.0e9),
                         n_patterns=(4096,), state_patterns=4096)
        report = Session().sweep(spec)
        return spec, report

    def test_dimensions(self, grid):
        spec, report = grid
        assert report.executed == 12 * 3 * 2
        assert report.groups == 12 * 3
        # cmos and cntfet-conventional share cell topologies, so some
        # circuits map structurally identically on both — the content-
        # addressed stats cache legitimately shares those simulations.
        assert report.simulations <= report.groups

    def test_every_cell_matches_estimate_circuit_power(self, grid):
        from repro.experiments.config import PAPER_CONFIG
        from repro.power.model import PowerParameters
        from repro.sim.estimator import estimate_circuit_power
        from repro.sweep.runner import _task_netlist

        spec, report = grid
        checked = 0
        for task in spec.expand():
            config = task.config
            netlist = _task_netlist(task)
            expected = estimate_circuit_power(
                netlist,
                PowerParameters(vdd=config.vdd,
                                frequency=config.frequency,
                                fanout=config.fanout),
                n_patterns=config.n_patterns, seed=config.seed,
                state_patterns=config.state_patterns)
            stored = flow_result(report.store.get(task.task_key))
            assert stored.pd_w == expected.p_dynamic
            assert stored.ps_w == expected.p_static
            assert stored.pg_w == expected.p_gate_leak
            assert stored.pt_w == expected.p_total
            assert stored.delay_s == expected.delay
            assert stored.gate_count == expected.gate_count
            checked += 1
        assert checked == 72
        assert PAPER_CONFIG.n_patterns == 640_000  # grid is the fast twin

    def test_paper_point_matches_table1(self, grid):
        """Chain the identity through the Table 1 harness as well."""
        spec, report = grid
        config = ExperimentConfig(n_patterns=4096, state_patterns=4096)
        table = Session(config).table1(benchmarks=["t481", "C1355"])
        for name in table.benchmark_order:
            for key, flow in table.results[name].items():
                match = [task for task in spec.expand()
                         if task.circuit == name and task.library == key
                         and task.config == config]
                assert len(match) == 1
                assert flow_result(report.store.get(
                    match[0].task_key)) == flow
