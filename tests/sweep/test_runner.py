"""Sweep execution: resume semantics and bit-identity with Table 1."""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.table1 import reproduce_table1
from repro.sweep.runner import run_sweep, run_sweep_task
from repro.sweep.spec import SweepSpec
from repro.sweep.store import JsonlResultStore, flow_result

#: Tiny but non-degenerate budget; matches the parallel-runner tests.
PATTERNS = 2048


def _tiny_spec(**overrides) -> SweepSpec:
    base = dict(circuits=("t481",), libraries=("generalized", "cmos"),
                vdd=(0.8, 0.9), n_patterns=(PATTERNS,))
    base.update(overrides)
    return SweepSpec(**base)


class TestRunAndResume:
    def test_full_run_then_all_cached(self, tmp_path):
        spec = _tiny_spec()
        store = JsonlResultStore(tmp_path / "s.jsonl")
        first = run_sweep(spec, store)
        assert (first.total, first.cached, first.executed) == (4, 0, 4)
        assert store.keys() == {task.task_key for task in spec.expand()}

        again = run_sweep(spec, store)
        assert (again.total, again.cached, again.executed) == (4, 4, 0)

    def test_partial_store_runs_only_missing(self, tmp_path):
        spec = _tiny_spec()
        store = JsonlResultStore(tmp_path / "s.jsonl")
        tasks = spec.expand()
        # Pre-seed two of the four points.
        for task in tasks[:2]:
            store.append(run_sweep_task(task))
        report = run_sweep(spec, store)
        assert (report.total, report.cached, report.executed) == (4, 2, 2)
        assert store.keys() == {task.task_key for task in tasks}

    def test_overlapping_specs_share_points(self, tmp_path):
        store = JsonlResultStore(tmp_path / "s.jsonl")
        run_sweep(_tiny_spec(vdd=(0.9,)), store)
        # The wider sweep reuses the vdd=0.9 points it contains.
        report = run_sweep(_tiny_spec(vdd=(0.8, 0.9)), store)
        assert (report.total, report.cached, report.executed) == (4, 2, 2)

    def test_verbose_stream(self, tmp_path):
        lines = []
        spec = _tiny_spec(vdd=(0.9,), libraries=("cmos",))
        run_sweep(spec, JsonlResultStore(tmp_path / "s.jsonl"),
                  verbose=True, echo=lines.append)
        assert len(lines) == 1
        assert "t481" in lines[0] and "vdd=0.90V" in lines[0]

    def test_report_render_is_greppable(self, tmp_path):
        spec = _tiny_spec(vdd=(0.9,), libraries=("cmos",))
        store = JsonlResultStore(tmp_path / "s.jsonl")
        text = run_sweep(spec, store).render()
        assert "executed=1" in text and "cached=0" in text
        assert "executed=0" in run_sweep(spec, store).render()


class TestBitIdentity:
    def test_paper_point_matches_table1(self, tmp_path):
        """The acceptance criterion: a sweep containing the paper's
        operating point reproduces the Table 1 cells bit-identically
        (at the test-scale pattern budget)."""
        config = ExperimentConfig(n_patterns=PATTERNS,
                                  state_patterns=PATTERNS)
        table1 = reproduce_table1(config, benchmarks=["t481", "C1908"])

        spec = SweepSpec(circuits=("t481", "C1908"),
                         vdd=(0.8, 0.9),  # paper point plus one more
                         n_patterns=(PATTERNS,))
        store = JsonlResultStore(tmp_path / "s.jsonl")
        run_sweep(spec, store)

        for task in spec.expand():
            if task.config != config:
                continue
            stored = flow_result(store.get(task.task_key))
            expected = table1.results[task.circuit][task.library]
            # Frozen dataclasses of floats: equality is bit-exact.
            assert stored == expected

    def test_vdd_axis_recharacterizes_the_library(self, tmp_path):
        """The vdd axis must reach characterization, not just the Eq.
        2-5 scaling: cell timing (and so circuit delay) is a function
        of the supply, so delay has to differ across vdd points."""
        spec = _tiny_spec(vdd=(0.7, 0.9), libraries=("cmos",))
        store = JsonlResultStore(tmp_path / "s.jsonl")
        run_sweep(spec, store)
        flows = {task.config.vdd: flow_result(store.get(task.task_key))
                 for task in spec.expand()}
        assert flows[0.7].delay_s != flows[0.9].delay_s
        # Static power must not be a pure linear rescale of the 0.9 V
        # leakage solve (Ioff itself depends on the supply).
        assert flows[0.7].ps_w / 0.7 != flows[0.9].ps_w / 0.9

    def test_jobs_knob_is_bit_identical(self, tmp_path):
        spec = _tiny_spec(vdd=(0.9,))
        serial = JsonlResultStore(tmp_path / "serial.jsonl")
        fanned = JsonlResultStore(tmp_path / "fanned.jsonl")
        run_sweep(spec, serial, jobs=1)
        run_sweep(spec, fanned, jobs=2)
        for task in spec.expand():
            assert flow_result(serial.get(task.task_key)) == \
                   flow_result(fanned.get(task.task_key))
