"""SweepSpec expansion, keys and (de)serialization."""

from __future__ import annotations

import pytest

from repro.circuits.suite import CMOS, CONVENTIONAL, GENERALIZED
from repro.errors import ExperimentError
from repro.experiments.config import PAPER_CONFIG
from repro.sweep.spec import SweepSpec, SweepTask


class TestExpansion:
    def test_default_spec_is_the_paper_grid(self):
        spec = SweepSpec()
        tasks = spec.expand()
        assert len(tasks) == 12 * 3 == spec.size()
        # Every expanded config at the default point IS the paper config.
        assert all(task.config == PAPER_CONFIG for task in tasks)

    def test_deterministic_order_and_keys(self):
        spec = SweepSpec(vdd=(0.7, 0.9), circuits=("t481", "C1355"),
                         libraries=("generalized", "cmos"),
                         n_patterns=(1024,))
        first = spec.expand()
        second = spec.expand()
        assert [task.task_key for task in first] == \
               [task.task_key for task in second]
        # Nesting: circuit outermost, then library, then vdd innermost.
        assert [(task.circuit, task.library, task.config.vdd)
                for task in first] == [
            ("t481", GENERALIZED, 0.7), ("t481", GENERALIZED, 0.9),
            ("t481", CMOS, 0.7), ("t481", CMOS, 0.9),
            ("C1355", GENERALIZED, 0.7), ("C1355", GENERALIZED, 0.9),
            ("C1355", CMOS, 0.7), ("C1355", CMOS, 0.9),
        ]

    def test_task_keys_are_content_hashes(self):
        base = SweepSpec(circuits=("t481",), n_patterns=(1024,))
        moved = SweepSpec(circuits=("t481",), n_patterns=(1024,),
                          vdd=(0.8,))
        keys = {task.task_key for task in base.expand()}
        moved_keys = {task.task_key for task in moved.expand()}
        assert keys.isdisjoint(moved_keys)
        # Separately-constructed identical specs share keys exactly.
        again = SweepSpec(circuits=("t481",), n_patterns=(1024,))
        assert {task.task_key for task in again.expand()} == keys

    def test_shared_points_share_keys_across_specs(self):
        small = SweepSpec(circuits=("t481",), vdd=(0.9,),
                          n_patterns=(1024,))
        wide = SweepSpec(circuits=("t481",), vdd=(0.7, 0.8, 0.9),
                         n_patterns=(1024,))
        small_keys = {task.task_key for task in small.expand()}
        wide_keys = {task.task_key for task in wide.expand()}
        assert small_keys < wide_keys

    def test_state_patterns_capped_like_scaled(self):
        spec = SweepSpec(circuits=("t481",), n_patterns=(2048, 640_000))
        by_patterns = {task.config.n_patterns: task.config
                       for task in spec.expand()}
        assert by_patterns[2048].state_patterns == 2048
        assert by_patterns[640_000].state_patterns == 65_536

    def test_scalars_and_axes_accepted(self):
        spec = SweepSpec(vdd=0.8, fanout=4, circuits=("t481",))
        assert spec.vdd == (0.8,)
        assert spec.fanout == (4,)

    def test_duplicates_dropped(self):
        spec = SweepSpec(vdd=(0.9, 0.9), libraries=("cmos", CMOS),
                         circuits=("t481",))
        assert spec.vdd == (0.9,)
        assert spec.libraries == (CMOS,)


class TestValidation:
    def test_unknown_circuit(self):
        with pytest.raises(ExperimentError, match="unknown circuits"):
            SweepSpec(circuits=("nonesuch",))

    def test_unknown_library(self):
        with pytest.raises(ExperimentError, match="unknown library"):
            SweepSpec(libraries=("ttl",))

    def test_empty_axis(self):
        with pytest.raises(ExperimentError, match="must not be empty"):
            SweepSpec(vdd=())

    def test_nonpositive_axis_values(self):
        with pytest.raises(ExperimentError, match="must be > 0"):
            SweepSpec(vdd=(0.0,))
        with pytest.raises(ExperimentError, match="must be >= 1"):
            SweepSpec(n_patterns=(0,))

    def test_library_aliases_canonicalized(self):
        spec = SweepSpec(libraries=("generalized", "conventional", "cmos"))
        assert spec.libraries == (GENERALIZED, CONVENTIONAL, CMOS)


class TestSerialization:
    def test_roundtrip(self):
        spec = SweepSpec(vdd=(0.7, 0.9), circuits=("t481",),
                         libraries=("cmos",), n_patterns=(1024,), seed=7)
        again = SweepSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.spec_hash == spec.spec_hash

    def test_from_file(self, tmp_path):
        spec = SweepSpec(circuits=("t481",), vdd=(0.8,))
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert SweepSpec.from_file(str(path)) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(ExperimentError, match="unknown SweepSpec"):
            SweepSpec.from_dict({"voltage": [0.9]})

    def test_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError, match="cannot read"):
            SweepSpec.from_file(str(tmp_path / "absent.json"))

    def test_experiment_config_roundtrip(self):
        config = SweepSpec(circuits=("t481",)).expand()[0].config
        from repro.experiments.config import ExperimentConfig

        assert ExperimentConfig.from_dict(config.to_dict()) == config

    def test_experiment_config_unknown_field(self):
        from repro.experiments.config import ExperimentConfig

        with pytest.raises(ExperimentError, match="unknown ExperimentConfig"):
            ExperimentConfig.from_dict({"voltage": 0.9})


class TestTaskKey:
    def test_key_ignores_nothing_that_matters(self):
        task = SweepTask("t481", CMOS, PAPER_CONFIG)
        same = SweepTask("t481", CMOS, PAPER_CONFIG)
        assert task.task_key == same.task_key
        other = SweepTask("t481", CMOS, PAPER_CONFIG.scaled(1024))
        assert other.task_key != task.task_key
