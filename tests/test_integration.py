"""End-to-end integration: the full pipeline on small circuits, plus
the package-level helpers."""

import pytest

from repro import __version__
from repro.circuits.adders import ripple_adder_circuit
from repro.circuits.ecc import hamming_corrector
from repro.experiments.config import ExperimentConfig
from repro.experiments.flow import run_circuit_flow
from repro.registry import paper_libraries
from repro.gates.genlib import parse_genlib, write_genlib
from repro.sim.bitsim import BitParallelSimulator
from repro.synth.mapper import map_aig
from repro.synth.scripts import resyn2rs
from repro.units import engineering, to_attofarads, to_picoseconds


class TestFullPipeline:
    def test_synthesize_map_simulate_everywhere(self):
        """Adder: synth once, map on all three libraries, verify
        function via bit-parallel simulation against the AIG."""
        aig = ripple_adder_circuit(4)
        optimized = resyn2rs(aig, verify=True)
        for library in paper_libraries().values():
            netlist = map_aig(optimized, library)
            netlist.validate()
            words = BitParallelSimulator(netlist).output_words(512, seed=99)
            reference = _aig_output_words(optimized, 512, seed=99)
            for name in optimized.po_names:
                assert (words[name] == reference[name]).all(), (
                    f"{library.name}:{name}")

    def test_power_flow_on_real_circuit(self):
        config = ExperimentConfig(n_patterns=4096, state_patterns=4096)
        libraries = paper_libraries()
        aig = hamming_corrector(4)
        results = {key: run_circuit_flow(aig, lib, config)
                   for key, lib in libraries.items()}
        cmos = results["cmos"]
        generalized = results["cntfet-generalized"]
        assert generalized.pt_w < cmos.pt_w
        assert generalized.delay_s < cmos.delay_s / 3
        assert generalized.edp_js < cmos.edp_js / 5

    def test_genlib_files_written_for_all_libraries(self, tmp_path):
        for key, library in paper_libraries().items():
            path = tmp_path / f"{key}.genlib"
            path.write_text(write_genlib(library))
            parsed = parse_genlib(path.read_text())
            assert len(parsed) == len(library)


def _aig_output_words(aig, n_patterns, seed):
    import numpy as np
    rng = np.random.default_rng(seed)
    n_words = (n_patterns + 63) // 64
    tail = n_patterns - (n_words - 1) * 64
    mask = np.uint64((1 << tail) - 1) if tail < 64 else np.uint64(2**64 - 1)
    pi_words = []
    for _ in range(aig.n_pis):
        w = rng.integers(0, 2**64, size=n_words, dtype=np.uint64)
        w[-1] &= mask
        pi_words.append(int.from_bytes(
            w.astype("<u8").tobytes(), "little"))
    outs = aig.simulate(pi_words, n_words * 64)
    result = {}
    for name, value in zip(aig.po_names, outs):
        words = np.frombuffer(
            value.to_bytes(n_words * 8, "little"), dtype="<u8").copy()
        words[-1] &= mask
        result[name] = words
    return result


class TestPackageSurface:
    def test_version(self):
        assert __version__

    def test_units(self):
        assert to_attofarads(52e-18) == pytest.approx(52.0)
        assert to_picoseconds(20e-12) == pytest.approx(20.0)
        assert engineering(3.2e-9, "A") == "3.200 nA"
        assert engineering(0.0) == "0.000"

    def test_public_imports(self):
        import repro
        assert hasattr(repro, "devices")
