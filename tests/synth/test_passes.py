"""Cuts, balancing, rewriting, refactoring: functional preservation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.synth.aig import Aig, lit_node, lit_not, lit_phase
from repro.synth.balance import balance
from repro.synth.cuts import enumerate_cuts
from repro.synth.rewrite import refactor, rewrite
from repro.synth.scripts import compress, resyn2rs
from repro.synth.truth import evaluate


@st.composite
def random_aigs(draw, n_pis=4, max_ops=30):
    aig = Aig()
    literals = [aig.add_pi(f"x{i}") for i in range(n_pis)]
    for _ in range(draw(st.integers(min_value=2, max_value=max_ops))):
        op = draw(st.sampled_from(["and", "or", "xor", "mux"]))
        picks = [draw(st.sampled_from(literals)) for _ in range(3)]
        if draw(st.booleans()):
            picks[0] = lit_not(picks[0])
        if op == "mux":
            literals.append(aig.mux_(*picks))
        else:
            literals.append(getattr(aig, f"{op}_")(picks[0], picks[1]))
    aig.add_po(literals[-1], "f")
    aig.add_po(literals[len(literals) // 2], "g")
    return aig


class TestCuts:
    @given(aig=random_aigs())
    @settings(max_examples=40, deadline=None)
    def test_cut_tables_match_cone_function(self, aig):
        """Every enumerated cut's table equals brute-force evaluation
        of the cone over the cut leaves."""
        cuts = enumerate_cuts(aig, cut_size=4, cut_limit=6)
        checked = 0
        for node in aig.and_nodes():
            for cut in cuts[node][:3]:
                for assignment in range(1 << cut.size):
                    leaf_values = {
                        leaf: bool((assignment >> i) & 1)
                        for i, leaf in enumerate(cut.leaves)}
                    value = _evaluate_cone(aig, node, leaf_values)
                    bits = [(assignment >> i) & 1
                            for i in range(cut.size)]
                    assert bool(evaluate(cut.table, bits)) == value
                checked += 1
        # Some random AIGs fold entirely to constants; only require
        # checks when AND nodes actually exist.
        assert checked > 0 or aig.n_nodes == 0

    def test_trivial_cut_always_first(self):
        aig = Aig()
        a, b = aig.add_pi(), aig.add_pi()
        x = aig.and_(a, b)
        aig.add_po(x)
        cuts = enumerate_cuts(aig)
        node = lit_node(x)
        assert cuts[node][0].is_trivial_for(node)

    def test_cut_limit_respected(self):
        aig = Aig()
        pis = [aig.add_pi() for _ in range(6)]
        x = aig.and_many(pis)
        aig.add_po(x)
        cuts = enumerate_cuts(aig, cut_size=4, cut_limit=3)
        for node in aig.and_nodes():
            assert len(cuts[node]) <= 4  # trivial + limit


def _evaluate_cone(aig, node, leaf_values):
    """Evaluate a node given boolean values at the cut leaves."""
    memo = {}

    def walk(n):
        if n in memo:
            return memo[n]
        if n in leaf_values:
            return leaf_values[n]
        f0, f1 = aig.fanins(n)
        v0 = walk(lit_node(f0)) ^ bool(lit_phase(f0))
        v1 = walk(lit_node(f1)) ^ bool(lit_phase(f1))
        memo[n] = v0 and v1
        return memo[n]

    return walk(node)


class TestPassesPreserveFunction:
    @pytest.mark.parametrize("synthesis_pass",
                             [balance, rewrite, refactor, compress],
                             ids=["balance", "rewrite", "refactor",
                                  "compress"])
    @given(aig=random_aigs())
    @settings(max_examples=25, deadline=None)
    def test_signature_invariant(self, synthesis_pass, aig):
        before = aig.random_simulation_signature()
        after = synthesis_pass(aig).random_simulation_signature()
        assert before == after

    @given(aig=random_aigs(n_pis=5, max_ops=40))
    @settings(max_examples=10, deadline=None)
    def test_resyn2rs_with_internal_verification(self, aig):
        """resyn2rs(verify=True) raises if any pass changes function."""
        result = resyn2rs(aig, verify=True)
        assert result.n_pis == aig.n_pis


class TestQualityOfResults:
    def test_balance_reduces_chain_depth(self):
        aig = Aig()
        pis = [aig.add_pi() for _ in range(8)]
        chain = pis[0]
        for pi in pis[1:]:
            chain = aig.and_(chain, pi)
        aig.add_po(chain)
        assert aig.depth() == 7
        assert balance(aig).depth() == 3

    def test_rewrite_removes_redundancy(self):
        aig = Aig()
        a, b = aig.add_pi(), aig.add_pi()
        # (a & b) | (a & b) built without sharing opportunity for strash
        x = aig.and_(a, b)
        y = aig.or_(x, aig.and_(b, a))
        aig.add_po(y)
        result = rewrite(aig)
        assert result.n_nodes <= aig.n_nodes

    def test_no_blowup_on_multiplier(self):
        from repro.circuits.multiplier import array_multiplier
        aig = array_multiplier(6)
        optimized = resyn2rs(aig)
        assert optimized.n_nodes <= 1.2 * aig.n_nodes
        assert (optimized.random_simulation_signature()
                == aig.random_simulation_signature())
