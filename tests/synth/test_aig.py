"""AIG construction, strashing, simulation, compaction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.synth.aig import (
    Aig,
    AigError,
    FALSE,
    TRUE,
    lit_node,
    lit_not,
    lit_phase,
)


class TestLiterals:
    def test_encoding(self):
        assert lit_node(7) == 3
        assert lit_phase(7) == 1
        assert lit_not(6) == 7


class TestConstruction:
    def test_constant_folding(self):
        aig = Aig()
        a = aig.add_pi("a")
        assert aig.and_(a, FALSE) == FALSE
        assert aig.and_(a, TRUE) == a
        assert aig.and_(a, a) == a
        assert aig.and_(a, lit_not(a)) == FALSE

    def test_structural_hashing(self):
        aig = Aig()
        a, b = aig.add_pi(), aig.add_pi()
        x = aig.and_(a, b)
        y = aig.and_(b, a)
        assert x == y
        assert aig.n_nodes == 1

    def test_xor_structure(self):
        aig = Aig()
        a, b = aig.add_pi(), aig.add_pi()
        x = aig.xor_(a, b)
        aig.add_po(x)
        assert aig.evaluate([True, False]) == [True]
        assert aig.evaluate([True, True]) == [False]

    def test_mux(self):
        aig = Aig()
        s, a, b = aig.add_pi(), aig.add_pi(), aig.add_pi()
        aig.add_po(aig.mux_(s, a, b))
        assert aig.evaluate([True, True, False]) == [True]
        assert aig.evaluate([False, True, False]) == [False]

    def test_and_or_many(self):
        aig = Aig()
        pis = [aig.add_pi() for _ in range(5)]
        aig.add_po(aig.and_many(pis), "and")
        aig.add_po(aig.or_many(pis), "or")
        assert aig.evaluate([True] * 5) == [True, True]
        assert aig.evaluate([True, True, False, True, True]) == [False, True]
        assert aig.evaluate([False] * 5) == [False, False]

    def test_empty_and_many_is_true(self):
        aig = Aig()
        assert aig.and_many([]) == TRUE

    def test_bad_literal_rejected(self):
        aig = Aig()
        with pytest.raises(AigError):
            aig.and_(0, 99)
        with pytest.raises(AigError):
            aig.add_po(99)

    def test_names(self):
        aig = Aig()
        aig.add_pi("x")
        aig.add_po(TRUE, "one")
        assert aig.pi_names == ["x"]
        assert aig.po_names == ["one"]


class TestSimulation:
    def test_simulate_matches_evaluate(self):
        aig = Aig()
        a, b, c = (aig.add_pi() for _ in range(3))
        aig.add_po(aig.or_(aig.and_(a, b), aig.xor_(b, c)))
        for m in range(8):
            bits = [bool((m >> i) & 1) for i in range(3)]
            words = [1 if v else 0 for v in bits]
            assert aig.simulate(words, 1)[0] == (
                1 if aig.evaluate(bits)[0] else 0)

    def test_wide_simulation(self):
        aig = Aig()
        a, b = aig.add_pi(), aig.add_pi()
        aig.add_po(aig.and_(a, b))
        # patterns: a=0101..., b=0011...
        out = aig.simulate([0b0101, 0b0011], 4)[0]
        assert out == 0b0001

    def test_wrong_pi_count(self):
        aig = Aig()
        aig.add_pi()
        with pytest.raises(AigError):
            aig.simulate([1, 2], 2)

    def test_signature_deterministic(self):
        aig = Aig()
        a, b = aig.add_pi(), aig.add_pi()
        aig.add_po(aig.xor_(a, b))
        assert (aig.random_simulation_signature()
                == aig.random_simulation_signature())


class TestCompaction:
    def test_dangling_removed(self):
        aig = Aig()
        a, b, c = (aig.add_pi() for _ in range(3))
        used = aig.and_(a, b)
        aig.and_(b, c)  # dangling
        aig.add_po(used)
        compacted = aig.compact()
        assert compacted.n_nodes == 1
        assert compacted.n_pis == 3

    def test_function_preserved(self):
        aig = Aig()
        a, b, c = (aig.add_pi() for _ in range(3))
        aig.add_po(aig.mux_(a, aig.xor_(b, c), aig.and_(b, c)), "f")
        compacted = aig.compact()
        assert (compacted.random_simulation_signature()
                == aig.random_simulation_signature())

    def test_constant_po(self):
        aig = Aig()
        aig.add_pi()
        aig.add_po(TRUE, "one")
        compacted = aig.compact()
        assert compacted.evaluate([False]) == [True]


@st.composite
def random_aigs(draw):
    """Random 4-PI AIGs built from a seeded op list."""
    aig = Aig()
    literals = [aig.add_pi(f"x{i}") for i in range(4)]
    n_ops = draw(st.integers(min_value=1, max_value=25))
    for _ in range(n_ops):
        op = draw(st.sampled_from(["and", "or", "xor"]))
        a = draw(st.sampled_from(literals))
        b = draw(st.sampled_from(literals))
        if draw(st.booleans()):
            a = lit_not(a)
        result = getattr(aig, f"{op}_")(a, b)
        literals.append(result)
    aig.add_po(literals[-1], "f")
    return aig


class TestLevels:
    @given(aig=random_aigs())
    @settings(max_examples=50, deadline=None)
    def test_levels_monotone(self, aig):
        levels = aig.levels()
        for node in aig.and_nodes():
            f0, f1 = aig.fanins(node)
            assert levels[node] == 1 + max(levels[lit_node(f0)],
                                           levels[lit_node(f1)])

    @given(aig=random_aigs())
    @settings(max_examples=50, deadline=None)
    def test_reference_counts_match_fanouts(self, aig):
        refs = aig.reference_counts()
        total_edges = 2 * aig.n_nodes + aig.n_pos
        assert sum(refs) == total_edges
