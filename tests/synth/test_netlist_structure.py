"""Mapped-netlist structural queries and validation."""

import pytest

from repro.circuits.adders import ripple_adder_circuit
from repro.errors import SimulationError
from repro.synth.mapper import map_aig
from repro.synth.netlist import MappedGate, MappedNetlist, static_timing


@pytest.fixture(scope="module")
def netlist(glib):
    return map_aig(ripple_adder_circuit(3), glib)


class TestQueries:
    def test_driver_map_unique(self, netlist):
        drivers = netlist.driver_of()
        assert len(drivers) == netlist.gate_count
        for gate in netlist.gates:
            assert drivers[gate.output] is gate

    def test_fanout_map_covers_all_pins(self, netlist):
        fanouts = netlist.fanouts_of()
        total_pins = sum(len(g.inputs) for g in netlist.gates)
        assert sum(len(v) for v in fanouts.values()) == total_pins

    def test_cell_histogram_sums_to_gate_count(self, netlist):
        assert sum(netlist.cell_histogram().values()) == netlist.gate_count

    def test_total_area_and_devices_positive(self, netlist):
        assert netlist.total_area() > 0
        assert netlist.total_devices() >= 2 * netlist.gate_count

    def test_all_nets_ordering(self, netlist):
        nets = netlist.all_nets()
        assert nets[:len(netlist.pi_names)] == netlist.pi_names

    def test_net_loads_include_po_load(self, netlist):
        bare = netlist.net_loads(po_extra_load=0.0)
        loaded = netlist.net_loads(po_extra_load=1e-15)
        po_nets = {v for _, (k, v) in netlist.po_bindings if k == "net"}
        for net in po_nets:
            assert loaded[net] == pytest.approx(bare[net] + 1e-15)


class TestValidation:
    def _broken(self, netlist, gates):
        return MappedNetlist(
            name="broken", library=netlist.library,
            pi_names=list(netlist.pi_names),
            po_bindings=list(netlist.po_bindings), gates=gates)

    def test_use_before_definition(self, netlist):
        gates = [MappedGate("g0", "INV", ("nowhere",), "n_bad")]
        with pytest.raises(SimulationError):
            self._broken(netlist, gates).validate()

    def test_redefined_net(self, netlist):
        pi = netlist.pi_names[0]
        gates = [MappedGate("g0", "INV", (pi,), "x"),
                 MappedGate("g1", "INV", (pi,), "x")]
        with pytest.raises(SimulationError):
            self._broken(netlist, gates).validate()

    def test_multiply_driven_net_detected(self, netlist):
        pi = netlist.pi_names[0]
        gates = [MappedGate("g0", "INV", (pi,), "x"),
                 MappedGate("g1", "INV", (pi,), "x")]
        broken = self._broken(netlist, gates)
        with pytest.raises(SimulationError):
            broken.driver_of()

    def test_undefined_po_net(self, netlist):
        broken = MappedNetlist(
            name="broken", library=netlist.library,
            pi_names=list(netlist.pi_names),
            po_bindings=[("out", ("net", "missing"))], gates=[])
        with pytest.raises(SimulationError):
            broken.validate()


class TestTimingDetails:
    def test_arrival_monotone_along_paths(self, netlist):
        _, arrivals = static_timing(netlist)
        for gate in netlist.gates:
            gate_arrival = arrivals[gate.output]
            for net in gate.inputs:
                assert gate_arrival > arrivals[net]

    def test_po_load_affects_delay(self, netlist):
        small, _ = static_timing(netlist, po_extra_load=0.0)
        large, _ = static_timing(netlist, po_extra_load=1e-14)
        assert large > small
