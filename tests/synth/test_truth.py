"""Truth-table helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SynthesisError
from repro.synth import truth

tables4 = st.integers(min_value=0, max_value=(1 << 16) - 1)


class TestBasics:
    def test_variable_masks(self):
        assert truth.variable_mask(0, 2) == 0b1010
        assert truth.variable_mask(1, 2) == 0b1100

    def test_negate(self):
        assert truth.negate(0b1010, 2) == 0b0101

    def test_evaluate(self):
        xor = 0b0110
        assert truth.evaluate(xor, [1, 0]) == 1
        assert truth.evaluate(xor, [1, 1]) == 0

    def test_from_function(self):
        assert truth.from_function(lambda a, b: a and b, 2) == 0b1000

    def test_out_of_range_rejected(self):
        with pytest.raises(SynthesisError):
            truth.table_size(9)
        with pytest.raises(SynthesisError):
            truth.variable_mask(3, 2)


class TestStructure:
    def test_support(self):
        t = truth.variable_mask(0, 3)  # depends only on var 0
        assert truth.support(t, 3) == [0]

    def test_shrink_to_support(self):
        t = truth.variable_mask(2, 3)
        small, sup = truth.shrink_to_support(t, 3)
        assert sup == [2]
        assert small == 0b10

    def test_cofactors(self):
        t = 0b1000  # a AND b
        neg, pos = truth.cofactors(t, 0, 2)
        assert neg == 0
        assert pos == 0b1100  # equals b

    @given(t=tables4)
    @settings(max_examples=100, deadline=None)
    def test_shrink_preserves_function(self, t):
        small, sup = truth.shrink_to_support(t, 4)
        lifted = truth.expand(small, sup, 4)
        assert lifted == t


class TestPermutation:
    def test_permute_swap(self):
        and_ab = 0b1000
        assert truth.permute(and_ab, [1, 0], 2) == and_ab  # symmetric
        implies = 0b1011  # !a + b... depends asymmetrically
        swapped = truth.permute(implies, [1, 0], 2)
        assert swapped == 0b1101

    def test_bad_permutation(self):
        with pytest.raises(SynthesisError):
            truth.permute(0b1000, [0, 0], 2)

    @given(t=tables4, seed=st.integers(0, 23))
    @settings(max_examples=80, deadline=None)
    def test_permute_invertible(self, t, seed):
        import itertools
        perm = list(itertools.permutations(range(4)))[seed]
        inverse = [0] * 4
        for i, p in enumerate(perm):
            inverse[p] = i
        assert truth.permute(truth.permute(t, perm, 4), inverse, 4) == t

    @given(t=tables4)
    @settings(max_examples=60, deadline=None)
    def test_p_canonical_is_invariant(self, t):
        canon, _ = truth.p_canonical(t, 4)
        permuted = truth.permute(t, [2, 0, 3, 1], 4)
        canon2, _ = truth.p_canonical(permuted, 4)
        assert canon == canon2


class TestFlipVariable:
    def test_flip_semantics(self):
        t = 0b1000  # minterm 3 (a=1,b=1)
        flipped = truth.flip_variable(t, 0, 2)
        assert flipped == 0b0100  # now at a=0,b=1

    @given(t=tables4, var=st.integers(0, 3))
    @settings(max_examples=80, deadline=None)
    def test_flip_is_involution(self, t, var):
        assert truth.flip_variable(
            truth.flip_variable(t, var, 4), var, 4) == t

    @given(t=tables4, var=st.integers(0, 3))
    @settings(max_examples=80, deadline=None)
    def test_flip_matches_evaluation(self, t, var):
        flipped = truth.flip_variable(t, var, 4)
        for minterm in range(16):
            bits = [(minterm >> i) & 1 for i in range(4)]
            flipped_bits = list(bits)
            flipped_bits[var] ^= 1
            assert (truth.evaluate(flipped, bits)
                    == truth.evaluate(t, flipped_bits))
