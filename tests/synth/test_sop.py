"""ISOP extraction and algebraic factoring."""

from hypothesis import given, settings, strategies as st

from repro.synth.sop import (
    Cube,
    cubes_to_table,
    evaluate_expr,
    expr_literal_count,
    factor,
    isop,
)
from repro.synth.truth import evaluate, full_mask

tables = st.tuples(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0),
).map(lambda t: (t[0], t[1] % (1 << (1 << t[0]))))


class TestCube:
    def test_phase_lookup(self):
        cube = Cube(0b101, 0b001)  # a * !c
        assert cube.phase(0) == 1
        assert cube.phase(1) is None
        assert cube.phase(2) == 0

    def test_table(self):
        cube = Cube(0b11, 0b10)  # !a * b
        assert cube.table(2) == 0b0100

    def test_literals(self):
        cube = Cube(0b101, 0b100)
        assert cube.literals() == [(0, 0), (2, 1)]
        assert cube.n_literals() == 2


class TestIsop:
    def test_simple_functions(self):
        assert isop(0, 3) == []
        assert len(isop(full_mask(3), 3)) == 1
        and2 = isop(0b1000, 2)
        assert len(and2) == 1
        assert and2[0].n_literals() == 2

    def test_xor_needs_two_cubes(self):
        cubes = isop(0b0110, 2)
        assert len(cubes) == 2

    @given(spec=tables)
    @settings(max_examples=300, deadline=None)
    def test_cover_is_exact(self, spec):
        """ISOP must reproduce the function exactly for any table."""
        n, table = spec
        cubes = isop(table, n)
        assert cubes_to_table(cubes, n) == table

    @given(spec=tables)
    @settings(max_examples=150, deadline=None)
    def test_cover_is_irredundant(self, spec):
        """Removing any cube must lose at least one minterm."""
        n, table = spec
        cubes = isop(table, n)
        for skip in range(len(cubes)):
            reduced = cubes[:skip] + cubes[skip + 1:]
            assert cubes_to_table(reduced, n) != table or not cubes


class TestFactor:
    @given(spec=tables)
    @settings(max_examples=200, deadline=None)
    def test_factored_form_is_equivalent(self, spec):
        n, table = spec
        expr = factor(isop(table, n))
        for minterm in range(1 << n):
            bits = [(minterm >> i) & 1 for i in range(n)]
            assert evaluate_expr(expr, bits) == bool(evaluate(table, bits))

    def test_factoring_shares_literals(self):
        # f = a*b + a*c: factored as a*(b + c) -> 3 literals, not 4
        cubes = [Cube(0b011, 0b011), Cube(0b101, 0b101)]
        expr = factor(cubes)
        assert expr_literal_count(expr) == 3

    def test_constants(self):
        assert factor([]) == ("const", 0)
        assert evaluate_expr(factor([Cube(0, 0)]), []) is True
