"""Equivalence checking utilities."""

import pytest

from repro.circuits.adders import ripple_adder_circuit
from repro.circuits.multiplier import array_multiplier
from repro.errors import SynthesisError
from repro.synth.aig import Aig, lit_not
from repro.synth.mapper import map_aig
from repro.synth.scripts import resyn2rs
from repro.synth.verify import equivalent_aigs, miter, netlist_matches_aig


def _xor_pair():
    left = Aig("l")
    a, b = left.add_pi("a"), left.add_pi("b")
    left.add_po(left.xor_(a, b), "y")
    right = Aig("r")
    a, b = right.add_pi("a"), right.add_pi("b")
    # equivalent structure: (a|b) & !(a&b)
    right.add_po(right.and_(right.or_(a, b),
                            lit_not(right.and_(a, b))), "y")
    return left, right


class TestEquivalentAigs:
    def test_equivalent_structures(self):
        left, right = _xor_pair()
        assert equivalent_aigs(left, right)

    def test_detects_differences(self):
        left, right = _xor_pair()
        wrong = Aig("w")
        a, b = wrong.add_pi("a"), wrong.add_pi("b")
        wrong.add_po(wrong.or_(a, b), "y")
        assert not equivalent_aigs(left, wrong)

    def test_synthesis_equivalence_on_real_circuit(self):
        aig = ripple_adder_circuit(5)
        assert equivalent_aigs(aig, resyn2rs(aig))

    def test_random_fallback_on_wide_circuit(self):
        aig = array_multiplier(8)  # 16 inputs > exhaustive limit
        optimized = resyn2rs(aig)
        assert equivalent_aigs(aig, optimized, n_random=512)

    def test_interface_mismatch_rejected(self):
        left, _ = _xor_pair()
        other = Aig("o")
        other.add_pi("a")
        other.add_po(2, "y")
        with pytest.raises(SynthesisError):
            equivalent_aigs(left, other)


class TestMiter:
    def test_equivalent_miter_is_constant_zero(self):
        left, right = _xor_pair()
        m = miter(left, right)
        for minterm in range(4):
            bits = [bool(minterm & 1), bool(minterm & 2)]
            assert m.evaluate(bits) == [False]

    def test_different_miter_fires(self):
        left, _ = _xor_pair()
        wrong = Aig("w")
        a, b = wrong.add_pi("a"), wrong.add_pi("b")
        wrong.add_po(wrong.and_(a, b), "y")
        m = miter(left, wrong)
        fired = any(m.evaluate([bool(k & 1), bool(k & 2)])[0]
                    for k in range(4))
        assert fired


class TestNetlistMatchesAig:
    @pytest.mark.parametrize("fixture", ["glib", "clib", "mlib"])
    def test_mapped_adder_exhaustive(self, fixture, request):
        library = request.getfixturevalue(fixture)
        aig = ripple_adder_circuit(4)  # 9 inputs -> exhaustive
        netlist = map_aig(aig, library)
        assert netlist_matches_aig(netlist, aig)

    def test_wide_circuit_random(self, glib):
        aig = array_multiplier(8)
        netlist = map_aig(aig, glib)
        assert netlist_matches_aig(netlist, aig, n_patterns=512)

    def test_detects_broken_netlist(self, glib):
        aig = ripple_adder_circuit(3)
        netlist = map_aig(aig, glib)
        # sabotage one gate's cell
        from repro.synth.netlist import MappedGate
        sabotaged = [g for g in netlist.gates]
        for index, gate in enumerate(sabotaged):
            if gate.cell == "XNOR2":
                sabotaged[index] = MappedGate(gate.name, "XOR2",
                                              gate.inputs, gate.output)
                break
        else:
            pytest.skip("no XNOR2 gate to sabotage")
        netlist.gates = sabotaged
        assert not netlist_matches_aig(netlist, aig)

    def test_name_mismatch_rejected(self, glib):
        aig = ripple_adder_circuit(3)
        netlist = map_aig(aig, glib)
        other = ripple_adder_circuit(3)
        other._pi_names[0] = "zz"
        with pytest.raises(SynthesisError):
            netlist_matches_aig(netlist, other)
