"""Technology mapping: functional equivalence and structural sanity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.synth.aig import Aig, TRUE, lit_not
from repro.synth.mapper import MappingOptions, build_match_table, map_aig
from repro.synth.netlist import static_timing
from repro.synth.truth import flip_variable, permute


def netlist_evaluate(netlist, values):
    """Reference interpreter for mapped netlists."""
    library = netlist.library
    state = dict(zip(netlist.pi_names, values))
    for gate in netlist.gates:
        cell = library.cell(gate.cell)
        state[gate.output] = cell.evaluate([state[n] for n in gate.inputs])
    outputs = []
    for _, (kind, value) in netlist.po_bindings:
        outputs.append(bool(value) if kind == "const" else state[value])
    return outputs


@st.composite
def random_aigs(draw, n_pis=4):
    aig = Aig()
    literals = [aig.add_pi(f"x{i}") for i in range(n_pis)]
    for _ in range(draw(st.integers(min_value=1, max_value=25))):
        op = draw(st.sampled_from(["and", "or", "xor", "mux"]))
        picks = [draw(st.sampled_from(literals)) for _ in range(3)]
        if draw(st.booleans()):
            picks[0] = lit_not(picks[0])
        if op == "mux":
            literals.append(aig.mux_(*picks))
        else:
            literals.append(getattr(aig, f"{op}_")(picks[0], picks[1]))
    aig.add_po(literals[-1], "f")
    aig.add_po(lit_not(literals[-2]) if len(literals) > n_pis else TRUE, "g")
    return aig


class TestMatchTable:
    def test_entries_realize_their_tables(self, mlib):
        """Every (cell, perm, phases) entry must reproduce the table it
        is filed under."""
        table = build_match_table(mlib, 4)
        checked = 0
        for arity, bucket in table.items():
            for tt, entry in list(bucket.items())[:50]:
                cell = mlib.cell(entry.cell)
                rebuilt = permute(cell.truth_table, entry.perm, arity)
                for var in range(arity):
                    if (entry.phases >> var) & 1:
                        rebuilt = flip_variable(rebuilt, var, arity)
                assert rebuilt == tt
                checked += 1
        assert checked > 50

    def test_two_input_coverage_complete(self, mlib):
        """All non-degenerate 2-input functions must be matchable (with
        phases), since the mapper relies on the 2-cut fallback: the
        direct-fanin cut of an AND node always depends on both leaves."""
        from repro.synth.truth import support
        table = build_match_table(mlib, 4)
        bucket = table[2]
        for tt in range(16):
            if len(support(tt, 2)) < 2:
                continue  # degenerate: never produced by a fanin cut
            covered = tt in bucket or (tt ^ 0xF) in bucket
            assert covered, f"function {tt:04b} unmatchable"


class TestEquivalence:
    @pytest.mark.parametrize("fixture", ["glib", "clib", "mlib"])
    @given(aig=random_aigs())
    @settings(max_examples=15, deadline=None)
    def test_mapping_preserves_function(self, fixture, request, aig):
        library = request.getfixturevalue(fixture)
        netlist = map_aig(aig, library)
        netlist.validate()
        for minterm in range(16):
            values = [bool((minterm >> i) & 1) for i in range(4)]
            assert netlist_evaluate(netlist, values) == aig.evaluate(values)

    def test_adder_exhaustive(self, glib):
        from repro.circuits.adders import ripple_adder_circuit
        aig = ripple_adder_circuit(3)
        netlist = map_aig(aig, glib)
        for minterm in range(1 << 7):
            values = [bool((minterm >> i) & 1) for i in range(7)]
            assert netlist_evaluate(netlist, values) == aig.evaluate(values)


class TestStructure:
    def test_po_of_pi_direct(self, mlib):
        aig = Aig()
        a = aig.add_pi("a")
        aig.add_po(a, "out")
        netlist = map_aig(aig, mlib)
        assert netlist.gate_count == 0
        assert netlist.po_bindings[0][1] == ("net", "a")

    def test_po_of_negated_pi_gets_inverter(self, mlib):
        aig = Aig()
        a = aig.add_pi("a")
        aig.add_po(lit_not(a), "out")
        netlist = map_aig(aig, mlib)
        assert netlist.gate_count == 1
        assert netlist.gates[0].cell == "INV"

    def test_constant_po(self, mlib):
        aig = Aig()
        aig.add_pi("a")
        aig.add_po(TRUE, "one")
        netlist = map_aig(aig, mlib)
        assert netlist.po_bindings[0][1] == ("const", 1)
        assert netlist_evaluate(netlist, [False]) == [True]

    def test_generalized_library_finds_xor_cells(self, glib):
        aig = Aig()
        a, b = aig.add_pi("a"), aig.add_pi("b")
        aig.add_po(aig.xor_(a, b), "y")
        netlist = map_aig(aig, glib)
        assert netlist.gate_count == 1
        assert netlist.gates[0].cell in ("XOR2", "XNOR2")

    def test_area_rounds_do_not_break_function(self, glib):
        from repro.circuits.adders import ripple_adder_circuit
        aig = ripple_adder_circuit(4)
        fast = map_aig(aig, glib, MappingOptions(area_rounds=0))
        small = map_aig(aig, glib, MappingOptions(area_rounds=3))
        for minterm in (0, 5, 100, 300, 511):
            values = [bool((minterm >> i) & 1) for i in range(9)]
            assert (netlist_evaluate(fast, values)
                    == netlist_evaluate(small, values))
        assert small.total_area() <= fast.total_area() + 1e-9


class TestTiming:
    def test_sta_positive_and_load_sensitive(self, glib):
        from repro.circuits.adders import ripple_adder_circuit
        netlist = map_aig(ripple_adder_circuit(4), glib)
        delay, arrivals = static_timing(netlist)
        assert delay > 0
        assert all(v >= 0 for v in arrivals.values())
        # POs see the critical path
        po_nets = [v for _, (k, v) in netlist.po_bindings if k == "net"]
        assert delay == pytest.approx(max(arrivals[n] for n in po_nets))

    def test_cmos_slower_than_cntfet(self, mlib, clib):
        from repro.circuits.adders import ripple_adder_circuit
        aig = ripple_adder_circuit(4)
        cmos_delay, _ = static_timing(map_aig(aig, mlib))
        cnt_delay, _ = static_timing(map_aig(aig, clib))
        assert cmos_delay > 3 * cnt_delay
