"""The vectorized pricing layer: bit-identity with the scalar path,
``estimate_many`` broadcasting, and the Eq. 2-5 scaling properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import ripple_adder_circuit
from repro.errors import SimulationError
from repro.power.model import PowerParameters
from repro.sim.activity import simulation_stats
from repro.sim.bitsim import BitParallelSimulator
from repro.sim.estimator import (
    PricingModel,
    estimate_circuit_power,
    estimate_many,
    leakage_currents,
)
from repro.synth.mapper import map_aig

N_PATTERNS = 2048


@pytest.fixture(scope="module")
def adder(glib):
    return map_aig(ripple_adder_circuit(4), glib)


@pytest.fixture(scope="module")
def stats(adder):
    return simulation_stats(adder, N_PATTERNS, seed=11)


class TestScalarEquivalence:
    def test_matches_reference_scalar_loops(self, adder, stats):
        """The vectorized reductions reproduce the historical per-gate
        Python accumulation bit for bit."""
        params = PowerParameters(vdd=0.85, frequency=1.7e9)
        report = estimate_circuit_power(adder, params, stats=stats)

        from repro.sim.estimator import (
            _LeakageTables,
            switched_capacitance,
        )

        caps = switched_capacitance(adder)
        p_dynamic = 0.0
        for gate in adder.gates:
            alpha = stats.toggle_rate(gate.output)
            p_dynamic += (alpha * caps[gate.output]
                          * params.frequency * params.vdd**2)
        assert report.p_dynamic == p_dynamic
        assert report.p_short_circuit == 0.15 * p_dynamic

        tables = _LeakageTables.for_library(adder.library)
        denominator = max(1, stats.n_state_patterns)
        total_i_off = 0.0
        total_i_gate = 0.0
        for gate in adder.gates:
            weights = stats.state_counts[gate.name] / denominator
            total_i_off += float(weights @ tables.i_off[gate.cell])
            total_i_gate += float(weights @ tables.i_gate[gate.cell])
        assert report.p_static == total_i_off * params.vdd
        assert report.p_gate_leak == total_i_gate * params.vdd
        assert leakage_currents(adder, stats) == (total_i_off,
                                                  total_i_gate)

    def test_toggle_rates_matches_scalar(self, adder, stats):
        nets = [gate.output for gate in adder.gates] + ["no-such-net"]
        vectorized = stats.toggle_rates(nets)
        for net, value in zip(nets, vectorized):
            assert float(value) == stats.toggle_rate(net)

    def test_explicit_stats_bypass_cache(self, adder):
        direct = BitParallelSimulator(adder).run(N_PATTERNS, 11)
        a = estimate_circuit_power(adder, stats=direct)
        b = estimate_circuit_power(adder, n_patterns=N_PATTERNS, seed=11)
        assert a == b

    def test_model_memoized_per_netlist(self, adder):
        assert PricingModel.for_netlist(adder) is \
            PricingModel.for_netlist(adder)

    def test_bind_memoized_per_stats(self, adder, stats):
        model = PricingModel.for_netlist(adder)
        assert model.bind(stats) is model.bind(stats)


class TestEstimateMany:
    def test_bit_identical_to_per_point(self, adder, stats):
        points = [(0.9, f, fo)
                  for f in (0.25e9, 1.0e9, 2.0e9, 7.5e9)
                  for fo in (1, 3, 8)]
        reports = estimate_many(adder, stats, points)
        assert len(reports) == len(points)
        for point, report in zip(points, reports):
            expected = estimate_circuit_power(
                adder, PowerParameters(*point), stats=stats)
            assert report == expected

    def test_vdd_axis_with_recharacterized_netlists(self, glib, stats,
                                                    adder):
        from repro.registry import cached_library

        aig = ripple_adder_circuit(4)
        lowered = map_aig(aig, cached_library("generalized", 0.8))
        points = [(0.9, 1.0e9, 3), (0.8, 1.0e9, 3), (0.8, 2.0e9, 3)]
        reports = estimate_many(adder, stats, points,
                                netlists={0.8: lowered})
        expected_low = estimate_circuit_power(
            lowered, PowerParameters(vdd=0.8), stats=stats)
        assert reports[1] == expected_low
        # Re-characterization is real: not a linear rescale in vdd.
        assert reports[1].p_static / 0.8 != reports[0].p_static / 0.9
        assert reports[1].delay != reports[0].delay

    def test_missing_vdd_netlist_is_an_error(self, adder, stats):
        with pytest.raises(SimulationError, match="no netlist for vdd"):
            estimate_many(adder, stats, [(0.5, 1.0e9, 3)])

    def test_structurally_different_netlist_rejected(self, glib, adder,
                                                     stats):
        other = map_aig(ripple_adder_circuit(3), glib)
        with pytest.raises(SimulationError, match="different structure"):
            estimate_many(adder, stats, [(0.5, 1.0e9, 3)],
                          netlists={0.5: other})

    def test_accepts_power_parameters(self, adder, stats):
        params = PowerParameters(frequency=3.0e9)
        many, = estimate_many(adder, stats, [params])
        assert many == estimate_circuit_power(adder, params, stats=stats)


class TestScalingProperties:
    """Eq. 2-5 structure, property-tested over the pricing layer."""

    @given(frequency=st.floats(min_value=1e6, max_value=1e11),
           scale=st.floats(min_value=1.001, max_value=64.0))
    @settings(max_examples=25, deadline=None)
    def test_pd_linear_in_frequency(self, pricing_fixture, frequency,
                                    scale):
        adder, stats = pricing_fixture
        base, scaled = estimate_many(
            adder, stats, [(0.9, frequency, 3), (0.9, frequency * scale, 3)])
        assert scaled.p_dynamic == pytest.approx(base.p_dynamic * scale,
                                                 rel=1e-12)
        # PS/PG do not move with frequency at all.
        assert scaled.p_static == base.p_static
        assert scaled.p_gate_leak == base.p_gate_leak

    @given(vdd=st.floats(min_value=0.3, max_value=1.5),
           scale=st.floats(min_value=1.001, max_value=4.0))
    @settings(max_examples=25, deadline=None)
    def test_leakage_linear_in_vdd_at_fixed_tables(self, pricing_fixture,
                                                   vdd, scale):
        """PS = Ioff * VDD and PG = Ig * VDD (Eq. 4-5): with the
        leakage tables held fixed (same netlist passed for both
        supplies), leakage power is exactly linear in the supply."""
        adder, stats = pricing_fixture
        high = vdd * scale
        base, scaled = estimate_many(
            adder, stats, [(vdd, 1.0e9, 3), (high, 1.0e9, 3)],
            netlists={vdd: adder, high: adder})
        assert scaled.p_static == pytest.approx(
            base.p_static / vdd * high, rel=1e-12)
        assert scaled.p_gate_leak == pytest.approx(
            base.p_gate_leak / vdd * high, rel=1e-12)
        # PD goes with VDD^2.
        assert scaled.p_dynamic == pytest.approx(
            base.p_dynamic * scale**2, rel=1e-12)

    @given(fanouts=st.lists(st.integers(min_value=1, max_value=64),
                            min_size=2, max_size=6, unique=True))
    @settings(max_examples=25, deadline=None)
    def test_fanout_monotone(self, pricing_fixture, fanouts):
        """Raising the fanout knob never lowers circuit power.  (At the
        circuit level loads come from the real netlist fanouts, so the
        knob is characterization-only and the curve is flat — which is
        monotone; the assert documents the direction either way.)"""
        adder, stats = pricing_fixture
        ordered = sorted(fanouts)
        reports = estimate_many(adder, stats,
                                [(0.9, 1.0e9, fo) for fo in ordered])
        totals = [report.p_total for report in reports]
        assert all(later >= earlier
                   for earlier, later in zip(totals, totals[1:]))


@pytest.fixture(scope="module")
def pricing_fixture(glib):
    netlist = map_aig(ripple_adder_circuit(4), glib)
    return netlist, simulation_stats(netlist, N_PATTERNS, seed=11)
