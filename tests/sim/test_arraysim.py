"""The levelized array kernel: bit-identity with the per-gate path,
levelization structure, kernel selection and metering.

The array kernel is pure performance policy — every test here reduces
to "same bits as :class:`BitParallelSimulator`" plus structural
invariants of the levelized schedule.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.families import random_mapped_netlist
from repro.errors import ExperimentError, SimulationError
from repro.experiments.config import SIM_KERNELS, ExperimentConfig
from repro.experiments.flow import map_subject, synthesized_benchmark
from repro.registry import cached_library, paper_benchmarks
from repro.sim.arraysim import ArraySimulator, LevelizedNetlist, levelized
from repro.sim.bitsim import BitParallelSimulator
from repro.sim.kernels import (
    AUTO_ARRAY_THRESHOLD,
    kernel_counters,
    reset_kernel_counters,
    run_simulation,
    select_kernel,
)


def assert_bit_identical(gate_stats, array_stats):
    """Both kernels must agree bit for bit, not approximately."""
    assert array_stats.n_patterns == gate_stats.n_patterns
    assert array_stats.n_state_patterns == gate_stats.n_state_patterns
    assert array_stats.toggles == gate_stats.toggles
    assert set(array_stats.state_counts) == set(gate_stats.state_counts)
    for gate, counts in gate_stats.state_counts.items():
        got = array_stats.state_counts[gate]
        assert np.array_equal(got, counts), (
            f"state histogram differs for {gate}: {got} != {counts}")


class TestBitIdentity:
    """array kernel == gate kernel, exactly, on everything."""

    @settings(max_examples=25, deadline=None)
    @given(gates=st.integers(min_value=1, max_value=150),
           netlist_seed=st.integers(min_value=0, max_value=2**32 - 1),
           inputs=st.integers(min_value=2, max_value=24),
           n_patterns=st.integers(min_value=1, max_value=400),
           state_patterns=st.one_of(
               st.none(), st.integers(min_value=1, max_value=500)))
    def test_property_random_netlists(self, mlib, gates, netlist_seed,
                                      inputs, n_patterns, state_patterns):
        netlist = random_mapped_netlist(mlib, gates=gates,
                                        seed=netlist_seed, inputs=inputs)
        sim_seed = netlist_seed ^ 0x5EED
        gate_stats = BitParallelSimulator(netlist).run(
            n_patterns, seed=sim_seed, state_patterns=state_patterns)
        array_stats = ArraySimulator(netlist).run(
            n_patterns, seed=sim_seed, state_patterns=state_patterns)
        assert_bit_identical(gate_stats, array_stats)

    @pytest.mark.parametrize("gates,seed", [(1, 0), (9, 1), (300, 5)])
    def test_identical_across_libraries(self, glib, clib, mlib, gates, seed):
        for library in (glib, clib, mlib):
            netlist = random_mapped_netlist(library, gates=gates, seed=seed)
            gate_stats = BitParallelSimulator(netlist).run(
                257, seed=seed, state_patterns=129)
            array_stats = ArraySimulator(netlist).run(
                257, seed=seed, state_patterns=129)
            assert_bit_identical(gate_stats, array_stats)

    def test_identical_on_all_paper_benchmarks(self, mlib):
        """The acceptance bar: every Table 1 subject, same bits."""
        config = ExperimentConfig(n_patterns=512, state_patterns=512,
                                  synthesize=False)
        for name in paper_benchmarks():
            netlist = map_subject(
                synthesized_benchmark(name, config.synthesize),
                mlib, config)
            gate_stats = BitParallelSimulator(netlist).run(512, 2010, 512)
            array_stats = ArraySimulator(netlist).run(512, 2010, 512)
            assert_bit_identical(gate_stats, array_stats)


class TestLevelizedNetlist:
    """Structural invariants of the struct-of-arrays form."""

    @pytest.fixture(scope="class")
    def netlist(self, mlib):
        return random_mapped_netlist(mlib, gates=400, seed=11)

    @pytest.fixture(scope="class")
    def arrays(self, netlist):
        return LevelizedNetlist(netlist)

    def test_net_index_space(self, netlist, arrays):
        assert arrays.net_names[:arrays.n_pis] == list(netlist.pi_names)
        assert arrays.net_names[arrays.n_pis:] == [
            gate.output for gate in netlist.gates]
        assert arrays.gate_names == [gate.name for gate in netlist.gates]
        assert arrays.n_nets == arrays.n_pis + arrays.n_gates

    def test_schedule_respects_dependencies(self, arrays):
        """Every fanin of a level-L gate is computed strictly earlier."""
        level = np.zeros(arrays.n_nets, dtype=np.int64)
        for li, groups in enumerate(arrays.schedule, start=1):
            for group in groups:
                assert np.all(level[group.fanins] < li)
                level[group.outputs] = li
        # every gate output was scheduled exactly once
        assert np.all(level[arrays.n_pis:] >= 1)

    def test_schedule_partitions_gates(self, arrays):
        outputs = np.concatenate([
            group.outputs for groups in arrays.schedule for group in groups])
        assert sorted(outputs) == list(
            range(arrays.n_pis, arrays.n_nets))
        positions = np.concatenate([
            group.gate_positions for group in arrays.cell_groups])
        assert sorted(positions) == list(range(arrays.n_gates))

    def test_groups_are_cell_homogeneous(self, netlist, arrays):
        for groups in arrays.schedule:
            cells_at_level = [group.cell_id for group in groups]
            assert len(cells_at_level) == len(set(cells_at_level))
            for group in groups:
                name = arrays.cell_names[group.cell_id]
                arity = arrays.arity[group.cell_id]
                assert group.fanins.shape == (len(group.outputs), arity)
                for net in group.outputs:
                    gate = netlist.gates[net - arrays.n_pis]
                    assert gate.cell == name

    def test_levelized_memoizes_per_instance(self, netlist):
        assert levelized(netlist) is levelized(netlist)
        assert ArraySimulator(netlist).arrays is levelized(netlist)

    def test_rejects_bad_pattern_counts(self, netlist):
        with pytest.raises(SimulationError):
            ArraySimulator(netlist).run(0)

    def test_zero_state_patterns_matches_gate_kernel(self, netlist):
        # state_patterns=0 is clamped, not rejected — same as bitsim
        gate_stats = BitParallelSimulator(netlist).run(
            16, state_patterns=0)
        array_stats = ArraySimulator(netlist).run(16, state_patterns=0)
        assert_bit_identical(gate_stats, array_stats)


class TestKernelSelection:
    """The ``sim_kernel`` policy knob and its metering."""

    def test_forced_kernels(self):
        assert select_kernel("gate", 10**6) == "gate"
        assert select_kernel("array", 1) == "array"

    def test_auto_threshold(self):
        assert select_kernel("auto", AUTO_ARRAY_THRESHOLD - 1) == "gate"
        assert select_kernel("auto", AUTO_ARRAY_THRESHOLD) == "array"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SimulationError, match="unknown sim kernel"):
            select_kernel("simd", 100)

    def test_run_simulation_meters_each_kernel(self, mlib):
        netlist = random_mapped_netlist(mlib, gates=40, seed=3)
        reset_kernel_counters()
        try:
            gate_stats = run_simulation(netlist, 64, kernel="gate")
            array_stats = run_simulation(netlist, 64, kernel="array")
            auto_stats = run_simulation(netlist, 64, kernel="auto")
            assert_bit_identical(gate_stats, array_stats)
            assert_bit_identical(gate_stats, auto_stats)
            counters = kernel_counters()
            # auto resolves to the gate kernel below the threshold
            assert counters["gate"]["simulations"] == 2
            assert counters["array"]["simulations"] == 1
            evals = netlist.gate_count * 64
            assert counters["gate"]["gate_evals"] == 2 * evals
            assert counters["array"]["gate_evals"] == evals
            assert counters["array"]["gate_evals_per_s"] > 0.0
        finally:
            reset_kernel_counters()

    def test_config_validates_kernel(self):
        for kernel in SIM_KERNELS:
            assert ExperimentConfig(sim_kernel=kernel).sim_kernel == kernel
        with pytest.raises(ExperimentError, match="sim_kernel"):
            ExperimentConfig(sim_kernel="simd")

    def test_kernel_serialized_but_not_keyed(self):
        config = ExperimentConfig(n_patterns=128, sim_kernel="array")
        payload = config.to_dict()
        assert payload["sim_kernel"] == "array"
        assert ExperimentConfig.from_dict(payload) == config
        assert "sim_kernel" not in config.key_dict()
        assert config.key_dict() == ExperimentConfig(
            n_patterns=128, sim_kernel="gate").key_dict()

    def test_cached_library_independent_of_kernel(self):
        # keys aside, the *libraries* must be byte-identical objects so
        # kernels share characterization work within a process
        assert cached_library("cmos") is cached_library("cmos")
