"""The cached activity layer: content keys, the stats LRU, disk
persistence and the payload round trip."""

import numpy as np
import pytest

from repro.circuits.adders import ripple_adder_circuit
from repro.experiments.config import ExperimentConfig
from repro.sim import activity
from repro.sim.bitsim import BitParallelSimulator, SimulationStats
from repro.synth.mapper import map_aig


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test sees an empty stats LRU with zeroed counters."""
    activity.clear_cache(reset_counters=True)
    yield
    activity.clear_cache(reset_counters=True)


@pytest.fixture(scope="module")
def adder(glib):
    return map_aig(ripple_adder_circuit(3), glib)


class TestEffectiveStatePatterns:
    def test_default_clamps_to_budget(self):
        assert activity.effective_state_patterns(2048) == 2048
        assert activity.effective_state_patterns(1 << 20) == 65536

    def test_rounds_to_whole_words(self):
        # 100 and 128 state patterns are the same two 64-bit words.
        assert activity.effective_state_patterns(4096, 100) == 128
        assert activity.effective_state_patterns(4096, 128) == 128

    def test_never_exceeds_n_patterns(self):
        assert activity.effective_state_patterns(100, 1000) == 100


class TestNetlistActivityKey:
    def test_same_structure_other_supply_hashes_equal(self, glib):
        """Library electricals price, they do not simulate: the same
        mapping at another vdd shares the activity key."""
        from repro.registry import cached_library

        aig = ripple_adder_circuit(3)
        base = map_aig(aig, glib)
        other = map_aig(aig, cached_library("generalized", 0.7))
        if [g.cell for g in base.gates] == [g.cell for g in other.gates]:
            assert (activity.netlist_activity_key(base)
                    == activity.netlist_activity_key(other))

    def test_different_circuits_differ(self, glib):
        a = map_aig(ripple_adder_circuit(3), glib)
        b = map_aig(ripple_adder_circuit(4), glib)
        assert (activity.netlist_activity_key(a)
                != activity.netlist_activity_key(b))

    def test_key_is_memoized_on_the_instance(self, adder):
        first = activity.netlist_activity_key(adder)
        assert activity.netlist_activity_key(adder) is first

    def test_budget_changes_full_key(self, adder):
        k1 = activity.activity_key(adder, 2048, 7)
        assert k1 != activity.activity_key(adder, 4096, 7)
        assert k1 != activity.activity_key(adder, 2048, 8)
        # Immaterial state-budget differences collapse (word rounding).
        assert (activity.activity_key(adder, 4096, 7, state_patterns=100)
                == activity.activity_key(adder, 4096, 7,
                                         state_patterns=128))


class TestSimulationStatsCache:
    def test_second_call_is_a_hit(self, adder):
        first = activity.simulation_stats(adder, 2048, seed=3)
        info = activity.cache_info()
        assert info["simulations"] == 1
        second = activity.simulation_stats(adder, 2048, seed=3)
        assert second is first
        info = activity.cache_info()
        assert info["hits"] == 1
        assert info["simulations"] == 1

    def test_cached_equals_direct_simulation(self, adder):
        cached = activity.simulation_stats(adder, 2048, seed=3)
        direct = BitParallelSimulator(adder).run(2048, 3)
        assert cached.toggles == direct.toggles
        assert cached.n_state_patterns == direct.n_state_patterns
        for name, counts in direct.state_counts.items():
            assert np.array_equal(cached.state_counts[name], counts)

    def test_different_seed_simulates_again(self, adder):
        activity.simulation_stats(adder, 2048, seed=3)
        activity.simulation_stats(adder, 2048, seed=4)
        assert activity.cache_info()["simulations"] == 2

    def test_clear_cache_forgets(self, adder):
        activity.simulation_stats(adder, 2048, seed=3)
        activity.clear_cache()
        activity.simulation_stats(adder, 2048, seed=3)
        assert activity.cache_info()["simulations"] == 2


class TestDiskPersistence:
    def test_round_trip_bit_identical(self, adder, tmp_path, monkeypatch):
        from repro.cache import ENV_CACHE_DIR, ENV_CACHE_DISABLE

        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path))
        monkeypatch.setenv(ENV_CACHE_DISABLE, "0")
        first = activity.simulation_stats(adder, 2048, seed=5)
        assert activity.cache_info()["simulations"] == 1
        # A "new process": empty LRU, warm disk.
        activity.clear_cache()
        second = activity.simulation_stats(adder, 2048, seed=5)
        info = activity.cache_info()
        assert info["simulations"] == 1
        assert info["disk_hits"] == 1
        assert second.toggles == first.toggles
        for name, counts in first.state_counts.items():
            assert np.array_equal(second.state_counts[name], counts)

    def test_corrupt_entry_degrades_to_recompute(self, adder, tmp_path,
                                                 monkeypatch):
        from repro.cache import ENV_CACHE_DIR, ENV_CACHE_DISABLE, DiskCache

        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path))
        monkeypatch.setenv(ENV_CACHE_DISABLE, "0")
        key = activity.activity_key(adder, 2048, 5)
        DiskCache().put(activity.ACTIVITY_NAMESPACE, key,
                        {"n_patterns": 2048, "garbage": True})
        stats = activity.simulation_stats(adder, 2048, seed=5)
        assert activity.cache_info()["simulations"] == 1
        assert stats.n_patterns == 2048


class TestPayloadRoundTrip:
    def test_exact(self, adder):
        stats = BitParallelSimulator(adder).run(1024, 9)
        back = SimulationStats.from_payload(stats.to_payload())
        assert back.n_patterns == stats.n_patterns
        assert back.n_state_patterns == stats.n_state_patterns
        assert back.toggles == stats.toggles
        for name, counts in stats.state_counts.items():
            restored = back.state_counts[name]
            assert restored.dtype == np.int64
            assert np.array_equal(restored, counts)


class TestPricingGroupKey:
    def test_pricing_axes_do_not_split_groups(self):
        base = ExperimentConfig(n_patterns=2048, state_patterns=2048)
        key = activity.pricing_group_key("t481", "cmos", base)
        for variant in (
                ExperimentConfig(n_patterns=2048, state_patterns=2048,
                                 vdd=0.7),
                ExperimentConfig(n_patterns=2048, state_patterns=2048,
                                 frequency=2.0e9),
                ExperimentConfig(n_patterns=2048, state_patterns=2048,
                                 fanout=5)):
            assert activity.pricing_group_key("t481", "cmos",
                                              variant) == key

    def test_activity_axes_split_groups(self):
        base = ExperimentConfig(n_patterns=2048, state_patterns=2048)
        key = activity.pricing_group_key("t481", "cmos", base)
        assert activity.pricing_group_key("C1908", "cmos", base) != key
        assert activity.pricing_group_key("t481", "generalized",
                                          base) != key
        for variant in (
                ExperimentConfig(n_patterns=4096, state_patterns=2048),
                ExperimentConfig(n_patterns=2048, state_patterns=2048,
                                 seed=7),
                ExperimentConfig(n_patterns=2048, state_patterns=2048,
                                 synthesize=False),
                ExperimentConfig(n_patterns=2048, state_patterns=2048,
                                 backend="spice-transient")):
            assert activity.pricing_group_key("t481", "cmos",
                                              variant) != key
