"""Circuit power estimation (the Table 1 cell methodology)."""

import pytest

from repro.circuits.adders import ripple_adder_circuit, parity_tree_circuit
from repro.power.model import PowerParameters
from repro.sim.estimator import estimate_circuit_power
from repro.synth.mapper import map_aig


@pytest.fixture(scope="module")
def adder_report(glib):
    netlist = map_aig(ripple_adder_circuit(4), glib)
    return estimate_circuit_power(netlist, n_patterns=8192, seed=11)


class TestComposition:
    def test_eq1_holds(self, adder_report):
        r = adder_report
        assert r.p_total == pytest.approx(
            r.p_dynamic + r.p_short_circuit + r.p_static + r.p_gate_leak)

    def test_psc_is_15_percent_of_pd(self, adder_report):
        assert adder_report.p_short_circuit == pytest.approx(
            0.15 * adder_report.p_dynamic)

    def test_all_components_positive(self, adder_report):
        assert adder_report.p_dynamic > 0
        assert adder_report.p_static > 0
        assert adder_report.p_gate_leak > 0
        assert adder_report.delay > 0

    def test_static_well_below_dynamic(self, adder_report):
        """Section 4: PS is orders of magnitude below PD for CNTFETs."""
        assert adder_report.p_static < adder_report.p_dynamic / 20

    def test_edp_definition(self, adder_report):
        params = PowerParameters()
        assert adder_report.edp(params) == pytest.approx(
            adder_report.p_total / 1e9 * adder_report.delay)


class TestBehaviour:
    def test_deterministic(self, glib):
        netlist = map_aig(ripple_adder_circuit(3), glib)
        a = estimate_circuit_power(netlist, n_patterns=2048, seed=5)
        b = estimate_circuit_power(netlist, n_patterns=2048, seed=5)
        assert a.p_dynamic == b.p_dynamic
        assert a.p_static == b.p_static

    def test_pattern_convergence(self, glib):
        """Power estimates stabilize with pattern count."""
        netlist = map_aig(ripple_adder_circuit(4), glib)
        small = estimate_circuit_power(netlist, n_patterns=16384, seed=1)
        large = estimate_circuit_power(netlist, n_patterns=65536, seed=2)
        assert small.p_dynamic == pytest.approx(large.p_dynamic, rel=0.05)
        assert small.p_static == pytest.approx(large.p_static, rel=0.05)

    def test_cmos_consumes_more(self, glib, mlib):
        aig = parity_tree_circuit(8)
        cnt = estimate_circuit_power(map_aig(aig, glib),
                                     n_patterns=4096, seed=3)
        cmos = estimate_circuit_power(map_aig(aig, mlib),
                                      n_patterns=4096, seed=3)
        assert cmos.p_total > cnt.p_total
        assert cmos.p_static > 3 * cnt.p_static
        assert cmos.delay > 3 * cnt.delay

    def test_xor_circuit_prefers_generalized(self, glib, clib):
        """A parity tree maps into far fewer gates with TG XOR cells."""
        aig = parity_tree_circuit(16)
        generalized = map_aig(aig, glib)
        conventional = map_aig(aig, clib)
        assert generalized.total_devices() < conventional.total_devices()

    def test_gate_count_reported(self, adder_report):
        assert adder_report.gate_count > 5
        assert adder_report.library == "cntfet-generalized"
