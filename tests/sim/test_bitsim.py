"""Bit-parallel netlist simulation: correctness of values, toggles and
state histograms."""

import numpy as np
import pytest

from repro.circuits.adders import ripple_adder_circuit
from repro.sim.bitsim import BitParallelSimulator
from repro.synth.mapper import map_aig


@pytest.fixture(scope="module")
def adder_netlist(glib):
    return map_aig(ripple_adder_circuit(3), glib)


def _reference_run(netlist, n_patterns, seed):
    """Slow single-pattern reference using the cell interpreter."""
    rng = np.random.default_rng(seed)
    n_words = (n_patterns + 63) // 64
    words = {}
    tail = n_patterns - (n_words - 1) * 64
    mask = np.uint64((1 << tail) - 1) if tail < 64 else np.uint64(2**64 - 1)
    for name in netlist.pi_names:
        w = rng.integers(0, 2**64, size=n_words, dtype=np.uint64)
        w[-1] &= mask
        words[name] = w

    def bit(net_words, pattern):
        return (int(net_words[pattern // 64]) >> (pattern % 64)) & 1

    library = netlist.library
    values = {}
    for pattern in range(n_patterns):
        state = {name: bool(bit(words[name], pattern))
                 for name in netlist.pi_names}
        for gate in netlist.gates:
            cell = library.cell(gate.cell)
            state[gate.output] = cell.evaluate(
                [state[n] for n in gate.inputs])
        values.setdefault("nets", []).append(dict(state))
    return values["nets"]


class TestValues:
    def test_matches_reference_interpreter(self, adder_netlist):
        n_patterns = 130  # crosses a word boundary, non-multiple of 64
        simulator = BitParallelSimulator(adder_netlist)
        stats = simulator.run(n_patterns, seed=7)
        reference = _reference_run(adder_netlist, n_patterns, seed=7)

        # toggle counts per net
        for net in [g.output for g in adder_netlist.gates]:
            expected = sum(
                reference[k][net] != reference[k + 1][net]
                for k in range(n_patterns - 1))
            assert stats.toggles[net] == expected, net

        # state histograms per gate
        library = adder_netlist.library
        for gate in adder_netlist.gates:
            cell = library.cell(gate.cell)
            counts = np.zeros(1 << cell.n_inputs, dtype=int)
            for k in range(stats.n_state_patterns):
                vector = 0
                for i, net in enumerate(gate.inputs):
                    if reference[k][net]:
                        vector |= 1 << i
                counts[vector] += 1
            assert np.array_equal(stats.state_counts[gate.name], counts)

    def test_output_words_match_aig(self, glib):
        aig = ripple_adder_circuit(3)
        netlist = map_aig(aig, glib)
        n_patterns = 200
        words = BitParallelSimulator(netlist).output_words(n_patterns,
                                                           seed=3)
        rng = np.random.default_rng(3)
        n_words = (n_patterns + 63) // 64
        pi_words = {name: rng.integers(0, 2**64, size=n_words,
                                       dtype=np.uint64)
                    for name in netlist.pi_names}
        for pattern in range(0, n_patterns, 17):
            values = []
            for name in aig.pi_names:
                w = pi_words[name]
                values.append(bool(
                    (int(w[pattern // 64]) >> (pattern % 64)) & 1))
            expected = aig.evaluate(values)
            for po_name, want in zip(aig.po_names, expected):
                got = (int(words[po_name][pattern // 64])
                       >> (pattern % 64)) & 1
                assert bool(got) == want


class TestStatistics:
    def test_state_counts_sum_to_patterns(self, adder_netlist):
        stats = BitParallelSimulator(adder_netlist).run(512, seed=1)
        for counts in stats.state_counts.values():
            assert counts.sum() == stats.n_state_patterns

    def test_toggle_rate_bounds(self, adder_netlist):
        stats = BitParallelSimulator(adder_netlist).run(4096, seed=2)
        for net in stats.toggles:
            rate = stats.toggle_rate(net)
            assert 0.0 <= rate <= 1.0

    def test_deterministic_by_seed(self, adder_netlist):
        sim = BitParallelSimulator(adder_netlist)
        a = sim.run(1024, seed=42)
        b = sim.run(1024, seed=42)
        assert a.toggles == b.toggles

    def test_single_pattern_run(self, adder_netlist):
        stats = BitParallelSimulator(adder_netlist).run(1, seed=0)
        assert all(t == 0 for t in stats.toggles.values())
        assert stats.toggle_rate("sum[0]") == 0.0

    def test_state_subsampling(self, adder_netlist):
        stats = BitParallelSimulator(adder_netlist).run(
            4096, seed=5, state_patterns=128)
        assert stats.n_state_patterns == 128
        for counts in stats.state_counts.values():
            assert counts.sum() == 128
