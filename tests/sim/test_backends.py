"""Estimator backends: registry semantics, config round-trips, task-key
separation, and bitsim-vs-spice-transient agreement."""

import pytest

from repro.circuits.adders import ripple_adder_circuit
from repro.circuits.suite import CMOS
from repro.errors import ExperimentError, SimulationError
from repro.experiments.config import ExperimentConfig
from repro.sim.backends import (
    BITSIM,
    SPICE_TRANSIENT,
    BitsimBackend,
    SpiceTransientBackend,
    available_backends,
    estimate_with_backend,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.sim.estimator import estimate_circuit_power
from repro.synth.mapper import map_aig
from repro.sweep.spec import SweepSpec, SweepTask


@pytest.fixture(scope="module")
def adder_netlist(mlib):
    return map_aig(ripple_adder_circuit(3), mlib)


class TestBackendRegistry:
    def test_builtins_available(self):
        keys = available_backends()
        assert BITSIM in keys
        assert SPICE_TRANSIENT in keys

    def test_unknown_backend_raises_with_choices(self):
        with pytest.raises(ExperimentError, match="choose from"):
            get_backend("no-such-backend")

    def test_register_unregister(self):
        backend = BitsimBackend()
        register_backend("test-backend", backend)
        try:
            assert get_backend("test-backend") is backend
            with pytest.raises(ExperimentError, match="already registered"):
                register_backend("test-backend", BitsimBackend())
            register_backend("test-backend", backend, replace=True)
        finally:
            unregister_backend("test-backend")
        assert "test-backend" not in available_backends()
        with pytest.raises(ExperimentError):
            unregister_backend("test-backend")


class TestConfigRoundTrip:
    def test_backend_serializes(self):
        config = ExperimentConfig(backend=SPICE_TRANSIENT)
        data = config.to_dict()
        assert data["backend"] == SPICE_TRANSIENT
        assert ExperimentConfig.from_dict(data) == config

    def test_missing_backend_defaults_to_bitsim(self):
        """Configs stored before the field existed load unchanged."""
        data = ExperimentConfig().to_dict()
        del data["backend"]
        assert ExperimentConfig.from_dict(data).backend == BITSIM

    def test_backend_changes_sweep_task_keys(self):
        config = ExperimentConfig(n_patterns=1024, state_patterns=1024)
        bitsim_task = SweepTask("t481", CMOS, config)
        spice_task = SweepTask(
            "t481", CMOS,
            ExperimentConfig(n_patterns=1024, state_patterns=1024,
                             backend=SPICE_TRANSIENT))
        assert bitsim_task.task_key != spice_task.task_key

    def test_spec_backend_round_trip(self):
        spec = SweepSpec(circuits=("t481",), n_patterns=(1024,),
                         backend=SPICE_TRANSIENT)
        again = SweepSpec.from_dict(spec.to_dict())
        assert again.backend == SPICE_TRANSIENT
        assert all(task.config.backend == SPICE_TRANSIENT
                   for task in again.expand())
        assert again.spec_hash == spec.spec_hash

    def test_spec_rejects_unknown_backend(self):
        with pytest.raises(ExperimentError, match="unknown estimator"):
            SweepSpec(backend="no-such-backend")


class TestBitsimBackend:
    def test_identical_to_direct_estimator(self, adder_netlist):
        """The default backend IS the historical estimator, bit for bit."""
        config = ExperimentConfig(n_patterns=2048, state_patterns=2048)
        via_backend = get_backend(BITSIM).estimate(
            adder_netlist, config.power_parameters, config)
        direct = estimate_circuit_power(
            adder_netlist, config.power_parameters,
            n_patterns=2048, seed=config.seed, state_patterns=2048)
        assert via_backend == direct


class TestSpiceTransientBackend:
    def test_agrees_with_bitsim_loosely(self, adder_netlist):
        """Transient-measured switching energy converges to Eq. 2's
        alpha*C*f*VDD^2 when every output settles within the period."""
        config = ExperimentConfig(n_patterns=2048, state_patterns=2048)
        params = config.power_parameters
        bitsim = get_backend(BITSIM).estimate(adder_netlist, params, config)
        spice = get_backend(SPICE_TRANSIENT).estimate(
            adder_netlist, params, config)
        assert spice.p_dynamic == pytest.approx(bitsim.p_dynamic, rel=0.10)
        assert spice.p_total == pytest.approx(bitsim.p_total, rel=0.10)
        # Leakage reuses the same pattern-classified DC tables.
        assert spice.p_static == bitsim.p_static
        assert spice.p_gate_leak == bitsim.p_gate_leak
        assert spice.delay == bitsim.delay
        assert spice.gate_count == bitsim.gate_count

    def test_small_benchmark_end_to_end(self):
        """Acceptance: a CircuitPowerReport for a Table 1 benchmark."""
        from repro.api import Session

        config = ExperimentConfig(n_patterns=512, state_patterns=512,
                                  backend=SPICE_TRANSIENT)
        flow = Session(config).run("C1355", "generalized")
        assert flow.circuit == "C1355"
        assert flow.gate_count > 100
        assert flow.pt_w > 0
        assert flow.pd_w > flow.ps_w  # Section 4 ordering holds here too

    def test_rejects_oversized_netlists(self, adder_netlist):
        config = ExperimentConfig(n_patterns=256, state_patterns=256)
        backend = SpiceTransientBackend(max_gates=5)
        with pytest.raises(SimulationError, match="limited to 5 gates"):
            backend.estimate(adder_netlist, config.power_parameters, config)

    def test_energy_cache_reused(self, adder_netlist):
        config = ExperimentConfig(n_patterns=256, state_patterns=256)
        backend = SpiceTransientBackend()
        backend.estimate(adder_netlist, config.power_parameters, config)
        solves = len(backend._energy_cache)
        assert solves > 0
        backend.estimate(adder_netlist, config.power_parameters, config)
        assert len(backend._energy_cache) == solves

    def test_energy_cache_keyed_by_frequency(self, adder_netlist):
        """The integration window is one period: a frequency change
        must re-solve, not reuse the first-seen frequency's energies."""
        backend = SpiceTransientBackend()
        slow = ExperimentConfig(n_patterns=256, state_patterns=256)
        fast = ExperimentConfig(n_patterns=256, state_patterns=256,
                                frequency=1.0e12)
        backend.estimate(adder_netlist, slow.power_parameters, slow)
        solves = len(backend._energy_cache)
        r_fast = backend.estimate(adder_netlist, fast.power_parameters,
                                  fast)
        assert len(backend._energy_cache) == 2 * solves
        fresh = SpiceTransientBackend().estimate(
            adder_netlist, fast.power_parameters, fast)
        assert r_fast.p_dynamic == fresh.p_dynamic


class TestFlowDispatch:
    def test_flow_routes_through_selected_backend(self, adder_netlist):
        calls = []

        class SpyBackend:
            name = "spy"

            def estimate(self, netlist, params, config):
                calls.append(netlist.name)
                return get_backend(BITSIM).estimate(netlist, params, config)

        register_backend("spy", SpyBackend())
        try:
            config = ExperimentConfig(n_patterns=256, state_patterns=256,
                                      backend="spy")
            report = estimate_with_backend(adder_netlist, None, config)
            assert calls == [adder_netlist.name]
            assert report.n_patterns == 256
        finally:
            unregister_backend("spy")
