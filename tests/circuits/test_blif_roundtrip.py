"""BLIF round trip through the circuit registry.

The contract: registering an external-style ``.blif`` with
:func:`repro.registry.register_blif_circuit` and running it through
the flow is *the same circuit* as parsing it directly with
:func:`repro.circuits.blif.read_blif` — structurally (gate for gate
after synthesize+map) and functionally (simulation signatures).
"""

from pathlib import Path

import pytest

from repro import registry
from repro.circuits.blif import read_blif, write_aig_blif
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.flow import map_subject, synthesize_subject
from repro.synth.verify import equivalent_aigs

FIXTURE = Path(__file__).parent / "data" / "majority_parity.blif"


@pytest.fixture
def registered():
    entry = registry.register_blif_circuit(str(FIXTURE), replace=True)
    yield entry
    registry.unregister_circuit(entry.key, missing_ok=True)


class TestRegistryBlifRoundTrip:
    def test_key_defaults_to_model_name(self, registered):
        assert registered.key == "majority_parity"
        assert "majority_parity" in registry.available_circuits()
        assert registry.circuit_entry("majority_parity").paper is None

    def test_registry_build_matches_direct_parse(self, registered):
        direct = read_blif(FIXTURE.read_text(encoding="utf-8"))
        via_registry = registry.build_circuit("majority_parity")
        assert via_registry.pi_names == direct.pi_names
        assert via_registry.po_names == direct.po_names
        assert via_registry.n_nodes == direct.n_nodes
        assert equivalent_aigs(via_registry, direct)

    def test_mapped_gate_for_gate(self, registered, mlib):
        """Synthesize+map both parses; the covers must be identical."""
        config = ExperimentConfig(n_patterns=256, state_patterns=256)
        direct = read_blif(FIXTURE.read_text(encoding="utf-8"))
        netlists = []
        for aig in (direct, registry.build_circuit("majority_parity")):
            subject = synthesize_subject(aig, config)
            netlists.append(map_subject(subject, mlib, config))
        reference, via_registry = netlists
        assert via_registry.gate_count == reference.gate_count
        for ours, theirs in zip(via_registry.gates, reference.gates):
            assert ours.cell == theirs.cell
            assert ours.output == theirs.output
            assert tuple(ours.inputs) == tuple(theirs.inputs)

    def test_export_reimport_functionally_equal(self, registered):
        aig = registry.build_circuit("majority_parity")
        again = read_blif(write_aig_blif(aig))
        assert equivalent_aigs(aig, again)

    def test_flows_through_session(self, registered, tiny_config):
        from repro.api import Session

        flow = Session(tiny_config).run("majority_parity", "cmos")
        assert flow.circuit == "majority_parity"
        assert flow.gate_count > 0
        assert flow.pt_w > 0

    def test_flows_through_sweep(self, registered, tiny_config):
        from repro.api import Session
        from repro.sweep.spec import SweepSpec

        spec = SweepSpec(circuits=("majority_parity",),
                         libraries=("cmos",), n_patterns=(256,),
                         state_patterns=256)
        report = Session(tiny_config).sweep(spec)
        records = report.store.records()
        assert len(records) == 1
        assert records[0]["circuit"] == "majority_parity"

    def test_missing_file_fails_loudly(self):
        with pytest.raises(ExperimentError, match="cannot read BLIF"):
            registry.register_blif_circuit("/nonexistent/x.blif")
