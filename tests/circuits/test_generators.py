"""Benchmark generators: functional verification of each circuit class."""

import random

import pytest

from repro.circuits.alu import alu_circuit
from repro.circuits.des import des_rounds, _surrogate_sboxes
from repro.circuits.ecc import hamming_corrector, secded_decoder
from repro.circuits.multiplier import array_multiplier
from repro.circuits.random_logic import random_control_logic, t481_style
from repro.circuits.suite import benchmark_suite, build_benchmark
from repro.errors import ExperimentError


def _bits(value, width):
    return [bool((value >> i) & 1) for i in range(width)]


def _value(bits):
    return sum(1 << i for i, b in enumerate(bits) if b)


class TestMultiplier:
    def test_exhaustive_3x3(self):
        aig = array_multiplier(3)
        for a in range(8):
            for b in range(8):
                out = aig.evaluate(_bits(a, 3) + _bits(b, 3))
                assert _value(out) == a * b, (a, b)

    def test_random_16x16(self):
        aig = array_multiplier(16)
        rng = random.Random(0)
        for _ in range(20):
            a, b = rng.randrange(1 << 16), rng.randrange(1 << 16)
            out = aig.evaluate(_bits(a, 16) + _bits(b, 16))
            assert _value(out) == a * b


class TestHamming:
    @pytest.mark.parametrize("n_parity", [3, 4])
    def test_corrects_every_single_bit_error(self, n_parity):
        total = (1 << n_parity) - 1
        parity_positions = [1 << i for i in range(n_parity)]
        data_positions = [p for p in range(1, total + 1)
                          if p not in parity_positions]
        aig = hamming_corrector(n_parity)
        rng = random.Random(9)
        for trial in range(10):
            data = [rng.random() < 0.5 for _ in data_positions]
            word = [False] * (total + 1)  # 1-indexed
            for position, bit in zip(data_positions, data):
                word[position] = bit
            for j in range(n_parity):
                parity = False
                for position in range(1, total + 1):
                    if (position >> j) & 1 and position != (1 << j):
                        parity ^= word[position]
                word[1 << j] = parity
            for flip in range(total + 1):  # 0 = no error
                received = list(word[1:])
                if flip:
                    received[flip - 1] ^= True
                out = aig.evaluate(received)
                assert out[:len(data)] == data, (trial, flip)

    def test_secded_flags(self):
        aig = secded_decoder(3)  # (7,4) + extended parity
        data_positions = [3, 5, 6, 7]
        word = [False] * 8
        # all-zero codeword: parity bits zero, extended parity zero
        received = word[1:]
        out = aig.evaluate(received + [False])
        n_data = len(data_positions)
        single, double = out[n_data], out[n_data + 1]
        assert (single, double) == (False, False)
        # single error: flip data bit 3 and the extended parity trips
        received1 = list(received)
        received1[2] = True
        out = aig.evaluate(received1 + [False])
        # overall parity of received+extended is odd -> single error
        assert out[n_data] is True
        assert out[n_data + 1] is False
        # double error: flip two codeword bits, overall parity balances
        received2 = list(received)
        received2[2] = True
        received2[4] = True
        out = aig.evaluate(received2 + [False])
        assert out[n_data + 1] is True


class TestAlu:
    def _run(self, aig, width, a, b, op, cin=False):
        out = aig.evaluate(_bits(a, width) + _bits(b, width)
                           + _bits(op, 3) + [cin])
        return out

    @pytest.mark.parametrize("op,func", [
        (0, lambda a, b, w: (a + b) & ((1 << w) - 1)),
        (1, lambda a, b, w: (a - b) & ((1 << w) - 1)),
        (2, lambda a, b, w: a & b),
        (3, lambda a, b, w: a | b),
        (4, lambda a, b, w: a ^ b),
        (5, lambda a, b, w: (a ^ b) ^ ((1 << w) - 1)),
        (6, lambda a, b, w: (a << 1) & ((1 << w) - 1)),
        (7, lambda a, b, w: b),
    ])
    def test_operations(self, op, func):
        width = 8
        aig = alu_circuit(width)
        rng = random.Random(op)
        for _ in range(10):
            a, b = rng.randrange(1 << width), rng.randrange(1 << width)
            out = self._run(aig, width, a, b, op)
            assert _value(out[:width]) == func(a, b, width), (a, b, op)

    def test_flags(self):
        width = 8
        aig = alu_circuit(width)
        out = self._run(aig, width, 10, 10, 1)  # subtract -> zero
        names = aig.po_names
        zero_index = names.index("zero")
        assert out[zero_index] is True
        eq_index = names.index("a_eq_b")
        assert out[eq_index] is True
        lt_index = names.index("a_lt_b")
        assert out[lt_index] is False

    def test_selector_variant_builds(self):
        aig = alu_circuit(8, n_select_words=3)
        assert aig.n_pis > 8 * 5  # a, b, w0..w2, sel, op, cin


class TestDes:
    def test_deterministic(self):
        a = des_rounds(2, seed=1)
        b = des_rounds(2, seed=1)
        assert (a.random_simulation_signature()
                == b.random_simulation_signature())

    def test_seed_changes_function(self):
        a = des_rounds(1, seed=1)
        b = des_rounds(1, seed=2)
        assert (a.random_simulation_signature()
                != b.random_simulation_signature())

    def test_feistel_structure_sizes(self):
        aig = des_rounds(2)
        assert aig.n_pis == 64 + 2 * 48
        assert aig.n_pos == 64

    def test_sbox_rows_are_permutations(self):
        """The surrogate boxes keep DES's balancedness: each row is a
        permutation of 0..15."""
        for box in _surrogate_sboxes(2010):
            for row in range(4):
                values = sorted(
                    box[((row & 2) << 4) | (col << 1) | (row & 1)]
                    for col in range(16))
                assert values == list(range(16))

    def test_one_round_swaps_halves(self):
        """After one round the new left half equals the old right."""
        aig = des_rounds(1)
        rng = random.Random(4)
        block = [rng.random() < 0.5 for _ in range(64)]
        key = [rng.random() < 0.5 for _ in range(48)]
        out = aig.evaluate(block + key)
        assert out[:32] == block[32:]


class TestRandomLogic:
    def test_deterministic_and_sized(self):
        a = random_control_logic(16, 100, 10, seed=5)
        b = random_control_logic(16, 100, 10, seed=5)
        assert a.n_pos == 10
        assert (a.random_simulation_signature()
                == b.random_simulation_signature())

    def test_t481_properties(self):
        aig = t481_style()
        assert aig.n_pis == 16
        assert aig.n_pos == 1
        # non-constant function
        signature = aig.random_simulation_signature()
        assert signature[0] != 0


class TestSuite:
    def test_twelve_benchmarks(self):
        suite = benchmark_suite()
        assert len(suite) == 12
        names = [s.name for s in suite]
        assert names[0] == "C2670" and names[-1] == "C1355"

    def test_paper_rows_complete(self):
        for spec in benchmark_suite():
            assert set(spec.paper) == {
                "cntfet-generalized", "cntfet-conventional", "cmos"}
            for row in spec.paper.values():
                assert row.gates > 0 and row.edp > 0

    def test_build_by_name(self):
        aig = build_benchmark("t481")
        assert aig.n_pis == 16

    def test_unknown_name_rejected(self):
        with pytest.raises(ExperimentError):
            build_benchmark("C9999")
