"""BLIF and Verilog export/import."""

import pytest

from repro.circuits.adders import ripple_adder_circuit
from repro.circuits.blif import (
    read_blif,
    write_aig_blif,
    write_netlist_blif,
    write_netlist_verilog,
)
from repro.errors import SynthesisError
from repro.synth.aig import Aig, TRUE, lit_not
from repro.synth.mapper import map_aig
from repro.synth.verify import equivalent_aigs


class TestAigBlifRoundTrip:
    def test_adder_round_trip(self):
        aig = ripple_adder_circuit(4)
        text = write_aig_blif(aig)
        parsed = read_blif(text)
        assert parsed.pi_names == aig.pi_names
        assert parsed.po_names == aig.po_names
        assert equivalent_aigs(aig, parsed)

    def test_negated_and_constant_pos(self):
        aig = Aig("edge")
        a = aig.add_pi("a")
        aig.add_po(lit_not(a), "na")
        aig.add_po(TRUE, "one")
        aig.add_po(0, "zero")
        parsed = read_blif(write_aig_blif(aig))
        assert parsed.evaluate([True]) == [False, True, False]
        assert parsed.evaluate([False]) == [True, True, False]

    def test_model_name_preserved(self):
        aig = ripple_adder_circuit(2, name="add2x")
        assert ".model add2x" in write_aig_blif(aig)
        assert read_blif(write_aig_blif(aig)).name == "add2x"


class TestBlifReader:
    def test_dont_cares_and_multicube(self):
        text = """
.model f
.inputs a b c
.outputs y
.names a b c y
1-0 1
01- 1
.end
"""
        aig = read_blif(text)
        # y = a & !c | !a & b
        for m in range(8):
            a, b, c = (bool(m & 1), bool(m & 2), bool(m & 4))
            expected = (a and not c) or ((not a) and b)
            assert aig.evaluate([a, b, c]) == [expected], (a, b, c)

    def test_out_of_order_names_blocks(self):
        text = """
.model g
.inputs a b
.outputs y
.names t y
1 1
.names a b t
11 1
.end
"""
        aig = read_blif(text)
        assert aig.evaluate([True, True]) == [True]
        assert aig.evaluate([True, False]) == [False]

    def test_constant_table(self):
        text = ".model c\n.inputs a\n.outputs y\n.names y\n1\n.end\n"
        assert read_blif(text).evaluate([False]) == [True]

    def test_undriven_output_rejected(self):
        text = ".model c\n.inputs a\n.outputs y\n.end\n"
        with pytest.raises(SynthesisError):
            read_blif(text)

    def test_latch_rejected(self):
        text = ".model c\n.inputs a\n.outputs y\n.latch a y\n.end\n"
        with pytest.raises(SynthesisError):
            read_blif(text)

    def test_offset_table_rejected(self):
        text = (".model c\n.inputs a\n.outputs y\n"
                ".names a y\n0 0\n.end\n")
        with pytest.raises(SynthesisError):
            read_blif(text)


class TestNetlistExports:
    @pytest.fixture(scope="class")
    def netlist(self, glib):
        return map_aig(ripple_adder_circuit(3), glib)

    def test_blif_gate_lines(self, netlist):
        text = write_netlist_blif(netlist)
        assert text.count(".gate") == netlist.gate_count
        assert ".model" in text and ".end" in text
        for pi in netlist.pi_names:
            assert pi in text

    def test_verilog_structure(self, netlist):
        text = write_netlist_verilog(netlist)
        assert text.startswith("module ")
        assert text.rstrip().endswith("endmodule")
        assert text.count("  input ") == len(netlist.pi_names)
        assert text.count("  output ") == len(netlist.po_names)
        # one instance per gate
        instances = [line for line in text.splitlines()
                     if line.strip().startswith(tuple(
                         c for c in netlist.cell_histogram()))]
        assert len(instances) == netlist.gate_count
