"""Word-level circuit builder: every block against a Python reference."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.builders import CircuitBuilder
from repro.errors import SynthesisError


def _bits(value, width):
    return [bool((value >> i) & 1) for i in range(width)]


def _value(bits):
    return sum(1 << i for i, b in enumerate(bits) if b)


class TestArithmetic:
    @given(a=st.integers(0, 255), b=st.integers(0, 255), c=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_ripple_add(self, a, b, c):
        builder = CircuitBuilder("add")
        wa = builder.input_word("a", 8)
        wb = builder.input_word("b", 8)
        cin = builder.input_bit("cin")
        total, carry = builder.ripple_add(wa, wb, cin)
        builder.output_word("s", total)
        builder.output_bit("co", carry)
        out = builder.aig.evaluate(_bits(a, 8) + _bits(b, 8) + [c])
        assert _value(out[:8]) == (a + b + c) & 0xFF
        assert out[8] == bool((a + b + c) >> 8)

    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_subtract(self, a, b):
        builder = CircuitBuilder("sub")
        wa = builder.input_word("a", 8)
        wb = builder.input_word("b", 8)
        diff, borrow_n = builder.subtract(wa, wb)
        builder.output_word("d", diff)
        builder.output_bit("bn", borrow_n)
        out = builder.aig.evaluate(_bits(a, 8) + _bits(b, 8))
        assert _value(out[:8]) == (a - b) & 0xFF
        assert out[8] == (a >= b)  # carry out = no borrow

    @given(a=st.integers(0, 255))
    @settings(max_examples=30, deadline=None)
    def test_increment(self, a):
        builder = CircuitBuilder("inc")
        wa = builder.input_word("a", 8)
        inc, _ = builder.increment(wa)
        builder.output_word("y", inc)
        out = builder.aig.evaluate(_bits(a, 8))
        assert _value(out) == (a + 1) & 0xFF


class TestComparisonAndSelection:
    @given(a=st.integers(0, 63), b=st.integers(0, 63))
    @settings(max_examples=60, deadline=None)
    def test_equal_and_less(self, a, b):
        builder = CircuitBuilder("cmp")
        wa = builder.input_word("a", 6)
        wb = builder.input_word("b", 6)
        builder.output_bit("eq", builder.equal(wa, wb))
        builder.output_bit("lt", builder.less_than(wa, wb))
        builder.output_bit("za", builder.is_zero(wa))
        out = builder.aig.evaluate(_bits(a, 6) + _bits(b, 6))
        assert out == [a == b, a < b, a == 0]

    @given(select=st.integers(0, 7))
    @settings(max_examples=20, deadline=None)
    def test_decoder_one_hot(self, select):
        builder = CircuitBuilder("dec")
        sel = builder.input_word("s", 3)
        for i, line in enumerate(builder.decoder(sel)):
            builder.output_bit(f"d{i}", line)
        out = builder.aig.evaluate(_bits(select, 3))
        assert out == [i == select for i in range(8)]

    @given(select=st.integers(0, 3), values=st.lists(
        st.integers(0, 15), min_size=4, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_mux_tree(self, select, values):
        builder = CircuitBuilder("mux")
        words = [builder.input_word(f"w{k}", 4) for k in range(4)]
        sel = builder.input_word("s", 2)
        builder.output_word("y", builder.mux_tree(sel, words))
        inputs = []
        for v in values:
            inputs.extend(_bits(v, 4))
        inputs.extend(_bits(select, 2))
        out = builder.aig.evaluate(inputs)
        assert _value(out) == values[select]

    def test_mux_tree_size_checked(self):
        builder = CircuitBuilder("bad")
        words = [builder.input_word(f"w{k}", 2) for k in range(3)]
        sel = builder.input_word("s", 2)
        with pytest.raises(SynthesisError):
            builder.mux_tree(sel, words)

    @given(requests=st.integers(0, 255))
    @settings(max_examples=40, deadline=None)
    def test_priority_encoder(self, requests):
        builder = CircuitBuilder("prio")
        lines = builder.input_word("r", 8)
        builder.output_word("idx", builder.priority_encoder(lines))
        out = builder.aig.evaluate(_bits(requests, 8))
        expected = 0
        for i in range(8):
            if (requests >> i) & 1:
                expected = i
                break
        assert _value(out) == expected


class TestMisc:
    @given(value=st.integers(0, 4095))
    @settings(max_examples=40, deadline=None)
    def test_parity(self, value):
        builder = CircuitBuilder("par")
        bits = builder.input_word("x", 12)
        builder.output_bit("p", builder.parity(bits))
        out = builder.aig.evaluate(_bits(value, 12))
        assert out[0] == (bin(value).count("1") % 2 == 1)

    @given(table=st.integers(0, 255), value=st.integers(0, 7))
    @settings(max_examples=80, deadline=None)
    def test_from_truth_table(self, table, value):
        builder = CircuitBuilder("tt")
        inputs = builder.input_word("x", 3)
        builder.output_bit("f", builder.from_truth_table(table, inputs))
        out = builder.aig.evaluate(_bits(value, 3))
        assert out[0] == bool((table >> value) & 1)

    def test_width_mismatch_rejected(self):
        builder = CircuitBuilder("w")
        a = builder.input_word("a", 3)
        b = builder.input_word("b", 4)
        with pytest.raises(SynthesisError):
            builder.xor_word(a, b)

    def test_constant_word(self):
        builder = CircuitBuilder("c")
        builder.output_word("k", builder.constant_word(0b1010, 4))
        assert builder.aig.evaluate([]) == [False, True, False, True]
