"""The timing subsystem (:mod:`repro.timing`): bit-identity with the
netlist-level reference and with the mapper's internal delay DP,
feasibility semantics, critical-path structure and the cache ladder.

The two bit-for-bit anchors matter because three independent code
paths now claim to compute "the" delay: the mapper's DP (estimated
loads), :func:`repro.synth.netlist.static_timing` (real loads, used by
Table 1 since the seed) and :func:`repro.timing.arrival_times` (both,
selectable).  These tests lock all three together float for float.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import DiskCache
from repro.circuits.families import random_mapped_netlist
from repro.errors import SimulationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.flow import map_subject, synthesized_benchmark
from repro.registry import paper_benchmarks
from repro.synth.netlist import MappedNetlist, static_timing
from repro.timing import (
    TIMING_NAMESPACE,
    PathSegment,
    TimingReport,
    analyze_timing,
    arrival_times,
    cache_info,
    clear_cache,
    netlist_timing_key,
    timing_report,
)

NO_SYNTH = ExperimentConfig(synthesize=False)


def mapped(name, library, config=NO_SYNTH):
    return map_subject(synthesized_benchmark(name, config.synthesize),
                       library, config)


class TestBitIdentityWithStaticTiming:
    """arrival_times(loads=None) == static_timing, exactly."""

    def test_all_paper_benchmarks(self, mlib):
        for name in paper_benchmarks():
            netlist = mapped(name, mlib)
            critical, arrival = static_timing(netlist)
            report = analyze_timing(netlist)
            assert report.critical_delay_s == critical, name
            assert report.arrivals == arrival, name

    def test_across_libraries(self, glib, clib, mlib):
        for library in (glib, clib, mlib):
            netlist = mapped("C1355", library)
            critical, arrival = static_timing(netlist)
            got_critical, got_arrival = arrival_times(netlist)
            assert got_critical == critical
            assert got_arrival == arrival

    @settings(max_examples=25, deadline=None)
    @given(gates=st.integers(min_value=1, max_value=150),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           inputs=st.integers(min_value=2, max_value=24))
    def test_property_random_netlists(self, mlib, gates, seed, inputs):
        netlist = random_mapped_netlist(mlib, gates=gates, seed=seed,
                                        inputs=inputs)
        critical, arrival = static_timing(netlist)
        report = analyze_timing(netlist)
        assert report.critical_delay_s == critical
        assert report.arrivals == arrival


class TestMapperArrivalReplay:
    """Replaying the mapper's load model reproduces the mapper's own
    per-node DP arrivals bit for bit — the mapper provenance is a
    consistent fixed point of the emitted cover, not a stale DP
    artifact."""

    def assert_replay_exact(self, netlist):
        assert netlist.mapper_arrivals is not None
        assert netlist.mapper_loads is not None
        # every net of the netlist carries provenance
        assert set(netlist.mapper_arrivals) == set(netlist.all_nets())
        _, arrivals = arrival_times(netlist, loads=netlist.mapper_loads)
        assert arrivals == netlist.mapper_arrivals

    def test_all_paper_benchmarks(self, mlib):
        for name in paper_benchmarks():
            netlist = mapped(name, mlib)
            self.assert_replay_exact(netlist)

    def test_across_libraries(self, glib, clib):
        for library in (glib, clib):
            self.assert_replay_exact(mapped("t481", library))

    def test_synth_rand_instances(self, glib, mlib):
        for spec, library in (
                ("synth:rand(gates=400,seed=1,inputs=32,outputs=16)", glib),
                ("synth:rand(gates=900,seed=5,inputs=48,outputs=8)", mlib)):
            self.assert_replay_exact(mapped(spec, library))

    def test_pis_anchor_at_zero(self, mlib):
        netlist = mapped("t481", mlib)
        for pi in netlist.pi_names:
            assert netlist.mapper_arrivals[pi] == 0.0


class TestTimingReport:
    @pytest.fixture(scope="class")
    def report(self, mlib):
        return analyze_timing(mapped("C1355", mlib))

    def test_critical_is_worst_po_arrival(self, report):
        assert report.critical_delay_s == max(report.po_arrivals.values())
        assert report.po_arrivals[report.critical_po] == \
            report.critical_delay_s

    def test_fmax_is_reciprocal(self, report):
        assert report.fmax_hz == 1.0 / report.critical_delay_s

    def test_feasibility_boundary(self, report):
        fmax = report.fmax_hz
        assert report.feasible(fmax * 0.999)
        assert not report.feasible(fmax * 1.001)
        assert report.slack_s(fmax * 0.999) >= 0.0
        assert report.slack_s(fmax * 1.001) < 0.0

    def test_slack_rejects_nonpositive_frequency(self, report):
        with pytest.raises(SimulationError):
            report.slack_s(0.0)
        with pytest.raises(SimulationError):
            report.slack_s(-1e9)

    def test_critical_path_structure(self, report):
        path = report.critical_path
        assert path, "a mapped benchmark has a nonempty critical path"
        assert path[-1].arrival_s == report.critical_delay_s
        arrivals = [segment.arrival_s for segment in path]
        assert arrivals == sorted(arrivals)
        for segment in path:
            assert report.arrivals[segment.output] == segment.arrival_s

    def test_gateless_netlist_zero_delay_unbounded_fmax(self, mlib):
        netlist = MappedNetlist(
            name="wire", library=mlib, pi_names=["a"],
            po_bindings=[("z", ("net", "a"))], gates=[])
        netlist.validate()
        report = analyze_timing(netlist)
        assert report.critical_delay_s == 0.0
        assert report.fmax_hz == math.inf
        assert report.critical_path == ()
        assert report.feasible(1e15)

    def test_payload_roundtrip(self, report):
        restored = TimingReport.from_payload(report.to_payload())
        assert restored == report
        assert isinstance(restored.critical_path[0], PathSegment)


class TestTimingCache:
    def test_ladder_instance_then_lru(self, mlib):
        clear_cache(reset_counters=True)
        netlist = mapped("t481", mlib)
        first = timing_report(netlist)
        after_first = cache_info()
        assert after_first["computes"] == 1
        # same instance: memoized on the netlist, no cache traffic
        assert timing_report(netlist) is first
        assert cache_info()["hits"] == after_first["hits"]
        # structurally identical fresh instance: LRU hit, no recompute
        again = timing_report(mapped("t481", mlib))
        assert again is first
        info = cache_info()
        assert info["computes"] == 1
        assert info["hits"] == after_first["hits"] + 1

    def test_key_depends_on_library_electricals(self, glib, mlib):
        one = netlist_timing_key(mapped("t481", glib))
        two = netlist_timing_key(mapped("t481", mlib))
        assert one != two

    def test_key_depends_on_vdd(self):
        from repro.registry import cached_library

        keys = set()
        for vdd in (0.8, 0.9):
            library = cached_library("cmos", vdd)
            keys.add(netlist_timing_key(mapped("t481", library)))
        assert len(keys) == 2

    def test_disk_roundtrip(self, mlib, tmp_path, monkeypatch):
        import repro.timing as timing_module

        disk = DiskCache(tmp_path, enabled=True)
        monkeypatch.setattr(timing_module, "default_cache", lambda: disk)
        clear_cache(reset_counters=True)
        netlist = mapped("t481", mlib)
        first = timing_report(netlist)
        assert cache_info()["computes"] == 1
        assert disk.get(TIMING_NAMESPACE,
                        netlist_timing_key(netlist)) is not None
        # fresh process simulation: clear LRU + instance memo, keep disk
        clear_cache()
        fresh = mapped("t481", mlib)
        restored = timing_report(fresh)
        info = cache_info()
        assert info["computes"] == 1
        assert info["disk_hits"] == 1
        assert restored == first


class TestEstimatorIntegration:
    """The power model's delay column is the timing subsystem's."""

    def test_pricing_model_delay_is_timing_report(self, mlib):
        from repro.sim.estimator import PricingModel

        netlist = mapped("t481", mlib)
        model = PricingModel(netlist)
        report = timing_report(netlist)
        assert model.delay == report.critical_delay_s
        critical, _ = static_timing(netlist)
        assert model.delay == critical
