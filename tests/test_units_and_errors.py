"""Unit helpers and the exception hierarchy."""

import pytest

from repro import errors, units


class TestUnits:
    def test_thermal_voltage_at_room_temperature(self):
        assert units.thermal_voltage() == pytest.approx(0.025852, rel=1e-3)

    def test_conversions(self):
        assert units.to_attofarads(36e-18) == pytest.approx(36.0)
        assert units.to_picoseconds(4e-12) == pytest.approx(4.0)
        assert units.to_microwatts(23.05e-6) == pytest.approx(23.05)
        assert units.to_nanoamperes(3e-9) == pytest.approx(3.0)

    def test_edp_units_match_table1(self):
        """The paper reports EDP in 1e-24 J*s."""
        assert units.to_edp_units(8.13e-24) == pytest.approx(8.13)

    @pytest.mark.parametrize("value,expected", [
        (3.2e-9, "3.200 nA"),
        (52e-18, "52.000 aA"),
        (1.5e3, "1.500 kA"),
        (0.25, "250.000 mA"),
    ])
    def test_engineering_format(self, value, expected):
        assert units.engineering(value, "A") == expected

    def test_engineering_zero(self):
        assert units.engineering(0.0) == "0.000"

    def test_si_constants(self):
        assert units.AF == 1e-18
        assert units.PS == 1e-12
        assert units.GHZ == 1e9


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.DeviceModelError,
        errors.NetlistError,
        errors.ConvergenceError,
        errors.TopologyError,
        errors.LibraryError,
        errors.SynthesisError,
        errors.MappingError,
        errors.SimulationError,
        errors.ExperimentError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_mapping_error_is_synthesis_error(self):
        assert issubclass(errors.MappingError, errors.SynthesisError)

    def test_convergence_error_carries_residual(self):
        error = errors.ConvergenceError("failed", residual=1e-3)
        assert error.residual == 1e-3

    def test_catching_the_base_class(self):
        with pytest.raises(errors.ReproError):
            raise errors.LibraryError("nope")
