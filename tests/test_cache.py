"""The persistent characterization cache (repro.cache and its hooks)."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cache import DiskCache, stable_hash
from repro.devices.parameters import cmos_32nm, cntfet_32nm
from repro.power.pattern_sim import PatternSimulator
from repro.power.patterns import LeakagePattern
from repro.power.characterize import characterize_library
from repro.sim.estimator import _LeakageTables, _library_content_key

D = ("d",)


class TestStableHash:
    def test_deterministic_across_constructions(self):
        assert stable_hash(cmos_32nm()) == stable_hash(cmos_32nm())

    def test_distinguishes_technologies(self):
        assert stable_hash(cmos_32nm()) != stable_hash(cntfet_32nm())

    def test_any_field_change_changes_key(self):
        base = cntfet_32nm()
        assert stable_hash(base.with_vdd(0.8)) != stable_hash(base)
        nmos = dataclasses.replace(base.nmos, ig_on=base.nmos.ig_on * 2)
        tweaked = dataclasses.replace(base, nmos=nmos,
                                      pmos=nmos.as_polarity("p"))
        assert stable_hash(tweaked) != stable_hash(base)

    def test_plain_structures(self):
        assert stable_hash([1, "a", 0.5]) == stable_hash((1, "a", 0.5))
        assert stable_hash({"b": 1, "a": 2}) == stable_hash({"a": 2, "b": 1})
        assert stable_hash([1]) != stable_hash([2])


class TestDiskCache:
    def test_roundtrip(self, tmp_path):
        cache = DiskCache(root=tmp_path, enabled=True)
        cache.put("ns", "key", {"x": [1.5, 2.5]})
        assert cache.get("ns", "key") == {"x": [1.5, 2.5]}

    def test_missing_is_none(self, tmp_path):
        cache = DiskCache(root=tmp_path, enabled=True)
        assert cache.get("ns", "nope") is None

    def test_corrupt_entry_is_none(self, tmp_path):
        cache = DiskCache(root=tmp_path, enabled=True)
        cache.put("ns", "key", {"ok": 1})
        path = tmp_path / "ns" / "key.json"
        path.write_text("{not json")
        assert cache.get("ns", "key") is None

    def test_merge_accumulates(self, tmp_path):
        cache = DiskCache(root=tmp_path, enabled=True)
        cache.merge("ns", "key", {"a": 1})
        merged = cache.merge("ns", "key", {"b": 2})
        assert merged == {"a": 1, "b": 2}
        assert cache.get("ns", "key") == {"a": 1, "b": 2}

    def test_disabled_cache_never_stores(self, tmp_path):
        cache = DiskCache(root=tmp_path, enabled=False)
        cache.put("ns", "key", {"x": 1})
        assert cache.get("ns", "key") is None
        assert not (tmp_path / "ns").exists()

    def test_clear(self, tmp_path):
        cache = DiskCache(root=tmp_path, enabled=True)
        cache.put("a", "k1", 1)
        cache.put("b", "k2", 2)
        assert cache.clear("a") == 1
        assert cache.get("a", "k1") is None
        assert cache.get("b", "k2") == 2


class TestPatternSimulatorPersistence:
    def test_solves_do_not_grow_on_second_characterization(self, glib):
        simulator = PatternSimulator(glib.tech, disk_cache=None)
        characterize_library(glib, simulator=simulator)
        solves_after_first = simulator.solves
        assert solves_after_first > 0
        characterize_library(glib, simulator=simulator)
        assert simulator.solves == solves_after_first

    def test_warm_disk_cache_skips_every_solve(self, tmp_path, cmos_tech):
        cache = DiskCache(root=tmp_path, enabled=True)
        cold = PatternSimulator(cmos_tech, disk_cache=cache)
        patterns = [LeakagePattern(D), LeakagePattern(("s", D, D)),
                    LeakagePattern(("p", D, ("s", D, D)))]
        cold_currents = [cold.currents(p) for p in patterns]
        assert cold.solves == len(patterns)

        warm = PatternSimulator(cmos_tech, disk_cache=cache)
        warm_currents = [warm.currents(p) for p in patterns]
        assert warm.solves == 0
        for a, b in zip(cold_currents, warm_currents):
            assert a.i_off == b.i_off
            assert a.n_devices == b.n_devices
        # Session-level bookkeeping still reflects what was requested.
        assert warm.cache_size == len(patterns)
        assert warm.pattern_keys == {p.key for p in patterns}

    def test_technology_change_invalidates(self, tmp_path, cmos_tech):
        cache = DiskCache(root=tmp_path, enabled=True)
        first = PatternSimulator(cmos_tech, disk_cache=cache)
        first.currents(LeakagePattern(D))
        assert first.solves == 1

        changed = PatternSimulator(cmos_tech.with_vdd(0.8), disk_cache=cache)
        changed.currents(LeakagePattern(D))
        assert changed.solves == 1  # cache key differs; must re-solve

        same = PatternSimulator(cmos_tech, disk_cache=cache)
        same.currents(LeakagePattern(D))
        assert same.solves == 0


class TestLeakageTablesPersistence:
    def test_content_key_tracks_technology(self, mlib):
        from repro.gates.conventional import cmos_library

        assert (_library_content_key(mlib)
                == _library_content_key(cmos_library()))
        scaled = cmos_library(mlib.tech.with_vdd(0.8))
        assert (_library_content_key(scaled)
                != _library_content_key(mlib))

    def test_disk_roundtrip_matches_fresh_build(self, tmp_path, mlib,
                                                monkeypatch):
        from repro import cache as cache_module
        from repro.gates.conventional import cmos_library
        from repro.sim import estimator

        monkeypatch.setenv(cache_module.ENV_CACHE_DISABLE, "0")
        monkeypatch.setenv(cache_module.ENV_CACHE_DIR, str(tmp_path))
        _LeakageTables._cache.clear()
        built = _LeakageTables.for_library(mlib)
        key = _library_content_key(mlib)
        stored = cache_module.default_cache().get(
            estimator._LEAKAGE_NAMESPACE, key)
        assert stored is not None

        fresh_library = cmos_library()  # new instance, same content
        loaded = _LeakageTables.for_library(fresh_library)
        assert loaded is not built  # separate instance, loaded from disk
        for name in built.i_off:
            np.testing.assert_array_equal(built.i_off[name],
                                          loaded.i_off[name])
            np.testing.assert_array_equal(built.i_gate[name],
                                          loaded.i_gate[name])
        _LeakageTables._cache.clear()

    def test_in_memory_reuse_per_library_instance(self, mlib):
        first = _LeakageTables.for_library(mlib)
        assert _LeakageTables.for_library(mlib) is first


class TestCacheIntegrity:
    """Checksummed envelopes, quarantine, and the corrupt-read fault."""

    def _cache(self, tmp_path):
        from repro.cache import reset_cache_stats

        reset_cache_stats()
        return DiskCache(root=tmp_path, enabled=True)

    def test_entries_are_checksummed_envelopes(self, tmp_path):
        import json

        cache = self._cache(tmp_path)
        cache.put("ns", "key", {"x": 1})
        payload = json.loads((tmp_path / "ns" / "key.json").read_text())
        assert payload["__repro_cache__"] == 1
        assert len(payload["sha256"]) == 64
        assert payload["value"] == {"x": 1}

    def test_truncated_entry_is_clean_miss_and_quarantined(self, tmp_path):
        """A write killed mid-file must read as a miss, move the debris
        aside, and never poison a future read (the satellite
        regression test)."""
        from repro.cache import QUARANTINE_DIRNAME, cache_stats

        cache = self._cache(tmp_path)
        cache.put("ns", "key", {"big": list(range(100))})
        path = tmp_path / "ns" / "key.json"
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # torn write
        assert cache.get("ns", "key") is None
        assert not path.exists()  # moved aside, not re-read forever
        quarantined = list((tmp_path / QUARANTINE_DIRNAME / "ns").iterdir())
        assert len(quarantined) == 1
        stats = cache_stats()
        assert stats["quarantined"] == 1
        assert stats["unparseable"] == 1
        # The miss is clean: a recompute can re-put and read back.
        cache.put("ns", "key", {"big": [1]})
        assert cache.get("ns", "key") == {"big": [1]}

    def test_checksum_mismatch_is_quarantined(self, tmp_path):
        import json

        from repro.cache import cache_stats

        cache = self._cache(tmp_path)
        cache.put("ns", "key", {"x": 1})
        path = tmp_path / "ns" / "key.json"
        payload = json.loads(path.read_text())
        payload["value"] = {"x": 2}  # bit-flipped value, stale checksum
        path.write_text(json.dumps(payload))
        assert cache.get("ns", "key") is None
        assert cache_stats()["checksum_mismatch"] == 1

    def test_legacy_entry_still_readable(self, tmp_path):
        import json

        from repro.cache import cache_stats

        cache = self._cache(tmp_path)
        path = tmp_path / "ns" / "key.json"
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"old": "format"}))  # pre-envelope
        assert cache.get("ns", "key") == {"old": "format"}
        assert cache_stats()["legacy"] == 1
        assert cache_stats()["quarantined"] == 0

    def test_verified_reads_are_counted(self, tmp_path):
        from repro.cache import cache_stats

        cache = self._cache(tmp_path)
        cache.put("ns", "key", [1, 2])
        cache.get("ns", "key")
        cache.get("ns", "key")
        assert cache_stats()["verified"] == 2

    def test_corrupt_read_fault_triggers_quarantine(self, tmp_path):
        from repro import faults
        from repro.cache import cache_stats

        cache = self._cache(tmp_path)
        cache.put("ns", "key", {"x": 1})
        cache.put("ns", "other", {"y": 2})
        faults.activate("cache.corrupt_read:times=1,match=ns/key")
        try:
            assert cache.get("ns", "key") is None  # garbled once
            assert cache.get("ns", "other") == {"y": 2}  # no match
            assert cache_stats()["quarantined"] == 1
            # The budget is spent: a recompute survives.
            cache.put("ns", "key", {"x": 1})
            assert cache.get("ns", "key") == {"x": 1}
        finally:
            faults.deactivate()


class TestSingleFlight:
    """Cross-process single-flight over the disk cache's lock files."""

    def _cache(self, tmp_path):
        return DiskCache(root=tmp_path, enabled=True)

    def test_leader_computes_once_and_unlocks(self, tmp_path):
        from repro.cache import cache_stats, single_flight

        cache = self._cache(tmp_path)
        computed = []

        def compute():
            computed.append(True)
            cache.put("ns", "key", {"v": 42})
            return {"v": 42}

        def probe():
            return cache.get("ns", "key")

        before = cache_stats()["flight_leader"]
        assert single_flight(cache, "ns", "key", compute, probe) \
            == {"v": 42}
        assert computed == [True]
        assert cache_stats()["flight_leader"] == before + 1
        # The lock is gone: a second call probes the entry instead of
        # recomputing.
        assert not cache.lock_path("ns", "key").exists()
        assert single_flight(cache, "ns", "key", compute, probe) \
            == {"v": 42}
        assert computed == [True]

    def test_follower_waits_for_leader_entry(self, tmp_path):
        import threading
        import time

        from repro.cache import cache_stats, single_flight

        cache = self._cache(tmp_path)
        # Simulate a live leader: hold the lock from this very
        # process (the owner pid is alive, so it is never stale),
        # then publish the entry and release.
        assert cache.try_lock("ns", "key")

        def leader():
            time.sleep(0.1)
            cache.put("ns", "key", {"v": 7})
            cache.unlock("ns", "key")

        thread = threading.Thread(target=leader)
        thread.start()
        before = cache_stats()["flight_follower"]

        def compute():
            raise AssertionError("the follower must never compute")

        value = single_flight(cache, "ns", "key", compute,
                              lambda: cache.get("ns", "key"),
                              poll_s=0.01)
        thread.join()
        assert value == {"v": 7}
        assert cache_stats()["flight_follower"] == before + 1

    def test_stale_lock_of_dead_process_is_taken_over(self, tmp_path):
        import json
        import multiprocessing

        from repro.cache import cache_stats, single_flight

        cache = self._cache(tmp_path)
        # A real dead pid: fork a child that exits immediately.
        proc = multiprocessing.get_context("fork").Process(target=lambda: None)
        proc.start()
        dead_pid = proc.pid
        proc.join()
        assert cache.try_lock("ns", "key")
        lock = cache.lock_path("ns", "key")
        payload = json.loads(lock.read_text())
        payload["pid"] = dead_pid
        lock.write_text(json.dumps(payload))
        assert cache.lock_stale("ns", "key", stale_s=3600.0)

        computed = []

        def compute():
            computed.append(True)
            cache.put("ns", "key", {"v": 1})
            return {"v": 1}

        before = cache_stats()["flight_takeover"]
        value = single_flight(cache, "ns", "key", compute,
                              lambda: cache.get("ns", "key"),
                              poll_s=0.01)
        assert value == {"v": 1}
        assert computed == [True]
        assert cache_stats()["flight_takeover"] == before + 1

    def test_live_lock_is_not_stale_by_age(self, tmp_path):
        cache = self._cache(tmp_path)
        assert cache.try_lock("ns", "key")
        # Our own pid is alive on this host: age must not matter.
        assert not cache.lock_stale("ns", "key", stale_s=0.0)
        cache.unlock("ns", "key")

    def test_wait_timeout_computes_redundantly(self, tmp_path):
        from repro.cache import cache_stats, single_flight

        cache = self._cache(tmp_path)
        assert cache.try_lock("ns", "key")  # held, live, never freed

        before = cache_stats()["flight_timeout"]
        value = single_flight(cache, "ns", "key",
                              lambda: {"v": "redundant"},
                              lambda: cache.get("ns", "key"),
                              poll_s=0.005, max_wait_s=0.05)
        assert value == {"v": "redundant"}
        assert cache_stats()["flight_timeout"] == before + 1
        cache.unlock("ns", "key")

    def test_disabled_cache_computes_directly(self, tmp_path):
        from repro.cache import single_flight

        cache = DiskCache(root=tmp_path, enabled=False)
        assert single_flight(cache, "ns", "key", lambda: 5,
                             lambda: None) == 5
        assert not (tmp_path / "_locks").exists()
