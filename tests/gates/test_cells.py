"""Cell machinery: stages, complement inverters, capacitances."""

import pytest

from repro.devices.parameters import CMOS_32NM, CNTFET_32NM
from repro.errors import TopologyError
from repro.gates.cells import Cell, Stage, nfet, signal, tg
from repro.gates.topology import parallel, series
from repro.units import AF


def _inverter():
    return Cell("INV", ("a",), (Stage("y", nfet("a")),), "a'")


def _nand2():
    return Cell("NAND2", ("a", "b"),
                (Stage("y", series(nfet("a"), nfet("b"))),), "(ab)'")


def _xor2_tg():
    return Cell("XOR2", ("a", "b"),
                (Stage("y", tg("a", "b", invert=True)),), "a^b")


class TestEvaluation:
    def test_inverter(self):
        cell = _inverter()
        assert cell.evaluate([False]) is True
        assert cell.evaluate([True]) is False
        assert cell.truth_table == 0b01

    def test_nand2_truth_table(self):
        assert _nand2().truth_table == 0b0111

    def test_tg_xor(self):
        assert _xor2_tg().truth_table == 0b0110

    def test_multi_stage_buffer(self):
        buf = Cell("BUF", ("a",),
                   (Stage("i0", nfet("a")), Stage("y", nfet("i0"))), "a")
        assert buf.truth_table == 0b10

    def test_wrong_value_count_raises(self):
        with pytest.raises(TopologyError):
            _nand2().evaluate([True])

    def test_stage_input_values_exposes_internals(self):
        buf = Cell("BUF", ("a",),
                   (Stage("i0", nfet("a")), Stage("y", nfet("i0"))), "a")
        values = buf.stage_input_values([True])
        assert values["i0"] is False
        assert values["y"] is True


class TestValidation:
    def test_duplicate_pins_rejected(self):
        with pytest.raises(TopologyError):
            Cell("X", ("a", "a"), (Stage("y", nfet("a")),))

    def test_unknown_signal_rejected(self):
        with pytest.raises(TopologyError):
            Cell("X", ("a",), (Stage("y", nfet("q")),))

    def test_stage_name_collision_rejected(self):
        with pytest.raises(TopologyError):
            Cell("X", ("a",),
                 (Stage("a", nfet("a")),))

    def test_empty_stages_rejected(self):
        with pytest.raises(TopologyError):
            Cell("X", ("a",), ())

    def test_signal_parser(self):
        assert signal("a").negated is False
        assert signal("a'").negated is True
        assert signal("a'").name == "a"


class TestComplementInverters:
    def test_plain_cell_has_none(self):
        assert _nand2().complemented_signals() == []

    def test_tg_cell_needs_both_phases(self):
        assert _xor2_tg().complemented_signals() == ["a", "b"]

    def test_all_stages_order(self):
        stages = [s.name for s in _xor2_tg().all_stages()]
        assert stages == ["a#bar", "b#bar", "y"]

    def test_negated_literal_needs_inverter(self):
        mux = Cell("MUXI2", ("s", "a", "b"),
                   (Stage("y", parallel(series(nfet("s"), nfet("a")),
                                        series(nfet("s'"), nfet("b")))),),
                   "(sa+s'b)'")
        assert mux.complemented_signals() == ["s"]
        assert mux.n_devices == 10  # 4+4 network + 2 inverter

    def test_device_counts(self):
        assert _inverter().n_devices == 2
        assert _nand2().n_devices == 4
        # TG pair in both networks (4) + two complement inverters (4)
        assert _xor2_tg().n_devices == 8


class TestCapacitances:
    def test_inverter_cin_matches_technology(self):
        cell = _inverter()
        cmos = cell.pin_capacitance("a", CMOS_32NM.nmos.c_gate,
                                    CMOS_32NM.nmos.c_pol)
        cnt = cell.pin_capacitance("a", CNTFET_32NM.nmos.c_gate,
                                   CNTFET_32NM.nmos.c_pol)
        assert cmos == pytest.approx(52 * AF)
        assert cnt == pytest.approx(36 * AF)

    def test_tg_pin_capacitances(self):
        """TG 'a' drives polarity gates (+ half-width inverter), 'b'
        conventional gates."""
        cell = _xor2_tg()
        c_gate, c_pol = CNTFET_32NM.nmos.c_gate, CNTFET_32NM.nmos.c_pol
        cap_a = cell.pin_capacitance("a", c_gate, c_pol)
        cap_b = cell.pin_capacitance("b", c_gate, c_pol)
        assert cap_a == pytest.approx(2 * c_pol + c_gate)
        assert cap_b == pytest.approx(2 * c_gate + c_gate)

    def test_unknown_pin_raises(self):
        with pytest.raises(TopologyError):
            _inverter().pin_capacitance("z", 1e-18, 0.0)

    def test_average_input_capacitance(self):
        cell = _nand2()
        avg = cell.average_input_capacitance(26 * AF, 0.0)
        assert avg == pytest.approx(52 * AF)


class TestStructureMetrics:
    def test_drive_depth(self):
        assert _inverter().drive_depth() == 1
        assert _nand2().drive_depth() == 2
        assert _xor2_tg().drive_depth() == 1

    def test_output_intrinsic_devices(self):
        assert _inverter().output_intrinsic_devices() == 2
        # NAND2: one series chain end + two parallel pull-up devices
        assert _nand2().output_intrinsic_devices() == 3

    def test_uses_transmission_gates(self):
        assert _xor2_tg().uses_transmission_gates()
        assert not _nand2().uses_transmission_gates()
