"""The three libraries: rosters, functions, derived characteristics."""

import pytest

from repro.errors import LibraryError
from repro.gates.ambipolar_library import (
    GENERALIZED_FUNCTIONS,
    generalized_cntfet_library,
)
from repro.gates.conventional import CONVENTIONAL_FUNCTIONS
from repro.synth.truth import from_function
from repro.units import AF


class TestRosters:
    def test_generalized_library_has_46_cells(self, glib):
        """Section 4: 'the whole library of 46 logic gates designed
        in [3]'."""
        assert len(glib) == 46

    def test_conventional_libraries_have_20_cells(self, clib, mlib):
        assert len(clib) == 20
        assert len(mlib) == 20

    def test_conventional_cells_present_in_generalized(self, glib, mlib):
        for name in mlib.names:
            assert name in glib

    def test_26_generalized_cells(self, glib):
        generalized = [c for c in glib if c.generalized]
        assert len(generalized) == 26 + 2  # +2: the TG XOR2/XNOR2

    def test_requires_ambipolar_technology(self, cmos_tech):
        with pytest.raises(LibraryError):
            generalized_cntfet_library(cmos_tech)


class TestFunctions:
    @pytest.mark.parametrize("name", sorted(CONVENTIONAL_FUNCTIONS))
    def test_conventional_functions_exact(self, mlib, name):
        cell = mlib.cell(name)
        expected = from_function(CONVENTIONAL_FUNCTIONS[name], cell.n_inputs)
        assert cell.truth_table == expected

    @pytest.mark.parametrize("name", sorted(GENERALIZED_FUNCTIONS))
    def test_generalized_functions_exact(self, glib, name):
        cell = glib.cell(name)
        expected = from_function(GENERALIZED_FUNCTIONS[name], cell.n_inputs)
        assert cell.truth_table == expected

    def test_tg_xor2_same_function_fewer_devices(self, glib, mlib):
        """Fig. 3: the ambipolar XOR2 implements the same function with
        8 devices instead of the CMOS 12."""
        assert glib.cell("XOR2").truth_table == mlib.cell("XOR2").truth_table
        assert glib.cell("XOR2").n_devices == 8
        assert mlib.cell("XOR2").n_devices == 12

    def test_generalized_cells_use_tgs(self, glib):
        tg_cells = [c.name for c in glib if c.uses_transmission_gates()]
        assert "GNAND2B" in tg_cells
        assert "XOR3" in tg_cells
        assert "NAND2" not in tg_cells


class TestDerivedCharacteristics:
    def test_inverter_lookup(self, glib, mlib):
        assert glib.inverter().name == "INV"
        assert mlib.inverter().name == "INV"

    def test_areas_positive_and_monotone(self, glib):
        assert glib.area("INV") < glib.area("NAND2") < glib.area("NAND4")

    def test_delay_monotone_in_load(self, glib):
        t = glib.timing("NAND2")
        assert t.delay(100 * AF) > t.delay(10 * AF) > 0

    def test_unknown_cell_raises(self, glib):
        with pytest.raises(LibraryError):
            glib.cell("NOPE")
        with pytest.raises(LibraryError):
            glib.area("NOPE")

    def test_pin_capacitances_complete(self, glib):
        for cell in glib:
            caps = glib.pin_capacitances(cell.name)
            assert set(caps) == set(cell.inputs)
            assert all(c > 0 for c in caps.values())

    def test_cntfet_cheaper_pins_than_cmos(self, clib, mlib):
        """Every conventional cell pin is cheaper in CNTFET."""
        for cell in clib:
            for pin in cell.inputs:
                assert (clib.pin_capacitance(cell.name, pin)
                        < mlib.pin_capacitance(cell.name, pin))

    def test_match_index_entries_realize_functions(self, mlib):
        """Spot-check: each (cell, perm) in the index reproduces the
        indexed truth table."""
        from repro.synth.truth import permute
        index = mlib.match_index()
        checked = 0
        for arity, bucket in index.items():
            for table, (cell_name, perm) in list(bucket.items())[:20]:
                cell = mlib.cell(cell_name)
                assert permute(cell.truth_table, perm, arity) == table
                checked += 1
        assert checked > 10

    def test_timing_caching(self, glib):
        assert glib.timing("NAND2") is glib.timing("NAND2")
