"""genlib writer/parser round-trip."""

import itertools

import pytest

from repro.errors import LibraryError
from repro.gates.genlib import evaluate_expression, parse_genlib, write_genlib


class TestRoundTrip:
    @pytest.mark.parametrize("fixture", ["glib", "clib", "mlib"])
    def test_every_cell_survives(self, fixture, request):
        library = request.getfixturevalue(fixture)
        gates = parse_genlib(write_genlib(library))
        assert set(gates) == set(library.names)

    def test_expressions_match_cell_functions(self, glib):
        gates = parse_genlib(write_genlib(glib))
        for cell in glib:
            gate = gates[cell.name]
            assert gate.pins == list(cell.inputs)
            for values in itertools.product([False, True],
                                            repeat=cell.n_inputs):
                env = dict(zip(cell.inputs, values))
                assert (evaluate_expression(gate.expression, env)
                        == cell.evaluate(list(values))), (
                    f"{cell.name} mismatch at {values}")

    def test_areas_and_caps_round_trip(self, mlib):
        gates = parse_genlib(write_genlib(mlib))
        for cell in mlib:
            gate = gates[cell.name]
            assert gate.area == pytest.approx(mlib.area(cell.name), abs=0.01)
            for pin in cell.inputs:
                expected = mlib.pin_capacitance(cell.name, pin) / 1e-18
                assert gate.pin_caps[pin] == pytest.approx(expected, abs=0.01)


class TestParserErrors:
    def test_pin_before_gate(self):
        with pytest.raises(LibraryError):
            parse_genlib("  PIN a UNKNOWN 1 1 1 1 1 1")

    def test_garbage_line(self):
        with pytest.raises(LibraryError):
            parse_genlib("WHAT is this")

    def test_unknown_identifier_in_expression(self):
        with pytest.raises(LibraryError):
            evaluate_expression("a*q", {"a": True})

    def test_unbalanced_parentheses(self):
        with pytest.raises(LibraryError):
            evaluate_expression("(a", {"a": True})


class TestExpressionEvaluation:
    def test_operators(self):
        env = {"a": True, "b": False}
        assert evaluate_expression("a*!b", env)
        assert evaluate_expression("!a+b", env) is False
        assert evaluate_expression("CONST1", {})
        assert evaluate_expression("CONST0", {}) is False
