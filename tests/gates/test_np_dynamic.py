"""The NP-domino ambipolar demo library (gates/np_dynamic.py)."""

import itertools

import pytest

from repro import registry
from repro.devices.parameters import CMOS_32NM, CNTFET_32NM
from repro.errors import LibraryError
from repro.experiments.flow import run_circuit_flow
from repro.gates.np_dynamic import (
    NP_DYNAMIC,
    NP_DYNAMIC_FUNCTIONS,
    np_domino_cells,
    np_dynamic_library,
)


@pytest.fixture(scope="module")
def nplib():
    return np_dynamic_library(CNTFET_32NM)


class TestNpDynamicCells:
    def test_domino_cell_functions(self, nplib):
        for name, function in NP_DYNAMIC_FUNCTIONS.items():
            cell = nplib.cell(name)
            for values in itertools.product(
                    (False, True), repeat=len(cell.inputs)):
                assert cell.evaluate(values) == bool(function(*values)), \
                    (name, values)

    def test_composites_are_non_inverting_two_stage(self):
        for cell in np_domino_cells():
            assert len(cell.stages) == 2, cell.name
            assert cell.stages[-1].name == "y", cell.name

    def test_parity_chain_uses_transmission_gates(self, nplib):
        assert nplib.cell("NPXOR3").generalized
        assert nplib.cell("NPXNOR3").generalized
        assert nplib.cell("NPXOR3").uses_transmission_gates()
        # The domino AND/OR composites stay purely static.
        assert not nplib.cell("NPAND3").uses_transmission_gates()

    def test_extends_the_conventional_base_set(self, nplib):
        for name in ("INV", "NAND2", "NOR2", "XOR2", "MUX2"):
            assert name in nplib
        assert len(nplib) == 20 + len(np_domino_cells())

    def test_requires_ambipolar_technology(self):
        with pytest.raises(LibraryError):
            np_dynamic_library(CMOS_32NM)


class TestNpDynamicRegistration:
    def test_registered_key_and_aliases(self):
        assert NP_DYNAMIC in registry.available_libraries()
        assert registry.canonical_library("np-dynamic") == NP_DYNAMIC
        assert registry.canonical_library("np-domino") == NP_DYNAMIC

    def test_cached_library_resolves_it(self):
        library = registry.cached_library("np-dynamic")
        assert library.name == NP_DYNAMIC
        assert library is registry.cached_library(NP_DYNAMIC)

    def test_end_to_end_flow(self, tiny_config):
        from repro.circuits.adders import ripple_adder_circuit

        library = registry.cached_library("np-dynamic")
        flow = run_circuit_flow(ripple_adder_circuit(4), library,
                                tiny_config)
        assert flow.library == NP_DYNAMIC
        assert flow.gate_count > 0
        assert flow.pt_w > 0

    def test_foundry_lists_it_as_build_target(self):
        from repro import foundry

        rows = {row["key"]: row for row in foundry.library_listing()}
        assert NP_DYNAMIC in rows
        assert rows[NP_DYNAMIC]["prebuilt"]


def test_vdd_aware_factory():
    library = registry.build_library("np-dynamic", 0.7)
    assert library.tech.vdd == pytest.approx(0.7)


def test_tiny_sweep_over_np_dynamic(tmp_path):
    from repro.sweep.runner import run_sweep
    from repro.sweep.spec import SweepSpec
    from repro.sweep.store import open_store

    spec = SweepSpec(circuits=("t481",), libraries=("np-dynamic",),
                     n_patterns=(512,), state_patterns=512)
    assert spec.libraries == (NP_DYNAMIC,)
    store = open_store(tmp_path / "np.jsonl")
    report = run_sweep(spec, store)
    assert report.executed == 1
    record = store.records()[0]
    assert record["library"] == NP_DYNAMIC
    assert record["result"]["pt_w"] > 0
