"""Switch-network trees: conduction, duality, metrics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TopologyError
from repro.gates.cells import nfet, pfet, tg
from repro.gates.topology import (
    Fet,
    Parallel,
    Series,
    Signal,
    complement_requirements,
    conduction,
    device_count,
    dual,
    iter_leaves,
    network_support,
    output_adjacency,
    parallel,
    series,
    series_depth,
)

VARS = ["a", "b", "c", "d"]


@st.composite
def networks(draw, depth=3):
    """Random series/parallel trees over four signals."""
    if depth == 0 or draw(st.booleans()):
        kind = draw(st.sampled_from(["n", "p", "tg"]))
        if kind == "tg":
            a, b = draw(st.sampled_from(
                [(x, y) for x in VARS for y in VARS if x != y]))
            return tg(a, b, invert=draw(st.booleans()))
        name = draw(st.sampled_from(VARS))
        return nfet(name) if kind == "n" else pfet(name)
    children = draw(st.lists(networks(depth=depth - 1), min_size=2,
                             max_size=3))
    combine = series if draw(st.booleans()) else parallel
    return combine(*children)


@st.composite
def assignments(draw):
    return {v: draw(st.booleans()) for v in VARS}


class TestLeaves:
    def test_nfet_conducts_on_high(self):
        assert conduction(nfet("a"), {"a": True})
        assert not conduction(nfet("a"), {"a": False})

    def test_pfet_conducts_on_low(self):
        assert conduction(pfet("a"), {"a": False})
        assert not conduction(pfet("a"), {"a": True})

    def test_negated_control(self):
        assert conduction(nfet("a'"), {"a": False})

    def test_tg_conducts_on_xor(self):
        gate = tg("a", "b")
        assert conduction(gate, {"a": True, "b": False})
        assert not conduction(gate, {"a": True, "b": True})

    def test_tg_inverted(self):
        gate = tg("a", "b", invert=True)
        assert conduction(gate, {"a": True, "b": True})

    def test_missing_signal_raises(self):
        with pytest.raises(TopologyError):
            conduction(nfet("a"), {})

    def test_bad_polarity_rejected(self):
        with pytest.raises(TopologyError):
            Fet(Signal("a"), "x")


class TestComposition:
    def test_series_is_and(self):
        net = series(nfet("a"), nfet("b"))
        assert conduction(net, {"a": True, "b": True})
        assert not conduction(net, {"a": True, "b": False})

    def test_parallel_is_or(self):
        net = parallel(nfet("a"), nfet("b"))
        assert conduction(net, {"a": False, "b": True})
        assert not conduction(net, {"a": False, "b": False})

    def test_constructors_flatten(self):
        net = series(nfet("a"), series(nfet("b"), nfet("c")))
        assert isinstance(net, Series)
        assert len(net.children) == 3

    def test_single_child_passthrough(self):
        assert series(nfet("a")) == nfet("a")

    def test_too_few_children_rejected(self):
        with pytest.raises(TopologyError):
            Series((nfet("a"),))
        with pytest.raises(TopologyError):
            Parallel((nfet("a"),))


class TestDuality:
    @given(net=networks(), values=assignments())
    @settings(max_examples=200, deadline=None)
    def test_dual_complements_conduction(self, net, values):
        """The heart of static gate design: PU = dual(PD) conducts
        exactly when PD does not."""
        assert conduction(dual(net), values) == (not conduction(net, values))

    @given(net=networks())
    @settings(max_examples=100, deadline=None)
    def test_dual_is_involution(self, net):
        assert dual(dual(net)) == net

    @given(net=networks())
    @settings(max_examples=100, deadline=None)
    def test_dual_preserves_counts(self, net):
        assert device_count(dual(net)) == device_count(net)
        assert network_support(dual(net)) == network_support(net)


class TestMetrics:
    def test_device_count_tg_is_two(self):
        assert device_count(tg("a", "b")) == 2
        assert device_count(series(tg("a", "b"), nfet("c"))) == 3

    def test_series_depth(self):
        net = series(nfet("a"), parallel(series(nfet("b"), nfet("c")),
                                         nfet("d")))
        assert series_depth(net) == 3

    def test_output_adjacency(self):
        net = parallel(series(nfet("a"), nfet("b")), nfet("c"))
        assert output_adjacency(net) == 2  # first of the chain + the leaf

    def test_support(self):
        net = series(tg("a", "b"), nfet("c"))
        assert network_support(net) == {"a", "b", "c"}

    def test_complement_requirements(self):
        assert complement_requirements(series(nfet("a"), nfet("b"))) == set()
        assert complement_requirements(nfet("a'")) == {"a"}
        assert complement_requirements(tg("a", "b")) == {"a", "b"}

    def test_iter_leaves_order(self):
        net = series(nfet("a"), parallel(nfet("b"), nfet("c")))
        names = [leaf.control.name for leaf in iter_leaves(net)]
        assert names == ["a", "b", "c"]
