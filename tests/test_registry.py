"""The library and circuit registries: registration, aliases,
discovery, vdd-aware construction, the hybrid pass-transistor demo
library, the circuit suite as a registry view, and the deprecated flow
shims."""

import itertools

import pytest

from repro import registry
from repro.circuits.suite import CMOS, CONVENTIONAL, GENERALIZED
from repro.errors import ExperimentError, LibraryError
from repro.gates.conventional import conventional_cells
from repro.gates.hybrid_pass import (
    HYBRID_FUNCTIONS,
    HYBRID_PASS,
    hybrid_pass_library,
)
from repro.gates.library import Library


@pytest.fixture
def toy_registration():
    """Register a toy library for one test and clean it up after."""
    def factory(vdd=None):
        from repro.devices.parameters import CMOS_32NM
        return Library("toy", registry.tech_at(CMOS_32NM, vdd),
                       conventional_cells())

    entry = registry.register_library(
        "toy", factory, aliases=("t",), description="test library")
    yield entry
    registry.unregister_library("toy")


class TestRegistryBasics:
    def test_builtins_registered(self):
        keys = registry.available_libraries()
        assert keys[:3] == [GENERALIZED, CONVENTIONAL, CMOS]
        assert HYBRID_PASS in keys

    def test_alias_resolution(self):
        assert registry.canonical_library("generalized") == GENERALIZED
        assert registry.canonical_library("conventional") == CONVENTIONAL
        assert registry.canonical_library("cmos") == CMOS
        assert registry.canonical_library("hybrid") == HYBRID_PASS
        # Canonical keys resolve to themselves.
        assert registry.canonical_library(GENERALIZED) == GENERALIZED

    def test_unknown_key_raises_with_choices(self):
        with pytest.raises(ExperimentError, match="unknown library"):
            registry.canonical_library("no-such-library")
        with pytest.raises(ExperimentError, match="choose from"):
            registry.build_library("no-such-library")

    def test_entry_metadata(self):
        entry = registry.library_entry("hybrid")
        assert entry.key == HYBRID_PASS
        assert "hybrid" in entry.aliases
        assert entry.description

    def test_cached_library_identity(self):
        a = registry.cached_library("generalized")
        b = registry.cached_library(GENERALIZED)
        assert a is b
        assert registry.build_library("generalized") is not a

    def test_vdd_aware_construction(self):
        native = registry.cached_library("cmos")
        scaled = registry.cached_library("cmos", 0.7)
        assert native.tech.vdd == pytest.approx(0.9)
        assert scaled.tech.vdd == pytest.approx(0.7)
        assert scaled is not native
        assert scaled is registry.cached_library("cmos", 0.7)


class TestRegistration:
    def test_register_and_resolve(self, toy_registration):
        assert "toy" in registry.available_libraries()
        assert registry.canonical_library("t") == "toy"
        library = registry.cached_library("t")
        assert library.name == "toy"
        assert library is registry.cached_library("toy")

    def test_duplicate_key_rejected(self, toy_registration):
        with pytest.raises(ExperimentError, match="already registered"):
            registry.register_library("toy", toy_registration.factory)

    def test_alias_collision_rejected(self, toy_registration):
        with pytest.raises(ExperimentError, match="already registered"):
            registry.register_library("other", toy_registration.factory,
                                      aliases=("t",))

    def test_replace_evicts_cache(self, toy_registration):
        before = registry.cached_library("toy")
        registry.register_library("toy", toy_registration.factory,
                                  aliases=("t",), replace=True)
        after = registry.cached_library("toy")
        assert after is not before

    def test_unregister(self):
        registry.register_library(
            "ephemeral", lambda vdd=None: None)  # factory never called
        registry.unregister_library("ephemeral")
        assert "ephemeral" not in registry.available_libraries()
        with pytest.raises(ExperimentError):
            registry.unregister_library("ephemeral")
        registry.unregister_library("ephemeral", missing_ok=True)

    def test_paper_libraries_cached_trio(self):
        trio = registry.paper_libraries()
        assert list(trio) == [GENERALIZED, CONVENTIONAL, CMOS]
        for key, library in trio.items():
            assert library is registry.cached_library(key)


class TestHybridPassLibrary:
    def test_cell_functions(self):
        library = hybrid_pass_library()
        for name, expected in HYBRID_FUNCTIONS.items():
            cell = library.cell(name)
            for bits in itertools.product([False, True],
                                          repeat=cell.n_inputs):
                assert cell.evaluate(bits) == expected(*bits), (name, bits)

    def test_pass_transistor_xors(self):
        library = hybrid_pass_library()
        assert library.cell("XOR2").uses_transmission_gates()
        assert library.cell("XNOR2").uses_transmission_gates()
        # The static base keeps its CMOS-style topologies.
        assert not library.cell("NAND2").uses_transmission_gates()

    def test_requires_ambipolar_technology(self):
        from repro.devices.parameters import CMOS_32NM
        with pytest.raises(LibraryError, match="ambipolar"):
            hybrid_pass_library(CMOS_32NM)

    def test_maps_and_estimates_end_to_end(self, tiny_config):
        """The registry-only fourth library runs the full pipeline."""
        from repro.circuits.adders import ripple_adder_circuit
        from repro.experiments.flow import run_circuit_flow

        library = registry.cached_library("hybrid")
        flow = run_circuit_flow(ripple_adder_circuit(4), library,
                                tiny_config)
        assert flow.library == HYBRID_PASS
        assert flow.gate_count > 0
        assert flow.pt_w > 0

    def test_sweepable_without_experiment_edits(self, tmp_path):
        """The hybrid library joins sweep grids purely via the registry."""
        from repro.sweep.runner import run_sweep
        from repro.sweep.spec import SweepSpec
        from repro.sweep.store import open_store

        spec = SweepSpec(circuits=("t481",), libraries=("hybrid",),
                         n_patterns=(512,), state_patterns=512)
        assert spec.libraries == (HYBRID_PASS,)
        store = open_store(tmp_path / "hybrid.jsonl")
        report = run_sweep(spec, store)
        assert report.executed == 1
        record = store.records()[0]
        assert record["library"] == HYBRID_PASS
        assert record["result"]["pt_w"] > 0


@pytest.fixture
def toy_circuit():
    """Register a toy circuit for one test and clean it up after."""
    from repro.circuits.adders import ripple_adder_circuit

    entry = registry.register_circuit(
        "toy-adder", lambda: ripple_adder_circuit(3, name="toy-adder"),
        aliases=("ta",), description="three-bit ripple adder",
        function="Adder")
    yield entry
    registry.unregister_circuit("toy-adder", missing_ok=True)


class TestCircuitRegistry:
    def test_paper_benchmarks_registered(self):
        keys = registry.available_circuits()
        assert keys[0] == "C2670" and "t481" in keys and "C1355" in keys
        assert registry.paper_benchmarks() == [
            "C2670", "C1908", "C3540", "dalu", "C7552", "C6288",
            "C5315", "des", "i10", "t481", "i8", "C1355"]

    def test_suite_is_a_registry_view(self):
        from repro.circuits.suite import benchmark_suite

        suite = {spec.name for spec in benchmark_suite()}
        assert suite == set(registry.paper_benchmarks())
        for spec in benchmark_suite():
            entry = registry.circuit_entry(spec.name)
            assert entry.build is spec.build
            assert dict(entry.paper) == spec.paper

    def test_register_and_resolve(self, toy_circuit):
        assert "toy-adder" in registry.available_circuits()
        assert registry.canonical_circuit("ta") == "toy-adder"
        aig = registry.build_circuit("ta")
        assert aig.name == "toy-adder"
        # User circuits never join the paper suite implicitly.
        assert "toy-adder" not in registry.paper_benchmarks()

    def test_cached_circuit_identity(self, toy_circuit):
        a = registry.cached_circuit("ta")
        b = registry.cached_circuit("toy-adder")
        assert a is b
        assert registry.build_circuit("ta") is not a

    def test_unknown_circuit_raises_with_choices(self):
        with pytest.raises(ExperimentError, match="unknown circuit"):
            registry.canonical_circuit("no-such-circuit")
        with pytest.raises(ExperimentError, match="choose from"):
            registry.build_circuit("no-such-circuit")

    def test_duplicate_and_alias_collisions(self, toy_circuit):
        with pytest.raises(ExperimentError, match="already registered"):
            registry.register_circuit("toy-adder", toy_circuit.build)
        with pytest.raises(ExperimentError, match="already registered"):
            registry.register_circuit("other", toy_circuit.build,
                                      aliases=("ta",))
        # Circuit and library namespaces are independent.
        registry.register_circuit("cmos-like", toy_circuit.build,
                                  aliases=("cmos",))
        try:
            assert registry.canonical_circuit("cmos") == "cmos-like"
            assert registry.canonical_library("cmos") == CMOS
        finally:
            registry.unregister_circuit("cmos-like")

    def test_replace_evicts_cached_build(self, toy_circuit):
        before = registry.cached_circuit("toy-adder")
        registry.register_circuit("toy-adder", toy_circuit.build,
                                  aliases=("ta",), replace=True)
        assert registry.cached_circuit("toy-adder") is not before

    def test_unregister(self, toy_circuit):
        registry.unregister_circuit("toy-adder")
        assert "toy-adder" not in registry.available_circuits()
        with pytest.raises(ExperimentError):
            registry.unregister_circuit("toy-adder")
        registry.unregister_circuit("toy-adder", missing_ok=True)

    def test_factory_error_not_rewritten_as_unknown_name(self):
        from repro.circuits.suite import build_benchmark

        def broken():
            raise ExperimentError("bad parameter")

        registry.register_circuit("broken-factory", broken)
        try:
            with pytest.raises(ExperimentError, match="bad parameter"):
                build_benchmark("broken-factory")
            with pytest.raises(ExperimentError, match="unknown"):
                build_benchmark("no-such-circuit")
        finally:
            registry.unregister_circuit("broken-factory")

    def test_blif_snapshot_replays_in_workers(self, tiny_config):
        """The spawn-start-method contract: a worker that re-imported
        the registry rebuilds --blif circuits from the snapshot."""
        from pathlib import Path

        from repro.experiments.parallel import _worker_init

        fixture = (Path(__file__).parent / "circuits" / "data"
                   / "majority_parity.blif")
        registry.register_blif_circuit(str(fixture), replace=True)
        try:
            snapshot = registry.blif_registrations()
            assert [entry["key"] for entry in snapshot] \
                == ["majority_parity"]
            # Simulate the worker side: registration gone, replayed.
            registry.unregister_circuit("majority_parity")
            assert "majority_parity" not in registry.available_circuits()
            _worker_init(snapshot)
            assert "majority_parity" in registry.available_circuits()
            aig = registry.build_circuit("majority_parity")
            assert aig.pi_names == ["a", "b", "c"]
        finally:
            registry.unregister_circuit("majority_parity",
                                        missing_ok=True)
        assert registry.blif_registrations() == []

    def test_blif_runs_under_spawn_pool(self, tiny_config):
        """End to end under the spawn start method: a worker process
        with a fresh interpreter serves a --blif Table 1 cell."""
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor
        from pathlib import Path

        from repro.experiments import parallel
        from repro.experiments.table1 import run_table1_cell

        fixture = (Path(__file__).parent / "circuits" / "data"
                   / "majority_parity.blif")
        registry.register_blif_circuit(str(fixture), replace=True)
        config = tiny_config.scaled(256)
        try:
            direct = run_table1_cell(("majority_parity", CMOS, config))
            with ProcessPoolExecutor(
                    max_workers=1,
                    mp_context=multiprocessing.get_context("spawn"),
                    initializer=parallel._worker_init,
                    initargs=(registry.blif_registrations(),)) as pool:
                via_spawn = pool.submit(
                    run_table1_cell,
                    ("majority_parity", CMOS, config)).result(timeout=300)
        finally:
            registry.unregister_circuit("majority_parity",
                                        missing_ok=True)
        assert via_spawn == direct

    def test_runs_through_session_and_table1_cell(self, toy_circuit,
                                                  tiny_config):
        from repro.api import Session
        from repro.experiments.table1 import run_table1_cell

        flow = Session(tiny_config).run("ta", "cmos")
        assert flow.circuit == "toy-adder"
        cell = run_table1_cell(("toy-adder", CMOS, tiny_config))
        assert cell.circuit == "toy-adder"
        assert cell.gate_count == flow.gate_count
        assert cell.pt_w == flow.pt_w


class TestShimRetirement:
    """The deprecation shims of the registry migration are gone."""

    def test_flow_shims_removed(self):
        import repro.experiments
        import repro.experiments.flow as flow

        assert not hasattr(flow, "three_libraries")
        assert not hasattr(flow, "cached_libraries")
        assert not hasattr(repro.experiments, "three_libraries")
        assert "three_libraries" not in repro.experiments.__all__

    def test_table1_underscore_aliases_removed(self):
        import repro.experiments.table1 as table1

        assert not hasattr(table1, "_run_table1_cell")
        assert not hasattr(table1, "_verbose_line")

    def test_paper_libraries_is_the_replacement(self):
        trio = registry.paper_libraries()
        assert list(trio) == [GENERALIZED, CONVENTIONAL, CMOS]
        for key, library in trio.items():
            assert library is registry.cached_library(key)
        resupplied = registry.paper_libraries(0.8)
        assert resupplied[CMOS].tech.vdd == pytest.approx(0.8)
        assert resupplied[CMOS] is registry.cached_library(CMOS, 0.8)
