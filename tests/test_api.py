"""The repro.api Session facade: single-cell runs, the Table 1 grid
(bit-identical to the pre-redesign harness), sweeps, and wiring."""

import pytest

from repro.api import Session
from repro.circuits.suite import CMOS, CONVENTIONAL, GENERALIZED
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig, PAPER_CONFIG

#: Output of the pre-redesign ``reproduce_table1`` (commit c737f07) at
#: n_patterns=4096/state_patterns=4096 on t481 + C1355 — the
#: seed-equivalent golden values the redesign must reproduce bit for
#: bit: (circuit, library, gates, delay_s, pd_w, ps_w, pg_w, pt_w,
#: edp_js).
PRE_REDESIGN_GOLDEN = [
    ("t481", "cntfet-generalized", 46, 7.286833019619122e-11,
     2.0113207912087918e-06, 2.2962900422452302e-08, 1.404e-10,
     2.3361222103125626e-06, 1.7022932459971188e-25),
    ("t481", "cntfet-conventional", 50, 1.0894176098638491e-10,
     2.114334989010989e-06, 2.3935315481484576e-08,
     1.9034999999999994e-10, 2.455610902844122e-06,
     2.675185760532052e-25),
    ("t481", "cmos", 50, 5.445543603246099e-10, 3.0540394285714302e-06,
     2.392227760796267e-07, 1.903500000000001e-08,
     3.7704031189367715e-06, 2.053189458598528e-24),
    ("C1355", "cntfet-generalized", 260, 1.46217639469585e-10,
     1.2218121890109895e-05, 1.2719535372012171e-07, 9.4905e-10,
     1.41789845773465e-05, 2.0732176549752566e-24),
    ("C1355", "cntfet-conventional", 257, 1.7603834225614512e-10,
     1.2347707648351642e-05, 1.2309150145990397e-07,
     1.1663999999999998e-09, 1.4324121697064292e-05,
     2.521594637826478e-24),
    ("C1355", "cmos", 262, 9.160053478308007e-10,
     1.8055769142857154e-05, 1.2566523189398892e-06,
     1.1879999999999993e-07, 2.2139586833225615e-05,
     2.0279979937999045e-23),
]


@pytest.fixture(scope="module")
def golden_config():
    return ExperimentConfig(n_patterns=4096, state_patterns=4096)


class TestSessionConstruction:
    def test_defaults_are_the_paper(self):
        session = Session()
        assert session.config == PAPER_CONFIG
        assert session.libraries == (GENERALIZED, CONVENTIONAL, CMOS)

    def test_libraries_resolve_aliases(self):
        session = Session(libraries=["generalized", "hybrid"])
        assert session.libraries == (GENERALIZED, "cntfet-hybrid-pass")

    def test_unknown_library_rejected_at_construction(self):
        with pytest.raises(ExperimentError, match="unknown library"):
            Session(libraries=["nope"])

    def test_empty_library_selection_rejected(self):
        with pytest.raises(ExperimentError, match="at least one library"):
            Session(libraries=[])

    def test_with_config(self):
        session = Session().with_config(n_patterns=1024,
                                        state_patterns=1024)
        assert session.config.n_patterns == 1024
        assert session.config.vdd == PAPER_CONFIG.vdd

    def test_discovery(self):
        assert GENERALIZED in Session.available_libraries()
        assert "bitsim" in Session.available_backends()

    def test_cache_wiring(self, tmp_path, monkeypatch):
        import os

        from repro.cache import ENV_CACHE_DIR, cache_root

        monkeypatch.delenv(ENV_CACHE_DIR, raising=False)
        Session(cache_dir=tmp_path / "cache")
        assert os.environ[ENV_CACHE_DIR] == str(tmp_path / "cache")
        assert cache_root() == tmp_path / "cache"


class TestSessionRun:
    def test_benchmark_by_name(self, tiny_config):
        flow = Session(tiny_config).run("t481", "generalized")
        assert flow.circuit == "t481"
        assert flow.library == GENERALIZED
        assert flow.pt_w > 0

    def test_raw_aig(self, tiny_config):
        from repro.circuits.adders import ripple_adder_circuit

        flow = Session(tiny_config).run(ripple_adder_circuit(4), "cmos")
        assert flow.library == "cmos"
        assert flow.gate_count > 0

    def test_library_object_passthrough(self, tiny_config, mlib):
        flow = Session(tiny_config).run("t481", mlib)
        assert flow.library == "cmos"

    def test_all_session_libraries(self, tiny_config):
        results = Session(tiny_config).run("t481")
        assert set(results) == {GENERALIZED, CONVENTIONAL, CMOS}
        assert results[GENERALIZED].pt_w < results[CMOS].pt_w

    def test_unknown_benchmark(self, tiny_config):
        with pytest.raises(ExperimentError, match="unknown benchmark"):
            Session(tiny_config).run("b17", "cmos")


class TestSessionTable1:
    def test_bit_identical_to_pre_redesign(self, golden_config):
        """The acceptance anchor: Session.table1 reproduces the seed
        harness exactly at the same config."""
        result = Session(golden_config).table1(benchmarks=["t481", "C1355"])
        got = [
            (name, key, r.gate_count, r.delay_s, r.pd_w, r.ps_w, r.pg_w,
             r.pt_w, r.edp_js)
            for name in result.benchmark_order
            for key in result.library_order
            for r in [result.results[name][key]]
        ]
        assert got == PRE_REDESIGN_GOLDEN

    def test_array_kernel_reproduces_golden(self, golden_config):
        """The redesign's acceptance bar: forcing the levelized array
        kernel reproduces the per-gate goldens bit for bit.  The
        activity memo is cleared first — the kernel knob is excluded
        from activity keys, so a warm entry would mask the array
        path entirely."""
        from dataclasses import replace

        from repro.sim.activity import clear_cache
        from repro.sim.kernels import kernel_counters

        clear_cache()
        before = kernel_counters()["array"]["simulations"]
        config = replace(golden_config, sim_kernel="array")
        result = Session(config).table1(benchmarks=["t481", "C1355"])
        got = [
            (name, key, r.gate_count, r.delay_s, r.pd_w, r.ps_w, r.pg_w,
             r.pt_w, r.edp_js)
            for name in result.benchmark_order
            for key in result.library_order
            for r in [result.results[name][key]]
        ]
        assert got == PRE_REDESIGN_GOLDEN
        # the array kernel really ran (six cells; topologically
        # identical mappings may share one activity entry)
        assert kernel_counters()["array"]["simulations"] >= before + 5
        clear_cache()

    def test_wrapper_delegates(self, golden_config):
        """reproduce_table1 is the Session, bit for bit."""
        from repro.experiments.table1 import reproduce_table1

        via_wrapper = reproduce_table1(golden_config,
                                       benchmarks=["t481"])
        via_session = Session(golden_config).table1(benchmarks=["t481"])
        assert via_wrapper.results == via_session.results
        assert via_wrapper.benchmark_order == via_session.benchmark_order

    def test_custom_library_columns(self, tiny_config):
        session = Session(tiny_config, libraries=["hybrid", "cmos"])
        result = session.table1(benchmarks=["t481"])
        assert result.library_order == ["cntfet-hybrid-pass", "cmos"]
        assert set(result.results["t481"]) == {"cntfet-hybrid-pass",
                                               "cmos"}
        rendered = result.render()
        assert "cntfet-hybrid-pass" in rendered
        assert "Improvement vs CMOS" in rendered

    def test_alias_and_key_dedupe_in_benchmarks(self, tiny_config):
        """A key and its alias are one circuit: the Average row must
        not double-weight it."""
        result = Session(tiny_config, libraries=["cmos"]).table1(
            benchmarks=["t481", "t481"])
        assert result.benchmark_order == ["t481"]
        single = Session(tiny_config, libraries=["cmos"]).table1(
            benchmarks=["t481"])
        assert result.averages("cmos") == single.averages("cmos")

    def test_cmos_less_table_renders_and_guards_improvement(self,
                                                            tiny_config):
        session = Session(tiny_config, libraries=["hybrid", "generalized"])
        result = session.table1(benchmarks=["t481"])
        rendered = result.render()
        assert "Improvement vs CMOS" not in rendered
        with pytest.raises(ExperimentError, match="cmos"):
            result.improvement_vs_cmos(GENERALIZED)


class TestSessionSweep:
    def test_in_memory_store_by_default(self, tiny_config):
        from repro.sweep.spec import SweepSpec

        spec = SweepSpec(circuits=("t481",), libraries=("cmos",),
                         n_patterns=(512,), state_patterns=512)
        report = Session(tiny_config).sweep(spec)
        assert report.executed == 1
        assert report.store_path == ":memory:"
        assert len(report.store.records()) == 1

    def test_path_store_and_resume(self, tiny_config, tmp_path):
        from repro.sweep.spec import SweepSpec

        spec = SweepSpec(circuits=("t481",), libraries=("cmos",),
                         n_patterns=(512,), state_patterns=512)
        path = tmp_path / "session-sweep.jsonl"
        first = Session(tiny_config).sweep(spec, path)
        again = Session(tiny_config).sweep(spec, path)
        assert first.executed == 1
        assert again.executed == 0
        assert again.cached == 1

    def test_matches_table1_at_paper_point(self, golden_config):
        """Sweep results through the Session agree with the Table 1 grid
        (the bit-identity chain: golden -> table1 -> sweep)."""
        from repro.sweep.spec import SweepSpec
        from repro.sweep.store import flow_result

        spec = SweepSpec(circuits=("t481",),
                         n_patterns=(golden_config.n_patterns,),
                         state_patterns=golden_config.state_patterns)
        report = Session(golden_config).sweep(spec)
        stored = {record["library"]: flow_result(record)
                  for record in report.store.records()}
        table = Session(golden_config).table1(benchmarks=["t481"])
        for key, flow in table.results["t481"].items():
            assert stored[key] == flow
