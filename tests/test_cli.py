"""Command-line interface."""

from pathlib import Path

import pytest

from repro.cli import build_parser, main

BLIF_FIXTURE = (Path(__file__).parent / "circuits" / "data"
                / "majority_parity.blif")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_flags(self):
        args = build_parser().parse_args(
            ["table1", "--fast", "--benchmarks", "t481,C1355"])
        assert args.fast
        assert args.benchmarks == "t481,C1355"

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_serve_and_query_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--fast", "--patterns", "4096"])
        assert args.port == 0 and args.fast and args.patterns == 4096
        args = build_parser().parse_args(
            ["query", "t481", "cmos", "--url", "http://x:1", "--json"])
        assert args.circuit == "t481" and args.json


class TestCommands:
    def test_techs(self, capsys):
        assert main(["techs"]) == 0
        out = capsys.readouterr().out
        assert "cmos-32nm" in out and "cntfet-32nm" in out

    def test_cell_report(self, capsys):
        assert main(["cell", "GNAND2A"]) == 0
        out = capsys.readouterr().out
        assert "GNAND2A" in out and "Ioff" in out

    def test_cell_in_cmos_library(self, capsys):
        assert main(["cell", "NAND2", "--library", "cmos"]) == 0
        assert "NAND2" in capsys.readouterr().out

    def test_genlib_to_stdout(self, capsys):
        assert main(["genlib", "cmos"]) == 0
        out = capsys.readouterr().out
        assert out.count("GATE") == 20

    def test_genlib_to_file(self, tmp_path, capsys):
        target = tmp_path / "lib.genlib"
        assert main(["genlib", "generalized", "-o", str(target)]) == 0
        assert "46 cells" in capsys.readouterr().out
        assert target.read_text().count("GATE") == 46

    def test_table1_fast_subset(self, capsys):
        assert main(["table1", "--fast", "--benchmarks", "t481",
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "t481" in out
        assert "Improvement vs CMOS" in out

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out and "Fig. 4" in out and "Fig. 5" in out


class TestRegistryCommands:
    def test_libraries_lists_registrations_and_backends(self, capsys):
        assert main(["libraries"]) == 0
        out = capsys.readouterr().out
        assert "cntfet-generalized" in out
        assert "cntfet-hybrid-pass" in out
        assert "aliases: hybrid" in out
        assert "bitsim" in out and "spice-transient" in out

    def test_genlib_accepts_registered_alias(self, capsys):
        """The hybrid library is addressable with no CLI edits."""
        assert main(["genlib", "hybrid"]) == 0
        out = capsys.readouterr().out
        assert out.count("GATE") == 25

    def test_genlib_unknown_library_fails_cleanly(self):
        with pytest.raises(SystemExit, match="unknown library"):
            main(["genlib", "nope"])

    def test_table1_unknown_backend_fails_fast(self):
        with pytest.raises(SystemExit, match="unknown estimator backend"):
            main(["table1", "--fast", "--benchmarks", "t481",
                  "--backend", "bogus"])

    def test_sweep_spec_includes_hybrid_and_backend(self, capsys):
        assert main(["sweep", "spec", "--libraries", "hybrid,cmos",
                     "--circuits", "t481", "--backend",
                     "spice-transient"]) == 0
        out = capsys.readouterr().out
        assert '"cntfet-hybrid-pass"' in out
        assert '"spice-transient"' in out

    def test_sweep_spec_accepts_family_specs(self, capsys):
        """Commas inside a family spec's parentheses must not split
        the --circuits axis."""
        assert main(["sweep", "spec", "--libraries", "cmos",
                     "--circuits",
                     "t481,synth:rand(gates=120,seed=3)"]) == 0
        out = capsys.readouterr().out
        assert '"t481"' in out
        # canonicalized: every family parameter spelled out
        assert ('"synth:rand(gates=120,seed=3,inputs=64,outputs=32)"'
                in out)

    def test_circuit_values_split_is_paren_aware(self):
        from repro.cli import _circuit_values

        assert _circuit_values(
            "t481,synth:rand(gates=5,seed=1),C1355") == (
            "t481", "synth:rand(gates=5,seed=1)", "C1355")
        assert _circuit_values("t481") == ("t481",)
        assert _circuit_values("") == ()

    def test_sim_kernel_flag_reaches_the_config(self):
        from repro.cli import _config_from_flags, build_parser

        args = build_parser().parse_args(
            ["serve", "--sim-kernel", "array", "--patterns", "2048"])
        config = _config_from_flags(args)
        assert config.sim_kernel == "array"
        assert config.n_patterns == 2048

    def test_circuits_lists_registrations(self, capsys):
        assert main(["circuits"]) == 0
        out = capsys.readouterr().out
        assert "C2670" in out and "t481" in out and "C1355" in out
        assert "Table 1 benchmark" in out

    def test_circuits_with_blif_registration(self, capsys):
        from repro import registry

        try:
            assert main(["circuits", "--blif", str(BLIF_FIXTURE)]) == 0
            out = capsys.readouterr().out
            assert "majority_parity" in out
            assert "[user circuit]" in out
        finally:
            registry.unregister_circuit("majority_parity",
                                        missing_ok=True)

    def test_sweep_spec_accepts_blif_circuit(self, capsys):
        import json

        from repro import registry

        try:
            assert main(["sweep", "spec", "--blif", str(BLIF_FIXTURE),
                         "--circuits", "majority_parity,t481",
                         "--libraries", "cmos"]) == 0
            captured = capsys.readouterr()
            # stdout must stay machine-readable: the registration note
            # goes to stderr.
            spec = json.loads(captured.out)
            assert spec["circuits"] == ["majority_parity", "t481"]
            assert "registered circuit" in captured.err
        finally:
            registry.unregister_circuit("majority_parity",
                                        missing_ok=True)

    def test_table1_runs_blif_benchmark(self, capsys):
        from repro import registry

        try:
            assert main(["table1", "--fast", "--quiet",
                         "--blif", str(BLIF_FIXTURE),
                         "--benchmarks", "majority_parity"]) == 0
            out = capsys.readouterr().out
            assert "majority_parity" in out
        finally:
            registry.unregister_circuit("majority_parity",
                                        missing_ok=True)


class TestServeCommands:
    def test_query_against_live_server(self, capsys, tiny_config):
        import threading

        from repro.api import Session
        from repro.serve import Engine, serve

        server = serve(Engine(Session(tiny_config)))
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            assert main(["query", "t481", "cmos", "--url", server.url,
                         "--patterns", str(tiny_config.n_patterns),
                         "--state-patterns",
                         str(tiny_config.state_patterns)]) == 0
            human = capsys.readouterr().out
            assert "t481 on cmos" in human and "cache=cold" in human
            assert main(["query", "t481", "cmos", "--url", server.url,
                         "--patterns", str(tiny_config.n_patterns),
                         "--state-patterns",
                         str(tiny_config.state_patterns),
                         "--json"]) == 0
            import json

            payload = json.loads(capsys.readouterr().out)
            assert payload["cache_status"] == "hot"
            assert payload["result"]["gate_count"] > 0
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_serve_unknown_backend_fails_at_startup(self):
        with pytest.raises(SystemExit, match="unknown estimator backend"):
            main(["serve", "--port", "0", "--backend", "bitsm"])

    def test_query_unreachable_server_exits_cleanly(self):
        with pytest.raises(SystemExit, match="cannot reach"):
            main(["query", "t481", "cmos",
                  "--url", "http://127.0.0.1:9", "--timeout", "2"])


class TestOptimizeCommand:
    OPTIMIZE_LOCAL = ["optimize", "t481", "--libraries", "generalized",
                      "--vdd", "0.9", "--frequency", "0.5e9,1e9,5e10",
                      "--patterns", "1024", "--state-patterns", "512"]

    def test_parser_flags(self):
        args = build_parser().parse_args(
            ["optimize", "C1908", "--vdd", "0.7,0.9",
             "--frequency", "1e9,2e9", "--objectives", "energy,fmax",
             "--format", "csv"])
        assert args.circuit == "C1908"
        assert args.vdd == "0.7,0.9"
        assert args.objectives == "energy,fmax"
        assert args.format == "csv"
        assert args.url is None

    def test_local_table(self, capsys):
        assert main(self.OPTIMIZE_LOCAL) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier over (power, frequency)" in out
        assert "timing-infeasible" in out
        assert "cntfet-generalized" in out
        assert "local session" in out

    def test_local_csv(self, capsys):
        assert main(self.OPTIMIZE_LOCAL + ["--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("library,backend,vdd,frequency")
        # the 50 GHz point is infeasible on t481, so at most two rows
        assert 2 <= len(lines) <= 3
        assert all("cntfet-generalized" in line for line in lines[1:])

    def test_local_json(self, capsys):
        import json

        assert main(self.OPTIMIZE_LOCAL + ["--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["circuit"] == "t481"
        assert payload["n_candidates"] == 3
        assert payload["n_infeasible"] >= 1
        assert payload["frontier"]

    def test_unknown_objective_fails_cleanly(self):
        with pytest.raises(SystemExit, match="objective"):
            main(self.OPTIMIZE_LOCAL + ["--objectives", "beauty"])

    def test_against_live_server(self, capsys, tiny_config):
        import threading

        from repro.api import Session
        from repro.serve import Engine, serve

        server = serve(Engine(Session(tiny_config)))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        server.mark_ready()
        try:
            assert main(["optimize", "t481", "--libraries", "cmos",
                         "--vdd", "0.9", "--frequency", "0.5e9,1e9",
                         "--patterns", str(tiny_config.n_patterns),
                         "--state-patterns",
                         str(tiny_config.state_patterns),
                         "--url", server.url]) == 0
            out = capsys.readouterr().out
            assert "Pareto frontier" in out and server.url in out
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_grid_marks_infeasible_points(self, capsys, tiny_config):
        import threading

        from repro.api import Session
        from repro.serve import Engine, serve

        server = serve(Engine(Session(tiny_config)))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        server.mark_ready()
        try:
            assert main(["query", "t481", "cmos", "--url", server.url,
                         "--patterns", str(tiny_config.n_patterns),
                         "--state-patterns",
                         str(tiny_config.state_patterns),
                         "--grid", "frequency=1e9,5e10"]) == 0
            out = capsys.readouterr().out
            assert "E/cyc/fJ" in out and "PDP/fJ" in out
            assert "INFEAS" in out and "timing-INFEASIBLE" in out
            assert "repro optimize" in out
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
