"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_flags(self):
        args = build_parser().parse_args(
            ["table1", "--fast", "--benchmarks", "t481,C1355"])
        assert args.fast
        assert args.benchmarks == "t481,C1355"


class TestCommands:
    def test_techs(self, capsys):
        assert main(["techs"]) == 0
        out = capsys.readouterr().out
        assert "cmos-32nm" in out and "cntfet-32nm" in out

    def test_cell_report(self, capsys):
        assert main(["cell", "GNAND2A"]) == 0
        out = capsys.readouterr().out
        assert "GNAND2A" in out and "Ioff" in out

    def test_cell_in_cmos_library(self, capsys):
        assert main(["cell", "NAND2", "--library", "cmos"]) == 0
        assert "NAND2" in capsys.readouterr().out

    def test_genlib_to_stdout(self, capsys):
        assert main(["genlib", "cmos"]) == 0
        out = capsys.readouterr().out
        assert out.count("GATE") == 20

    def test_genlib_to_file(self, tmp_path, capsys):
        target = tmp_path / "lib.genlib"
        assert main(["genlib", "generalized", "-o", str(target)]) == 0
        assert "46 cells" in capsys.readouterr().out
        assert target.read_text().count("GATE") == 46

    def test_table1_fast_subset(self, capsys):
        assert main(["table1", "--fast", "--benchmarks", "t481",
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "t481" in out
        assert "Improvement vs CMOS" in out

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out and "Fig. 4" in out and "Fig. 5" in out


class TestRegistryCommands:
    def test_libraries_lists_registrations_and_backends(self, capsys):
        assert main(["libraries"]) == 0
        out = capsys.readouterr().out
        assert "cntfet-generalized" in out
        assert "cntfet-hybrid-pass" in out
        assert "aliases: hybrid" in out
        assert "bitsim" in out and "spice-transient" in out

    def test_genlib_accepts_registered_alias(self, capsys):
        """The hybrid library is addressable with no CLI edits."""
        assert main(["genlib", "hybrid"]) == 0
        out = capsys.readouterr().out
        assert out.count("GATE") == 25

    def test_genlib_unknown_library_fails_cleanly(self):
        with pytest.raises(SystemExit, match="unknown library"):
            main(["genlib", "nope"])

    def test_table1_unknown_backend_fails_fast(self):
        with pytest.raises(SystemExit, match="unknown estimator backend"):
            main(["table1", "--fast", "--benchmarks", "t481",
                  "--backend", "bogus"])

    def test_sweep_spec_includes_hybrid_and_backend(self, capsys):
        assert main(["sweep", "spec", "--libraries", "hybrid,cmos",
                     "--circuits", "t481", "--backend",
                     "spice-transient"]) == 0
        out = capsys.readouterr().out
        assert '"cntfet-hybrid-pass"' in out
        assert '"spice-transient"' in out
