"""Library characterization for power (the Fig. 5 flow, end to end).

For every cell:

* the gate topology analyzer (:mod:`repro.power.patterns`) maps each
  input vector to its off-current patterns and computes the activity
  factor;
* the pattern simulator quantifies each distinct pattern once;
* static power is the supply times the input-vector average of the
  summed pattern currents; gate-leakage power uses the on-device counts
  with the technology's tunneling current;
* dynamic power follows Eq. 2 with the paper's loading assumption —
  intrinsic drain capacitance plus ``fanout`` (= 3) typical gate inputs;
* short-circuit power is 15 % of dynamic (Eq. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.gates.cells import Cell
from repro.gates.library import Library
from repro.power.activity import activity_factor
from repro.power.model import (
    PowerBreakdown,
    PowerParameters,
    dynamic_power,
    gate_leakage_power,
    short_circuit_power,
    static_power,
)
from repro.power.pattern_sim import PatternSimulator
from repro.power.patterns import count_on_devices, stage_patterns


@dataclass(frozen=True)
class CellPowerReport:
    """Characterization result for one cell."""

    cell: str
    n_inputs: int
    n_devices: int
    activity: float
    input_capacitance: float      # mean pin cap (F)
    load_capacitance: float       # assumed switching load (F)
    mean_i_off: float             # A, averaged over input vectors
    mean_i_gate: float            # A, averaged over input vectors
    power: PowerBreakdown
    distinct_patterns: int

    @property
    def total(self) -> float:
        return self.power.total


@dataclass(frozen=True)
class LibraryPowerReport:
    """Characterization of a whole library."""

    library: str
    technology: str
    cells: Dict[str, CellPowerReport]
    distinct_patterns: int
    pattern_solves: int

    def mean_power(self) -> PowerBreakdown:
        """Average power breakdown over all cells."""
        total = PowerBreakdown(0.0, 0.0, 0.0, 0.0)
        for report in self.cells.values():
            total = total + report.power
        return total.scaled(1.0 / len(self.cells)) if self.cells else total

    def mean_activity(self) -> float:
        """Average activity factor over all cells."""
        if not self.cells:
            return 0.0
        return sum(r.activity for r in self.cells.values()) / len(self.cells)

    def mean_input_capacitance(self) -> float:
        """Average per-pin input capacitance over all cells (F)."""
        if not self.cells:
            return 0.0
        return (sum(r.input_capacitance for r in self.cells.values())
                / len(self.cells))

    def gate_leak_fraction_of_static(self) -> float:
        """PG / PS at the library level (paper: ~10 % CMOS, <1 % CNTFET)."""
        mean = self.mean_power()
        return mean.gate_leak / mean.static if mean.static > 0 else 0.0

    def subset(self, names: List[str]) -> "LibraryPowerReport":
        """Restrict the report to the named cells (for fair comparisons)."""
        picked = {n: self.cells[n] for n in names if n in self.cells}
        return LibraryPowerReport(self.library, self.technology, picked,
                                  self.distinct_patterns, self.pattern_solves)


def characterize_cell(cell: Cell, library: Library,
                      simulator: PatternSimulator,
                      params: PowerParameters,
                      typical_input_cap: Optional[float] = None
                      ) -> CellPowerReport:
    """Characterize one cell (see module docstring for the model)."""
    tech = library.tech
    if typical_input_cap is None:
        typical_input_cap = _inverter_input_capacitance(library)
    n_vectors = 1 << cell.n_inputs

    total_i_off = 0.0
    total_on_devices = 0
    seen_patterns = set()
    for minterm in range(n_vectors):
        values = tuple(bool((minterm >> i) & 1) for i in range(cell.n_inputs))
        for pattern in stage_patterns(cell, values):
            total_i_off += simulator.off_current(pattern)
            seen_patterns.add(pattern.key)
        total_on_devices += count_on_devices(cell, values)
    mean_i_off = total_i_off / n_vectors
    mean_i_gate = (total_on_devices / n_vectors) * tech.nmos.ig_on

    load = (library.output_capacitance(cell.name)
            + params.fanout * typical_input_cap)
    activity = activity_factor(cell)
    p_dynamic = dynamic_power(activity, load, params)
    power = PowerBreakdown(
        dynamic=p_dynamic,
        short_circuit=short_circuit_power(p_dynamic),
        static=static_power(mean_i_off, params),
        gate_leak=gate_leakage_power(mean_i_gate, params),
    )
    return CellPowerReport(
        cell=cell.name,
        n_inputs=cell.n_inputs,
        n_devices=cell.n_devices,
        activity=activity,
        input_capacitance=library.average_pin_capacitance(cell.name),
        load_capacitance=load,
        mean_i_off=mean_i_off,
        mean_i_gate=mean_i_gate,
        power=power,
        distinct_patterns=len(seen_patterns),
    )


def _inverter_input_capacitance(library: Library) -> float:
    """Fanout load unit: the library inverter's input capacitance.

    This is the quantity the paper quotes (36 aF CNTFET vs 52 aF CMOS)
    when attributing the dynamic-power gap to input capacitance.
    """
    inverter = library.inverter()
    return library.pin_capacitance(inverter.name, inverter.inputs[0])


def characterize_library(library: Library,
                         params: Optional[PowerParameters] = None,
                         simulator: Optional[PatternSimulator] = None
                         ) -> LibraryPowerReport:
    """Characterize every cell of a library (the full Fig. 5 flow)."""
    if params is None:
        params = PowerParameters(vdd=library.tech.vdd)
    if simulator is None:
        simulator = PatternSimulator(library.tech)
    typical_cap = _inverter_input_capacitance(library)
    reports: Dict[str, CellPowerReport] = {}
    for cell in library:
        reports[cell.name] = characterize_cell(cell, library, simulator,
                                               params, typical_cap)
    return LibraryPowerReport(
        library=library.name,
        technology=library.tech.name,
        cells=reports,
        distinct_patterns=simulator.cache_size,
        pattern_solves=simulator.solves,
    )
