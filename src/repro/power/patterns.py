"""Off-current pattern classification (Section 3.2, Fig. 4).

For a static gate and an input vector, exactly one of the two switch
networks of each stage conducts; the other one separates the rails and
leaks.  The *pattern* of that leaking network is obtained by:

1. replacing every conducting switch with a short circuit,
2. removing off-switches that are short-circuited by parallel
   conducting paths,
3. canonicalizing the remaining series/parallel tree of off devices
   (n- and p-type off devices of equal size are assumed to leak
   identically, so device type is erased — the paper's Section 3.2
   assumption).

Every (cell, input vector) then maps to a small multiset of patterns
(one per stage); the whole 46-cell library collapses to a few dozen
distinct patterns (the paper found 26), each of which is quantified by
a single circuit simulation in :mod:`repro.power.pattern_sim`.

A non-conducting transmission gate contributes *two* parallel off
devices — this is why the paper notes TG leakage is twice that of a
single transistor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.gates.cells import Cell, Stage
from repro.gates.library import Library
from repro.gates.topology import (
    Fet,
    Network,
    Parallel,
    Series,
    TransmissionGate,
    conduction,
    network_support,
)

# Pattern trees: ("d",) a single off device; ("s", children...) series;
# ("p", children...) parallel.  Children are canonically sorted.
PatternTree = Tuple

DEVICE: PatternTree = ("d",)

#: Sentinel for a sub-network that conducts (reduced away).
_CONDUCTING = ("on",)


@dataclass(frozen=True)
class LeakagePattern:
    """A canonical reduced off-network."""

    tree: PatternTree

    @property
    def key(self) -> str:
        """Stable canonical string key (e.g. ``"s(d,p(d,d))"``)."""
        return _render(self.tree)

    @property
    def n_devices(self) -> int:
        """Number of off devices in the pattern."""
        return _count(self.tree)

    def __str__(self) -> str:
        return self.key


def _render(tree: PatternTree) -> str:
    if tree == DEVICE:
        return "d"
    tag = tree[0]
    return f"{tag}({','.join(_render(c) for c in tree[1:])})"


def _count(tree: PatternTree) -> int:
    if tree == DEVICE:
        return 1
    return sum(_count(c) for c in tree[1:])


def _canonical(tag: str, children: Sequence[PatternTree]) -> PatternTree:
    """Build a canonical node: flatten same-tag children and sort."""
    flat: List[PatternTree] = []
    for child in children:
        if child != DEVICE and child[0] == tag:
            flat.extend(child[1:])
        else:
            flat.append(child)
    if len(flat) == 1:
        return flat[0]
    flat.sort(key=_render)
    return (tag, *flat)


def _reduce(network: Network, assignment: Dict[str, bool]) -> PatternTree:
    """Reduce a switch network to its leakage pattern (or _CONDUCTING)."""
    if isinstance(network, Fet):
        return _CONDUCTING if network.conducts(assignment) else DEVICE
    if isinstance(network, TransmissionGate):
        if network.conducts(assignment):
            return _CONDUCTING
        # Both devices of the pair are off, in parallel.
        return ("p", DEVICE, DEVICE)
    if isinstance(network, Series):
        children: List[PatternTree] = []
        for child in network.children:
            reduced = _reduce(child, assignment)
            if reduced == _CONDUCTING:
                continue  # shorted: drop from the series chain
            children.append(reduced)
        if not children:
            return _CONDUCTING
        if len(children) == 1:
            return children[0]
        return _canonical("s", children)
    if isinstance(network, Parallel):
        children = []
        for child in network.children:
            reduced = _reduce(child, assignment)
            if reduced == _CONDUCTING:
                # A conducting parallel branch shorts the whole node.
                return _CONDUCTING
            children.append(reduced)
        if len(children) == 1:
            return children[0]
        return _canonical("p", children)
    raise TopologyError(f"unknown network node {type(network).__name__}")


def off_pattern(network: Network,
                assignment: Dict[str, bool]) -> LeakagePattern:
    """Leakage pattern of a *non-conducting* network.

    Raises :class:`TopologyError` if the network actually conducts
    under ``assignment`` (then it has no off pattern).
    """
    if conduction(network, assignment):
        raise TopologyError("network conducts; it has no off pattern")
    reduced = _reduce(network, assignment)
    if reduced == _CONDUCTING:
        raise TopologyError("reduction produced a conducting pattern")
    return LeakagePattern(reduced)


def stage_patterns(cell: Cell,
                   values: Sequence[bool]) -> List[LeakagePattern]:
    """One leakage pattern per stage for the given input vector.

    For each stage exactly one of {pull-up, pull-down} is off; its
    reduced pattern describes the stage's subthreshold path.
    """
    assignment = cell.stage_input_values(values)
    patterns: List[LeakagePattern] = []
    for stage in cell.all_stages():
        if conduction(stage.pulldown, assignment):
            off_network = stage.pullup
        else:
            off_network = stage.pulldown
        patterns.append(off_pattern(off_network, assignment))
    return patterns


def count_on_devices(cell: Cell, values: Sequence[bool]) -> int:
    """Number of fully-on devices across all stages (for gate leakage).

    Every conducting switch has the full supply across its gate stack
    and tunnels; a conducting transmission gate counts once (one of its
    two devices is strongly on).  This mirrors the paper's observation
    that gate leakage "occurs under the same circumstances as Ioff" and
    can reuse the pattern machinery.
    """
    assignment = cell.stage_input_values(values)
    total = 0
    for stage in cell.all_stages():
        for network in (stage.pulldown, stage.pullup):
            for leaf in _iter_leaves(network):
                if leaf.conducts(assignment):
                    total += 1
    return total


def _iter_leaves(network: Network):
    from repro.gates.topology import iter_leaves
    return iter_leaves(network)


def _conduction_columns(network: Network,
                        signals: Dict[str, np.ndarray]) -> np.ndarray:
    """Conduction of a network under *every* signal assignment at once.

    ``signals`` maps signal names to boolean columns (one element per
    cell input vector); the result is the network's conduction column.
    This is :func:`repro.gates.topology.conduction` batched over the
    vector axis.
    """
    if isinstance(network, Fet):
        column = signals[network.control.name]
        if network.control.negated:
            column = ~column
        return column if network.polarity == "n" else ~column
    if isinstance(network, TransmissionGate):
        a = signals[network.a.name]
        if network.a.negated:
            a = ~a
        b = signals[network.b.name]
        if network.b.negated:
            b = ~b
        return (a ^ b) ^ network.invert
    if isinstance(network, Series):
        result = _conduction_columns(network.children[0], signals)
        for child in network.children[1:]:
            result = result & _conduction_columns(child, signals)
        return result
    if isinstance(network, Parallel):
        result = _conduction_columns(network.children[0], signals)
        for child in network.children[1:]:
            result = result | _conduction_columns(child, signals)
        return result
    raise TopologyError(f"unknown network node {type(network).__name__}")


def stage_vector_groups(cell: Cell) -> List[
        Tuple[Stage, List[Tuple[Dict[str, bool], np.ndarray]]]]:
    """Batch a cell's input vectors by each stage's local assignment.

    For every stage of ``cell.all_stages()`` (in order) returns
    ``(stage, groups)``, where each group is ``(assignment, vectors)``:
    one concrete value combination of the stage's *support* signals and
    the numpy index array of the cell input vectors producing it.
    Every vector lands in exactly one group per stage, so a per-stage
    quantity (an off pattern, an on-device count) evaluated once per
    group covers all ``2^k`` vectors — the batched replacement for the
    historical ``2^k x stage_patterns`` per-vector loop.  A stage
    supported by ``j < k`` signals (complement inverters, chained
    stages) needs at most ``2^j`` evaluations instead of ``2^k``.
    """
    n_vectors = 1 << cell.n_inputs
    index = np.arange(n_vectors)
    signals: Dict[str, np.ndarray] = {
        pin: ((index >> i) & 1).astype(bool)
        for i, pin in enumerate(cell.inputs)}
    out: List[Tuple[Stage, List[Tuple[Dict[str, bool], np.ndarray]]]] = []
    for stage in cell.all_stages():
        support = sorted(network_support(stage.pulldown))
        local = np.zeros(n_vectors, dtype=np.int64)
        for bit, name in enumerate(support):
            local |= signals[name].astype(np.int64) << bit
        groups: List[Tuple[Dict[str, bool], np.ndarray]] = []
        for value in np.unique(local):
            assignment = {name: bool((int(value) >> bit) & 1)
                          for bit, name in enumerate(support)}
            groups.append((assignment, np.nonzero(local == value)[0]))
        out.append((stage, groups))
        signals[stage.name] = ~_conduction_columns(stage.pulldown, signals)
    return out


def stage_off_pattern(stage: Stage,
                      assignment: Dict[str, bool]) -> LeakagePattern:
    """The leakage pattern of one stage under one (partial) assignment.

    The single-stage core of :func:`stage_patterns`: whichever of
    {pull-up, pull-down} does not conduct is reduced.  ``assignment``
    only needs to cover the stage's support signals.
    """
    if conduction(stage.pulldown, assignment):
        off_network = stage.pullup
    else:
        off_network = stage.pulldown
    return off_pattern(off_network, assignment)


def stage_on_devices(stage: Stage, assignment: Dict[str, bool]) -> int:
    """Fully-on device count of one stage (cf. :func:`count_on_devices`)."""
    total = 0
    for network in (stage.pulldown, stage.pullup):
        for leaf in _iter_leaves(network):
            if leaf.conducts(assignment):
                total += 1
    return total


def cell_patterns(cell: Cell) -> Dict[Tuple[bool, ...], List[LeakagePattern]]:
    """Patterns of every input vector of a cell."""
    result: Dict[Tuple[bool, ...], List[LeakagePattern]] = {}
    for minterm in range(1 << cell.n_inputs):
        values = tuple(bool((minterm >> i) & 1) for i in range(cell.n_inputs))
        result[values] = stage_patterns(cell, values)
    return result


def library_patterns(library_or_cells) -> Set[str]:
    """All distinct pattern keys across a library (or iterable of cells).

    The paper reports 26 distinct Ioff patterns for the 46-cell
    ambipolar library.
    """
    cells: Iterable[Cell]
    if isinstance(library_or_cells, Library):
        cells = iter(library_or_cells)
    else:
        cells = library_or_cells
    keys: Set[str] = set()
    for cell in cells:
        for patterns in cell_patterns(cell).values():
            for pattern in patterns:
                keys.add(pattern.key)
    return keys
