"""Activity factors.

The paper defines the activity factor of a gate as the average number
of output switches when all input combinations are applied, and quotes
25 % for 2-input NAND/NOR and 50 % for 2-input XOR.  Those values match
the *minority output fraction* min(P(out=0), P(out=1)) under uniform
inputs: a NAND output is 0 for one of four input vectors (25 %), an XOR
output is 1 for two of four (50 %).  :func:`activity_factor` implements
that definition; the standard toggle-probability 2*p0*p1 is also
provided (:func:`switching_probability`) because the circuit-level flow
measures real toggle rates from simulation.
"""

from __future__ import annotations

from repro.gates.cells import Cell
from repro.synth.truth import popcount, table_size


def output_one_probability(cell: Cell) -> float:
    """P(output = 1) under uniform random inputs."""
    size = table_size(cell.n_inputs)
    return popcount(cell.truth_table) / size


def activity_factor(cell: Cell) -> float:
    """The paper's activity factor: min(P(out=0), P(out=1)).

    Equals 0.25 for NAND2/NOR2 and 0.5 for XOR2, as quoted in
    Section 3.
    """
    p_one = output_one_probability(cell)
    return min(p_one, 1.0 - p_one)


def switching_probability(cell: Cell) -> float:
    """Toggle probability between two independent uniform vectors.

    2 * p * (1 - p): the standard temporal-independence estimate used
    when measuring switching activity from random-pattern simulation.
    """
    p_one = output_one_probability(cell)
    return 2.0 * p_one * (1.0 - p_one)
