"""Circuit-level quantification of leakage patterns (Fig. 5, step 2).

Each distinct pattern is a series/parallel stack of off transistors
between the rails.  We realize it as a SPICE netlist — every off device
an n-type transistor with its gate grounded (the paper's n/p symmetry
assumption) — and solve the DC operating point; internal stack nodes
float to their self-consistent potentials, which is precisely what
produces the stack effect (series patterns leak far less than parallel
ones, Fig. 4).

Results are cached per (pattern, technology): the whole 46-cell library
needs only a few dozen operating points instead of one per
(cell, input vector) pair — the computational payoff of the paper's
classification method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.devices.parameters import TechnologyParams
from repro.power.patterns import DEVICE, LeakagePattern, PatternTree
from repro.spice.dc import operating_point
from repro.spice.netlist import Circuit, GROUND


@dataclass(frozen=True)
class PatternCurrents:
    """DC leakage of one pattern in one technology."""

    i_off: float      # A, rail-to-rail subthreshold current
    n_devices: int    # devices in the pattern


class PatternSimulator:
    """Evaluates and caches pattern leakage for one technology."""

    def __init__(self, tech: TechnologyParams):
        self.tech = tech
        self._cache: Dict[str, PatternCurrents] = {}
        self._solves = 0

    @property
    def solves(self) -> int:
        """Number of SPICE operating points actually computed."""
        return self._solves

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    @property
    def pattern_keys(self):
        """Canonical keys of every pattern evaluated so far."""
        return set(self._cache)

    def off_current(self, pattern: LeakagePattern) -> float:
        """Rail-to-rail subthreshold current of the pattern (A)."""
        return self.currents(pattern).i_off

    def currents(self, pattern: LeakagePattern) -> PatternCurrents:
        """Cached DC solution for the pattern."""
        key = pattern.key
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._simulate(pattern)
        self._cache[key] = result
        return result

    def _simulate(self, pattern: LeakagePattern) -> PatternCurrents:
        circuit = Circuit(f"pattern {pattern.key}")
        circuit.add_vsource("vdd", "top", GROUND, self.tech.vdd)
        counter = [0]

        def build(tree: PatternTree, top: str, bottom: str) -> None:
            if tree == DEVICE:
                counter[0] += 1
                # Off n-device: gate grounded; source/drain resolved by
                # the solver (the model is symmetric in the terminals).
                circuit.add_mosfet(
                    f"m{counter[0]}", top, GROUND, bottom, self.tech.nmos)
                return
            tag = tree[0]
            children = tree[1:]
            if tag == "p":
                for child in children:
                    build(child, top, bottom)
                return
            # series chain through internal nodes
            previous = top
            for index, child in enumerate(children):
                counter[0] += 1
                is_last = index == len(children) - 1
                nxt = bottom if is_last else f"x{counter[0]}"
                build(child, previous, nxt)
                previous = nxt

        build(pattern.tree, "top", GROUND)
        solution = operating_point(circuit)
        i_off = -solution.source_current("vdd")
        self._solves += 1
        return PatternCurrents(i_off=i_off, n_devices=pattern.n_devices)
