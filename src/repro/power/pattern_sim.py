"""Circuit-level quantification of leakage patterns (Fig. 5, step 2).

Each distinct pattern is a series/parallel stack of off transistors
between the rails.  We realize it as a SPICE netlist — every off device
an n-type transistor with its gate grounded (the paper's n/p symmetry
assumption) — and solve the DC operating point; internal stack nodes
float to their self-consistent potentials, which is precisely what
produces the stack effect (series patterns leak far less than parallel
ones, Fig. 4).

Results are cached at two levels:

* in memory per (pattern, technology): the whole 46-cell library needs
  only a few dozen operating points instead of one per (cell, input
  vector) pair — the computational payoff of the paper's classification
  method;
* on disk via :mod:`repro.cache`, keyed by a stable hash of the
  :class:`~repro.devices.parameters.TechnologyParams`, so repeat runs
  and worker processes skip every previously-solved operating point.
  Entries invalidate automatically when any technology parameter
  changes (the key changes with it).  Set ``REPRO_CACHE_DISABLE=1`` or
  pass ``disk_cache=None`` explicitly to opt out.

``solves`` counts actual SPICE solutions; ``cache_size`` and
``pattern_keys`` describe only the patterns *requested from this
simulator*, regardless of whether the answer came from SPICE or disk —
so characterization reports stay meaningful on a warm cache.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.cache import DiskCache, default_cache, stable_hash
from repro.devices.parameters import TechnologyParams
from repro.power.patterns import DEVICE, LeakagePattern, PatternTree
from repro.spice.dc import operating_point
from repro.spice.netlist import Circuit, GROUND

_SENTINEL = object()

#: Disk-cache namespace for pattern DC solutions.
PATTERN_NAMESPACE = "patterns"

# Process-global solve meter: every SPICE operating point computed by
# any simulator instance, regardless of which caches were warm.  The
# foundry's zero-live-solves guarantee is asserted against this.
_SOLVE_LOCK = threading.Lock()
_TOTAL_SOLVES = 0


def spice_solve_count() -> int:
    """SPICE operating points computed by this process so far."""
    return _TOTAL_SOLVES


def reset_spice_solve_count() -> None:
    """Zero the process-global solve meter (test isolation)."""
    global _TOTAL_SOLVES
    with _SOLVE_LOCK:
        _TOTAL_SOLVES = 0


@dataclass(frozen=True)
class PatternCurrents:
    """DC leakage of one pattern in one technology."""

    i_off: float      # A, rail-to-rail subthreshold current
    n_devices: int    # devices in the pattern


class PatternSimulator:
    """Evaluates and caches pattern leakage for one technology."""

    def __init__(self, tech: TechnologyParams,
                 disk_cache: object = _SENTINEL):
        self.tech = tech
        self._cache: Dict[str, PatternCurrents] = {}
        self._solves = 0
        self._disk: Optional[DiskCache] = (
            default_cache() if disk_cache is _SENTINEL else disk_cache)
        self._tech_key = stable_hash(tech)
        self._persistent: Dict[str, PatternCurrents] = {}
        if self._disk is not None:
            stored = self._disk.get(PATTERN_NAMESPACE, self._tech_key)
            if isinstance(stored, dict):
                for key, value in stored.items():
                    try:
                        i_off, n_devices = value
                        self._persistent[key] = PatternCurrents(
                            float(i_off), int(n_devices))
                    except (TypeError, ValueError):
                        continue

    @property
    def solves(self) -> int:
        """Number of SPICE operating points actually computed."""
        return self._solves

    @property
    def cache_size(self) -> int:
        """Distinct patterns requested from this simulator."""
        return len(self._cache)

    @property
    def pattern_keys(self):
        """Canonical keys of every pattern evaluated so far."""
        return set(self._cache)

    def off_current(self, pattern: LeakagePattern) -> float:
        """Rail-to-rail subthreshold current of the pattern (A)."""
        return self.currents(pattern).i_off

    def currents(self, pattern: LeakagePattern) -> PatternCurrents:
        """Cached DC solution for the pattern."""
        key = pattern.key
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._persistent.get(key)
        if result is None:
            result = self._simulate(pattern)
            self._persistent[key] = result
            if self._disk is not None:
                self._disk.merge(
                    PATTERN_NAMESPACE, self._tech_key,
                    {key: [result.i_off, result.n_devices]})
        self._cache[key] = result
        return result

    def _simulate(self, pattern: LeakagePattern) -> PatternCurrents:
        circuit = Circuit(f"pattern {pattern.key}")
        circuit.add_vsource("vdd", "top", GROUND, self.tech.vdd)
        counter = [0]

        def build(tree: PatternTree, top: str, bottom: str) -> None:
            if tree == DEVICE:
                counter[0] += 1
                # Off n-device: gate grounded; source/drain resolved by
                # the solver (the model is symmetric in the terminals).
                circuit.add_mosfet(
                    f"m{counter[0]}", top, GROUND, bottom, self.tech.nmos)
                return
            tag = tree[0]
            children = tree[1:]
            if tag == "p":
                for child in children:
                    build(child, top, bottom)
                return
            # series chain through internal nodes
            previous = top
            for index, child in enumerate(children):
                counter[0] += 1
                is_last = index == len(children) - 1
                nxt = bottom if is_last else f"x{counter[0]}"
                build(child, previous, nxt)
                previous = nxt

        build(pattern.tree, "top", GROUND)
        solution = operating_point(circuit)
        i_off = -solution.source_current("vdd")
        self._solves += 1
        global _TOTAL_SOLVES
        with _SOLVE_LOCK:
            _TOTAL_SOLVES += 1
        return PatternCurrents(i_off=i_off, n_devices=pattern.n_devices)
