"""Per-input-vector leakage reports (Section 3.3's intermediate data).

The flow of Fig. 5 produces, "for every logic gate ... a vector of Ioff
and Ig values for every input vector, which were averaged".  This
module materializes that intermediate artifact so users can inspect the
vector dependence directly (which vectors are leaky, which benefit from
the stack effect) instead of only the averages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.gates.cells import Cell
from repro.gates.library import Library
from repro.power.pattern_sim import PatternSimulator
from repro.power.patterns import count_on_devices, stage_patterns
from repro.units import to_nanoamperes


@dataclass(frozen=True)
class VectorLeakage:
    """Leakage of one cell under one input vector."""

    vector: tuple            # booleans, pin order
    pattern_keys: tuple      # one canonical pattern per stage
    i_off: float             # A
    i_gate: float            # A

    @property
    def vector_string(self) -> str:
        return "[" + " ".join(str(int(v)) for v in self.vector) + "]"


@dataclass(frozen=True)
class CellLeakageReport:
    """The full Ioff/Ig vector of one cell (Fig. 5's output)."""

    cell: str
    rows: tuple  # of VectorLeakage

    @property
    def mean_i_off(self) -> float:
        return sum(r.i_off for r in self.rows) / len(self.rows)

    @property
    def mean_i_gate(self) -> float:
        return sum(r.i_gate for r in self.rows) / len(self.rows)

    @property
    def worst_vector(self) -> VectorLeakage:
        """The leakiest input vector."""
        return max(self.rows, key=lambda r: r.i_off)

    @property
    def best_vector(self) -> VectorLeakage:
        """The least leaky input vector (deepest stacks)."""
        return min(self.rows, key=lambda r: r.i_off)

    @property
    def spread(self) -> float:
        """Worst/best Ioff ratio — the vector dependence the pattern
        method exists to capture (Fig. 4)."""
        best = self.best_vector.i_off
        return self.worst_vector.i_off / best if best > 0 else float("inf")

    def render(self) -> str:
        lines = [f"== {self.cell}: per-vector leakage =="]
        lines.append(f"{'vector':>14s} {'Ioff (nA)':>10s} {'Ig (nA)':>9s} "
                     f" patterns")
        for row in self.rows:
            lines.append(
                f"{row.vector_string:>14s} "
                f"{to_nanoamperes(row.i_off):10.4f} "
                f"{to_nanoamperes(row.i_gate):9.5f}  "
                + " + ".join(row.pattern_keys))
        lines.append(
            f"mean Ioff {to_nanoamperes(self.mean_i_off):.4f} nA, "
            f"worst/best spread {self.spread:.1f}x")
        return "\n".join(lines)


def cell_leakage_report(cell: Cell, library: Library,
                        simulator: PatternSimulator = None
                        ) -> CellLeakageReport:
    """Compute the Ioff/Ig vector of one cell."""
    if simulator is None:
        simulator = PatternSimulator(library.tech)
    ig_unit = library.tech.nmos.ig_on
    rows: List[VectorLeakage] = []
    for minterm in range(1 << cell.n_inputs):
        vector = tuple(bool((minterm >> i) & 1)
                       for i in range(cell.n_inputs))
        patterns = stage_patterns(cell, vector)
        rows.append(VectorLeakage(
            vector=vector,
            pattern_keys=tuple(p.key for p in patterns),
            i_off=sum(simulator.off_current(p) for p in patterns),
            i_gate=count_on_devices(cell, vector) * ig_unit,
        ))
    return CellLeakageReport(cell=cell.name, rows=tuple(rows))


def library_leakage_reports(library: Library) -> List[CellLeakageReport]:
    """Per-vector reports for every cell, sharing one pattern cache."""
    simulator = PatternSimulator(library.tech)
    return [cell_leakage_report(cell, library, simulator)
            for cell in library]
