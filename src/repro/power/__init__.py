"""Power characterization — the paper's primary contribution.

Implements the model of Section 3.1 (``PT = PD + PSC + PS + PG``), the
off-current pattern classification of Section 3.2, and the two-step
characterization flow of Fig. 5: a gate topology analyzer maps every
(cell, input vector) pair to a reduced off-transistor pattern, the small
set of distinct patterns is quantified once with the circuit simulator,
and per-cell powers are assembled from the averages.
"""

from repro.power.model import (
    PowerParameters,
    PowerBreakdown,
    dynamic_power,
    short_circuit_power,
    static_power,
    gate_leakage_power,
    total_power,
    energy_delay_product,
    SHORT_CIRCUIT_FRACTION,
)
from repro.power.activity import (
    activity_factor,
    switching_probability,
    output_one_probability,
)
from repro.power.patterns import (
    LeakagePattern,
    off_pattern,
    stage_patterns,
    cell_patterns,
    library_patterns,
    count_on_devices,
)
from repro.power.pattern_sim import PatternSimulator
from repro.power.characterize import (
    CellPowerReport,
    LibraryPowerReport,
    characterize_cell,
    characterize_library,
)
from repro.power.compare import LibraryComparison, compare_libraries

__all__ = [
    "PowerParameters",
    "PowerBreakdown",
    "dynamic_power",
    "short_circuit_power",
    "static_power",
    "gate_leakage_power",
    "total_power",
    "energy_delay_product",
    "SHORT_CIRCUIT_FRACTION",
    "activity_factor",
    "switching_probability",
    "output_one_probability",
    "LeakagePattern",
    "off_pattern",
    "stage_patterns",
    "cell_patterns",
    "library_patterns",
    "count_on_devices",
    "PatternSimulator",
    "CellPowerReport",
    "LibraryPowerReport",
    "characterize_cell",
    "characterize_library",
    "LibraryComparison",
    "compare_libraries",
]
