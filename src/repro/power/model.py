"""The total-power model of Section 3.1 (Equations 1-5).

    PT  = PD + PSC + PS + PG                       (1)
    PD  = alpha * C * f * VDD^2                    (2)
    PSC = 0.15 * PD                                (3)
    PS  = Ioff * VDD                               (4)
    PG  = Ig * VDD                                 (5)

The 0.15 short-circuit fraction is the CMOS result of Nose & Sakurai
that the paper assumes also holds for CNTFETs (and flags as a
limitation in Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExperimentError

#: PSC / PD ratio assumed by the paper (Eq. 3).
SHORT_CIRCUIT_FRACTION = 0.15


@dataclass(frozen=True)
class PowerParameters:
    """Operating conditions shared by every power evaluation.

    The paper's setting: VDD = 0.9 V, f = 1 GHz, fanout = 3.
    """

    vdd: float = 0.9
    frequency: float = 1.0e9
    fanout: int = 3

    def __post_init__(self) -> None:
        if self.vdd <= 0 or self.frequency <= 0 or self.fanout < 1:
            raise ExperimentError("invalid power parameters")


def dynamic_power(activity: float, capacitance: float,
                  params: PowerParameters) -> float:
    """Eq. 2: PD = alpha * C * f * VDD^2 (watts)."""
    return activity * capacitance * params.frequency * params.vdd**2


def short_circuit_power(p_dynamic: float) -> float:
    """Eq. 3: PSC = 0.15 * PD (watts)."""
    return SHORT_CIRCUIT_FRACTION * p_dynamic


def static_power(i_off: float, params: PowerParameters) -> float:
    """Eq. 4: PS = Ioff * VDD (watts)."""
    return i_off * params.vdd


def gate_leakage_power(i_gate: float, params: PowerParameters) -> float:
    """Eq. 5: PG = Ig * VDD (watts)."""
    return i_gate * params.vdd


@dataclass(frozen=True)
class PowerBreakdown:
    """The four components of Eq. 1, in watts."""

    dynamic: float
    short_circuit: float
    static: float
    gate_leak: float

    @property
    def total(self) -> float:
        """PT = PD + PSC + PS + PG."""
        return self.dynamic + self.short_circuit + self.static + self.gate_leak

    def __add__(self, other: "PowerBreakdown") -> "PowerBreakdown":
        return PowerBreakdown(
            self.dynamic + other.dynamic,
            self.short_circuit + other.short_circuit,
            self.static + other.static,
            self.gate_leak + other.gate_leak,
        )

    def scaled(self, factor: float) -> "PowerBreakdown":
        """Component-wise scaling (used for averages)."""
        return PowerBreakdown(
            self.dynamic * factor,
            self.short_circuit * factor,
            self.static * factor,
            self.gate_leak * factor,
        )


ZERO_POWER = PowerBreakdown(0.0, 0.0, 0.0, 0.0)


def total_power(breakdown: PowerBreakdown) -> float:
    """Eq. 1 as a function (watts)."""
    return breakdown.total


def energy_delay_product(p_total: float, delay: float,
                         params: PowerParameters) -> float:
    """EDP as reported in Table 1: (PT / f) * delay, in J*s.

    The paper's numbers are exactly consistent with energy-per-cycle
    (PT divided by the 1 GHz operating frequency) times the critical
    delay; e.g. C2670/CMOS: 25.42 uW / 1 GHz * 320 ps = 8.13e-24 J*s.
    """
    return (p_total / params.frequency) * delay
