"""Library-versus-library power comparison (the Section 4 results).

The paper compares the characterized ambipolar CNTFET library against
the CMOS library (on the gates available in both, i.e. the conventional
functions) and reports: equal average activity factors, a ~31 % input
capacitance gap (36 aF vs 52 aF inverters), 27 % dynamic-power savings,
roughly one order of magnitude lower static power, gate leakage at
~10 % of PS for CMOS vs <1 % for CNTFETs, and 28 % lower total power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.power.characterize import LibraryPowerReport


def _saving(reference: float, candidate: float) -> float:
    """Fractional saving of candidate vs reference (positive = better)."""
    if reference == 0.0:
        return 0.0
    return 1.0 - candidate / reference


@dataclass(frozen=True)
class LibraryComparison:
    """Summary statistics of candidate-vs-reference characterization."""

    candidate: str
    reference: str
    common_cells: List[str]
    dynamic_saving: float
    static_ratio: float            # reference PS / candidate PS
    total_saving: float
    candidate_gate_leak_fraction: float
    reference_gate_leak_fraction: float
    candidate_activity: float
    reference_activity: float
    candidate_mean_input_cap: float
    reference_mean_input_cap: float

    def summary_lines(self) -> List[str]:
        """Human-readable digest mirroring the Section 4 narrative."""
        return [
            f"{self.candidate} vs {self.reference} "
            f"({len(self.common_cells)} common cells):",
            f"  dynamic power saving:    {self.dynamic_saving:6.1%}"
            f"   (paper: ~27%)",
            f"  static power ratio:      {self.static_ratio:6.1f}x"
            f"   (paper: ~one order of magnitude)",
            f"  total power saving:      {self.total_saving:6.1%}"
            f"   (paper: ~28%)",
            f"  PG/PS candidate:         {self.candidate_gate_leak_fraction:6.1%}"
            f"   (paper: <1% for CNTFET)",
            f"  PG/PS reference:         {self.reference_gate_leak_fraction:6.1%}"
            f"   (paper: ~10% for CMOS)",
            f"  mean activity factor:    {self.candidate_activity:.3f} vs "
            f"{self.reference_activity:.3f}   (paper: equal on average)",
            f"  mean input capacitance:  "
            f"{self.candidate_mean_input_cap * 1e18:.1f} aF vs "
            f"{self.reference_mean_input_cap * 1e18:.1f} aF",
        ]


def compare_libraries(candidate: LibraryPowerReport,
                      reference: LibraryPowerReport,
                      common_only: bool = True,
                      cells: Optional[List[str]] = None) -> LibraryComparison:
    """Compare two characterized libraries.

    Args:
        candidate: typically the CNTFET library.
        reference: typically the CMOS library.
        common_only: restrict to cells present in both (the paper's
            "gates taken from the considered library, and which are
            available in CMOS technology").
        cells: explicit cell subset overriding ``common_only``.
    """
    if cells is None:
        if common_only:
            cells = [n for n in candidate.cells if n in reference.cells]
        else:
            cells = list(candidate.cells)
    cand = candidate.subset(cells) if common_only or cells else candidate
    ref_names = [n for n in cells if n in reference.cells]
    ref = reference.subset(ref_names)

    cand_mean = cand.mean_power()
    ref_mean = ref.mean_power()
    return LibraryComparison(
        candidate=candidate.library,
        reference=reference.library,
        common_cells=cells,
        dynamic_saving=_saving(ref_mean.dynamic, cand_mean.dynamic),
        static_ratio=(ref_mean.static / cand_mean.static
                      if cand_mean.static > 0 else float("inf")),
        total_saving=_saving(ref_mean.total, cand_mean.total),
        candidate_gate_leak_fraction=cand.gate_leak_fraction_of_static(),
        reference_gate_leak_fraction=ref.gate_leak_fraction_of_static(),
        candidate_activity=cand.mean_activity(),
        reference_activity=ref.mean_activity(),
        candidate_mean_input_cap=cand.mean_input_capacitance(),
        reference_mean_input_cap=ref.mean_input_capacitance(),
    )
