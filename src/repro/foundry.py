"""Library foundry: bulk characterization into versioned artifacts.

Registered libraries are characterized on demand — every fresh server
or sweep worker re-solves the SPICE leakage patterns per (library,
vdd).  The foundry turns that into a build pipeline with versioned
outputs:

* :func:`characterize` fans (library, vdd) characterization jobs
  through :func:`repro.experiments.parallel.parallel_map_stream`
  (crash-tolerant; every finished artifact is a checkpoint, so a
  re-run only builds what is missing);
* each job produces one :class:`LibraryArtifact` — a serializable
  bundle of the timing, capacitance and leakage tables with a
  ``stable_hash`` content key, :data:`FOUNDRY_SCHEMA_VERSION`,
  technology provenance and the builder version — persisted under the
  ``foundry/`` namespace of :mod:`repro.cache` (checksummed, atomic,
  corrupt entries quarantined to a clean miss);
* :func:`load_library` hydrates a :class:`~repro.gates.library.Library`
  from its artifact **without touching the SPICE solver**, bit-identical
  to on-demand characterization: the artifact stores exactly what the
  live path memoizes (``CellTiming`` pairs, per-pin capacitances and
  the ``_LeakageTables`` arrays), and JSON round-trips floats exactly.

``registry.cached_library`` consults :func:`load_library` before
falling back to the live factory, so Engine, Session and sweep workers
all gain the prebuilt path for free.  Invalidation is structural, not
temporal: an artifact is only used when its recorded
``_library_content_key`` — covering the technology parameters and every
cell's pins, truth table and stage topology — matches a freshly-built
library skeleton; any code or parameter drift is a counted miss and a
live rebuild.
"""

from __future__ import annotations

import time
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import registry
from repro.cache import DiskCache, default_cache, stable_hash
from repro.errors import ExperimentError
from repro.gates.library import CellTiming, Library
from repro.sim.estimator import (_LEAKAGE_NAMESPACE, _LeakageTables,
                                 _library_content_key)

#: Bump on any change to the artifact payload layout; stored artifacts
#: with a different version are rejected (counted ``stale_schema``).
FOUNDRY_SCHEMA_VERSION = 1

#: Disk-cache namespace holding artifacts and the store index.
FOUNDRY_NAMESPACE = "foundry"

#: Index entry mapping artifact keys to their provenance summaries.
INDEX_KEY = "index"

_PAYLOAD_FIELDS = ("schema_version", "library", "vdd", "library_key",
                   "builder_version", "tech", "timing", "pin_caps",
                   "output_caps", "leakage")


def _builder_version() -> str:
    from repro import __version__
    return __version__


def artifact_key(name: str, vdd: Optional[float] = None) -> str:
    """Content-addressed store key for one (library, vdd) artifact.

    Deliberately the same formula the serving engine uses for its
    per-library memo; the schema version is *not* part of the key, so a
    stale-schema artifact is found, rejected and counted rather than
    silently shadowed by a fresh key.
    """
    key = registry.canonical_library(name)
    return stable_hash({"library": key, "vdd": vdd})


# -- counters ------------------------------------------------------------------

_COUNTER_LOCK = threading.Lock()
_COUNTERS: Dict[str, int] = {}


def _count(name: str) -> None:
    with _COUNTER_LOCK:
        _COUNTERS[name] = _COUNTERS.get(name, 0) + 1


def foundry_counters() -> Dict[str, int]:
    """Process-global artifact counters (hits, misses and miss causes)."""
    with _COUNTER_LOCK:
        counters = dict(_COUNTERS)
    for name in ("artifact.hits", "artifact.misses", "artifact.stale_schema",
                 "artifact.mismatch", "artifact.invalid"):
        counters.setdefault(name, 0)
    return counters


def reset_foundry_counters() -> None:
    """Zero the artifact counters (test isolation)."""
    with _COUNTER_LOCK:
        _COUNTERS.clear()


# -- the artifact --------------------------------------------------------------


@dataclass(frozen=True)
class LibraryArtifact:
    """One characterized (library, vdd): everything a hydration needs.

    ``timing`` maps cell -> ``[intrinsic_s, slope_s_per_F]``;
    ``pin_caps`` maps cell -> pin -> F; ``output_caps`` maps cell -> F;
    ``leakage`` is the exact ``_LeakageTables`` serialization (per-cell
    ``i_off``/``i_gate`` arrays over all input vectors).
    """

    library: str
    vdd: Optional[float]
    schema_version: int
    library_key: str
    builder_version: str
    tech: Dict[str, Any]
    timing: Dict[str, List[float]]
    pin_caps: Dict[str, Dict[str, float]]
    output_caps: Dict[str, float]
    leakage: Dict[str, Dict[str, list]] = field(repr=False)

    @property
    def n_cells(self) -> int:
        return len(self.timing)

    def to_payload(self) -> Dict[str, Any]:
        return {name: getattr(self, name) for name in _PAYLOAD_FIELDS}

    @property
    def content_hash(self) -> str:
        """Stable hash of the characterized content.

        Excludes ``builder_version`` (provenance only): a version bump
        that reproduces identical numbers must not fail ``verify``.
        """
        payload = self.to_payload()
        del payload["builder_version"]
        return stable_hash(payload)

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "LibraryArtifact":
        """Reconstruct from a stored payload; raises ``ValueError``."""
        if not isinstance(payload, dict):
            raise ValueError("artifact payload must be a dict")
        try:
            artifact = cls(
                library=str(payload["library"]),
                vdd=(None if payload["vdd"] is None
                     else float(payload["vdd"])),
                schema_version=int(payload["schema_version"]),
                library_key=str(payload["library_key"]),
                builder_version=str(payload["builder_version"]),
                tech=dict(payload["tech"]),
                timing={str(k): [float(v[0]), float(v[1])]
                        for k, v in dict(payload["timing"]).items()},
                pin_caps={str(k): {str(p): float(c)
                                   for p, c in dict(v).items()}
                          for k, v in dict(payload["pin_caps"]).items()},
                output_caps={str(k): float(v)
                             for k, v in dict(payload["output_caps"]).items()},
                leakage=dict(payload["leakage"]))
        except (KeyError, TypeError, ValueError, IndexError) as error:
            raise ValueError(f"malformed artifact payload: {error}") from None
        return artifact


# -- building ------------------------------------------------------------------


def _leakage_tables(library: Library, cache: DiskCache) -> _LeakageTables:
    """Leakage tables against an explicit cache root (resumable build)."""
    key = _library_content_key(library)
    stored = cache.get(_LEAKAGE_NAMESPACE, key)
    if _LeakageTables._valid_stored(stored, library):
        try:
            return _LeakageTables(library, stored)
        except (TypeError, ValueError):
            pass
    tables = _LeakageTables(library)
    cache.put(_LEAKAGE_NAMESPACE, key, tables._serialize())
    return tables


def build_artifact(name: str, vdd: Optional[float] = None, *,
                   cache: Optional[DiskCache] = None,
                   reuse_tables: bool = True) -> LibraryArtifact:
    """Characterize one (library, vdd) into an artifact (live SPICE).

    ``reuse_tables=False`` forces a from-scratch leakage build even
    when cached tables exist — the honest path for ``verify``.
    """
    key = registry.canonical_library(name)
    library = registry.build_library(key, vdd)
    if reuse_tables:
        tables = _leakage_tables(library, cache or default_cache())
    else:
        tables = _LeakageTables(library)
    timing: Dict[str, List[float]] = {}
    pin_caps: Dict[str, Dict[str, float]] = {}
    output_caps: Dict[str, float] = {}
    for cell in library:
        cell_timing = library.timing(cell.name)
        timing[cell.name] = [cell_timing.intrinsic, cell_timing.slope]
        pin_caps[cell.name] = {pin: library.pin_capacitance(cell.name, pin)
                               for pin in cell.inputs}
        output_caps[cell.name] = library.output_capacitance(cell.name)
    tech = {"name": library.tech.name, "vdd": library.tech.vdd,
            "ambipolar": library.tech.ambipolar,
            "hash": stable_hash(library.tech)}
    return LibraryArtifact(
        library=key, vdd=vdd, schema_version=FOUNDRY_SCHEMA_VERSION,
        library_key=_library_content_key(library),
        builder_version=_builder_version(), tech=tech, timing=timing,
        pin_caps=pin_caps, output_caps=output_caps,
        leakage=tables._serialize())


def _index_entry(artifact: LibraryArtifact) -> Dict[str, Any]:
    return {"library": artifact.library, "vdd": artifact.vdd,
            "hash": artifact.content_hash,
            "schema_version": artifact.schema_version,
            "builder_version": artifact.builder_version,
            "cells": artifact.n_cells}


def save_artifact(artifact: LibraryArtifact,
                  cache: Optional[DiskCache] = None) -> str:
    """Persist an artifact and index it; returns the store key."""
    cache = cache or default_cache()
    key = artifact_key(artifact.library, artifact.vdd)
    stored = artifact.to_payload()
    stored["hash"] = artifact.content_hash
    cache.put(FOUNDRY_NAMESPACE, key, stored)
    cache.merge(FOUNDRY_NAMESPACE, INDEX_KEY, {key: _index_entry(artifact)})
    return key


def _read_artifact(name: str, vdd: Optional[float],
                   cache: DiskCache) -> Tuple[Optional[LibraryArtifact], str]:
    """(artifact, status) with no counter side effects.

    Status is one of ``ok | missing | stale_schema | invalid``.
    Corrupt/truncated files surface here as ``missing`` — the cache
    layer quarantines them into a clean miss before we ever parse.
    """
    stored = cache.get(FOUNDRY_NAMESPACE, artifact_key(name, vdd))
    if stored is None:
        return None, "missing"
    if not isinstance(stored, dict):
        return None, "invalid"
    if stored.get("schema_version") != FOUNDRY_SCHEMA_VERSION:
        return None, "stale_schema"
    try:
        return LibraryArtifact.from_payload(stored), "ok"
    except ValueError:
        return None, "invalid"


def artifact_status(name: str, vdd: Optional[float] = None,
                    cache: Optional[DiskCache] = None) -> Dict[str, Any]:
    """Inspect one (library, vdd) slot without touching the counters."""
    cache = cache or default_cache()
    artifact, status = _read_artifact(name, vdd, cache)
    info: Dict[str, Any] = {
        "library": registry.canonical_library(name), "vdd": vdd,
        "status": status}
    if artifact is not None:
        info.update(hash=artifact.content_hash, cells=artifact.n_cells,
                    builder_version=artifact.builder_version)
    return info


def load_artifact(name: str, vdd: Optional[float] = None,
                  cache: Optional[DiskCache] = None
                  ) -> Optional[LibraryArtifact]:
    """Load a stored artifact, counting the outcome."""
    cache = cache or default_cache()
    artifact, status = _read_artifact(name, vdd, cache)
    if artifact is None:
        if status == "stale_schema":
            _count("artifact.stale_schema")
        elif status == "invalid":
            _count("artifact.invalid")
        _count("artifact.misses")
    return artifact


def load_library(name: str, vdd: Optional[float] = None,
                 cache: Optional[DiskCache] = None) -> Optional[Library]:
    """Hydrate a library from its artifact — zero SPICE solves.

    Returns ``None`` (a counted miss) when no usable artifact exists;
    the caller falls back to live characterization.  On success the
    library's timing/pin-capacitance memos and its leakage tables are
    pre-filled from the artifact, so no later estimator call can reach
    the pattern simulator.
    """
    artifact = load_artifact(name, vdd, cache)
    if artifact is None:
        return None
    library = registry.build_library(name, vdd)
    if _library_content_key(library) != artifact.library_key:
        _count("artifact.mismatch")
        _count("artifact.misses")
        return None
    if not _LeakageTables._valid_stored(artifact.leakage, library):
        _count("artifact.invalid")
        _count("artifact.misses")
        return None
    try:
        tables = _LeakageTables(library, artifact.leakage)
    except (KeyError, TypeError, ValueError):
        _count("artifact.invalid")
        _count("artifact.misses")
        return None
    for cell in library:
        pair = artifact.timing.get(cell.name)
        pins = artifact.pin_caps.get(cell.name)
        if (pair is None or len(pair) != 2 or pins is None
                or set(pins) != set(cell.inputs)):
            _count("artifact.invalid")
            _count("artifact.misses")
            return None
    # All-or-nothing hydration: memos are only written once every cell
    # checked out, so a bad artifact cannot leave a half-primed library.
    for cell in library:
        pair = artifact.timing[cell.name]
        library._timings[cell.name] = CellTiming(
            intrinsic=float(pair[0]), slope=float(pair[1]))
        for pin in cell.inputs:
            library._pin_caps[(cell.name, pin)] = float(
                artifact.pin_caps[cell.name][pin])
    _LeakageTables._cache[library] = tables
    _count("artifact.hits")
    return library


# -- bulk characterization -----------------------------------------------------


@dataclass(frozen=True)
class BuildOutcome:
    """Result of one (library, vdd) foundry task."""

    library: str
    vdd: Optional[float]
    artifact_key: str
    hash: Optional[str]
    n_cells: int
    elapsed_s: float
    status: str            # built | cached | failed
    detail: str = ""


@dataclass(frozen=True)
class BuildReport:
    """What a :func:`characterize` run did, renderable for CI greps."""

    outcomes: Tuple[BuildOutcome, ...]
    elapsed_s: float
    jobs_requested: int
    jobs_effective: int
    cache_root: str

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {"built": 0, "cached": 0, "failed": 0}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    def render(self) -> str:
        lines = []
        for outcome in self.outcomes:
            vdd = "native" if outcome.vdd is None else f"{outcome.vdd:g}V"
            extra = f" ({outcome.detail})" if outcome.detail else ""
            lines.append(
                f"{outcome.status:>6}  {outcome.library} @ {vdd}  "
                f"cells={outcome.n_cells} hash={outcome.hash or '-'} "
                f"[{outcome.elapsed_s:.2f}s]{extra}")
        counts = self.counts()
        lines.append(
            f"foundry: built={counts['built']} cached={counts['cached']} "
            f"failed={counts['failed']} jobs={self.jobs_effective} "
            f"elapsed={self.elapsed_s:.2f}s store={self.cache_root}")
        return "\n".join(lines)


def _build_worker(task: Tuple[str, Optional[float], str, bool]
                  ) -> Dict[str, Any]:
    """One foundry job, picklable for ``parallel_map_stream`` workers.

    Saving the artifact is the checkpoint: a crashed-and-retried task
    redoes only its own (library, vdd); completed siblings are skipped
    by the next run's ``artifact_status`` pre-check.
    """
    key, vdd, root, enabled = task
    cache = DiskCache(root=Path(root), enabled=enabled)
    start = time.perf_counter()
    artifact = build_artifact(key, vdd, cache=cache)
    store_key = save_artifact(artifact, cache)
    return {"library": key, "vdd": vdd, "artifact_key": store_key,
            "hash": artifact.content_hash, "n_cells": artifact.n_cells,
            "elapsed_s": time.perf_counter() - start}


def characterize(libraries: Optional[Sequence[str]] = None,
                 vdd_points: Sequence[Optional[float]] = (None,),
                 *, jobs: int = 1, cache: Optional[DiskCache] = None,
                 force: bool = False) -> BuildReport:
    """Bulk-characterize libraries × vdd points into the artifact store.

    Crash-tolerant and resumable: work fans out through
    ``parallel_map_stream`` (same retry/poison discipline as sweeps)
    and every saved artifact is a checkpoint — a re-run reports those
    slots as ``cached`` without re-solving anything, unless ``force``.
    """
    from repro.experiments.parallel import parallel_map_stream, resolve_jobs

    cache = cache or default_cache()
    if not cache.enabled:
        raise ExperimentError(
            "the foundry needs a writable artifact store; the cache is "
            "disabled (REPRO_CACHE_DISABLE) — nothing would persist")
    if libraries is None:
        libraries = registry.available_libraries()
    keys: List[str] = []
    for name in libraries:
        key = registry.canonical_library(name)
        if key not in keys:
            keys.append(key)
    tasks = [(key, vdd) for key in keys for vdd in vdd_points]

    start = time.perf_counter()
    outcomes: Dict[Tuple[str, Optional[float]], BuildOutcome] = {}
    pending: List[Tuple[str, Optional[float], str, bool]] = []
    for key, vdd in tasks:
        status = artifact_status(key, vdd, cache) if not force else None
        if status is not None and status["status"] == "ok":
            outcomes[(key, vdd)] = BuildOutcome(
                library=key, vdd=vdd, artifact_key=artifact_key(key, vdd),
                hash=status["hash"], n_cells=status["cells"],
                elapsed_s=0.0, status="cached")
        else:
            pending.append((key, vdd, str(cache.root), cache.enabled))

    built: List[Dict[str, Any]] = []
    if pending:
        results = parallel_map_stream(
            _build_worker, pending, jobs=jobs,
            on_poison=lambda item, error: None)
        for slot, result in zip(pending, results):
            key, vdd = slot[0], slot[1]
            if result is None:
                outcomes[(key, vdd)] = BuildOutcome(
                    library=key, vdd=vdd,
                    artifact_key=artifact_key(key, vdd), hash=None,
                    n_cells=0, elapsed_s=0.0, status="failed",
                    detail="worker crashed repeatedly; slot poisoned")
                continue
            built.append(result)
            outcomes[(key, vdd)] = BuildOutcome(
                library=key, vdd=vdd, artifact_key=result["artifact_key"],
                hash=result["hash"], n_cells=result["n_cells"],
                elapsed_s=result["elapsed_s"], status="built")
    if built:
        # Concurrent workers merge the index independently; a racing
        # read-modify-write can drop a sibling's entry.  The parent
        # re-merges every built entry once the pool has drained.
        updates = {}
        for result in built:
            artifact, status = _read_artifact(result["library"],
                                              result["vdd"], cache)
            if artifact is not None:
                updates[result["artifact_key"]] = _index_entry(artifact)
        if updates:
            cache.merge(FOUNDRY_NAMESPACE, INDEX_KEY, updates)

    return BuildReport(
        outcomes=tuple(outcomes[task] for task in tasks),
        elapsed_s=time.perf_counter() - start,
        jobs_requested=jobs, jobs_effective=resolve_jobs(jobs),
        cache_root=str(cache.root))


# -- verification and export ---------------------------------------------------


def verify_artifact(name: str, vdd: Optional[float] = None,
                    cache: Optional[DiskCache] = None) -> Dict[str, Any]:
    """Re-characterize from scratch and diff against the stored hash."""
    cache = cache or default_cache()
    key = registry.canonical_library(name)
    stored, status = _read_artifact(key, vdd, cache)
    if stored is None:
        return {"library": key, "vdd": vdd, "status": status,
                "stored_hash": None, "rebuilt_hash": None}
    rebuilt = build_artifact(key, vdd, cache=cache, reuse_tables=False)
    ok = rebuilt.content_hash == stored.content_hash
    return {"library": key, "vdd": vdd,
            "status": "ok" if ok else "mismatch",
            "stored_hash": stored.content_hash,
            "rebuilt_hash": rebuilt.content_hash}


def store_index(cache: Optional[DiskCache] = None) -> Dict[str, Any]:
    """The artifact-store index (key -> provenance summary)."""
    cache = cache or default_cache()
    index = cache.get(FOUNDRY_NAMESPACE, INDEX_KEY)
    return index if isinstance(index, dict) else {}


def export_store(target_dir: str,
                 libraries: Optional[Sequence[str]] = None,
                 vdds: Optional[Sequence[Optional[float]]] = None,
                 cache: Optional[DiskCache] = None) -> int:
    """Copy selected artifacts into a standalone store directory.

    The result is a valid ``REPRO_CACHE_DIR`` containing only the
    ``foundry/`` namespace — a server pointed at it hydrates every
    exported library with zero live solves.  Returns the number of
    artifacts exported.
    """
    cache = cache or default_cache()
    target = DiskCache(root=Path(target_dir), enabled=True)
    wanted_keys = None
    if libraries is not None:
        wanted_keys = {registry.canonical_library(name)
                       for name in libraries}
    wanted_vdds = None if vdds is None else set(vdds)
    exported = 0
    index: Dict[str, Any] = {}
    for key, entry in sorted(store_index(cache).items()):
        if wanted_keys is not None and entry.get("library") not in wanted_keys:
            continue
        if wanted_vdds is not None and entry.get("vdd") not in wanted_vdds:
            continue
        stored = cache.get(FOUNDRY_NAMESPACE, key)
        if stored is None:
            continue
        target.put(FOUNDRY_NAMESPACE, key, stored)
        index[key] = entry
        exported += 1
    target.put(FOUNDRY_NAMESPACE, INDEX_KEY, index)
    return exported


# -- listings (shared by /v1/libraries and the CLI) ----------------------------


def library_listing(cache: Optional[DiskCache] = None) -> List[Dict[str, Any]]:
    """Per-library rows: registration metadata + artifact provenance.

    The single source for both ``GET /v1/libraries`` and the
    ``repro libraries`` CLI table, so the two can never drift.
    """
    cache = cache or default_cache()
    by_library: Dict[str, List[Dict[str, Any]]] = {}
    for key, entry in store_index(cache).items():
        summary = dict(entry)
        summary["artifact_key"] = key
        by_library.setdefault(entry.get("library", ""), []).append(summary)
    rows: List[Dict[str, Any]] = []
    for key in registry.available_libraries():
        entry = registry.library_entry(key)
        artifacts = sorted(
            by_library.get(key, ()),
            key=lambda a: (a.get("vdd") is not None, a.get("vdd") or 0.0))
        rows.append({
            "key": key,
            "aliases": list(entry.aliases),
            "description": entry.description,
            "prebuilt": entry.artifact,
            "artifacts": artifacts,
            "characterized_vdds": [a.get("vdd") for a in artifacts],
            "hot_vdds": registry.cached_library_vdds(key),
        })
    return rows


def _format_vdd(vdd: Optional[float]) -> str:
    return "native" if vdd is None else f"{vdd:g}V"


def format_library_listing(rows: Sequence[Dict[str, Any]], *,
                           verbose: bool = False) -> List[str]:
    """Render listing rows as CLI lines (one helper, no CLI drift)."""
    lines: List[str] = []
    for row in rows:
        aliases = (f" (aliases: {', '.join(row['aliases'])})"
                   if row["aliases"] else "")
        lines.append(f"{row['key']}{aliases}")
        if row["description"]:
            lines.append(f"    {row['description']}")
        artifacts = row.get("artifacts", ())
        if artifacts:
            vdds = ", ".join(_format_vdd(a.get("vdd")) for a in artifacts)
            lines.append(f"    artifacts: {len(artifacts)} "
                         f"(vdd: {vdds})")
            if verbose:
                for summary in artifacts:
                    lines.append(
                        f"      vdd={_format_vdd(summary.get('vdd'))} "
                        f"hash={summary.get('hash')} "
                        f"schema=v{summary.get('schema_version')} "
                        f"builder={summary.get('builder_version')} "
                        f"cells={summary.get('cells')}")
        elif not row.get("prebuilt", True):
            lines.append("    artifacts: disabled (live-only registration)")
        else:
            lines.append("    artifacts: none (live characterization)")
        if row.get("hot_vdds"):
            hot = ", ".join(_format_vdd(vdd) for vdd in row["hot_vdds"])
            lines.append(f"    hot in-process: {hot}")
    return lines
