"""Combinational equivalence checking.

The synthesis passes and the mapper must preserve functionality; this
module provides the checkers the test-suite and cautious users rely on:

* :func:`equivalent_aigs` — random-vector comparison with an exhaustive
  fallback for small input counts;
* :func:`netlist_matches_aig` — mapped netlist vs its subject graph,
  using the bit-parallel simulator on both sides;
* :func:`miter` — builds the classic miter AIG (single output, 1 iff
  the two circuits disagree), useful for export to external SAT tools.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SynthesisError
from repro.synth.aig import Aig, FALSE, lit_node, lit_phase
from repro.synth.netlist import MappedNetlist

#: Input-count threshold below which checks are exhaustive.
EXHAUSTIVE_LIMIT = 14


def _check_interfaces(left: Aig, right: Aig) -> None:
    if left.n_pis != right.n_pis or left.n_pos != right.n_pos:
        raise SynthesisError(
            f"interface mismatch: {left.n_pis}/{left.n_pos} PIs/POs vs "
            f"{right.n_pis}/{right.n_pos}")


def miter(left: Aig, right: Aig) -> Aig:
    """Build a miter: output 1 iff any PO pair disagrees."""
    _check_interfaces(left, right)
    result = Aig(f"miter({left.name},{right.name})")
    pis = [result.add_pi(name) for name in left.pi_names]

    def copy(source: Aig) -> list:
        mapping = {0: FALSE}
        for node, literal in zip(source.pis, pis):
            mapping[node] = literal
        for node in source.and_nodes():
            f0, f1 = source.fanins(node)
            a = mapping[lit_node(f0)] ^ lit_phase(f0)
            b = mapping[lit_node(f1)] ^ lit_phase(f1)
            mapping[node] = result.and_(a, b)
        return [mapping[lit_node(po)] ^ lit_phase(po) for po in source.pos]

    left_pos = copy(left)
    right_pos = copy(right)
    differences = [result.xor_(a, b) for a, b in zip(left_pos, right_pos)]
    result.add_po(result.or_many(differences), "diff")
    return result


def equivalent_aigs(left: Aig, right: Aig,
                    n_random: int = 2048, seed: int = 2010) -> bool:
    """Check functional equivalence of two AIGs.

    Exhaustive when the circuits have at most
    :data:`EXHAUSTIVE_LIMIT` inputs (a complete proof); otherwise a
    seeded random-vector comparison (a strong falsifier — synthesis
    bugs are not adversarial).
    """
    _check_interfaces(left, right)
    n = left.n_pis
    if n <= EXHAUSTIVE_LIMIT:
        width = 1 << n
        words = []
        for var in range(n):
            word = 0
            for minterm in range(width):
                if (minterm >> var) & 1:
                    word |= 1 << minterm
            words.append(word)
        return left.simulate(words, width) == right.simulate(words, width)
    import random
    rng = random.Random(seed)
    words = [rng.getrandbits(n_random) for _ in range(n)]
    return (left.simulate(words, n_random)
            == right.simulate(words, n_random))


def netlist_matches_aig(netlist: MappedNetlist, aig: Aig,
                        n_patterns: Optional[int] = None,
                        seed: int = 2010) -> bool:
    """Check a mapped netlist against its subject AIG.

    Exhaustive below :data:`EXHAUSTIVE_LIMIT` inputs, else random.
    Requires matching PI/PO name lists (the mapper preserves them).
    """
    if netlist.pi_names != aig.pi_names:
        raise SynthesisError("PI name mismatch between netlist and AIG")
    if netlist.po_names != aig.po_names:
        raise SynthesisError("PO name mismatch between netlist and AIG")
    from repro.sim.bitsim import BitParallelSimulator

    n = aig.n_pis
    if n_patterns is None:
        n_patterns = (1 << n) if n <= EXHAUSTIVE_LIMIT else 4096

    if n <= EXHAUSTIVE_LIMIT and n_patterns >= (1 << n):
        # exhaustive: drive the netlist with counting patterns
        width = 1 << n
        aig_words = []
        for var in range(n):
            word = 0
            for minterm in range(width):
                if (minterm >> var) & 1:
                    word |= 1 << minterm
            aig_words.append(word)
        expected = dict(zip(aig.po_names, aig.simulate(aig_words, width)))
        state = {}
        for name, word in zip(netlist.pi_names, aig_words):
            state[name] = _int_to_words(word, width)
        simulator = BitParallelSimulator(netlist)
        for gate in netlist.gates:
            state[gate.output] = simulator._evaluate_gate(
                gate.cell, [state[net] for net in gate.inputs])
        for po_name, (kind, value) in netlist.po_bindings:
            if kind == "const":
                got = -1 if value else 0
                got &= (1 << width) - 1
            else:
                got = _words_to_int(state[value], width)
            if got != expected[po_name]:
                return False
        return True

    simulator = BitParallelSimulator(netlist)
    netlist_words = simulator.output_words(n_patterns, seed)
    rng = np.random.default_rng(seed)
    n_words = (n_patterns + 63) // 64
    tail = n_patterns - (n_words - 1) * 64
    mask = np.uint64((1 << tail) - 1) if tail < 64 else np.uint64(2**64 - 1)
    aig_words = []
    for _ in range(n):
        w = rng.integers(0, 2**64, size=n_words, dtype=np.uint64)
        w[-1] &= mask
        aig_words.append(_words_to_int(w, n_patterns))
    expected = aig.simulate(aig_words, n_patterns)
    for po_name, value in zip(aig.po_names, expected):
        got = _words_to_int(netlist_words[po_name], n_patterns)
        if got != value:
            return False
    return True


def _int_to_words(value: int, width: int) -> np.ndarray:
    n_words = (width + 63) // 64
    return np.frombuffer(value.to_bytes(n_words * 8, "little"),
                         dtype="<u8").copy()


def _words_to_int(words: np.ndarray, width: int) -> int:
    value = int.from_bytes(words.astype("<u8").tobytes(), "little")
    return value & ((1 << width) - 1)
