"""The ``refactor`` pass (re-exported from the shared resynthesis engine).

Kept as its own module so the pipeline in :mod:`repro.synth.scripts`
reads like ABC's script, and so the pass can evolve independently.
"""

from repro.synth.rewrite import refactor

__all__ = ["refactor"]
