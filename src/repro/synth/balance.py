"""Delay-oriented AND-tree balancing (ABC's ``balance``).

Maximal conjunction trees (chains of AND nodes reached through
non-complemented edges) are collected and rebuilt as balanced trees,
pairing the two shallowest operands first (Huffman style).  Structural
hashing in the target graph deduplicates shared subtrees.
"""

from __future__ import annotations

import heapq
from typing import Dict, List

from repro.synth.aig import Aig, lit_node, lit_phase


def _collect_conjuncts(aig: Aig, node: int) -> List[int]:
    """Leaves of the maximal AND tree rooted at ``node``.

    Traversal follows non-complemented fanin edges into AND nodes; a
    complemented edge or a PI stops the expansion.  Returns old-graph
    literals.
    """
    leaves: List[int] = []
    stack = list(aig.fanins(node))
    while stack:
        literal = stack.pop()
        child = lit_node(literal)
        if lit_phase(literal) == 0 and aig.is_and(child):
            stack.extend(aig.fanins(child))
        else:
            leaves.append(literal)
    return leaves


def balance(aig: Aig) -> Aig:
    """Return a functionally equivalent AIG with balanced AND trees."""
    new = Aig(aig.name)
    mapping: Dict[int, int] = {0: 0}
    for node, name in zip(aig.pis, aig.pi_names):
        mapping[node] = new.add_pi(name)
    level: Dict[int, int] = {}

    def new_level(literal: int) -> int:
        return level.get(lit_node(literal), 0)

    for node in aig.and_nodes():
        leaves = _collect_conjuncts(aig, node)
        new_literals = []
        for leaf in leaves:
            mapped = mapping[lit_node(leaf)] ^ lit_phase(leaf)
            new_literals.append(mapped)
        # Huffman pairing on current levels.
        heap = [(new_level(literal), index, literal)
                for index, literal in enumerate(new_literals)]
        heapq.heapify(heap)
        counter = len(heap)
        while len(heap) > 1:
            l0, _, lit0 = heapq.heappop(heap)
            l1, _, lit1 = heapq.heappop(heap)
            combined = new.and_(lit0, lit1)
            combined_level = max(l0, l1) + 1
            node_id = lit_node(combined)
            if node_id not in level or level[node_id] > combined_level:
                level[node_id] = combined_level
            heapq.heappush(heap, (level.get(node_id, combined_level),
                                  counter, combined))
            counter += 1
        mapping[node] = heap[0][2] if heap else 1  # empty => constant 1
    for po, name in zip(aig.pos, aig.po_names):
        new.add_po(mapping[lit_node(po)] ^ lit_phase(po), name)
    result = new.compact()
    # Converged pass: hand back the input object so cut enumerations
    # cached on it stay valid for the next pass.
    if result.same_structure(aig):
        return aig
    return result
