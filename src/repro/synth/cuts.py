"""k-feasible priority cut enumeration with cut truth tables.

Every AIG node gets a small set of cuts (subsets of nodes whose cones
cover it).  Cut functions are computed incrementally during merging by
lifting the child tables onto the merged leaf set, so no cone traversal
is needed.  The trivial cut {node} is always kept (it seeds merges at
fanout boundaries); matching passes skip it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.synth.aig import Aig, lit_node, lit_phase
from repro.synth.truth import expand, full_mask


@dataclass(frozen=True)
class Cut:
    """A cut: sorted leaf nodes plus the root function over them."""

    leaves: Tuple[int, ...]
    table: int

    @property
    def size(self) -> int:
        return len(self.leaves)

    def is_trivial_for(self, node: int) -> bool:
        """True if this is the unit cut {node}."""
        return self.leaves == (node,)


def _merge_leaves(a: Tuple[int, ...], b: Tuple[int, ...],
                  max_size: int) -> Tuple[int, ...]:
    """Sorted union of two leaf tuples, or () if it exceeds ``max_size``."""
    merged: List[int] = []
    i = j = 0
    while i < len(a) and j < len(b):
        if len(merged) > max_size:
            return ()
        if a[i] == b[j]:
            merged.append(a[i])
            i += 1
            j += 1
        elif a[i] < b[j]:
            merged.append(a[i])
            i += 1
        else:
            merged.append(b[j])
            j += 1
    merged.extend(a[i:])
    merged.extend(b[j:])
    if len(merged) > max_size:
        return ()
    return tuple(merged)


def _lift(cut: Cut, merged: Tuple[int, ...], phase: int) -> int:
    """Express a child cut's function over the merged leaf set."""
    positions = [merged.index(leaf) for leaf in cut.leaves]
    table = expand(cut.table, positions, len(merged))
    if phase:
        table ^= full_mask(len(merged))
    return table


def enumerate_cuts(aig: Aig, cut_size: int = 5,
                   cut_limit: int = 8) -> Dict[int, List[Cut]]:
    """Enumerate priority cuts for every node of the AIG.

    Returns a dict from node id to its cut list; the trivial cut is
    always the first entry.  Cuts are ranked smallest-first, which
    favours cheap matches and keeps merging tractable.
    """
    cuts: Dict[int, List[Cut]] = {}
    for pi in aig.pis:
        cuts[pi] = [Cut((pi,), 0b10)]
    for node in aig.and_nodes():
        f0, f1 = aig.fanins(node)
        n0, n1 = lit_node(f0), lit_node(f1)
        p0, p1 = lit_phase(f0), lit_phase(f1)
        candidates: Dict[Tuple[int, ...], Cut] = {}
        for cut0 in cuts.get(n0, []):
            for cut1 in cuts.get(n1, []):
                merged = _merge_leaves(cut0.leaves, cut1.leaves, cut_size)
                if not merged:
                    continue
                if merged in candidates:
                    continue
                t0 = _lift(cut0, merged, p0)
                t1 = _lift(cut1, merged, p1)
                candidates[merged] = Cut(merged, t0 & t1)
        ranked = sorted(candidates.values(), key=lambda c: (c.size, c.leaves))
        # Drop cuts dominated by a smaller cut with a subset of leaves.
        kept: List[Cut] = []
        for cut in ranked:
            leaf_set = set(cut.leaves)
            if any(set(other.leaves) <= leaf_set for other in kept):
                continue
            kept.append(cut)
            if len(kept) >= cut_limit:
                break
        cuts[node] = [Cut((node,), 0b10)] + kept
    return cuts
