"""k-feasible priority cut enumeration with cut truth tables.

Every AIG node gets a small set of cuts (subsets of nodes whose cones
cover it).  Cut functions are computed incrementally during merging by
lifting the child tables onto the merged leaf set, so no cone traversal
is needed.  The trivial cut {node} is always kept (it seeds merges at
fanout boundaries); matching passes skip it.

Performance notes: table lifting goes through the memoized mask-shift
``expand`` kernel; cut dominance uses 64-bit leaf signatures so almost
every subset test is a single AND; whole enumerations are cached per
AIG instance (keyed on the graph's mutation stamp, ``Aig.version``, so
any structural change re-enumerates), which lets the mapper reuse one
enumeration across all libraries and converged synthesis passes.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.synth.aig import Aig
from repro.synth.truth import _expand_cached, full_mask


def _leaf_signature(leaves: Tuple[int, ...]) -> int:
    """64-bit Bloom-style signature of a leaf set (for subset tests)."""
    signature = 0
    for leaf in leaves:
        signature |= 1 << (leaf & 63)
    return signature


@dataclass(frozen=True, slots=True)
class Cut:
    """A cut: sorted leaf nodes plus the root function over them."""

    leaves: Tuple[int, ...]
    table: int
    #: Bloom signature of ``leaves``; ``a ⊆ b`` implies
    #: ``sig(a) & ~sig(b) == 0``, so a failed AND disproves subset.
    signature: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "signature", _leaf_signature(self.leaves))

    @property
    def size(self) -> int:
        return len(self.leaves)

    def is_trivial_for(self, node: int) -> bool:
        """True if this is the unit cut {node}."""
        return self.leaves == (node,)


def _merge_leaves(a: Tuple[int, ...], b: Tuple[int, ...],
                  max_size: int) -> Tuple[int, ...]:
    """Sorted union of two leaf tuples, or () if it exceeds ``max_size``."""
    merged: List[int] = []
    i = j = 0
    len_a, len_b = len(a), len(b)
    while i < len_a and j < len_b:
        if len(merged) > max_size:
            return ()
        ai, bj = a[i], b[j]
        if ai == bj:
            merged.append(ai)
            i += 1
            j += 1
        elif ai < bj:
            merged.append(ai)
            i += 1
        else:
            merged.append(bj)
            j += 1
    merged.extend(a[i:])
    merged.extend(b[j:])
    if len(merged) > max_size:
        return ()
    return tuple(merged)


#: Per-AIG enumeration cache.  Keyed weakly on the graph object so
#: entries die with it; per (cut_size, cut_limit) only the enumeration
#: of the graph's latest mutation stamp is kept, so alternating
#: mutation with enumeration cannot accumulate stale tables.
_CUT_CACHE: "weakref.WeakKeyDictionary[Aig, Dict[Tuple[int, int], Tuple[int, Dict[int, List[Cut]]]]]"
_CUT_CACHE = weakref.WeakKeyDictionary()


def enumerate_cuts(aig: Aig, cut_size: int = 5,
                   cut_limit: int = 8) -> Dict[int, List[Cut]]:
    """Enumerate priority cuts for every node of the AIG.

    Returns a dict from node id to its cut list; the trivial cut is
    always the first entry.  Cuts are ranked smallest-first, which
    favours cheap matches and keeps merging tractable.  Results are
    cached per AIG instance, so mapping the same graph onto several
    libraries enumerates only once.
    """
    per_aig = _CUT_CACHE.setdefault(aig, {})
    cache_key = (cut_size, cut_limit)
    entry = per_aig.get(cache_key)
    if entry is not None and entry[0] == aig.version:
        return entry[1]

    cuts: Dict[int, List[Cut]] = {}
    for pi in aig.pis:
        cuts[pi] = [Cut((pi,), 0b10)]
    empty: List[Cut] = []
    for node in aig.and_nodes():
        f0, f1 = aig.fanins(node)
        n0, n1 = f0 >> 1, f1 >> 1
        p0, p1 = f0 & 1, f1 & 1
        # Candidate functions are kept as plain (merged -> table) pairs;
        # Cut objects (with their signature hashing) are built only for
        # the handful of cuts that survive ranking.
        candidates: Dict[Tuple[int, ...], int] = {}
        for cut0 in cuts.get(n0, empty):
            sig0 = cut0.signature
            leaves0 = cut0.leaves
            table0 = cut0.table
            for cut1 in cuts.get(n1, empty):
                # The signature union undercounts the true leaf union
                # (64-bit aliasing), so exceeding cut_size proves the
                # merge infeasible before any list work happens.
                if (sig0 | cut1.signature).bit_count() > cut_size:
                    continue
                leaves1 = cut1.leaves
                if leaves0 == leaves1:
                    merged = leaves0
                else:
                    merged = _merge_leaves(leaves0, leaves1, cut_size)
                if not merged or merged in candidates:
                    continue
                n_merged = len(merged)
                mask = full_mask(n_merged)
                position_of = None
                if leaves0 == merged:
                    t0 = table0
                else:
                    position_of = {leaf: i for i, leaf in enumerate(merged)}
                    t0 = _expand_cached(
                        table0,
                        tuple(map(position_of.__getitem__, leaves0)),
                        n_merged)
                if p0:
                    t0 ^= mask
                if leaves1 == merged:
                    t1 = cut1.table
                else:
                    if position_of is None:
                        position_of = {leaf: i
                                       for i, leaf in enumerate(merged)}
                    t1 = _expand_cached(
                        cut1.table,
                        tuple(map(position_of.__getitem__, leaves1)),
                        n_merged)
                if p1:
                    t1 ^= mask
                candidates[merged] = t0 & t1
        ranked = sorted(candidates.items(),
                        key=lambda item: (len(item[0]), item[0]))
        # Drop cuts dominated by a smaller cut with a subset of leaves.
        kept: List[Cut] = []
        for merged, table in ranked:
            signature = _leaf_signature(merged)
            leaf_set = set(merged)
            if any(other.signature & ~signature == 0
                   and set(other.leaves) <= leaf_set
                   for other in kept):
                continue
            kept.append(Cut(merged, table))
            if len(kept) >= cut_limit:
                break
        cuts[node] = [Cut((node,), 0b10)] + kept
    per_aig[cache_key] = (aig.version, cuts)
    return cuts
