"""Mapped (technology-bound) netlists and static timing analysis.

A :class:`MappedNetlist` is a DAG of library-cell instances connected by
named nets.  Gates are stored in topological order (the mapper emits
them that way), which the simulator and the timing analysis rely on.
Primary outputs bind either to a net or to a constant (possible when
synthesis proves an output constant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.gates.library import Library


@dataclass(frozen=True)
class MappedGate:
    """One cell instance: ``inputs[i]`` feeds the cell's pin ``i``."""

    name: str
    cell: str
    inputs: Tuple[str, ...]
    output: str


@dataclass
class MappedNetlist:
    """A technology-mapped combinational netlist."""

    name: str
    library: Library
    pi_names: List[str]
    #: (po_name, ("net", net) | ("const", 0/1))
    po_bindings: List[Tuple[str, Tuple[str, object]]]
    gates: List[MappedGate]
    #: Provenance from the mapper's delay DP (None for netlists built by
    #: other producers): the per-net arrival values the DP computed and
    #: the estimated per-net loads it computed them against.  Replaying
    #: :func:`repro.timing.arrival_times` with ``loads=mapper_loads``
    #: reproduces ``mapper_arrivals`` bit for bit.
    mapper_arrivals: Optional[Dict[str, float]] = None
    mapper_loads: Optional[Dict[str, float]] = None

    # -- basic stats ---------------------------------------------------------

    @property
    def gate_count(self) -> int:
        """Number of mapped cell instances (the paper's "No." column)."""
        return len(self.gates)

    @property
    def po_names(self) -> List[str]:
        return [name for name, _ in self.po_bindings]

    def cell_histogram(self) -> Dict[str, int]:
        """Instance count per library cell."""
        histogram: Dict[str, int] = {}
        for gate in self.gates:
            histogram[gate.cell] = histogram.get(gate.cell, 0) + 1
        return histogram

    def total_area(self) -> float:
        """Sum of cell areas."""
        return sum(self.library.area(g.cell) for g in self.gates)

    def total_devices(self) -> int:
        """Total transistor count."""
        return sum(self.library.cell(g.cell).n_devices for g in self.gates)

    # -- connectivity -----------------------------------------------------------

    def driver_of(self) -> Dict[str, MappedGate]:
        """Map from net name to the gate driving it."""
        drivers: Dict[str, MappedGate] = {}
        for gate in self.gates:
            if gate.output in drivers:
                raise SimulationError(f"net {gate.output!r} multiply driven")
            drivers[gate.output] = gate
        return drivers

    def fanouts_of(self) -> Dict[str, List[Tuple[MappedGate, int]]]:
        """Map from net name to (consumer gate, pin index) pairs."""
        fanouts: Dict[str, List[Tuple[MappedGate, int]]] = {}
        for gate in self.gates:
            for pin_index, net in enumerate(gate.inputs):
                fanouts.setdefault(net, []).append((gate, pin_index))
        return fanouts

    def validate(self) -> None:
        """Check structural sanity: defined nets, topological order."""
        defined = set(self.pi_names)
        for gate in self.gates:
            for net in gate.inputs:
                if net not in defined:
                    raise SimulationError(
                        f"gate {gate.name}: input net {net!r} used before "
                        f"definition")
            if gate.output in defined:
                raise SimulationError(
                    f"gate {gate.name}: output net {gate.output!r} redefined")
            defined.add(gate.output)
        for name, binding in self.po_bindings:
            kind, value = binding
            if kind == "net" and value not in defined:
                raise SimulationError(f"PO {name}: undefined net {value!r}")

    # -- electrical --------------------------------------------------------------

    def net_loads(self, po_extra_load: Optional[float] = None
                  ) -> Dict[str, float]:
        """Capacitive load per net (fanout pin caps + PO external load).

        The intrinsic drain capacitance of the driver is *not* included
        here; it is added by callers that need the full switched
        capacitance, because for PIs there is no driver in the netlist.
        """
        library = self.library
        if po_extra_load is None:
            inverter = library.inverter()
            po_extra_load = library.pin_capacitance(
                inverter.name, inverter.inputs[0])
        loads: Dict[str, float] = {net: 0.0 for net in self.all_nets()}
        for gate in self.gates:
            cell = library.cell(gate.cell)
            for pin_index, net in enumerate(gate.inputs):
                loads[net] += library.pin_capacitance(
                    gate.cell, cell.inputs[pin_index])
        for _, binding in self.po_bindings:
            kind, value = binding
            if kind == "net":
                loads[value] += po_extra_load
        return loads

    def all_nets(self) -> List[str]:
        """All net names: PIs first, then gate outputs in topo order."""
        nets = list(self.pi_names)
        nets.extend(gate.output for gate in self.gates)
        return nets


def static_timing(netlist: MappedNetlist,
                  po_extra_load: Optional[float] = None
                  ) -> Tuple[float, Dict[str, float]]:
    """Compute arrival times and the critical-path delay.

    Gate delay uses the library's linear model with the *actual* load of
    the driven net.  Returns ``(critical_delay, arrival_by_net)``.
    """
    library = netlist.library
    loads = netlist.net_loads(po_extra_load)
    arrival: Dict[str, float] = {net: 0.0 for net in netlist.pi_names}
    for gate in netlist.gates:
        input_arrival = max((arrival[net] for net in gate.inputs),
                            default=0.0)
        delay = library.timing(gate.cell).delay(loads[gate.output])
        arrival[gate.output] = input_arrival + delay
    critical = 0.0
    for _, binding in netlist.po_bindings:
        kind, value = binding
        if kind == "net":
            critical = max(critical, arrival[value])
    return critical, arrival
