"""Truth tables as plain integers.

A function of ``n`` variables is a mask of ``2**n`` bits: bit ``m`` is
the output for the input assignment whose variable ``i`` equals bit
``i`` of ``m`` (variable 0 is the least significant).  Every operation
is expressed as O(k) mask-shift arithmetic over precomputed variable
masks (no per-minterm Python loops), and the hot entry points —
``expand``, ``permute`` and ``p_canonical`` — are memoized with
``lru_cache``, which matters because cut enumeration lifts the same
few thousand distinct (table, positions) pairs tens of thousands of
times per circuit.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import Iterable, List, Sequence, Tuple

from repro.errors import SynthesisError

#: Largest variable count supported by these helpers.
MAX_VARS = 8

#: Precomputed row counts and all-ones masks, indexed by variable count.
_TABLE_SIZES = tuple(1 << n for n in range(MAX_VARS + 1))
_FULL_MASKS = tuple((1 << (1 << n)) - 1 for n in range(MAX_VARS + 1))


def table_size(n_vars: int) -> int:
    """Number of rows (bits) in an ``n_vars``-input truth table."""
    if not 0 <= n_vars <= MAX_VARS:
        raise SynthesisError(f"variable count {n_vars} out of range")
    return _TABLE_SIZES[n_vars]


def full_mask(n_vars: int) -> int:
    """All-ones mask for ``n_vars`` variables."""
    if not 0 <= n_vars <= MAX_VARS:
        raise SynthesisError(f"variable count {n_vars} out of range")
    return _FULL_MASKS[n_vars]


@lru_cache(maxsize=None)
def variable_mask(var: int, n_vars: int) -> int:
    """Truth table of the projection function x_var over n_vars inputs."""
    if not 0 <= var < n_vars:
        raise SynthesisError(f"variable {var} out of range for {n_vars} vars")
    stride = 1 << var
    # One period of the pattern (2*stride bits: stride zeros, stride
    # ones), doubled until it spans the whole table.
    mask = ((1 << stride) - 1) << stride
    width = 2 * stride
    size = table_size(n_vars)
    while width < size:
        mask |= mask << width
        width *= 2
    return mask


def negate(table: int, n_vars: int) -> int:
    """Complement of a truth table."""
    return ~table & full_mask(n_vars)


def evaluate(table: int, assignment: Sequence[int]) -> int:
    """Evaluate a truth table on a 0/1 assignment (index 0 = variable 0)."""
    minterm = 0
    for bit, value in enumerate(assignment):
        if value:
            minterm |= 1 << bit
    return (table >> minterm) & 1


def from_function(func, n_vars: int) -> int:
    """Build a truth table from a Python predicate over bool tuples.

    ``func`` receives ``n_vars`` booleans (variable 0 first) and returns
    a truthy value for minterms where the table is 1.
    """
    table = 0
    for minterm in range(table_size(n_vars)):
        bits = [bool((minterm >> i) & 1) for i in range(n_vars)]
        if func(*bits):
            table |= 1 << minterm
    return table


def cofactors(table: int, var: int, n_vars: int) -> Tuple[int, int]:
    """Negative and positive cofactors with respect to ``var``.

    Both cofactors are returned as full ``n_vars``-variable tables (the
    cofactored variable becomes don't-care and is simply duplicated).
    """
    mask = variable_mask(var, n_vars)
    stride = 1 << var
    hi = table & mask
    lo = table & (mask ^ full_mask(n_vars))
    return lo | (lo << stride), hi | (hi >> stride)


def depends_on(table: int, var: int, n_vars: int) -> bool:
    """True if the function actually depends on ``var``."""
    mask = variable_mask(var, n_vars)
    return (table & mask) >> (1 << var) != table & (mask ^ full_mask(n_vars))


def support(table: int, n_vars: int) -> List[int]:
    """Indices of the variables the function depends on."""
    return [v for v in range(n_vars) if depends_on(table, v, n_vars)]


def shrink_to_support(table: int, n_vars: int) -> Tuple[int, List[int]]:
    """Project a table onto its true support.

    Returns ``(small_table, support_vars)`` where ``small_table`` is
    expressed over ``len(support_vars)`` variables, in ascending order of
    the original indices.
    """
    sup = support(table, n_vars)
    if len(sup) == n_vars:
        return table, sup
    # Drop don't-care variables from the top down; removing variable v
    # keeps the low cofactor half of every 2**(v+1)-bit block.
    small = table
    remaining = n_vars
    for var in range(n_vars - 1, -1, -1):
        if var in sup:
            continue
        size = 1 << remaining
        stride = 1 << var
        lo_block = (1 << stride) - 1
        shrunk = 0
        out_shift = 0
        for pos in range(0, size, 2 * stride):
            shrunk |= ((small >> pos) & lo_block) << out_shift
            out_shift += stride
        small = shrunk
        remaining -= 1
    return small, sup


@lru_cache(maxsize=1 << 16)
def _permute_cached(table: int, permutation: Tuple[int, ...],
                    n_vars: int) -> int:
    if sorted(permutation) != list(range(n_vars)):
        raise SynthesisError(f"bad permutation {permutation!r}")
    inverse = [0] * n_vars
    for new_index, old_index in enumerate(permutation):
        inverse[old_index] = new_index
    return _expand_cached(table, tuple(inverse), n_vars)


def permute(table: int, permutation: Sequence[int], n_vars: int) -> int:
    """Reorder variables: new variable ``i`` is old ``permutation[i]``.

    ``permutation`` must be a permutation of ``range(n_vars)``.
    """
    return _permute_cached(table, tuple(permutation), n_vars)


def all_permutations(table: int, n_vars: int) -> Iterable[Tuple[int, Tuple[int, ...]]]:
    """Yield ``(permuted_table, permutation)`` for every input ordering."""
    for perm in itertools.permutations(range(n_vars)):
        yield permute(table, perm, n_vars), perm


@lru_cache(maxsize=1 << 16)
def p_canonical(table: int, n_vars: int) -> Tuple[int, Tuple[int, ...]]:
    """Permutation-canonical form: the minimum table over all orderings.

    Returns the canonical table and one permutation achieving it.
    """
    best = None
    best_perm: Tuple[int, ...] = tuple(range(n_vars))
    for permuted, perm in all_permutations(table, n_vars):
        if best is None or permuted < best:
            best = permuted
            best_perm = perm
    return best if best is not None else table, best_perm


@lru_cache(maxsize=1 << 18)
def _expand_cached(table: int, positions: Tuple[int, ...],
                   n_vars: int) -> int:
    ones = full_mask(n_vars)
    words = [ones if (table >> minterm) & 1 else 0
             for minterm in range(1 << len(positions))]
    # Mux tree: round i selects on small variable i through the big
    # variable's projection mask, halving the word list each round.
    for big_index in positions:
        mask = variable_mask(big_index, n_vars)
        inverse = mask ^ ones
        words = [(words[pair] & inverse) | (words[pair + 1] & mask)
                 for pair in range(0, len(words), 2)]
    return words[0]


def expand(table: int, positions: Sequence[int], n_vars: int) -> int:
    """Lift a small table onto ``n_vars`` variables.

    ``positions[i]`` gives the target variable index for the small
    table's variable ``i``.  The result is constant in all other
    variables.  Results are memoized on ``(table, positions, n_vars)``;
    cut enumeration hits the cache for the vast majority of lifts.
    """
    return _expand_cached(table, tuple(positions), n_vars)


def flip_variable(table: int, var: int, n_vars: int) -> int:
    """Complement one input variable: T'(x) = T(x with bit ``var`` flipped)."""
    var_table = variable_mask(var, n_vars)
    stride = 1 << var
    hi = table & var_table
    lo = table & ~var_table & full_mask(n_vars)
    return ((lo << stride) | (hi >> stride)) & full_mask(n_vars)


def popcount(table: int) -> int:
    """Number of ones in the table."""
    return table.bit_count()


def is_constant(table: int, n_vars: int) -> bool:
    """True for the constant-0 or constant-1 function."""
    return table == 0 or table == full_mask(n_vars)
