"""Truth tables as plain integers.

A function of ``n`` variables is a mask of ``2**n`` bits: bit ``m`` is
the output for the input assignment whose variable ``i`` equals bit
``i`` of ``m`` (variable 0 is the least significant).  This module keeps
every operation allocation-free on Python ints, which is plenty fast for
the cut sizes (k <= 6) used by the rewriting passes and the mapper.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import Iterable, List, Sequence, Tuple

from repro.errors import SynthesisError

#: Largest variable count supported by these helpers.
MAX_VARS = 8


def table_size(n_vars: int) -> int:
    """Number of rows (bits) in an ``n_vars``-input truth table."""
    if not 0 <= n_vars <= MAX_VARS:
        raise SynthesisError(f"variable count {n_vars} out of range")
    return 1 << n_vars


def full_mask(n_vars: int) -> int:
    """All-ones mask for ``n_vars`` variables."""
    return (1 << table_size(n_vars)) - 1


@lru_cache(maxsize=None)
def variable_mask(var: int, n_vars: int) -> int:
    """Truth table of the projection function x_var over n_vars inputs."""
    if not 0 <= var < n_vars:
        raise SynthesisError(f"variable {var} out of range for {n_vars} vars")
    bits = 0
    for minterm in range(table_size(n_vars)):
        if (minterm >> var) & 1:
            bits |= 1 << minterm
    return bits


def negate(table: int, n_vars: int) -> int:
    """Complement of a truth table."""
    return ~table & full_mask(n_vars)


def evaluate(table: int, assignment: Sequence[int]) -> int:
    """Evaluate a truth table on a 0/1 assignment (index 0 = variable 0)."""
    minterm = 0
    for bit, value in enumerate(assignment):
        if value:
            minterm |= 1 << bit
    return (table >> minterm) & 1


def from_function(func, n_vars: int) -> int:
    """Build a truth table from a Python predicate over bool tuples.

    ``func`` receives ``n_vars`` booleans (variable 0 first) and returns
    a truthy value for minterms where the table is 1.
    """
    table = 0
    for minterm in range(table_size(n_vars)):
        bits = [bool((minterm >> i) & 1) for i in range(n_vars)]
        if func(*bits):
            table |= 1 << minterm
    return table


def cofactors(table: int, var: int, n_vars: int) -> Tuple[int, int]:
    """Negative and positive cofactors with respect to ``var``.

    Both cofactors are returned as full ``n_vars``-variable tables (the
    cofactored variable becomes don't-care and is simply duplicated).
    """
    size = table_size(n_vars)
    stride = 1 << var
    negative = 0
    positive = 0
    for minterm in range(size):
        bit = (table >> minterm) & 1
        if not bit:
            continue
        if (minterm >> var) & 1:
            positive |= 1 << minterm
            positive |= 1 << (minterm ^ stride)
        else:
            negative |= 1 << minterm
            negative |= 1 << (minterm ^ stride)
    return negative, positive


def depends_on(table: int, var: int, n_vars: int) -> bool:
    """True if the function actually depends on ``var``."""
    negative, positive = cofactors(table, var, n_vars)
    return negative != positive


def support(table: int, n_vars: int) -> List[int]:
    """Indices of the variables the function depends on."""
    return [v for v in range(n_vars) if depends_on(table, v, n_vars)]


def shrink_to_support(table: int, n_vars: int) -> Tuple[int, List[int]]:
    """Project a table onto its true support.

    Returns ``(small_table, support_vars)`` where ``small_table`` is
    expressed over ``len(support_vars)`` variables, in ascending order of
    the original indices.
    """
    sup = support(table, n_vars)
    if len(sup) == n_vars:
        return table, sup
    small = 0
    for small_minterm in range(1 << len(sup)):
        big_minterm = 0
        for new_index, old_index in enumerate(sup):
            if (small_minterm >> new_index) & 1:
                big_minterm |= 1 << old_index
        if (table >> big_minterm) & 1:
            small |= 1 << small_minterm
    return small, sup


def permute(table: int, permutation: Sequence[int], n_vars: int) -> int:
    """Reorder variables: new variable ``i`` is old ``permutation[i]``.

    ``permutation`` must be a permutation of ``range(n_vars)``.
    """
    if sorted(permutation) != list(range(n_vars)):
        raise SynthesisError(f"bad permutation {permutation!r}")
    result = 0
    for minterm in range(table_size(n_vars)):
        if not (table >> minterm) & 1:
            continue
        new_minterm = 0
        for new_index in range(n_vars):
            old_index = permutation[new_index]
            if (minterm >> old_index) & 1:
                new_minterm |= 1 << new_index
        result |= 1 << new_minterm
    return result


def all_permutations(table: int, n_vars: int) -> Iterable[Tuple[int, Tuple[int, ...]]]:
    """Yield ``(permuted_table, permutation)`` for every input ordering."""
    for perm in itertools.permutations(range(n_vars)):
        yield permute(table, perm, n_vars), perm


def p_canonical(table: int, n_vars: int) -> Tuple[int, Tuple[int, ...]]:
    """Permutation-canonical form: the minimum table over all orderings.

    Returns the canonical table and one permutation achieving it.
    """
    best = None
    best_perm: Tuple[int, ...] = tuple(range(n_vars))
    for permuted, perm in all_permutations(table, n_vars):
        if best is None or permuted < best:
            best = permuted
            best_perm = perm
    return best if best is not None else table, best_perm


def expand(table: int, positions: Sequence[int], n_vars: int) -> int:
    """Lift a small table onto ``n_vars`` variables.

    ``positions[i]`` gives the target variable index for the small
    table's variable ``i``.  The result is constant in all other
    variables.
    """
    result = 0
    small_vars = len(positions)
    for minterm in range(table_size(n_vars)):
        small_minterm = 0
        for small_index, big_index in enumerate(positions):
            if (minterm >> big_index) & 1:
                small_minterm |= 1 << small_index
        if (table >> small_minterm) & 1:
            result |= 1 << minterm
    del small_vars
    return result


def flip_variable(table: int, var: int, n_vars: int) -> int:
    """Complement one input variable: T'(x) = T(x with bit ``var`` flipped)."""
    var_table = variable_mask(var, n_vars)
    stride = 1 << var
    hi = table & var_table
    lo = table & ~var_table & full_mask(n_vars)
    return ((lo << stride) | (hi >> stride)) & full_mask(n_vars)


def popcount(table: int) -> int:
    """Number of ones in the table."""
    return bin(table).count("1")


def is_constant(table: int, n_vars: int) -> bool:
    """True for the constant-0 or constant-1 function."""
    return table == 0 or table == full_mask(n_vars)
