"""And-Inverter Graph with structural hashing.

Literals encode a node and a phase: ``lit = 2 * node + complemented``.
Node 0 is the constant-FALSE node, so literal 0 is constant 0 and
literal 1 is constant 1.  Nodes are created in topological order and
stay that way (fanins always have smaller ids), which every downstream
pass relies on.

Simulation uses plain Python integers as arbitrary-width bit vectors,
so equivalence checks over hundreds of random patterns cost one pass
over the graph.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SynthesisError


class AigError(SynthesisError):
    """Errors specific to AIG construction and manipulation."""


def lit(node: int, complemented: bool = False) -> int:
    """Build a literal from a node id and a phase."""
    return 2 * node + (1 if complemented else 0)


def lit_not(literal: int) -> int:
    """Complement a literal."""
    return literal ^ 1

def lit_node(literal: int) -> int:
    """Node id of a literal."""
    return literal >> 1


def lit_phase(literal: int) -> int:
    """1 if the literal is complemented."""
    return literal & 1


#: Literal constants.
FALSE = 0
TRUE = 1


class Aig:
    """A mutable, structurally hashed And-Inverter Graph."""

    def __init__(self, name: str = "aig"):
        self.name = name
        # fanins[i] = None for const/PI nodes, else (lit0, lit1) with
        # lit0 <= lit1.
        self._fanins: List[Optional[Tuple[int, int]]] = [None]
        self._is_pi: List[bool] = [False]
        self._pis: List[int] = []
        self._pi_names: List[str] = []
        self._pos: List[int] = []
        self._po_names: List[str] = []
        self._strash: Dict[Tuple[int, int], int] = {}
        #: Monotonic structure stamp, bumped by every mutation; caches
        #: keyed on (graph identity, version) invalidate automatically.
        self._version = 0

    @property
    def version(self) -> int:
        """Mutation counter: changes whenever the graph structure does."""
        return self._version

    # -- construction ------------------------------------------------------

    def add_pi(self, name: Optional[str] = None) -> int:
        """Create a primary input; returns its (positive) literal."""
        node = len(self._fanins)
        self._fanins.append(None)
        self._is_pi.append(True)
        self._pis.append(node)
        self._pi_names.append(name if name is not None else f"pi{len(self._pis) - 1}")
        self._version += 1
        return lit(node)

    def add_po(self, literal: int, name: Optional[str] = None) -> int:
        """Register a primary output literal; returns the PO index."""
        self._check_literal(literal)
        self._pos.append(literal)
        self._po_names.append(name if name is not None else f"po{len(self._pos) - 1}")
        self._version += 1
        return len(self._pos) - 1

    def and_(self, a: int, b: int) -> int:
        """AND of two literals, with constant folding and strashing."""
        # Inlined literal check (this is the hottest AIG entry point).
        limit = len(self._fanins) << 1
        if not (0 <= a < limit and 0 <= b < limit):
            self._check_literal(a)
            self._check_literal(b)
        if a > b:
            a, b = b, a
        if a == FALSE:
            return FALSE
        if a == TRUE:
            return b
        if a == b:
            return a
        if a == lit_not(b):
            return FALSE
        key = (a, b)
        existing = self._strash.get(key)
        if existing is not None:
            return lit(existing)
        node = len(self._fanins)
        self._fanins.append(key)
        self._is_pi.append(False)
        self._strash[key] = node
        self._version += 1
        return lit(node)

    def or_(self, a: int, b: int) -> int:
        """OR of two literals."""
        return lit_not(self.and_(lit_not(a), lit_not(b)))

    def xor_(self, a: int, b: int) -> int:
        """XOR of two literals (two-level AIG structure)."""
        return lit_not(self.and_(lit_not(self.and_(a, lit_not(b))),
                                 lit_not(self.and_(lit_not(a), b))))

    def mux_(self, select: int, if_true: int, if_false: int) -> int:
        """Multiplexer: select ? if_true : if_false."""
        return self.or_(self.and_(select, if_true),
                        self.and_(lit_not(select), if_false))

    def and_many(self, literals: Sequence[int]) -> int:
        """Balanced AND of a literal list."""
        items = list(literals)
        if not items:
            return TRUE
        while len(items) > 1:
            paired = []
            for k in range(0, len(items) - 1, 2):
                paired.append(self.and_(items[k], items[k + 1]))
            if len(items) % 2:
                paired.append(items[-1])
            items = paired
        return items[0]

    def or_many(self, literals: Sequence[int]) -> int:
        """Balanced OR of a literal list."""
        return lit_not(self.and_many([lit_not(x) for x in literals]))

    # -- queries -------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of AND nodes."""
        return len(self._fanins) - 1 - len(self._pis)

    @property
    def n_objects(self) -> int:
        """Total object count (constant + PIs + ANDs)."""
        return len(self._fanins)

    @property
    def n_pis(self) -> int:
        return len(self._pis)

    @property
    def n_pos(self) -> int:
        return len(self._pos)

    @property
    def pis(self) -> List[int]:
        """PI node ids."""
        return list(self._pis)

    @property
    def pos(self) -> List[int]:
        """PO literals."""
        return list(self._pos)

    @property
    def pi_names(self) -> List[str]:
        return list(self._pi_names)

    @property
    def po_names(self) -> List[str]:
        return list(self._po_names)

    def is_pi(self, node: int) -> bool:
        """True if the node is a primary input."""
        return self._is_pi[node]

    def is_and(self, node: int) -> bool:
        """True if the node is an AND gate."""
        return node > 0 and not self._is_pi[node]

    def fanins(self, node: int) -> Tuple[int, int]:
        """Fanin literals of an AND node."""
        fanins = self._fanins[node]
        if fanins is None:
            raise AigError(f"node {node} has no fanins")
        return fanins

    def and_nodes(self) -> Iterable[int]:
        """AND node ids in topological order."""
        for node in range(1, len(self._fanins)):
            if not self._is_pi[node]:
                yield node

    def _check_literal(self, literal: int) -> None:
        node = lit_node(literal)
        if not 0 <= node < len(self._fanins):
            raise AigError(f"literal {literal} references unknown node")

    def reference_counts(self) -> List[int]:
        """Fanout count per node (POs included)."""
        refs = [0] * len(self._fanins)
        for node in self.and_nodes():
            f0, f1 = self.fanins(node)
            refs[lit_node(f0)] += 1
            refs[lit_node(f1)] += 1
        for po in self._pos:
            refs[lit_node(po)] += 1
        return refs

    def levels(self) -> List[int]:
        """Logic level per node (PIs at level 0)."""
        level = [0] * len(self._fanins)
        for node in self.and_nodes():
            f0, f1 = self.fanins(node)
            level[node] = 1 + max(level[lit_node(f0)], level[lit_node(f1)])
        return level

    def depth(self) -> int:
        """Largest PO level."""
        if not self._pos:
            return 0
        level = self.levels()
        return max(level[lit_node(po)] for po in self._pos)

    # -- simulation ----------------------------------------------------------

    def simulate(self, pi_words: Sequence[int], width: int) -> List[int]:
        """Bit-parallel simulation with Python-int bit vectors.

        Args:
            pi_words: one integer of ``width`` pattern bits per PI.
            width: number of patterns.

        Returns:
            One integer per PO with the corresponding output bits.
        """
        if len(pi_words) != self.n_pis:
            raise AigError(
                f"expected {self.n_pis} PI words, got {len(pi_words)}")
        mask = (1 << width) - 1
        values = [0] * len(self._fanins)
        for node, word in zip(self._pis, pi_words):
            values[node] = word & mask
        for node in self.and_nodes():
            f0, f1 = self.fanins(node)
            v0 = values[lit_node(f0)] ^ (mask if lit_phase(f0) else 0)
            v1 = values[lit_node(f1)] ^ (mask if lit_phase(f1) else 0)
            values[node] = v0 & v1
        outputs = []
        for po in self._pos:
            value = values[lit_node(po)] ^ (mask if lit_phase(po) else 0)
            outputs.append(value & mask)
        return outputs

    def evaluate(self, assignment: Sequence[bool]) -> List[bool]:
        """Evaluate all POs on a single input assignment."""
        words = [1 if v else 0 for v in assignment]
        return [bool(w) for w in self.simulate(words, 1)]

    def random_simulation_signature(self, n_patterns: int = 256,
                                    seed: int = 2010) -> List[int]:
        """PO signatures under seeded random patterns (equivalence checks)."""
        rng = random.Random(seed)
        words = [rng.getrandbits(n_patterns) for _ in range(self.n_pis)]
        return self.simulate(words, n_patterns)

    # -- structural cleanup ---------------------------------------------------

    def cached_derivation(self, cache, derive):
        """Memoize ``derive(self)`` in a WeakKeyDictionary keyed on this
        graph, stamped with :attr:`version` so any mutation invalidates.

        The shared mechanism behind the synthesized-subject, compacted-
        copy and cut-enumeration caches — one invalidation invariant
        instead of several hand-rolled stamps.
        """
        stamp = self._version
        entry = cache.get(self)
        if entry is not None and entry[0] == stamp:
            value = entry[1]
            return self if value is None else value
        value = derive(self)
        # Converged derivations return their input; storing the graph
        # as its own cache value would strongly reference the weak key
        # and make the entry immortal, so store a self-sentinel.
        cache[self] = (stamp, None if value is self else value)
        return value

    def same_structure(self, other: "Aig") -> bool:
        """True if two graphs are structurally identical (same node
        table, PIs, POs and names) — i.e. interchangeable for every
        structural algorithm.  Lets optimization passes return their
        input unchanged when they converge, preserving caches keyed on
        the graph object."""
        return (self._fanins == other._fanins
                and self._is_pi == other._is_pi
                and self._pis == other._pis
                and self._pos == other._pos
                and self._pi_names == other._pi_names
                and self._po_names == other._po_names)

    def compact(self) -> "Aig":
        """Copy with dangling nodes removed (DFS from the POs)."""
        new = Aig(self.name)
        mapping: Dict[int, int] = {0: FALSE}
        for node, name in zip(self._pis, self._pi_names):
            mapping[node] = new.add_pi(name)
        reachable = set()
        stack = [lit_node(po) for po in self._pos]
        while stack:
            node = stack.pop()
            if node in reachable or not self.is_and(node):
                continue
            reachable.add(node)
            f0, f1 = self.fanins(node)
            stack.append(lit_node(f0))
            stack.append(lit_node(f1))
        for node in self.and_nodes():
            if node not in reachable:
                continue
            f0, f1 = self.fanins(node)
            a = mapping[lit_node(f0)] ^ lit_phase(f0)
            b = mapping[lit_node(f1)] ^ lit_phase(f1)
            mapping[node] = new.and_(a, b)
        for po, name in zip(self._pos, self._po_names):
            new.add_po(mapping[lit_node(po)] ^ lit_phase(po), name)
        return new
