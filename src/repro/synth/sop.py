"""Sum-of-products machinery: ISOP extraction and algebraic factoring.

:func:`isop` implements the Minato-Morreale irredundant SOP algorithm on
integer truth tables.  :func:`factor` performs quick literal-count
algebraic factoring of a cube list; the result is an expression tree
used both by the refactoring pass (to rebuild small cones) and by the
mapped-netlist simulator (to evaluate cell functions efficiently).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Tuple

from repro.errors import SynthesisError
from repro.synth.truth import full_mask, negate, variable_mask


@dataclass(frozen=True)
class Cube:
    """A product term: ``mask`` selects variables, ``phases`` their polarity."""

    mask: int
    phases: int

    def phase(self, var: int) -> Optional[int]:
        """1 / 0 for a positive / negative literal, None if absent."""
        if not (self.mask >> var) & 1:
            return None
        return (self.phases >> var) & 1

    def literals(self) -> List[Tuple[int, int]]:
        """List of (variable, phase) pairs in ascending variable order."""
        result = []
        var = 0
        mask = self.mask
        while mask:
            if mask & 1:
                result.append((var, (self.phases >> var) & 1))
            mask >>= 1
            var += 1
        return result

    def n_literals(self) -> int:
        """Number of literals in the cube."""
        return bin(self.mask).count("1")

    def with_literal(self, var: int, phase: int) -> "Cube":
        """Copy of the cube with one extra literal."""
        return Cube(self.mask | (1 << var), self.phases | (phase << var))

    def table(self, n_vars: int) -> int:
        """Truth table of the cube over ``n_vars`` variables."""
        result = full_mask(n_vars)
        for var, phase in self.literals():
            var_table = variable_mask(var, n_vars)
            result &= var_table if phase else negate(var_table, n_vars)
        return result


def cubes_to_table(cubes: List[Cube], n_vars: int) -> int:
    """Truth table of the OR of the cubes."""
    table = 0
    for cube in cubes:
        table |= cube.table(n_vars)
    return table


def _restrict(table: int, var: int, value: int, n_vars: int) -> int:
    """Cofactor of the table (kept over the same variable count)."""
    var_table = variable_mask(var, n_vars)
    size = 1 << n_vars
    stride = 1 << var
    if value:
        half = table & var_table
        return half | (half >> stride)
    half = table & negate(var_table, n_vars)
    return half | ((half << stride) & ((1 << size) - 1))


def _isop_rec(lower: int, upper: int, n_vars: int, top: int) -> Tuple[List[Cube], int]:
    """Minato-Morreale recursion: lower <= f <= upper must hold."""
    if lower == 0:
        return [], 0
    if upper == full_mask(n_vars):
        return [Cube(0, 0)], full_mask(n_vars)
    # choose the highest variable that lower or upper depends on
    var = top
    while var >= 0:
        l0 = _restrict(lower, var, 0, n_vars)
        l1 = _restrict(lower, var, 1, n_vars)
        u0 = _restrict(upper, var, 0, n_vars)
        u1 = _restrict(upper, var, 1, n_vars)
        if l0 != l1 or u0 != u1:
            break
        var -= 1
    if var < 0:
        # function is constant over remaining vars; lower != 0 here
        return [Cube(0, 0)], full_mask(n_vars)

    cubes0, cover0 = _isop_rec(l0 & negate(u1, n_vars), u0, n_vars, var - 1)
    cubes1, cover1 = _isop_rec(l1 & negate(u0, n_vars), u1, n_vars, var - 1)
    l_new = (l0 & negate(cover0, n_vars)) | (l1 & negate(cover1, n_vars))
    cubes_star, cover_star = _isop_rec(l_new, u0 & u1, n_vars, var - 1)

    var_table = variable_mask(var, n_vars)
    cover = ((cover0 & negate(var_table, n_vars))
             | (cover1 & var_table) | cover_star)
    cubes = ([c.with_literal(var, 0) for c in cubes0]
             + [c.with_literal(var, 1) for c in cubes1]
             + cubes_star)
    return cubes, cover


@lru_cache(maxsize=1 << 16)
def _isop_cached(table: int, n_vars: int) -> Tuple[Cube, ...]:
    if table < 0 or table > full_mask(n_vars):
        raise SynthesisError("truth table out of range")
    cubes, cover = _isop_rec(table, table, n_vars, n_vars - 1)
    if cover != table:
        raise SynthesisError("ISOP internal error: cover mismatch")
    return tuple(cubes)


def isop(table: int, n_vars: int) -> List[Cube]:
    """Irredundant sum-of-products cover of a completely-specified function.

    The cover is exact: ``cubes_to_table(isop(t, n), n) == t``.  Covers
    are memoized on ``(table, n_vars)``; the returned list is a fresh
    copy, safe for callers to mutate.
    """
    return list(_isop_cached(table, n_vars))


# -- algebraic factoring ------------------------------------------------------

#: Expression tree nodes: ("lit", var, phase) | ("and", a, b) | ("or", a, b)
#: | ("const", 0 or 1)
Expr = tuple


def _cube_expr(cube: Cube) -> Expr:
    """Balanced AND tree for one cube."""
    literals = cube.literals()
    if not literals:
        return ("const", 1)
    exprs: List[Expr] = [("lit", var, phase) for var, phase in literals]
    while len(exprs) > 1:
        paired: List[Expr] = []
        for k in range(0, len(exprs) - 1, 2):
            paired.append(("and", exprs[k], exprs[k + 1]))
        if len(exprs) % 2:
            paired.append(exprs[-1])
        exprs = paired
    return exprs[0]


def _or_balanced(exprs: List[Expr]) -> Expr:
    if not exprs:
        return ("const", 0)
    while len(exprs) > 1:
        paired: List[Expr] = []
        for k in range(0, len(exprs) - 1, 2):
            paired.append(("or", exprs[k], exprs[k + 1]))
        if len(exprs) % 2:
            paired.append(exprs[-1])
        exprs = paired
    return exprs[0]


@lru_cache(maxsize=1 << 16)
def factored_table(table: int, n_vars: int) -> Expr:
    """Factored expression of a truth table: ``factor(isop(table))``.

    Memoized end to end — the rewrite passes re-factor the same few
    thousand cut functions constantly.  The expression tree is built
    from immutable tuples, so sharing it is safe.
    """
    return factor(list(_isop_cached(table, n_vars)))


def factor(cubes: List[Cube]) -> Expr:
    """Algebraically factor a cube cover into an expression tree.

    Uses greedy most-frequent-literal division: F = l * Q + R with the
    literal ``l`` occurring most often; Q and R are factored recursively.
    """
    if not cubes:
        return ("const", 0)
    if len(cubes) == 1:
        return _cube_expr(cubes[0])
    counts: dict = {}
    for cube in cubes:
        for var, phase in cube.literals():
            counts[(var, phase)] = counts.get((var, phase), 0) + 1
    (var, phase), best_count = max(counts.items(), key=lambda kv: kv[1])
    if best_count <= 1:
        return _or_balanced([_cube_expr(c) for c in cubes])
    quotient: List[Cube] = []
    remainder: List[Cube] = []
    for cube in cubes:
        if cube.phase(var) == phase:
            quotient.append(
                Cube(cube.mask & ~(1 << var), cube.phases & ~(1 << var)))
        else:
            remainder.append(cube)
    lit_expr: Expr = ("lit", var, phase)
    q_expr = factor(quotient)
    factored: Expr = ("and", lit_expr, q_expr)
    if remainder:
        return ("or", factored, factor(remainder))
    return factored


def expr_literal_count(expr: Expr) -> int:
    """Number of literal leaves in an expression tree."""
    kind = expr[0]
    if kind == "lit":
        return 1
    if kind == "const":
        return 0
    return expr_literal_count(expr[1]) + expr_literal_count(expr[2])


def evaluate_expr(expr: Expr, assignment: List[bool]) -> bool:
    """Evaluate an expression tree on a 0/1 assignment."""
    kind = expr[0]
    if kind == "const":
        return bool(expr[1])
    if kind == "lit":
        value = bool(assignment[expr[1]])
        return value if expr[2] else not value
    left = evaluate_expr(expr[1], assignment)
    right = evaluate_expr(expr[2], assignment)
    return (left and right) if kind == "and" else (left or right)
