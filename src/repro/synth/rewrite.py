"""Cut-based resynthesis: the ``rewrite`` and ``refactor`` passes.

Both passes rebuild the AIG bottom-up.  For every node they compare the
plain structural copy against re-implementations of the node's cuts
(ISOP of the cut function, algebraically factored, built into the new
graph through the structural hash), and keep whichever adds the fewest
new nodes.  Rejected candidates become dangling nodes that the final
``compact`` sweep removes — unless a later node reuses them through the
hash, in which case the sharing was free.

``rewrite`` uses small cuts (k = 4) and is cheap; ``refactor`` uses
larger cuts (k = 6) and catches bigger restructurings.  This mirrors the
role the two passes play inside ABC's ``resyn2rs`` script.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.synth.aig import Aig, lit_node, lit_phase, lit_not
from repro.synth.cuts import enumerate_cuts
from repro.synth.sop import Expr, factored_table
from repro.synth.truth import full_mask


def build_expr(aig: Aig, expr: Expr, leaf_literals: Sequence[int]) -> int:
    """Instantiate a factored expression over the given leaf literals."""
    kind = expr[0]
    if kind == "const":
        return 1 if expr[1] else 0
    if kind == "lit":
        literal = leaf_literals[expr[1]]
        return literal if expr[2] else lit_not(literal)
    left = build_expr(aig, expr[1], leaf_literals)
    right = build_expr(aig, expr[2], leaf_literals)
    if kind == "and":
        return aig.and_(left, right)
    return aig.or_(left, right)


def _resynthesize(aig: Aig, cut_size: int, cut_limit: int,
                  max_candidates: int) -> Aig:
    """Shared engine for rewrite/refactor (see module docstring)."""
    cuts = enumerate_cuts(aig, cut_size, cut_limit)
    new = Aig(aig.name)
    mapping: Dict[int, int] = {0: 0}
    for node, name in zip(aig.pis, aig.pi_names):
        mapping[node] = new.add_pi(name)

    for node in aig.and_nodes():
        f0, f1 = aig.fanins(node)
        a = mapping[lit_node(f0)] ^ lit_phase(f0)
        b = mapping[lit_node(f1)] ^ lit_phase(f1)
        before = new.n_objects
        best_literal = new.and_(a, b)
        best_cost = new.n_objects - before

        if best_cost > 0:
            tried = 0
            for cut in cuts[node]:
                if cut.is_trivial_for(node) or cut.size < 2:
                    continue
                if tried >= max_candidates:
                    break
                tried += 1
                table = cut.table
                n_leaves = cut.size
                if table == 0 or table == full_mask(n_leaves):
                    best_literal = 1 if table else 0
                    best_cost = 0
                    break
                leaf_literals = [mapping[leaf] for leaf in cut.leaves]
                # Factor whichever phase has the smaller cover.
                for phase in (0, 1):
                    target = table if phase == 0 else (
                        table ^ full_mask(n_leaves))
                    expr = factored_table(target, n_leaves)
                    before = new.n_objects
                    literal = build_expr(new, expr, leaf_literals)
                    if phase:
                        literal = lit_not(literal)
                    cost = new.n_objects - before
                    if cost < best_cost:
                        best_literal = literal
                        best_cost = cost
                    if best_cost == 0:
                        break
                if best_cost == 0:
                    break
        mapping[node] = best_literal

    for po, name in zip(aig.pos, aig.po_names):
        new.add_po(mapping[lit_node(po)] ^ lit_phase(po), name)
    result = new.compact()
    # Converged pass: hand back the input object so cut enumerations
    # cached on it stay valid for the next pass.
    if result.same_structure(aig):
        return aig
    return result


def rewrite(aig: Aig) -> Aig:
    """Small-cut rewriting pass (k = 4)."""
    return _resynthesize(aig, cut_size=4, cut_limit=6, max_candidates=3)


def refactor(aig: Aig) -> Aig:
    """Large-cut refactoring pass (k = 6)."""
    return _resynthesize(aig, cut_size=6, cut_limit=4, max_candidates=2)
