"""Synthesis scripts mirroring the ABC flows used by the paper.

The paper synthesizes every benchmark with ``resyn2rs`` before mapping.
Our pipeline is the same alternation of balancing, rewriting and
refactoring; each pass preserves functionality (checked by the tests
with random-vector signatures) and the sequence is idempotent enough
that a second application changes little.
"""

from __future__ import annotations

from typing import Callable, List

from repro.errors import SynthesisError
from repro.synth.aig import Aig
from repro.synth.balance import balance
from repro.synth.rewrite import refactor, rewrite

Pass = Callable[[Aig], Aig]

#: The pass sequence of ABC's resyn2rs (zero-cost variants folded into
#: their plain counterparts, which our engine subsumes).
RESYN2RS_SEQUENCE: List[Pass] = [
    balance, rewrite, refactor, balance, rewrite,
    rewrite, balance, refactor, rewrite, balance,
]


def _run(aig: Aig, passes: List[Pass], verify: bool) -> Aig:
    signature = aig.random_simulation_signature() if verify else None
    result = aig
    for synthesis_pass in passes:
        result = synthesis_pass(result)
        if verify and result.random_simulation_signature() != signature:
            raise SynthesisError(
                f"pass {synthesis_pass.__name__} changed circuit function")
    return result


def resyn2rs(aig: Aig, verify: bool = False) -> Aig:
    """Run the full resyn2rs-equivalent optimization script.

    Args:
        aig: subject graph (not modified).
        verify: when True, every pass is checked against a 256-pattern
            random simulation signature of the input (cheap insurance,
            used by the tests and available to cautious callers).
    """
    return _run(aig, RESYN2RS_SEQUENCE, verify)


def compress(aig: Aig, verify: bool = False) -> Aig:
    """A lighter script (balance, rewrite, balance) for quick cleanups."""
    return _run(aig, [balance, rewrite, balance], verify)


def balance_only(aig: Aig) -> Aig:
    """Just the balancing pass (delay preparation before mapping)."""
    return balance(aig)
