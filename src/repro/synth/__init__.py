"""Logic synthesis and technology mapping (the ABC substitute).

The paper synthesizes benchmarks with ABC's ``resyn2rs`` script and maps
them onto genlib libraries.  This package provides the equivalent
pipeline:

* :mod:`repro.synth.aig` — And-Inverter Graph with structural hashing;
* :mod:`repro.synth.balance`, :mod:`repro.synth.rewrite`,
  :mod:`repro.synth.refactor`, :mod:`repro.synth.scripts` — the
  optimization passes and the ``resyn2rs`` pipeline;
* :mod:`repro.synth.cuts` — k-feasible priority cuts with truth tables;
* :mod:`repro.synth.mapper` — phase-aware structural technology mapping
  with delay-oriented covering and area recovery;
* :mod:`repro.synth.netlist` — the mapped netlist plus static timing.

Submodules are exposed lazily (PEP 562) because :mod:`repro.gates`
imports the truth-table helpers from here while the mapper imports the
gate library — eager re-exports would create an import cycle.
"""

from repro.synth.aig import Aig, AigError, lit, lit_not, lit_node, lit_phase

__all__ = [
    "Aig",
    "AigError",
    "lit",
    "lit_not",
    "lit_node",
    "lit_phase",
    "resyn2rs",
    "balance_only",
    "compress",
    "map_aig",
    "MappingOptions",
    "MappedNetlist",
    "MappedGate",
    "static_timing",
]

_LAZY = {
    "resyn2rs": "repro.synth.scripts",
    "balance_only": "repro.synth.scripts",
    "compress": "repro.synth.scripts",
    "map_aig": "repro.synth.mapper",
    "MappingOptions": "repro.synth.mapper",
    "MappedNetlist": "repro.synth.netlist",
    "MappedGate": "repro.synth.netlist",
    "static_timing": "repro.synth.netlist",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.synth' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value
