"""Structural technology mapping onto a characterized cell library.

The mapper covers the subject AIG with library cells using k-feasible
cuts.  Matching is phase-complete: every cut function is looked up in a
precomputed table containing each cell under all input permutations
*and* all input polarities, plus output complementation, so a match
always exists (any 2-feasible cut reduces to the NAND/NOR/INV family).
Negated cut leaves and complemented outputs materialize as explicit INV
cells during cover extraction.

Covering runs a delay-oriented dynamic program first, then (optionally)
area-recovery rounds that re-select matches by area flow subject to the
required times implied by the delay-optimal cover — the classic
"map -> required times -> area flow" loop of modern mappers, simplified.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import MappingError
from repro.gates.library import Library
from repro.synth.aig import Aig, lit_node, lit_phase
from repro.synth.cuts import Cut, enumerate_cuts
from repro.synth.netlist import MappedGate, MappedNetlist
from repro.synth.truth import (
    all_permutations,
    flip_variable,
    full_mask,
)


@dataclass(frozen=True)
class MappingOptions:
    """Knobs for the mapper."""

    cut_size: int = 5
    cut_limit: int = 8
    area_rounds: int = 2
    #: Load assumed while ranking matches (F); final timing uses real loads.
    estimated_load: Optional[float] = None


@dataclass(frozen=True, slots=True)
class MatchEntry:
    """One library realization of a cut function."""

    cell: str
    perm: Tuple[int, ...]   # cut leaf i feeds cell pin perm[i]
    phases: int             # bit i set: leaf i is consumed complemented
    area: float
    n_negated: int


@dataclass(slots=True)
class NodeMatch:
    """Chosen implementation of one (node, phase) signal."""

    kind: str                      # 'pi' | 'cell' | 'inv'
    arrival: float
    area_flow: float
    cut: Optional[Cut] = None
    entry: Optional[MatchEntry] = None


#: Match tables per library instance (built once, reused by every
#: mapping run against that library).
_MATCH_TABLE_CACHE: "weakref.WeakKeyDictionary[Library, Dict[int, Dict[int, Dict[int, MatchEntry]]]]"
_MATCH_TABLE_CACHE = weakref.WeakKeyDictionary()


def build_match_table(library: Library, max_arity: int
                      ) -> Dict[int, Dict[int, MatchEntry]]:
    """Precompute ``{arity: {truth_table: best MatchEntry}}``.

    Each cell is entered under every input permutation and every input
    polarity assignment (enumerated Gray-code style with cheap variable
    flips).  Ties keep the entry with smaller (area, negated inputs).
    The table is cached per library instance, so repeated mappings
    (e.g. 12 circuits onto the same library) pay for it once.
    """
    per_library = _MATCH_TABLE_CACHE.setdefault(library, {})
    cached = per_library.get(max_arity)
    if cached is not None:
        return cached
    inverter_area = library.area(library.inverter().name)
    table: Dict[int, Dict[int, MatchEntry]] = {}
    for cell in library:
        arity = cell.n_inputs
        if arity > max_arity:
            continue
        bucket = table.setdefault(arity, {})
        area = library.area(cell.name)
        for permuted, perm in all_permutations(cell.truth_table, arity):
            current = permuted
            phases = 0
            # Gray-code walk over all polarity masks.
            for step in range(1 << arity):
                entry_cost = (area + inverter_area * bin(phases).count("1"),
                              bin(phases).count("1"))
                incumbent = bucket.get(current)
                if incumbent is None or entry_cost < (
                        incumbent.area
                        + inverter_area * incumbent.n_negated,
                        incumbent.n_negated):
                    bucket[current] = MatchEntry(
                        cell.name, perm, phases, area, entry_cost[1])
                if step == (1 << arity) - 1:
                    break
                flip = ((step + 1) & -(step + 1)).bit_length() - 1
                current = flip_variable(current, flip, arity)
                phases ^= 1 << flip
    per_library[max_arity] = table
    return table


class _Mapper:
    """State of one mapping run."""

    def __init__(self, aig: Aig, library: Library, options: MappingOptions):
        self.aig = aig
        self.library = library
        self.options = options
        self.cuts = enumerate_cuts(aig, options.cut_size, options.cut_limit)
        self.match_table = build_match_table(library, options.cut_size)
        # Load estimate: per-node, scaled by the node's AIG fanout so
        # that high-drive-resistance cells are not ranked as fast on
        # nets that will actually carry several pins.  The final STA
        # uses exact per-net loads; this only steers match ranking.
        self._avg_pin_cap = (options.estimated_load
                             if options.estimated_load is not None
                             else library.library_average_pin_capacitance())
        inverter = library.inverter()
        self.inv_name = inverter.name
        self.inv_area = library.area(self.inv_name)
        self.refs = aig.reference_counts()
        self.best: Dict[Tuple[int, int], NodeMatch] = {}
        # Hot-loop precomputation: per-node load estimates and inverter
        # delays, plus (intrinsic, slope) per cell so candidate ranking
        # avoids method dispatch entirely.
        self._loads = [min(max(1, refs), 4) * self._avg_pin_cap
                       for refs in self.refs]
        self._cell_timing = {cell.name: library.timing(cell.name)
                             for cell in library}
        inv_timing = self._cell_timing[self.inv_name]
        self._inv_delays = [inv_timing.intrinsic + inv_timing.slope * load
                            for load in self._loads]
        # Cut-to-cell matches are round-invariant: resolve each cut's
        # library entry (and its delay at this node's load) once per
        # phase, so the DP rounds only walk precomputed lists.
        self._matches: Dict[Tuple[int, int],
                            List[Tuple[Cut, MatchEntry, float]]] = {}
        for node in aig.and_nodes():
            load = self._loads[node]
            for phase in (0, 1):
                matched: List[Tuple[Cut, MatchEntry, float]] = []
                # The trivial cut {node} is always first; skip it.
                for cut in self.cuts[node][1:]:
                    arity = len(cut.leaves)
                    table = (cut.table if phase == 0
                             else cut.table ^ full_mask(arity))
                    bucket = self.match_table.get(arity)
                    if not bucket:
                        continue
                    entry = bucket.get(table)
                    if entry is None:
                        continue
                    cell_timing = self._cell_timing[entry.cell]
                    delay = cell_timing.intrinsic + cell_timing.slope * load
                    matched.append((cut, entry, delay))
                self._matches[(node, phase)] = matched

    def _load_estimate(self, node: int) -> float:
        """Estimated output load of a node: its fanout count in pins."""
        return self._loads[node]

    def _inv_delay(self, node: int) -> float:
        """Estimated delay of an inverter driving this node's load."""
        return self._inv_delays[node]

    # -- candidate generation ------------------------------------------------

    def _select(self, node: int, phase: int, required: Optional[float],
                area_mode: bool) -> Optional[NodeMatch]:
        """Pick the best matched-cut candidate for (node, phase)."""
        signal_best = self.best
        refs = self.refs
        best = None
        best_key = None
        for cut, entry, delay in self._matches[(node, phase)]:
            arrival = 0.0
            area_flow = entry.area
            feasible = True
            phases = entry.phases
            for index, leaf in enumerate(cut.leaves):
                leaf_match = signal_best.get((leaf, (phases >> index) & 1))
                if leaf_match is None:
                    feasible = False
                    break
                if leaf_match.arrival > arrival:
                    arrival = leaf_match.arrival
                share = refs[leaf]
                area_flow += leaf_match.area_flow / (share if share > 1 else 1)
            if not feasible:
                continue
            arrival += delay
            if area_mode:
                if required is not None and arrival > required + 1e-15:
                    continue
                key = (area_flow, arrival)
            else:
                key = (arrival, area_flow)
            if best_key is None or key < best_key:
                best_key = key
                best = (arrival, area_flow, cut, entry)
        if best is None:
            return None
        arrival, area_flow, cut, entry = best
        return NodeMatch("cell", arrival, area_flow, cut, entry)

    # -- mapping rounds --------------------------------------------------------

    def run_round(self, required: Optional[Dict[Tuple[int, int], float]],
                  area_mode: bool) -> None:
        """One full DP pass over the graph."""
        for pi in self.aig.pis:
            self.best[(pi, 0)] = NodeMatch("pi", 0.0, 0.0)
            self.best[(pi, 1)] = NodeMatch(
                "inv", self._inv_delay(pi), self.inv_area)
        for node in self.aig.and_nodes():
            for phase in (0, 1):
                node_required = None
                if required is not None:
                    node_required = required.get((node, phase))
                match = self._select(node, phase, node_required, area_mode)
                if match is not None:
                    self.best[(node, phase)] = match
            # inverter relaxation, both directions
            for phase in (0, 1):
                other = self.best.get((node, 1 - phase))
                if other is None:
                    continue
                candidate = NodeMatch(
                    "inv", other.arrival + self._inv_delay(node),
                    other.area_flow + self.inv_area)
                incumbent = self.best.get((node, phase))
                if incumbent is None:
                    self.best[(node, phase)] = candidate
                    continue
                if area_mode:
                    better = ((candidate.area_flow, candidate.arrival)
                              < (incumbent.area_flow, incumbent.arrival))
                else:
                    better = ((candidate.arrival, candidate.area_flow)
                              < (incumbent.arrival, incumbent.area_flow))
                if better:
                    self.best[(node, phase)] = candidate
        for node in self.aig.and_nodes():
            for phase in (0, 1):
                if (node, phase) not in self.best:
                    raise MappingError(
                        f"no implementation found for node {node} "
                        f"phase {phase}")

    def required_times(self) -> Dict[Tuple[int, int], float]:
        """Required times over the current cover (reverse walk from POs)."""
        target = 0.0
        roots: List[Tuple[int, int]] = []
        for po in self.aig.pos:
            node, phase = lit_node(po), lit_phase(po)
            if node == 0 or self.aig.is_pi(node):
                continue
            roots.append((node, phase))
            target = max(target, self.best[(node, phase)].arrival)
        required: Dict[Tuple[int, int], float] = {}
        stack = []
        for root in roots:
            required[root] = min(required.get(root, target), target)
            stack.append(root)
        visited = set()
        infinity = float("inf")
        while stack:
            key = stack.pop()
            if key in visited:
                continue
            visited.add(key)
            node, phase = key
            match = self.best[key]
            slack_time = required[key]
            if match.kind == "inv":
                child = (node, 1 - phase)
                child_required = slack_time - self._inv_delays[node]
                if child_required < required.get(child, infinity):
                    required[child] = child_required
                if self.aig.is_and(node):
                    stack.append(child)
            elif match.kind == "cell":
                cell_timing = self._cell_timing[match.entry.cell]
                delay = (cell_timing.intrinsic
                         + cell_timing.slope * self._loads[node])
                for index, leaf in enumerate(match.cut.leaves):
                    leaf_phase = (match.entry.phases >> index) & 1
                    child = (leaf, leaf_phase)
                    child_required = slack_time - delay
                    if child_required < required.get(child, infinity):
                        required[child] = child_required
                        if child in visited:
                            visited.discard(child)
                    if self.aig.is_and(leaf) or leaf_phase == 1:
                        stack.append(child)
        return required

    # -- cover extraction -------------------------------------------------------

    def extract(self) -> MappedNetlist:
        """Materialize the chosen cover as a mapped netlist."""
        aig = self.aig
        pi_name = dict(zip(aig.pis, aig.pi_names))
        emitted: Dict[Tuple[int, int], str] = {}
        gates: List[MappedGate] = []
        counter = [0]

        def net_of(node: int, phase: int) -> str:
            if aig.is_pi(node):
                return pi_name[node] if phase == 0 else f"{pi_name[node]}_b"
            return f"n{node}" if phase == 0 else f"n{node}_b"

        def emit(node: int, phase: int) -> str:
            # Iterative DFS to avoid recursion limits on deep circuits.
            stack = [(node, phase, False)]
            while stack:
                cur_node, cur_phase, expanded = stack.pop()
                key = (cur_node, cur_phase)
                if key in emitted:
                    continue
                if aig.is_pi(cur_node) and cur_phase == 0:
                    emitted[key] = net_of(cur_node, 0)
                    continue
                match = (NodeMatch("inv", 0.0, 0.0)
                         if aig.is_pi(cur_node) else self.best[key])
                if not expanded:
                    stack.append((cur_node, cur_phase, True))
                    if match.kind == "inv":
                        stack.append((cur_node, 1 - cur_phase, False))
                    elif match.kind == "cell":
                        for index, leaf in enumerate(match.cut.leaves):
                            leaf_phase = (match.entry.phases >> index) & 1
                            stack.append((leaf, leaf_phase, False))
                    continue
                output = net_of(cur_node, cur_phase)
                if match.kind == "inv":
                    source = emitted[(cur_node, 1 - cur_phase)]
                    counter[0] += 1
                    gates.append(MappedGate(
                        f"g{counter[0]}", self.inv_name, (source,), output))
                elif match.kind == "cell":
                    cell = self.library.cell(match.entry.cell)
                    pins: List[Optional[str]] = [None] * cell.n_inputs
                    for index, leaf in enumerate(match.cut.leaves):
                        leaf_phase = (match.entry.phases >> index) & 1
                        pins[match.entry.perm[index]] = emitted[
                            (leaf, leaf_phase)]
                    if any(p is None for p in pins):
                        raise MappingError(
                            f"incomplete pin binding for cell {cell.name}")
                    counter[0] += 1
                    gates.append(MappedGate(
                        f"g{counter[0]}", cell.name, tuple(pins), output))
                else:
                    raise MappingError(f"unexpected match kind {match.kind}")
                emitted[key] = output
            return emitted[(node, phase)]

        po_bindings: List[Tuple[str, Tuple[str, object]]] = []
        for po, name in zip(aig.pos, aig.po_names):
            node, phase = lit_node(po), lit_phase(po)
            if node == 0:
                po_bindings.append((name, ("const", 1 if phase else 0)))
                continue
            net = emit(node, phase)
            po_bindings.append((name, ("net", net)))
        # Record the delay-DP provenance per emitted net: the arrival of
        # each signal under the final cover, evaluated with the DP's own
        # delay machinery (per-node estimated loads, precomputed cell
        # timings) and the DP's exact float operations.  The stored
        # NodeMatch.arrival values cannot be used directly: an area
        # round that finds no candidate within the required time keeps
        # the previous round's match with a stale arrival, so they are
        # not a consistent fixed point of the extracted cover.  This
        # pass re-evaluates the chosen matches in emission (topological)
        # order; repro.timing replays it independently
        # (arrival_times(netlist, loads=netlist.mapper_loads)) and the
        # property tests assert bit-for-bit agreement.
        net_key = {net: key for key, net in emitted.items()}
        # All PIs anchor at 0.0 — including unused ones, which never
        # get emitted but are still nets of the netlist.
        mapper_arrivals: Dict[str, float] = {
            name: 0.0 for name in aig.pi_names}
        mapper_loads: Dict[str, float] = {}
        for gate in gates:
            node, phase = net_key[gate.output]
            match = None if aig.is_pi(node) else self.best[(node, phase)]
            if match is None or match.kind == "inv":
                arrival = (mapper_arrivals[gate.inputs[0]]
                           + self._inv_delays[node])
            else:
                cell_timing = self._cell_timing[match.entry.cell]
                delay = (cell_timing.intrinsic
                         + cell_timing.slope * self._loads[node])
                arrival = 0.0
                for net in gate.inputs:
                    if mapper_arrivals[net] > arrival:
                        arrival = mapper_arrivals[net]
                arrival += delay
            mapper_arrivals[gate.output] = arrival
            mapper_loads[gate.output] = self._loads[node]
        return MappedNetlist(
            name=aig.name,
            library=self.library,
            pi_names=list(aig.pi_names),
            po_bindings=po_bindings,
            gates=gates,
            mapper_arrivals=mapper_arrivals,
            mapper_loads=mapper_loads,
        )


#: Compacted-graph cache: mapping one subject AIG onto several
#: libraries reuses a single compacted copy (and with it the cut
#: enumeration cached on that copy).
_COMPACT_CACHE: "weakref.WeakKeyDictionary[Aig, Tuple[int, Aig]]"
_COMPACT_CACHE = weakref.WeakKeyDictionary()


def _compact_for_mapping(aig: Aig) -> Aig:
    return aig.cached_derivation(_COMPACT_CACHE, Aig.compact)


def map_aig(aig: Aig, library: Library,
            options: Optional[MappingOptions] = None) -> MappedNetlist:
    """Map an AIG onto a library; returns the mapped netlist.

    Runs one delay-oriented round followed by ``options.area_rounds``
    area-recovery rounds constrained by the required times of the
    current cover.
    """
    if options is None:
        options = MappingOptions()
    aig = _compact_for_mapping(aig)
    mapper = _Mapper(aig, library, options)
    mapper.run_round(required=None, area_mode=False)
    for _ in range(options.area_rounds):
        required = mapper.required_times()
        mapper.run_round(required=required, area_mode=True)
    return mapper.extract()
