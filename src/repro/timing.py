"""Static timing analysis as a first-class, cacheable subsystem.

The power model has always needed the critical delay (Table 1's delay
column, the EDP definition); :func:`repro.synth.netlist.static_timing`
computes it inline.  The design-space optimizer additionally needs
*feasibility*: a (vdd, frequency) operating point is meaningless when
the clock period is shorter than the critical path of the circuit
mapped at that supply.  This module owns that timing model:

* :func:`arrival_times` — topological arrival propagation over a
  mapped netlist with **real fanout loads** (every gate's delay uses
  the library's linear model at the actual capacitance of the net it
  drives).  With an explicit ``loads`` mapping it replays any load
  model instead — in particular the mapper's per-node load estimates
  (:attr:`MappedNetlist.mapper_loads`), which reproduces the mapper's
  internal per-node ``arrival`` values bit for bit (locked by property
  tests).
* :func:`analyze_timing` — the full :class:`TimingReport`: critical
  delay, the maximum feasible clock frequency, per-PO arrivals and the
  critical path traced gate by gate.
* :func:`timing_report` — the cached entry point.  Reports are
  content-addressed by everything the numbers depend on (netlist
  structure *plus* the library's electrical characterization, which is
  vdd-dependent) and persisted through :mod:`repro.cache` exactly like
  activity statistics, so a server answering feasibility questions for
  a known (circuit, library, vdd) never re-propagates.

Timing is vdd-aware through the library: a library characterized at a
different supply has different cell timings, so the same circuit
yields a different report (and a different cache key) per vdd.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.cache import default_cache, stable_hash
from repro.errors import SimulationError
from repro.sim.activity import netlist_activity_key
from repro.synth.netlist import MappedNetlist

#: Disk-cache namespace for persisted timing reports.
TIMING_NAMESPACE = "timing"

#: Version of the hashed key payload *and* the stored layout.  Bump on
#: any change to either; old disk entries are then never read again.
TIMING_VERSION = 1

#: Default capacity of the per-process timing-report LRU.  Reports are
#: a few KB (arrival floats per net), so this is megabytes worst case.
DEFAULT_MAX_CACHED_REPORTS = 64

#: Attribute memoizing a netlist's timing report on the instance.
_REPORT_ATTR = "_repro_timing_report"


@dataclass(frozen=True)
class PathSegment:
    """One gate on the critical path (in input-to-output order)."""

    gate: str      # instance name
    cell: str      # library cell
    output: str    # driven net
    arrival_s: float

    def to_payload(self) -> List[Any]:
        return [self.gate, self.cell, self.output, self.arrival_s]

    @classmethod
    def from_payload(cls, data: List[Any]) -> "PathSegment":
        gate, cell, output, arrival_s = data
        return cls(gate, cell, output, float(arrival_s))


@dataclass(frozen=True)
class TimingReport:
    """The static-timing answer for one mapped netlist.

    ``critical_delay_s`` is the worst PO arrival — identical, bit for
    bit, to the delay :func:`repro.synth.netlist.static_timing` reports
    (and therefore to the Table 1 delay column).  ``fmax_hz`` is its
    reciprocal: the fastest clock at which every output settles within
    one period.  A gateless (constant-output) circuit has zero delay
    and an unbounded ``fmax_hz`` (``math.inf``).
    """

    circuit: str
    library: str
    vdd: float
    critical_delay_s: float
    #: Arrival time per net (PIs at 0.0), topological order preserved.
    arrivals: Dict[str, float]
    #: Arrival per primary output (constant-bound POs at 0.0).
    po_arrivals: Dict[str, float]
    #: The PO that sets the critical delay (None when gateless).
    critical_po: Optional[str]
    #: The critical path, PI side first.
    critical_path: Tuple[PathSegment, ...]
    gate_count: int

    @property
    def fmax_hz(self) -> float:
        """Maximum feasible clock frequency (inf for zero delay)."""
        if self.critical_delay_s <= 0.0:
            return math.inf
        return 1.0 / self.critical_delay_s

    def slack_s(self, frequency: float) -> float:
        """Clock period minus critical delay (negative = infeasible)."""
        if frequency <= 0:
            raise SimulationError(
                f"frequency must be positive, got {frequency!r}")
        return 1.0 / frequency - self.critical_delay_s

    def feasible(self, frequency: float) -> bool:
        """True iff one clock period covers the critical path."""
        return self.slack_s(frequency) >= 0.0

    # -- persistence -------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """Plain-JSON form for the disk cache (floats ride by value)."""
        return {
            "circuit": self.circuit,
            "library": self.library,
            "vdd": self.vdd,
            "critical_delay_s": self.critical_delay_s,
            "arrivals": dict(self.arrivals),
            "po_arrivals": dict(self.po_arrivals),
            "critical_po": self.critical_po,
            "critical_path": [segment.to_payload()
                              for segment in self.critical_path],
            "gate_count": self.gate_count,
        }

    @classmethod
    def from_payload(cls, data: Dict[str, Any]) -> "TimingReport":
        return cls(
            circuit=data["circuit"],
            library=data["library"],
            vdd=float(data["vdd"]),
            critical_delay_s=float(data["critical_delay_s"]),
            arrivals={str(net): float(value)
                      for net, value in data["arrivals"].items()},
            po_arrivals={str(name): float(value)
                         for name, value in data["po_arrivals"].items()},
            critical_po=data["critical_po"],
            critical_path=tuple(PathSegment.from_payload(entry)
                                for entry in data["critical_path"]),
            gate_count=int(data["gate_count"]),
        )


def arrival_times(netlist: MappedNetlist,
                  loads: Optional[Mapping[str, float]] = None,
                  po_extra_load: Optional[float] = None
                  ) -> Tuple[float, Dict[str, float]]:
    """Topological arrival propagation; ``(critical, arrival_by_net)``.

    ``loads=None`` uses the real per-net fanout capacitances
    (:meth:`MappedNetlist.net_loads`, plus the PO external load) —
    this mode is bit-identical to
    :func:`repro.synth.netlist.static_timing`.  An explicit ``loads``
    mapping (net -> farads) replays an alternative load model; passing
    a netlist's :attr:`~MappedNetlist.mapper_loads` reproduces the
    mapper's internal delay-DP arrivals exactly.
    """
    library = netlist.library
    if loads is None:
        loads = netlist.net_loads(po_extra_load)
    arrival: Dict[str, float] = {net: 0.0 for net in netlist.pi_names}
    for gate in netlist.gates:
        input_arrival = max((arrival[net] for net in gate.inputs),
                            default=0.0)
        delay = library.timing(gate.cell).delay(loads[gate.output])
        arrival[gate.output] = input_arrival + delay
    critical = 0.0
    for _, binding in netlist.po_bindings:
        kind, value = binding
        if kind == "net":
            critical = max(critical, arrival[value])
    return critical, arrival


def _trace_critical_path(netlist: MappedNetlist,
                         arrival: Dict[str, float],
                         critical_net: Optional[str]
                         ) -> Tuple[PathSegment, ...]:
    """Walk back from the critical net along worst-arrival inputs."""
    if critical_net is None:
        return ()
    drivers = {gate.output: gate for gate in netlist.gates}
    path: List[PathSegment] = []
    net = critical_net
    while net in drivers:
        gate = drivers[net]
        path.append(PathSegment(gate=gate.name, cell=gate.cell,
                                output=net, arrival_s=arrival[net]))
        if not gate.inputs:
            break
        # The worst input keeps the walk on the critical path; ties
        # resolve to the first pin, so the trace is deterministic.
        net = max(gate.inputs, key=lambda name: (arrival[name],))
        if arrival[net] == 0.0 and net not in drivers:
            break
    path.reverse()
    return tuple(path)


def analyze_timing(netlist: MappedNetlist,
                   po_extra_load: Optional[float] = None) -> TimingReport:
    """Compute a :class:`TimingReport` (uncached; see
    :func:`timing_report` for the cached entry point)."""
    critical, arrival = arrival_times(netlist, po_extra_load=po_extra_load)
    po_arrivals: Dict[str, float] = {}
    critical_po: Optional[str] = None
    critical_net: Optional[str] = None
    for name, (kind, value) in netlist.po_bindings:
        if kind == "net":
            po_arrivals[name] = arrival[value]
            if critical_po is None or arrival[value] > po_arrivals[critical_po]:
                critical_po = name
                critical_net = value
        else:
            po_arrivals[name] = 0.0
    return TimingReport(
        circuit=netlist.name,
        library=netlist.library.name,
        vdd=netlist.library.tech.vdd,
        critical_delay_s=critical,
        arrivals=arrival,
        po_arrivals=po_arrivals,
        critical_po=critical_po,
        critical_path=_trace_critical_path(netlist, arrival, critical_net),
        gate_count=netlist.gate_count,
    )


# -- the content-addressed cache ----------------------------------------------


def netlist_timing_key(netlist: MappedNetlist) -> str:
    """Content hash of everything the timing report depends on.

    The activity key covers the logic structure (PI order, gate list,
    truth tables); timing additionally depends on the PO bindings (they
    pick the critical net and add external load) and the library's
    electrical characterization — per-cell intrinsic/slope timing, pin
    and output capacitances — which is how vdd awareness enters: the
    same circuit mapped on the same library at a different supply has
    different electricals and therefore a different key.
    """
    library = netlist.library
    cell_names = sorted({gate.cell for gate in netlist.gates})
    inverter = library.inverter()
    electricals = {}
    for name in cell_names:
        timing = library.timing(name)
        electricals[name] = [
            timing.intrinsic,
            timing.slope,
            [library.pin_capacitance(name, pin)
             for pin in library.cell(name).inputs],
            library.output_capacitance(name),
        ]
    return stable_hash({
        "version": TIMING_VERSION,
        "netlist": netlist_activity_key(netlist),
        "pos": [[name, kind, value]
                for name, (kind, value) in netlist.po_bindings],
        "cells": electricals,
        "po_extra_load": library.pin_capacitance(inverter.name,
                                                 inverter.inputs[0]),
    })


class _TimingCache:
    """The process-wide LRU of timing reports (thread-safe)."""

    def __init__(self, maxsize: int):
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.computes = 0
        self._lock = threading.Lock()
        self._data: "OrderedDict[str, TimingReport]" = OrderedDict()

    def get(self, key: str) -> Optional[TimingReport]:
        with self._lock:
            report = self._data.get(key)
            if report is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return report

    def put(self, key: str, report: TimingReport) -> None:
        with self._lock:
            self._data[key] = report
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def info(self) -> Dict[str, int]:
        with self._lock:
            return {"size": len(self._data), "max": self.maxsize,
                    "hits": self.hits, "misses": self.misses,
                    "disk_hits": self.disk_hits,
                    "computes": self.computes}

    def clear(self, reset_counters: bool = False) -> None:
        with self._lock:
            self._data.clear()
            if reset_counters:
                self.hits = self.misses = 0
                self.disk_hits = self.computes = 0


_CACHE = _TimingCache(DEFAULT_MAX_CACHED_REPORTS)


def cache_info() -> Dict[str, int]:
    """Occupancy and hit/miss/compute counters of the timing LRU."""
    return _CACHE.info()


def clear_cache(reset_counters: bool = False) -> None:
    """Drop every cached report (tests and memory-pressure escape
    hatch)."""
    _CACHE.clear(reset_counters)


def _valid_payload(payload: Any, netlist: MappedNetlist) -> bool:
    """Structural check of a disk entry against the requesting netlist."""
    if not isinstance(payload, dict):
        return False
    arrivals = payload.get("arrivals")
    if not isinstance(arrivals, dict):
        return False
    if payload.get("gate_count") != netlist.gate_count:
        return False
    for net in netlist.all_nets():
        if net not in arrivals:
            return False
    po_arrivals = payload.get("po_arrivals")
    if not isinstance(po_arrivals, dict):
        return False
    return all(name in po_arrivals for name, _ in netlist.po_bindings)


def timing_report(netlist: MappedNetlist) -> TimingReport:
    """The (cached) timing report of a mapped netlist.

    Memoized on the netlist instance, then the per-process LRU, then
    the :mod:`repro.cache` disk store — the same ladder activity
    statistics climb — and only then propagated.  The key is a content
    hash (:func:`netlist_timing_key`), so it never needs invalidating:
    a re-characterized library or a remapped circuit produces a fresh
    key.  The returned object is shared — treat it as immutable.
    """
    cached = netlist.__dict__.get(_REPORT_ATTR)
    if cached is not None:
        return cached
    key = netlist_timing_key(netlist)
    report = _CACHE.get(key)
    if report is not None:
        netlist.__dict__[_REPORT_ATTR] = report
        return report
    disk = default_cache()
    payload = disk.get(TIMING_NAMESPACE, key)
    if _valid_payload(payload, netlist):
        try:
            report = TimingReport.from_payload(payload)
        except (TypeError, ValueError, KeyError):
            report = None
        if report is not None:
            with _CACHE._lock:
                _CACHE.disk_hits += 1
            _CACHE.put(key, report)
            netlist.__dict__[_REPORT_ATTR] = report
            return report
    report = analyze_timing(netlist)
    with _CACHE._lock:
        _CACHE.computes += 1
    disk.put(TIMING_NAMESPACE, key, report.to_payload())
    _CACHE.put(key, report)
    netlist.__dict__[_REPORT_ATTR] = report
    return report
