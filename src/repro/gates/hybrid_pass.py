"""Hybrid pass-transistor ambipolar demo library (after Hu et al.).

Hu et al. (arXiv:2002.01932) combine complementary static logic with
pass-transistor-style XOR networks that exploit the ambipolar CNTFET's
in-field polarity gate.  This library reconstructs that flavour as a
*fourth* technology for the Table 1 comparison: the 20 conventional
cells keep their static topologies, XOR2/XNOR2 collapse to single
transmission-gate switches, and a small set of hybrid cells embeds one
pass-transistor XOR inside an otherwise static first stage.

It exists mainly to prove the registry's point: it is registered purely
through :mod:`repro.registry` — no experiment or sweep code names it —
and still shows up in CLI listings, sweeps and :class:`repro.api.Session`
runs like the built-in three.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.devices.parameters import CNTFET_32NM, TechnologyParams
from repro.errors import LibraryError
from repro.gates.cells import Cell, Stage, nfet, pfet, tg
from repro.gates.conventional import conventional_cells
from repro.gates.library import Library
from repro.gates.topology import parallel, series

#: Canonical registry key of this library.
HYBRID_PASS = "cntfet-hybrid-pass"


def _pass_xor_cells() -> Dict[str, Cell]:
    """Single-switch XOR2/XNOR2 (the pass-transistor workhorses)."""
    xor2 = Cell("XOR2", ("a", "b"),
                (Stage("y", tg("a", "b", invert=True)),), "a^b",
                generalized=True)
    xnor2 = Cell("XNOR2", ("a", "b"),
                 (Stage("y", tg("a", "b")),), "(a^b)'",
                 generalized=True)
    return {"XOR2": xor2, "XNOR2": xnor2}


def hybrid_cells() -> List[Cell]:
    """The hybrid cells: one pass-transistor XOR inside a static stage."""
    cells: List[Cell] = []
    add = cells.append

    # Three-input parity with one TG pair per phase of c.
    add(Cell("HPXOR3", ("a", "b", "c"),
             (Stage("y", parallel(series(tg("a", "b"), nfet("c")),
                                  series(tg("a", "b", invert=True),
                                         pfet("c")))),),
             "a^b^c", generalized=True))
    add(Cell("HPXNOR3", ("a", "b", "c"),
             (Stage("y", parallel(series(tg("a", "b"), pfet("c")),
                                  series(tg("a", "b", invert=True),
                                         nfet("c")))),),
             "(a^b^c)'", generalized=True))

    # Static NAND/NOR first stage merged into a pass-transistor XOR
    # output switch: the XOR costs one switch level.
    add(Cell("HPANDX", ("a", "b", "c"),
             (Stage("i0", series(nfet("a"), nfet("b"))),
              Stage("y", tg("i0", "c", invert=True))),
             "((ab)^c)'", generalized=True))
    add(Cell("HPORX", ("a", "b", "c"),
             (Stage("i0", parallel(nfet("a"), nfet("b"))),
              Stage("y", tg("i0", "c", invert=True))),
             "((a+b)^c)'", generalized=True))

    # Multiplexer whose selected branch is a pass-transistor XOR.
    add(Cell("HPMUXI", ("s", "a", "b", "c"),
             (Stage("y", parallel(series(nfet("s"), tg("a", "c")),
                                  series(nfet("s'"), nfet("b")))),),
             "(s(a^c)+s'b)'", generalized=True))
    return cells


def hybrid_pass_cells() -> List[Cell]:
    """All cells: conventional base with pass-transistor XORs + hybrids."""
    swaps = _pass_xor_cells()
    cells = [swaps.get(cell.name, cell) for cell in conventional_cells()]
    cells.extend(hybrid_cells())
    return cells


#: Expected functions of the hybrid cells, used by the unit tests.
HYBRID_FUNCTIONS: Dict[str, Callable[..., bool]] = {
    "HPXOR3": lambda a, b, c: (a != b) != c,
    "HPXNOR3": lambda a, b, c: not ((a != b) != c),
    "HPANDX": lambda a, b, c: not ((a and b) != c),
    "HPORX": lambda a, b, c: not ((a or b) != c),
    "HPMUXI": lambda s, a, b, c: not ((a != c) if s else b),
}


def hybrid_pass_library(tech: TechnologyParams = CNTFET_32NM) -> Library:
    """The hybrid pass-transistor demo library on an ambipolar technology.

    Raises :class:`LibraryError` for non-ambipolar technologies —
    transmission gates need the in-field polarity gate.
    """
    if not tech.ambipolar:
        raise LibraryError(
            "the hybrid pass-transistor library requires an ambipolar "
            "technology")
    return Library(HYBRID_PASS, tech, hybrid_pass_cells())
