"""genlib export/import for the characterized libraries.

The paper compiles genlib libraries per logic family (from the area and
delay of [3]) and feeds them to ABC for technology mapping.  We emit the
same format so the libraries are portable to real tools, and parse it
back for round-trip tests.  Functions are written as sums of products
derived from the cell truth tables; delays are in picoseconds and loads
in attofarads (slope in ps/aF), matching the paper's reporting units.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import LibraryError
from repro.gates.library import Library
from repro.synth.sop import isop
from repro.synth.truth import full_mask
from repro.units import AF, PS


def _sop_expression(table: int, pins: Tuple[str, ...]) -> str:
    """Render a truth table as a genlib sum-of-products expression."""
    n = len(pins)
    if table == 0:
        return "CONST0"
    if table == full_mask(n):
        return "CONST1"
    cubes = isop(table, n)
    terms: List[str] = []
    for cube in cubes:
        literals: List[str] = []
        for var in range(n):
            phase = cube.phase(var)
            if phase == 1:
                literals.append(pins[var])
            elif phase == 0:
                literals.append(f"!{pins[var]}")
        terms.append("*".join(literals) if literals else "CONST1")
    return "+".join(terms)


def write_genlib(library: Library, fanout: int = 3) -> str:
    """Serialize a library to genlib text.

    ``fanout`` only affects the informational max-load column.
    """
    lines: List[str] = [
        f"# genlib for {library.name} "
        f"(technology {library.tech.name}, VDD={library.tech.vdd} V)",
        "# area: normalized device area; delays: ps; loads: aF",
    ]
    inv_cap = (library.tech.nmos.c_gate + library.tech.pmos.c_gate)
    max_load = fanout * inv_cap / AF * 10
    for cell in library:
        expression = _sop_expression(cell.truth_table, cell.inputs)
        timing = library.timing(cell.name)
        block_ps = timing.intrinsic / PS
        slope_ps_per_af = timing.slope * AF / PS
        lines.append(
            f"GATE {cell.name} {library.area(cell.name):.2f} "
            f"O={expression};")
        for pin in cell.inputs:
            cap_af = library.pin_capacitance(cell.name, pin) / AF
            lines.append(
                f"  PIN {pin} UNKNOWN {cap_af:.2f} {max_load:.2f} "
                f"{block_ps:.4f} {slope_ps_per_af:.6f} "
                f"{block_ps:.4f} {slope_ps_per_af:.6f}")
    return "\n".join(lines) + "\n"


@dataclass
class GenlibGate:
    """One parsed genlib entry."""

    name: str
    area: float
    expression: str
    pins: List[str] = field(default_factory=list)
    pin_caps: Dict[str, float] = field(default_factory=dict)
    block_delay_ps: float = 0.0
    slope_ps_per_af: float = 0.0


_GATE_RE = re.compile(r"^GATE\s+(\S+)\s+([\d.eE+-]+)\s+O=(.*);\s*$")
_PIN_RE = re.compile(
    r"^\s*PIN\s+(\S+)\s+\S+\s+([\d.eE+-]+)\s+([\d.eE+-]+)\s+"
    r"([\d.eE+-]+)\s+([\d.eE+-]+)\s+([\d.eE+-]+)\s+([\d.eE+-]+)\s*$")


def parse_genlib(text: str) -> Dict[str, GenlibGate]:
    """Parse genlib text produced by :func:`write_genlib`."""
    gates: Dict[str, GenlibGate] = {}
    current: GenlibGate = None
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        match = _GATE_RE.match(stripped)
        if match:
            current = GenlibGate(match.group(1), float(match.group(2)),
                                 match.group(3).strip())
            gates[current.name] = current
            continue
        match = _PIN_RE.match(line)
        if match:
            if current is None:
                raise LibraryError("PIN line before any GATE line")
            pin = match.group(1)
            current.pins.append(pin)
            current.pin_caps[pin] = float(match.group(2))
            current.block_delay_ps = float(match.group(4))
            current.slope_ps_per_af = float(match.group(5))
            continue
        raise LibraryError(f"unparseable genlib line: {line!r}")
    return gates


class _ExpressionParser:
    """Recursive-descent parser for genlib SOP expressions."""

    def __init__(self, text: str, values: Dict[str, bool]):
        self.tokens = re.findall(r"[A-Za-z_][A-Za-z0-9_]*|[!*+()]", text)
        self.pos = 0
        self.values = values

    def _peek(self) -> str:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else ""

    def _take(self) -> str:
        token = self._peek()
        self.pos += 1
        return token

    def parse(self) -> bool:
        result = self._or()
        if self.pos != len(self.tokens):
            raise LibraryError(
                f"trailing tokens in expression: {self.tokens[self.pos:]}")
        return result

    def _or(self) -> bool:
        value = self._and()
        while self._peek() == "+":
            self._take()
            value = self._and() or value
        return value

    def _and(self) -> bool:
        value = self._atom()
        while self._peek() == "*":
            self._take()
            value = self._atom() and value
        return value

    def _atom(self) -> bool:
        token = self._take()
        if token == "!":
            return not self._atom()
        if token == "(":
            value = self._or()
            if self._take() != ")":
                raise LibraryError("unbalanced parentheses")
            return value
        if token == "CONST0":
            return False
        if token == "CONST1":
            return True
        if token in self.values:
            return self.values[token]
        raise LibraryError(f"unknown identifier {token!r} in expression")


def evaluate_expression(expression: str, values: Dict[str, bool]) -> bool:
    """Evaluate a genlib SOP expression under the given pin values."""
    return _ExpressionParser(expression, values).parse()
