"""Static logic cells built from complementary switch networks.

A :class:`Cell` is an ordered list of :class:`Stage` objects.  Each
stage is a static CMOS-style sub-gate: its pull-down network is given,
its pull-up network is the series/parallel dual, and its output is the
complement of the pull-down conduction function.  Multi-stage cells
(BUF, AND2, CMOS XOR with input inverters, ...) chain stages through
named internal signals.

Complement generation: transmission gates always need both phases of
their control signals, and some CMOS topologies use complemented
literals directly.  The cell machinery inserts one shared inverter per
complemented signal automatically; those inverters count toward the
cell's device total, input capacitance and leakage, exactly like any
other stage, but are invisible to the logic function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TopologyError
from repro.gates.topology import (
    Fet,
    Network,
    Signal,
    TransmissionGate,
    complement_requirements,
    conduction,
    device_count,
    dual,
    network_support,
    output_adjacency,
    series_depth,
)
from repro.synth.truth import from_function


def signal(spec: str) -> Signal:
    """Parse ``"a"`` or ``"a'"`` into a :class:`Signal`."""
    if spec.endswith("'"):
        return Signal(spec[:-1], negated=True)
    return Signal(spec)


def nfet(spec: str) -> Fet:
    """n-type switch controlled by the named signal (``"a"`` / ``"a'"``)."""
    return Fet(signal(spec), "n")


def pfet(spec: str) -> Fet:
    """p-type switch controlled by the named signal."""
    return Fet(signal(spec), "p")


def tg(a: str, b: str, invert: bool = False) -> TransmissionGate:
    """Transmission gate conducting when ``a XOR b XOR invert`` is 1."""
    return TransmissionGate(signal(a), signal(b), invert)


@dataclass(frozen=True)
class Stage:
    """One static sub-gate: output = NOT(pull-down conduction)."""

    name: str
    pulldown: Network

    @property
    def pullup(self) -> Network:
        """The dual pull-up network."""
        return dual(self.pulldown)

    @property
    def is_complement_inverter(self) -> bool:
        """True for the auto-generated complement inverters."""
        return self.name.endswith("#bar")


@dataclass
class Cell:
    """A static logic cell.

    Args:
        name: cell name, unique within a library.
        inputs: ordered pin names; pin ``i`` is truth-table variable ``i``.
        stages: declared stages in evaluation order; the last stage
            drives the cell output.
        description: human-readable function, e.g. ``"((a^c)b)'"``.
        generalized: True for cells that exploit ambipolar transmission
            gates (only available in the generalized CNTFET library).
    """

    name: str
    inputs: Tuple[str, ...]
    stages: Tuple[Stage, ...]
    description: str = ""
    generalized: bool = False
    _truth: Optional[int] = field(default=None, repr=False)
    _all_stages: Optional[Tuple[Stage, ...]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.inputs = tuple(self.inputs)
        self.stages = tuple(self.stages)
        if not self.stages:
            raise TopologyError(f"cell {self.name}: needs at least one stage")
        if len(set(self.inputs)) != len(self.inputs):
            raise TopologyError(f"cell {self.name}: duplicate pin names")
        available = set(self.inputs)
        for stage in self.stages:
            missing = network_support(stage.pulldown) - available
            if missing:
                raise TopologyError(
                    f"cell {self.name}: stage {stage.name} uses unknown "
                    f"signals {sorted(missing)}")
            if stage.name in available:
                raise TopologyError(
                    f"cell {self.name}: duplicate signal {stage.name!r}")
            available.add(stage.name)

    # -- logic ----------------------------------------------------------

    def evaluate(self, values: Sequence[bool]) -> bool:
        """Cell output for the given pin values (pin order)."""
        if len(values) != len(self.inputs):
            raise TopologyError(
                f"cell {self.name}: expected {len(self.inputs)} values")
        assignment: Dict[str, bool] = dict(zip(self.inputs, map(bool, values)))
        result = False
        for stage in self.stages:
            result = not conduction(stage.pulldown, assignment)
            assignment[stage.name] = result
        return result

    @property
    def n_inputs(self) -> int:
        """Number of pins."""
        return len(self.inputs)

    @property
    def truth_table(self) -> int:
        """Truth table over the pins (pin 0 = variable 0 = LSB)."""
        if self._truth is None:
            self._truth = from_function(
                lambda *bits: self.evaluate(bits), self.n_inputs)
        return self._truth

    def stage_input_values(self, values: Sequence[bool]) -> Dict[str, bool]:
        """All signal values (pins + stage outputs) for an input vector."""
        assignment: Dict[str, bool] = dict(zip(self.inputs, map(bool, values)))
        for stage in self.all_stages():
            assignment[stage.name] = not conduction(stage.pulldown, assignment)
        return assignment

    # -- structure ------------------------------------------------------

    def all_stages(self) -> Tuple[Stage, ...]:
        """Declared stages plus auto-generated complement inverters.

        Complement inverters are emitted as soon as their source signal
        is available and before the first stage that consumes them.
        """
        if self._all_stages is not None:
            return self._all_stages
        emitted: List[Stage] = []
        have_complement: set = set()
        for stage in self.stages:
            for name in sorted(complement_requirements(stage.pulldown)):
                if name not in have_complement:
                    emitted.append(Stage(f"{name}#bar", Fet(Signal(name), "n")))
                    have_complement.add(name)
            emitted.append(stage)
        self._all_stages = tuple(emitted)
        return self._all_stages

    def complemented_signals(self) -> List[str]:
        """Signals for which a shared complement inverter exists."""
        return [s.name[:-4] for s in self.all_stages()
                if s.is_complement_inverter]

    @property
    def n_devices(self) -> int:
        """Total transistor count (both networks of every stage)."""
        total = 0
        for stage in self.all_stages():
            total += 2 * device_count(stage.pulldown)
        return total

    def pin_capacitance(self, pin: str, c_gate: float, c_pol: float) -> float:
        """Input capacitance presented by ``pin``.

        Direct (non-negated) transistor controls load the pin with one
        conventional-gate capacitance per device (once in the pull-down,
        once in the dual pull-up).  Transmission-gate ``a`` signals load
        a polarity gate, ``b`` signals a conventional gate (again, twice:
        PU and PD).  Complemented phases load the shared inverter output
        instead of the pin; the inverter's own input counts once at half
        width (complement generators drive only gate capacitance, so
        they are sized minimally: n + p at half width = one unit gate
        capacitance total).
        """
        if pin not in self.inputs:
            raise TopologyError(f"cell {self.name}: no pin {pin!r}")
        total = 0.0
        for stage in self.all_stages():
            if stage.is_complement_inverter:
                # the inverter input loads the source signal directly
                leaf = stage.pulldown
                assert isinstance(leaf, Fet)
                if leaf.control.name == pin:
                    total += c_gate  # half-width n + p devices
                continue
            for network in (stage.pulldown, stage.pullup):
                for leaf in _leaves(network):
                    if isinstance(leaf, Fet):
                        if leaf.control.name == pin and not leaf.control.negated:
                            total += c_gate
                    else:
                        # TG: direct phase of `a` drives one polarity gate,
                        # direct phase of `b` one conventional gate; the
                        # complemented device hangs off the inverters.
                        if leaf.a.name == pin and not leaf.a.negated:
                            total += c_pol
                        if leaf.b.name == pin and not leaf.b.negated:
                            total += c_gate
                        if leaf.a.name == pin and leaf.a.negated:
                            pass  # loads the complement net
                        if leaf.b.name == pin and leaf.b.negated:
                            pass
        return total

    def average_input_capacitance(self, c_gate: float, c_pol: float) -> float:
        """Mean pin capacitance across all pins."""
        caps = [self.pin_capacitance(p, c_gate, c_pol) for p in self.inputs]
        return sum(caps) / len(caps)

    @property
    def output_stage(self) -> Stage:
        """The stage driving the cell output."""
        return self.stages[-1]

    def drive_depth(self) -> int:
        """Worst series switch depth of the output stage (for R_drive)."""
        stage = self.output_stage
        return max(series_depth(stage.pulldown), series_depth(stage.pullup))

    def output_intrinsic_devices(self) -> int:
        """Devices whose diffusion touches the output node."""
        stage = self.output_stage
        return output_adjacency(stage.pulldown) + output_adjacency(stage.pullup)

    def uses_transmission_gates(self) -> bool:
        """True if any stage contains a transmission gate."""
        for stage in self.all_stages():
            for leaf in _leaves(stage.pulldown):
                if isinstance(leaf, TransmissionGate):
                    return True
        return False


def _leaves(network: Network):
    from repro.gates.topology import iter_leaves
    return iter_leaves(network)
