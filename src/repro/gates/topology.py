"""Switch-network representation of gate pull-up/pull-down networks.

A network is a series/parallel tree whose leaves are switches:

* :class:`Fet` — a fixed-polarity transistor.  An n-type leaf conducts
  when its control signal is 1, a p-type leaf when it is 0.  In the
  ambipolar technology a "fixed-polarity transistor" is an ambipolar
  device with its polarity gate tied to a rail (Fig. 1b/c).
* :class:`TransmissionGate` — the paper's XOR primitive (Fig. 2): two
  ambipolar devices in parallel, biased with opposite polarities, that
  conduct exactly when ``a XOR b XOR invert`` is 1.  A conducting pair
  always passes the signal well (one of the two devices is strongly on);
  a non-conducting pair presents *two* parallel off devices to leakage.

The pull-up network of a static gate is the series/parallel *dual* of
its pull-down network (:func:`dual`): series and parallel swap, device
polarities flip, and transmission gates flip their ``invert`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Set, Tuple, Union

from repro.errors import TopologyError


@dataclass(frozen=True)
class Signal:
    """A named control signal, optionally complemented.

    ``negated=True`` means the switch is driven by the complement of the
    named signal; cells generate the complement with a shared internal
    inverter (see :mod:`repro.gates.cells`).
    """

    name: str
    negated: bool = False

    def value(self, assignment: Dict[str, bool]) -> bool:
        """Logic value of the signal under ``assignment``."""
        try:
            raw = assignment[self.name]
        except KeyError:
            raise TopologyError(f"no value for signal {self.name!r}") from None
        return (not raw) if self.negated else bool(raw)

    def __str__(self) -> str:
        return f"{self.name}'" if self.negated else self.name


@dataclass(frozen=True)
class Fet:
    """A fixed-polarity transistor switch."""

    control: Signal
    polarity: str  # 'n' or 'p'

    def __post_init__(self) -> None:
        if self.polarity not in ("n", "p"):
            raise TopologyError(f"bad polarity {self.polarity!r}")

    def conducts(self, assignment: Dict[str, bool]) -> bool:
        """Conduction state under the given input assignment."""
        value = self.control.value(assignment)
        return value if self.polarity == "n" else not value

    def __str__(self) -> str:
        return f"{self.polarity}({self.control})"


@dataclass(frozen=True)
class TransmissionGate:
    """An ambipolar transmission-gate switch (two devices).

    Signals ``a`` and ``b`` drive the polarity and conventional gates of
    one device; their complements drive the other device.  The pair
    conducts if and only if ``a XOR b XOR invert`` evaluates to 1.
    """

    a: Signal
    b: Signal
    invert: bool = False

    def conducts(self, assignment: Dict[str, bool]) -> bool:
        """Conduction state under the given input assignment."""
        return (self.a.value(assignment) ^ self.b.value(assignment)
                ^ self.invert)

    def __str__(self) -> str:
        middle = "xnor" if self.invert else "xor"
        return f"tg({self.a} {middle} {self.b})"


@dataclass(frozen=True)
class Series:
    """Series composition: conducts when every child conducts."""

    children: Tuple["Network", ...]

    def __post_init__(self) -> None:
        if len(self.children) < 2:
            raise TopologyError("series node needs at least two children")

    def __str__(self) -> str:
        return "s(" + " ".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class Parallel:
    """Parallel composition: conducts when any child conducts."""

    children: Tuple["Network", ...]

    def __post_init__(self) -> None:
        if len(self.children) < 2:
            raise TopologyError("parallel node needs at least two children")

    def __str__(self) -> str:
        return "p(" + " ".join(str(c) for c in self.children) + ")"


Network = Union[Fet, TransmissionGate, Series, Parallel]


# -- constructors -----------------------------------------------------------

def series(*children: Network) -> Network:
    """Series composition (flattens nested series, passes through 1 child)."""
    flat = []
    for child in children:
        if isinstance(child, Series):
            flat.extend(child.children)
        else:
            flat.append(child)
    if len(flat) == 1:
        return flat[0]
    return Series(tuple(flat))


def parallel(*children: Network) -> Network:
    """Parallel composition (flattens nested parallel, passes through 1)."""
    flat = []
    for child in children:
        if isinstance(child, Parallel):
            flat.extend(child.children)
        else:
            flat.append(child)
    if len(flat) == 1:
        return flat[0]
    return Parallel(tuple(flat))


# -- queries ----------------------------------------------------------------

def conduction(network: Network, assignment: Dict[str, bool]) -> bool:
    """Evaluate whether the network conducts under ``assignment``."""
    if isinstance(network, (Fet, TransmissionGate)):
        return network.conducts(assignment)
    if isinstance(network, Series):
        return all(conduction(c, assignment) for c in network.children)
    if isinstance(network, Parallel):
        return any(conduction(c, assignment) for c in network.children)
    raise TopologyError(f"unknown network node {type(network).__name__}")


def dual(network: Network) -> Network:
    """Series/parallel dual: the complementary pull-up for a pull-down.

    ``conduction(dual(net), x) == not conduction(net, x)`` for all x.
    """
    if isinstance(network, Fet):
        flipped = "p" if network.polarity == "n" else "n"
        return Fet(network.control, flipped)
    if isinstance(network, TransmissionGate):
        return TransmissionGate(network.a, network.b, not network.invert)
    if isinstance(network, Series):
        return Parallel(tuple(dual(c) for c in network.children))
    if isinstance(network, Parallel):
        return Series(tuple(dual(c) for c in network.children))
    raise TopologyError(f"unknown network node {type(network).__name__}")


def iter_leaves(network: Network) -> Iterator[Union[Fet, TransmissionGate]]:
    """Yield every switch leaf of the tree."""
    if isinstance(network, (Fet, TransmissionGate)):
        yield network
    elif isinstance(network, (Series, Parallel)):
        for child in network.children:
            yield from iter_leaves(child)
    else:
        raise TopologyError(f"unknown network node {type(network).__name__}")


def device_count(network: Network) -> int:
    """Number of transistors in the network (a TG counts as two)."""
    total = 0
    for leaf in iter_leaves(network):
        total += 2 if isinstance(leaf, TransmissionGate) else 1
    return total


def network_support(network: Network) -> Set[str]:
    """Names of all signals controlling switches in the network."""
    names: Set[str] = set()
    for leaf in iter_leaves(network):
        if isinstance(leaf, Fet):
            names.add(leaf.control.name)
        else:
            names.add(leaf.a.name)
            names.add(leaf.b.name)
    return names


def series_depth(network: Network) -> int:
    """Worst-case number of switches in series along any conduction path.

    Used for the first-order drive-resistance estimate: a transmission
    gate counts as one switch (its conducting device is strongly on).
    """
    if isinstance(network, (Fet, TransmissionGate)):
        return 1
    if isinstance(network, Series):
        return sum(series_depth(c) for c in network.children)
    if isinstance(network, Parallel):
        return max(series_depth(c) for c in network.children)
    raise TopologyError(f"unknown network node {type(network).__name__}")


def output_adjacency(network: Network) -> int:
    """Number of devices whose diffusion touches the network's output end.

    First-order intrinsic-capacitance model: for a series chain only the
    first element touches the output; every parallel branch contributes
    its own adjacent devices.
    """
    if isinstance(network, Fet):
        return 1
    if isinstance(network, TransmissionGate):
        return 2
    if isinstance(network, Series):
        return output_adjacency(network.children[0])
    if isinstance(network, Parallel):
        return sum(output_adjacency(c) for c in network.children)
    raise TopologyError(f"unknown network node {type(network).__name__}")


def complement_requirements(network: Network) -> Set[str]:
    """Signal names whose complement the network needs.

    A transmission gate always needs both phases of both of its control
    signals (the second device is driven by the complements).  A plain
    transistor needs a complement only when its control is negated.
    """
    needed: Set[str] = set()
    for leaf in iter_leaves(network):
        if isinstance(leaf, Fet):
            if leaf.control.negated:
                needed.add(leaf.control.name)
        else:
            needed.add(leaf.a.name)
            needed.add(leaf.b.name)
    return needed
