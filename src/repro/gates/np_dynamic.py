"""NP-domino ambipolar demo library (after the hybrid CMOS-CNFET work).

Hills et al.-style hybrid integration papers (arXiv:1805.04074) build
NP dynamic (domino) logic from CNFET pull networks: a wide N-type
evaluation network computes the inverted function in one stage and a
small output inverter restores polarity, giving compact *non-inverting*
composites (AND/OR/AO/OA) that static CMOS needs two full stacks for.
This library reconstructs that flavour statically — the evaluation
network becomes the first stage's pulldown, the restoring inverter the
output stage — as a *fifth* technology for the comparison, and as the
foundry's fifth build target.

Like :mod:`repro.gates.hybrid_pass` it is registered purely through
:mod:`repro.registry`: no experiment, sweep or serve code names it, yet
it is usable from every Session/sweep/serve/optimize path.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.devices.parameters import CNTFET_32NM, TechnologyParams
from repro.errors import LibraryError
from repro.gates.cells import Cell, Stage, nfet, tg
from repro.gates.conventional import conventional_cells
from repro.gates.library import Library
from repro.gates.topology import parallel, series

#: Canonical registry key of this library.
NP_DYNAMIC = "cntfet-np-dynamic"


def np_domino_cells() -> List[Cell]:
    """The NP-domino composites: wide evaluation net + restoring stage."""
    cells: List[Cell] = []
    add = cells.append

    # Non-inverting AND/OR: the domino payoff — one evaluation network
    # plus the restoring inverter, instead of gate + full inverter cell.
    add(Cell("NPAND3", ("a", "b", "c"),
             (Stage("i0", series(nfet("a"), nfet("b"), nfet("c"))),
              Stage("y", nfet("i0"))),
             "abc"))
    add(Cell("NPAND4", ("a", "b", "c", "d"),
             (Stage("i0", series(nfet("a"), nfet("b"), nfet("c"),
                                 nfet("d"))),
              Stage("y", nfet("i0"))),
             "abcd"))
    add(Cell("NPOR3", ("a", "b", "c"),
             (Stage("i0", parallel(nfet("a"), nfet("b"), nfet("c"))),
              Stage("y", nfet("i0"))),
             "a+b+c"))

    # Non-inverting AND-OR / OR-AND evaluation networks.
    add(Cell("NPAO22", ("a", "b", "c", "d"),
             (Stage("i0", parallel(series(nfet("a"), nfet("b")),
                                   series(nfet("c"), nfet("d")))),
              Stage("y", nfet("i0"))),
             "ab+cd"))
    add(Cell("NPOA22", ("a", "b", "c", "d"),
             (Stage("i0", series(parallel(nfet("a"), nfet("b")),
                                 parallel(nfet("c"), nfet("d")))),
              Stage("y", nfet("i0"))),
             "(a+b)(c+d)"))

    # Ambipolar parity chain: each transmission-gate switch is one
    # XOR level, cascaded domino-style through the internal node.
    add(Cell("NPXOR3", ("a", "b", "c"),
             (Stage("i0", tg("a", "b", invert=True)),
              Stage("y", tg("i0", "c", invert=True))),
             "a^b^c", generalized=True))
    add(Cell("NPXNOR3", ("a", "b", "c"),
             (Stage("i0", tg("a", "b", invert=True)),
              Stage("y", tg("i0", "c"))),
             "(a^b^c)'", generalized=True))
    return cells


def np_dynamic_cells() -> List[Cell]:
    """All cells: the conventional base set plus the domino composites."""
    cells = list(conventional_cells())
    cells.extend(np_domino_cells())
    return cells


#: Expected functions of the domino cells, used by the unit tests.
NP_DYNAMIC_FUNCTIONS: Dict[str, Callable[..., bool]] = {
    "NPAND3": lambda a, b, c: a and b and c,
    "NPAND4": lambda a, b, c, d: a and b and c and d,
    "NPOR3": lambda a, b, c: a or b or c,
    "NPAO22": lambda a, b, c, d: (a and b) or (c and d),
    "NPOA22": lambda a, b, c, d: (a or b) and (c or d),
    "NPXOR3": lambda a, b, c: (a != b) != c,
    "NPXNOR3": lambda a, b, c: not ((a != b) != c),
}


def np_dynamic_library(tech: TechnologyParams = CNTFET_32NM) -> Library:
    """The NP-domino demo library on an ambipolar technology.

    Raises :class:`LibraryError` for non-ambipolar technologies — the
    parity chain's transmission gates need the in-field polarity gate.
    """
    if not tech.ambipolar:
        raise LibraryError(
            "the NP dynamic library requires an ambipolar technology")
    return Library(NP_DYNAMIC, tech, np_dynamic_cells())
