"""The 46-cell generalized ambipolar CNTFET library.

This reconstructs the static transmission-gate library of Ben Jamaa et
al. (DATE 2009, reference [3] of the paper): the 20 conventional
functions plus 26 generalized cells that embed XOR operations through
ambipolar transmission gates.  XOR2/XNOR2 (and the generalized cells)
use transmission-gate switches; plain gates use fixed-polarity
transistors exactly as in CMOS, since an ambipolar device with its
polarity gate tied to a rail *is* a fixed-polarity transistor (Fig. 1).

Cell count is asserted by the test-suite: 20 + 26 = 46, matching the
"whole library of 46 logic gates designed in [3]" of Section 4.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.devices.parameters import TechnologyParams, CNTFET_32NM
from repro.errors import LibraryError
from repro.gates.cells import Cell, Stage, nfet, pfet, tg
from repro.gates.conventional import conventional_cells
from repro.gates.library import Library
from repro.gates.topology import parallel, series


def _single(name: str, pd, inputs, description: str) -> Cell:
    return Cell(name, tuple(inputs), (Stage("y", pd),), description,
                generalized=True)


def _buffered(name: str, pd, inputs, description: str) -> Cell:
    stages = (Stage("i0", pd), Stage("y", nfet("i0")))
    return Cell(name, tuple(inputs), stages, description, generalized=True)


def generalized_cells() -> List[Cell]:
    """The 26 XOR-embedding cells unique to the ambipolar library."""
    cells: List[Cell] = []
    add = cells.append

    # Two-input generalized NAND/NOR family (one or two TGs).
    add(_single("GNAND2A", series(tg("a", "c"), nfet("b")),
                "abc", "((a^c)b)'"))
    add(_buffered("GAND2A", series(tg("a", "c"), nfet("b")),
                  "abc", "(a^c)b"))
    add(_single("GNOR2A", parallel(tg("a", "c"), nfet("b")),
                "abc", "((a^c)+b)'"))
    add(_buffered("GOR2A", parallel(tg("a", "c"), nfet("b")),
                  "abc", "(a^c)+b"))
    add(_single("GNAND2B", series(tg("a", "c"), tg("b", "d")),
                "abcd", "((a^c)(b^d))'"))
    add(_buffered("GAND2B", series(tg("a", "c"), tg("b", "d")),
                  "abcd", "(a^c)(b^d)"))
    add(_single("GNOR2B", parallel(tg("a", "c"), tg("b", "d")),
                "abcd", "((a^c)+(b^d))'"))
    add(_buffered("GOR2B", parallel(tg("a", "c"), tg("b", "d")),
                  "abcd", "(a^c)+(b^d)"))

    # Three-input generalized NAND/NOR.
    add(_single("GNAND3A", series(tg("a", "d"), nfet("b"), nfet("c")),
                "abcd", "((a^d)bc)'"))
    add(_single("GNOR3A", parallel(tg("a", "d"), nfet("b"), nfet("c")),
                "abcd", "((a^d)+b+c)'"))

    # Generalized AOI/OAI with a single embedded XOR.
    add(_single("GAOI21A", parallel(series(tg("a", "d"), nfet("b")), nfet("c")),
                "abcd", "((a^d)b+c)'"))
    add(_single("GAOI21B", parallel(series(nfet("a"), nfet("b")), tg("c", "d")),
                "abcd", "(ab+(c^d))'"))
    add(_single("GOAI21A", series(parallel(tg("a", "d"), nfet("b")), nfet("c")),
                "abcd", "(((a^d)+b)c)'"))
    add(_single("GOAI21B", series(parallel(nfet("a"), nfet("b")), tg("c", "d")),
                "abcd", "((a+b)(c^d))'"))

    # Generalized AOI/OAI with two embedded XORs (five inputs).
    add(_single("GAOI21C",
                parallel(series(tg("a", "d"), nfet("b")), tg("c", "e")),
                "abcde", "((a^d)b+(c^e))'"))
    add(_single("GOAI21C",
                series(parallel(tg("a", "d"), nfet("b")), tg("c", "e")),
                "abcde", "(((a^d)+b)(c^e))'"))
    add(_single("GAOI21D",
                parallel(series(tg("a", "d"), tg("b", "e")), nfet("c")),
                "abcde", "((a^d)(b^e)+c)'"))
    add(_single("GOAI21D",
                series(parallel(tg("a", "d"), tg("b", "e")), nfet("c")),
                "abcde", "(((a^d)+(b^e))c)'"))
    add(_single("GAOI22A",
                parallel(series(tg("a", "e"), nfet("b")),
                         series(nfet("c"), nfet("d"))),
                "abcde", "((a^e)b+cd)'"))
    add(_single("GOAI22A",
                series(parallel(tg("a", "e"), nfet("b")),
                       parallel(nfet("c"), nfet("d"))),
                "abcde", "(((a^e)+b)(c+d))'"))

    # Three-input parity.  The pull-down of XOR3 conducts when
    # a^b^c = 0, i.e. (a^b) disagrees with ... realized with one TG pair
    # per phase of c.
    xor3_pd = parallel(series(tg("a", "b"), nfet("c")),
                       series(tg("a", "b", invert=True), pfet("c")))
    add(_single("XOR3", xor3_pd, "abc", "a^b^c"))
    xnor3_pd = parallel(series(tg("a", "b"), pfet("c")),
                        series(tg("a", "b", invert=True), nfet("c")))
    add(_single("XNOR3", xnor3_pd, "abc", "(a^b^c)'"))

    # Generalized multiplexer: the selected branch embeds an XOR.
    gmux_pd = parallel(series(nfet("s"), tg("a", "c")),
                       series(nfet("s'"), nfet("b")))
    add(_single("GMUXI2", gmux_pd, "sabc", "(s(a^c)+s'b)'"))
    add(_buffered("GMUX2", gmux_pd, "sabc", "s(a^c)+s'b"))

    # AND/OR merged into a transmission-gate XOR output stage: a NAND/NOR
    # first stage feeds one side of the TG pair, so the XOR itself costs
    # a single switch level — the signature ambipolar trick.
    # y = ((ab)^c)' = (ab)'^c = nand^c, so the output TG conducts to
    # ground when (nand^c) = 1.
    gandxor = Cell("GANDXOR", ("a", "b", "c"),
                   (Stage("i0", series(nfet("a"), nfet("b"))),
                    Stage("y", tg("i0", "c", invert=True))),
                   "((ab)^c)'", generalized=True)
    add(gandxor)
    gorxor = Cell("GORXOR", ("a", "b", "c"),
                  (Stage("i0", parallel(nfet("a"), nfet("b"))),
                   Stage("y", tg("i0", "c", invert=True))),
                  "(((a+b))^c)'", generalized=True)
    add(gorxor)
    return cells


def _transmission_gate_xor_cells() -> Dict[str, Cell]:
    """TG implementations of XOR2/XNOR2 for the ambipolar library.

    These replace the 12-transistor CMOS topologies: the pull-down of
    XOR2 is a single transmission gate conducting on XNOR, the pull-up
    its dual.  Eight devices total including the two shared complement
    inverters.
    """
    xor2 = Cell("XOR2", ("a", "b"),
                (Stage("y", tg("a", "b", invert=True)),), "a^b",
                generalized=True)
    xnor2 = Cell("XNOR2", ("a", "b"),
                 (Stage("y", tg("a", "b")),), "(a^b)'",
                 generalized=True)
    return {"XOR2": xor2, "XNOR2": xnor2}


#: Expected functions of the generalized cells, used by the unit tests.
GENERALIZED_FUNCTIONS: Dict[str, Callable[..., bool]] = {
    "GNAND2A": lambda a, b, c: not ((a != c) and b),
    "GAND2A": lambda a, b, c: (a != c) and b,
    "GNOR2A": lambda a, b, c: not ((a != c) or b),
    "GOR2A": lambda a, b, c: (a != c) or b,
    "GNAND2B": lambda a, b, c, d: not ((a != c) and (b != d)),
    "GAND2B": lambda a, b, c, d: (a != c) and (b != d),
    "GNOR2B": lambda a, b, c, d: not ((a != c) or (b != d)),
    "GOR2B": lambda a, b, c, d: (a != c) or (b != d),
    "GNAND3A": lambda a, b, c, d: not ((a != d) and b and c),
    "GNOR3A": lambda a, b, c, d: not ((a != d) or b or c),
    "GAOI21A": lambda a, b, c, d: not (((a != d) and b) or c),
    "GAOI21B": lambda a, b, c, d: not ((a and b) or (c != d)),
    "GOAI21A": lambda a, b, c, d: not (((a != d) or b) and c),
    "GOAI21B": lambda a, b, c, d: not ((a or b) and (c != d)),
    "GAOI21C": lambda a, b, c, d, e: not (((a != d) and b) or (c != e)),
    "GOAI21C": lambda a, b, c, d, e: not (((a != d) or b) and (c != e)),
    "GAOI21D": lambda a, b, c, d, e: not (((a != d) and (b != e)) or c),
    "GOAI21D": lambda a, b, c, d, e: not (((a != d) or (b != e)) and c),
    "GAOI22A": lambda a, b, c, d, e: not (((a != e) and b) or (c and d)),
    "GOAI22A": lambda a, b, c, d, e: not (((a != e) or b) and (c or d)),
    "XOR3": lambda a, b, c: (a != b) != c,
    "XNOR3": lambda a, b, c: not ((a != b) != c),
    "GMUXI2": lambda s, a, b, c: not ((a != c) if s else b),
    "GMUX2": lambda s, a, b, c: ((a != c) if s else b),
    "GANDXOR": lambda a, b, c: not ((a and b) != c),
    "GORXOR": lambda a, b, c: not ((a or b) != c),
}


def generalized_cntfet_library(
        tech: TechnologyParams = CNTFET_32NM) -> Library:
    """The full 46-cell generalized ambipolar CNTFET library.

    Raises :class:`LibraryError` if the technology is not ambipolar —
    transmission gates require the in-field polarity gate.
    """
    if not tech.ambipolar:
        raise LibraryError(
            "the generalized library requires an ambipolar technology")
    tg_xors = _transmission_gate_xor_cells()
    cells: List[Cell] = []
    for cell in conventional_cells():
        cells.append(tg_xors.get(cell.name, cell))
    cells.extend(generalized_cells())
    if len(cells) != 46:
        raise LibraryError(
            f"generalized library must have 46 cells, built {len(cells)}")
    return Library("cntfet-generalized", tech, cells)
