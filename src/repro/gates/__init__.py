"""Transistor-level logic cells and gate libraries.

Cells are described as complementary switch networks (Section 2.2 of the
paper): the pull-down network is given explicitly, the pull-up network
is its series/parallel dual.  Leaves are either fixed-polarity
transistors or ambipolar transmission gates (which conduct when the XOR
of their two control signals is 1 — the key primitive of the paper).

Three libraries reproduce the paper's Section 4 comparison:

* :func:`generalized_cntfet_library` — the 46-cell ambipolar library;
* :func:`conventional_cntfet_library` — the same conventional functions
  restricted to MOSFET-like CNTFETs (no transmission gates);
* :func:`cmos_library` — the CMOS reference.
"""

from repro.gates.topology import (
    Fet,
    TransmissionGate,
    Series,
    Parallel,
    Network,
    conduction,
    dual,
    device_count,
    network_support,
    iter_leaves,
    series_depth,
    output_adjacency,
)
from repro.gates.cells import Cell, Stage, signal
from repro.gates.library import Library, CellTiming
from repro.gates.ambipolar_library import generalized_cntfet_library
from repro.gates.conventional import (
    cmos_library,
    conventional_cntfet_library,
    conventional_cell_names,
)
from repro.gates.genlib import write_genlib, parse_genlib

__all__ = [
    "Fet",
    "TransmissionGate",
    "Series",
    "Parallel",
    "Network",
    "conduction",
    "dual",
    "device_count",
    "network_support",
    "iter_leaves",
    "series_depth",
    "output_adjacency",
    "Cell",
    "Stage",
    "signal",
    "Library",
    "CellTiming",
    "generalized_cntfet_library",
    "conventional_cntfet_library",
    "cmos_library",
    "conventional_cell_names",
    "write_genlib",
    "parse_genlib",
]
