"""Gate library: cells + technology = areas, timings, capacitances.

The library is the object the mapper and the power flow consume.  All
numbers are *derived* from the cell topologies and the technology
parameters — the reproduction never hand-enters per-cell data, mirroring
how the paper compiled its genlib libraries from the characterized
area/delay values of [3].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.devices.calibrate import effective_resistance
from repro.devices.parameters import TechnologyParams
from repro.errors import LibraryError
from repro.gates.cells import Cell
from repro.gates.topology import series_depth
from repro.synth.truth import all_permutations, negate


@dataclass(frozen=True)
class CellTiming:
    """Linear delay model: delay(load) = intrinsic + slope * load."""

    intrinsic: float  # seconds
    slope: float      # seconds per farad (an effective resistance)

    def delay(self, load: float) -> float:
        """Propagation delay driving ``load`` farads."""
        return self.intrinsic + self.slope * load


class Library:
    """A characterized cell library bound to one technology."""

    def __init__(self, name: str, tech: TechnologyParams, cells: List[Cell]):
        self.name = name
        self.tech = tech
        self._cells: Dict[str, Cell] = {}
        for cell in cells:
            if cell.name in self._cells:
                raise LibraryError(f"duplicate cell {cell.name!r}")
            self._cells[cell.name] = cell
        self._r_unit = 0.5 * (effective_resistance(tech, "n")
                              + effective_resistance(tech, "p"))
        self._timings: Dict[str, CellTiming] = {}
        self._pin_caps: Dict[Tuple[str, str], float] = {}
        self._match_index: Optional[Dict[int, Dict[int, Tuple[str, Tuple[int, ...]]]]] = None

    # -- container protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self) -> Iterator[Cell]:
        return iter(self._cells.values())

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    @property
    def names(self) -> List[str]:
        """Cell names in insertion order."""
        return list(self._cells)

    def cell(self, name: str) -> Cell:
        """Look a cell up by name."""
        try:
            return self._cells[name]
        except KeyError:
            raise LibraryError(
                f"library {self.name!r} has no cell {name!r}") from None

    # -- derived electrical characteristics --------------------------------

    @property
    def unit_resistance(self) -> float:
        """Effective switching resistance of one on device (ohm)."""
        return self._r_unit

    def area(self, name: str) -> float:
        """Normalized layout area of a cell."""
        return self.cell(name).n_devices * self.tech.area_per_device

    def pin_capacitance(self, name: str, pin: str) -> float:
        """Input capacitance of one pin (F); cached per (cell, pin)."""
        key = (name, pin)
        cached = self._pin_caps.get(key)
        if cached is not None:
            return cached
        cell = self.cell(name)
        value = cell.pin_capacitance(pin, self.tech.nmos.c_gate,
                                     self.tech.nmos.c_pol)
        self._pin_caps[key] = value
        return value

    def pin_capacitances(self, name: str) -> Dict[str, float]:
        """Input capacitance of every pin (F)."""
        cell = self.cell(name)
        return {pin: self.pin_capacitance(name, pin) for pin in cell.inputs}

    def average_pin_capacitance(self, name: str) -> float:
        """Mean pin capacitance of a cell (F)."""
        caps = self.pin_capacitances(name)
        return sum(caps.values()) / len(caps) if caps else 0.0

    def library_average_pin_capacitance(self) -> float:
        """Mean pin capacitance across every pin of every cell (F)."""
        total = 0.0
        count = 0
        for cell in self:
            for pin in cell.inputs:
                total += self.pin_capacitance(cell.name, pin)
                count += 1
        return total / count if count else 0.0

    def output_capacitance(self, name: str) -> float:
        """Intrinsic diffusion capacitance at the cell output (F)."""
        cell = self.cell(name)
        return cell.output_intrinsic_devices() * self.tech.nmos.c_sd

    def timing(self, name: str) -> CellTiming:
        """Linear delay model of a cell.

        The output stage contributes ``R_unit * depth`` of drive
        resistance; every earlier stage adds one internal RC with a
        typical next-stage load.  Shared complement inverters sit on
        only one of the two input phases (the direct phase bypasses
        them), so their RC is averaged in at half weight.
        """
        if name in self._timings:
            return self._timings[name]
        cell = self.cell(name)
        c_gate = self.tech.nmos.c_gate
        c_sd = self.tech.nmos.c_sd
        r_drive = self._r_unit * cell.drive_depth()
        intrinsic = r_drive * self.output_capacitance(name)
        for stage in cell.all_stages()[:-1]:
            depth = max(series_depth(stage.pulldown),
                        series_depth(stage.pullup))
            internal_load = 2.0 * c_sd + 2.0 * c_gate
            stage_rc = self._r_unit * depth * internal_load
            if stage.is_complement_inverter:
                stage_rc *= 0.5
            intrinsic += stage_rc
        timing = CellTiming(intrinsic, r_drive)
        self._timings[name] = timing
        return timing

    def delay(self, name: str, load: float) -> float:
        """Propagation delay of a cell driving ``load`` farads (s)."""
        return self.timing(name).delay(load)

    # -- cells by function --------------------------------------------------

    def inverter(self) -> Cell:
        """The smallest cell computing NOT (required by the mapper)."""
        best: Optional[Cell] = None
        for cell in self:
            if cell.n_inputs == 1 and cell.truth_table == 0b01:
                if best is None or self.area(cell.name) < self.area(best.name):
                    best = cell
        if best is None:
            raise LibraryError(f"library {self.name!r} has no inverter")
        return best

    def match_index(self) -> Dict[int, Dict[int, Tuple[str, Tuple[int, ...]]]]:
        """Function-matching index for the technology mapper.

        Returns ``{arity: {truth_table: (cell_name, permutation)}}``
        where ``permutation[i]`` is the cell pin index that cut leaf
        ``i`` must feed for the cell to realize the table.  On
        collisions the smallest-area cell wins.
        """
        if self._match_index is not None:
            return self._match_index
        index: Dict[int, Dict[int, Tuple[str, Tuple[int, ...]]]] = {}
        for cell in self:
            arity = cell.n_inputs
            table = cell.truth_table
            bucket = index.setdefault(arity, {})
            area = self.area(cell.name)
            for permuted, perm in all_permutations(table, arity):
                current = bucket.get(permuted)
                if current is not None:
                    incumbent_area = self.area(current[0])
                    if (incumbent_area, current[0]) <= (area, cell.name):
                        continue
                # ``permuted`` is the function when cut leaf i feeds cell
                # pin perm[i].
                bucket[permuted] = (cell.name, perm)
        self._match_index = index
        return index

    def match(self, table: int, arity: int):
        """Match a cut function directly; returns (cell, perm) or None."""
        bucket = self.match_index().get(arity)
        if not bucket:
            return None
        return bucket.get(table)

    def match_negated(self, table: int, arity: int):
        """Match the complement of a cut function."""
        return self.match(negate(table, arity), arity)
