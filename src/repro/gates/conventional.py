"""Conventional-function cells with pure complementary (CMOS-style) topologies.

These 20 cells exist in all three libraries of the paper's comparison.
In the CMOS and conventional-CNTFET libraries the XOR/XNOR/MUX cells are
built the classic way — complex AOI-style networks plus input inverters —
because without ambipolar devices there are no transmission gates.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.devices.parameters import TechnologyParams, CMOS_32NM, CNTFET_32NM
from repro.gates.cells import Cell, Stage, nfet
from repro.gates.library import Library
from repro.gates.topology import parallel, series


def _single(name: str, pd, inputs, description: str) -> Cell:
    """One-stage cell with the given pull-down network."""
    return Cell(name, tuple(inputs), (Stage("y", pd),), description)


def _buffered(name: str, pd, inputs, description: str) -> Cell:
    """Two-stage cell: the given network followed by an output inverter."""
    stages = (Stage("i0", pd), Stage("y", nfet("i0")))
    return Cell(name, tuple(inputs), stages, description)


def conventional_cells() -> List[Cell]:
    """The 20 conventional-function cells (CMOS-style topologies)."""
    cells: List[Cell] = []
    add = cells.append

    add(_single("INV", nfet("a"), "a", "a'"))
    add(_buffered("BUF", nfet("a"), "a", "a"))

    add(_single("NAND2", series(nfet("a"), nfet("b")), "ab", "(ab)'"))
    add(_single("NAND3", series(nfet("a"), nfet("b"), nfet("c")),
                "abc", "(abc)'"))
    add(_single("NAND4", series(nfet("a"), nfet("b"), nfet("c"), nfet("d")),
                "abcd", "(abcd)'"))
    add(_single("NOR2", parallel(nfet("a"), nfet("b")), "ab", "(a+b)'"))
    add(_single("NOR3", parallel(nfet("a"), nfet("b"), nfet("c")),
                "abc", "(a+b+c)'"))
    add(_single("NOR4", parallel(nfet("a"), nfet("b"), nfet("c"), nfet("d")),
                "abcd", "(a+b+c+d)'"))
    add(_buffered("AND2", series(nfet("a"), nfet("b")), "ab", "ab"))
    add(_buffered("OR2", parallel(nfet("a"), nfet("b")), "ab", "a+b"))

    add(_single("AOI21", parallel(series(nfet("a"), nfet("b")), nfet("c")),
                "abc", "(ab+c)'"))
    add(_single("AOI22", parallel(series(nfet("a"), nfet("b")),
                                  series(nfet("c"), nfet("d"))),
                "abcd", "(ab+cd)'"))
    add(_single("OAI21", series(parallel(nfet("a"), nfet("b")), nfet("c")),
                "abc", "((a+b)c)'"))
    add(_single("OAI22", series(parallel(nfet("a"), nfet("b")),
                                parallel(nfet("c"), nfet("d"))),
                "abcd", "((a+b)(c+d))'"))
    add(_single("AOI211", parallel(series(nfet("a"), nfet("b")),
                                   nfet("c"), nfet("d")),
                "abcd", "(ab+c+d)'"))
    add(_single("OAI211", series(parallel(nfet("a"), nfet("b")),
                                 nfet("c"), nfet("d")),
                "abcd", "((a+b)cd)'"))

    # MUXI2(s, a, b) = (s a + s' b)'
    mux_pd = parallel(series(nfet("s"), nfet("a")),
                      series(nfet("s'"), nfet("b")))
    add(_single("MUXI2", mux_pd, "sab", "(sa+s'b)'"))
    add(_buffered("MUX2", mux_pd, "sab", "sa+s'b"))

    # XOR2(a, b): pull-down conducts when the output must be 0, i.e. for
    # a XNOR b = ab + a'b'.
    xor_pd = parallel(series(nfet("a"), nfet("b")),
                      series(nfet("a'"), nfet("b'")))
    add(_single("XOR2", xor_pd, "ab", "a^b"))
    xnor_pd = parallel(series(nfet("a"), nfet("b'")),
                       series(nfet("a'"), nfet("b")))
    add(_single("XNOR2", xnor_pd, "ab", "(a^b)'"))
    return cells


#: Expected functions of the conventional cells, used by the unit tests.
CONVENTIONAL_FUNCTIONS: Dict[str, Callable[..., bool]] = {
    "INV": lambda a: not a,
    "BUF": lambda a: a,
    "NAND2": lambda a, b: not (a and b),
    "NAND3": lambda a, b, c: not (a and b and c),
    "NAND4": lambda a, b, c, d: not (a and b and c and d),
    "NOR2": lambda a, b: not (a or b),
    "NOR3": lambda a, b, c: not (a or b or c),
    "NOR4": lambda a, b, c, d: not (a or b or c or d),
    "AND2": lambda a, b: a and b,
    "OR2": lambda a, b: a or b,
    "AOI21": lambda a, b, c: not ((a and b) or c),
    "AOI22": lambda a, b, c, d: not ((a and b) or (c and d)),
    "OAI21": lambda a, b, c: not ((a or b) and c),
    "OAI22": lambda a, b, c, d: not ((a or b) and (c or d)),
    "AOI211": lambda a, b, c, d: not ((a and b) or c or d),
    "OAI211": lambda a, b, c, d: not ((a or b) and c and d),
    "MUXI2": lambda s, a, b: not (a if s else b),
    "MUX2": lambda s, a, b: (a if s else b),
    "XOR2": lambda a, b: a != b,
    "XNOR2": lambda a, b: a == b,
}


def conventional_cell_names() -> List[str]:
    """Names of the 20 conventional-function cells."""
    return list(CONVENTIONAL_FUNCTIONS)


def cmos_library(tech: TechnologyParams = CMOS_32NM) -> Library:
    """The CMOS reference library of the paper's comparison."""
    return Library("cmos", tech, conventional_cells())


def conventional_cntfet_library(
        tech: TechnologyParams = CNTFET_32NM) -> Library:
    """The reduced CNTFET library with only MOSFET-like CNTFETs.

    Same functions and topologies as the CMOS library, but implemented
    in the CNTFET technology (lower capacitance and leakage, higher
    drive).  The paper calls this "CNTFET Technology (conventional
    gates)" in Table 1.
    """
    return Library("cntfet-conventional", tech, conventional_cells())
