"""Gate-level simulation and circuit power estimation.

The paper estimates circuit power by applying 640 K random patterns to
the mapped netlists.  :mod:`repro.sim.bitsim` performs that simulation
64 patterns at a time on numpy uint64 words; :mod:`repro.sim.estimator`
turns the measured toggle rates and input-state statistics into the
four power components of Eq. 1, using the same pattern-classified
leakage data as the library characterization.
"""

from repro.sim.bitsim import BitParallelSimulator, SimulationStats
from repro.sim.activity import (
    activity_key,
    netlist_activity_key,
    pricing_group_key,
    simulation_stats,
)
from repro.sim.estimator import (
    BoundPricing,
    CircuitPowerReport,
    PricingModel,
    estimate_circuit_power,
    estimate_many,
)
from repro.sim.backends import (
    EstimatorBackend,
    available_backends,
    get_backend,
    register_backend,
)

__all__ = [
    "BitParallelSimulator",
    "SimulationStats",
    "activity_key",
    "netlist_activity_key",
    "pricing_group_key",
    "simulation_stats",
    "BoundPricing",
    "CircuitPowerReport",
    "PricingModel",
    "estimate_circuit_power",
    "estimate_many",
    "EstimatorBackend",
    "available_backends",
    "get_backend",
    "register_backend",
]
