"""64-way bit-parallel logic simulation of mapped netlists.

Each net holds a numpy ``uint64`` array; bit ``i`` of word ``w`` is the
net's value under pattern ``64*w + i``.  Cells are evaluated through
their ISOP covers (a handful of AND/OR word operations each), so a full
640 K-pattern run over a few thousand gates takes well under a second.

Besides net values the simulator collects:

* toggle counts between consecutive patterns (switching activity for
  Eq. 2) and
* per-gate input-state frequencies (to weight the pattern-classified
  leakage currents by how often each input vector actually occurs),
  optionally on a pattern subsample since leakage averages converge
  much faster than activity estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.synth.netlist import MappedNetlist
from repro.synth.sop import isop

_WORD_BITS = 64
_UINT64_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Default pattern budget of the leakage-state histogram (leakage
#: averages converge much faster than activity estimates).
DEFAULT_STATE_SAMPLE = 65_536


@dataclass
class SimulationStats:
    """Results of one simulation run."""

    n_patterns: int
    #: toggles between consecutive patterns, per net.
    toggles: Dict[str, int]
    #: per-gate input-vector counts: gate name -> array of size 2^k.
    state_counts: Dict[str, np.ndarray]
    #: patterns actually used for the state counts.
    n_state_patterns: int

    def toggle_rate(self, net: str) -> float:
        """Transitions per cycle for a net (the measured activity)."""
        if self.n_patterns < 2:
            return 0.0
        return self.toggles.get(net, 0) / (self.n_patterns - 1)

    def toggle_rates(self, nets: Sequence[str]) -> np.ndarray:
        """Vectorized :meth:`toggle_rate` over many nets at once.

        Element ``i`` equals ``toggle_rate(nets[i])`` bit for bit (the
        same int64 toggle count divided by the same denominator); the
        pricing layer consumes whole-netlist activity as one array
        instead of one dictionary lookup per gate.
        """
        if self.n_patterns < 2:
            return np.zeros(len(nets))
        counts = np.fromiter((self.toggles.get(net, 0) for net in nets),
                             dtype=np.int64, count=len(nets))
        return counts / (self.n_patterns - 1)

    # -- persistence --------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """Plain-JSON form (integers only, so the round trip is exact)."""
        return {
            "n_patterns": self.n_patterns,
            "n_state_patterns": self.n_state_patterns,
            "toggles": dict(self.toggles),
            "state_counts": {name: counts.tolist()
                             for name, counts in self.state_counts.items()},
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "SimulationStats":
        """Inverse of :meth:`to_payload`.

        Raises ``TypeError``/``ValueError`` on malformed payloads (the
        activity cache treats either as a miss).
        """
        state_counts = {
            str(name): np.asarray(counts, dtype=np.int64)
            for name, counts in dict(payload["state_counts"]).items()}
        return cls(
            n_patterns=int(payload["n_patterns"]),
            toggles={str(net): int(count)
                     for net, count in dict(payload["toggles"]).items()},
            state_counts=state_counts,
            n_state_patterns=int(payload["n_state_patterns"]),
        )


def _popcount_words(words: np.ndarray) -> int:
    """Total set bits across a uint64 array."""
    return int(np.bitwise_count(words).sum())


class BitParallelSimulator:
    """Simulator bound to one mapped netlist."""

    def __init__(self, netlist: MappedNetlist):
        netlist.validate()
        self.netlist = netlist
        self._covers: Dict[str, List[Tuple[int, int]]] = {}
        library = netlist.library
        for cell_name in {gate.cell for gate in netlist.gates}:
            cell = library.cell(cell_name)
            cubes = isop(cell.truth_table, cell.n_inputs)
            self._covers[cell_name] = [(c.mask, c.phases) for c in cubes]

    # -- core evaluation -----------------------------------------------------

    def _evaluate_gate(self, cell_name: str,
                       inputs: List[np.ndarray]) -> np.ndarray:
        """Evaluate one cell over word arrays via its ISOP cover."""
        cover = self._covers[cell_name]
        n_words = inputs[0].shape[0] if inputs else 0
        result = np.zeros(n_words, dtype=np.uint64)
        for mask, phases in cover:
            term = np.full(n_words, _UINT64_ALL_ONES, dtype=np.uint64)
            var = 0
            remaining = mask
            while remaining:
                if remaining & 1:
                    word = inputs[var]
                    if not (phases >> var) & 1:
                        word = np.bitwise_not(word)
                    term &= word
                remaining >>= 1
                var += 1
            result |= term
        return result

    def run(self, n_patterns: int, seed: int = 2010,
            state_patterns: Optional[int] = None) -> SimulationStats:
        """Simulate ``n_patterns`` uniform random input patterns.

        Args:
            n_patterns: total patterns (the paper uses 640 K).
            seed: RNG seed (all experiments are reproducible).
            state_patterns: patterns used for the per-gate input-state
                histogram (defaults to min(n_patterns, 65536)).

        Returns:
            A :class:`SimulationStats` with toggle counts and state
            frequencies.
        """
        if n_patterns < 1:
            raise SimulationError("n_patterns must be >= 1")
        if state_patterns is None:
            state_patterns = min(n_patterns, DEFAULT_STATE_SAMPLE)
        state_patterns = min(state_patterns, n_patterns)

        netlist = self.netlist
        n_words = (n_patterns + _WORD_BITS - 1) // _WORD_BITS
        tail_bits = n_patterns - (n_words - 1) * _WORD_BITS
        tail_mask = (_UINT64_ALL_ONES if tail_bits == _WORD_BITS
                     else np.uint64((1 << tail_bits) - 1))

        rng = np.random.default_rng(seed)
        values: Dict[str, np.ndarray] = {}
        for name in netlist.pi_names:
            words = rng.integers(0, 2**64, size=n_words, dtype=np.uint64)
            words[-1] &= tail_mask
            values[name] = words

        for gate in netlist.gates:
            inputs = [values[net] for net in gate.inputs]
            out = self._evaluate_gate(gate.cell, inputs)
            out[-1] &= tail_mask
            values[gate.output] = out

        toggles = {net: self._count_toggles(words, n_patterns)
                   for net, words in values.items()}

        # Use whole words for the state histogram, then histogram the
        # per-pattern input vectors directly: unpack each input net to
        # one bit per pattern, assemble the k-bit vector index and
        # bincount it — one numpy pass per gate instead of 2^k masked
        # popcounts.
        state_words = min((state_patterns + _WORD_BITS - 1) // _WORD_BITS,
                          n_words)
        state_patterns = min(state_words * _WORD_BITS, n_patterns)
        state_counts: Dict[str, np.ndarray] = {}
        library = netlist.library
        unpacked: Dict[str, np.ndarray] = {}
        pending_uses: Dict[str, int] = {}
        for gate in netlist.gates:
            for net in gate.inputs:
                pending_uses[net] = pending_uses.get(net, 0) + 1

        def bits_of(net: str) -> np.ndarray:
            cached = unpacked.get(net)
            if cached is None:
                words = values[net][:state_words]
                # Force little-endian byte order (no-op copy-free on LE
                # hosts) so the uint8 view + little bit order yields
                # bits in pattern order; slice off the padded tail.
                cached = np.unpackbits(
                    words.astype("<u8", copy=False).view(np.uint8),
                    bitorder="little")[:state_patterns]
                unpacked[net] = cached
            # Evict once the last reader is served: peak memory tracks
            # the live fanout frontier, not the whole netlist.
            pending_uses[net] -= 1
            if pending_uses[net] == 0:
                del unpacked[net]
            return cached

        for gate in netlist.gates:
            cell = library.cell(gate.cell)
            k = cell.n_inputs
            # k <= 6 (MAX_VARS=8), so the vector index fits in uint8 and
            # the per-input contributions OR together without overflow.
            vectors = np.zeros(state_patterns, dtype=np.uint8)
            for var, net in enumerate(gate.inputs):
                vectors |= bits_of(net) << np.uint8(var)
            state_counts[gate.name] = np.bincount(
                vectors, minlength=1 << k).astype(np.int64)
        return SimulationStats(
            n_patterns=n_patterns,
            toggles=toggles,
            state_counts=state_counts,
            n_state_patterns=state_patterns,
        )

    @staticmethod
    def _count_toggles(words: np.ndarray, n_patterns: int) -> int:
        """Transitions between consecutive patterns of one net."""
        if n_patterns < 2:
            return 0
        # Within-word transitions: bit i vs bit i+1.
        shifted = np.right_shift(words, np.uint64(1))
        within = words ^ shifted
        within &= np.uint64((1 << (_WORD_BITS - 1)) - 1)  # drop bit 63
        total = _popcount_words(within)
        # Cross-word transitions: bit 63 of word w vs bit 0 of word w+1.
        if words.shape[0] > 1:
            high = np.right_shift(words[:-1], np.uint64(_WORD_BITS - 1))
            low = words[1:] & np.uint64(1)
            total += int((high ^ low).sum())
        # Remove phantom transitions inside the padded tail of the last
        # word: patterns beyond n_patterns are zero, so the only phantom
        # is the boundary at the last real pattern (if it is 1).
        tail_bits = n_patterns - (words.shape[0] - 1) * _WORD_BITS
        if tail_bits < _WORD_BITS:
            last_real = (int(words[-1]) >> (tail_bits - 1)) & 1
            total -= last_real
        return total

    def output_words(self, n_patterns: int, seed: int = 2010
                     ) -> Dict[str, np.ndarray]:
        """PO values under the seeded random patterns (for equivalence)."""
        netlist = self.netlist
        n_words = (n_patterns + _WORD_BITS - 1) // _WORD_BITS
        tail_bits = n_patterns - (n_words - 1) * _WORD_BITS
        tail_mask = (_UINT64_ALL_ONES if tail_bits == _WORD_BITS
                     else np.uint64((1 << tail_bits) - 1))
        rng = np.random.default_rng(seed)
        values: Dict[str, np.ndarray] = {}
        for name in netlist.pi_names:
            words = rng.integers(0, 2**64, size=n_words, dtype=np.uint64)
            words[-1] &= tail_mask
            values[name] = words
        for gate in netlist.gates:
            inputs = [values[net] for net in gate.inputs]
            out = self._evaluate_gate(gate.cell, inputs)
            out[-1] &= tail_mask
            values[gate.output] = out
        outputs: Dict[str, np.ndarray] = {}
        for name, (kind, value) in netlist.po_bindings:
            if kind == "const":
                word = _UINT64_ALL_ONES if value else np.uint64(0)
                outputs[name] = np.full(n_words, word, dtype=np.uint64)
                outputs[name][-1] &= tail_mask
            else:
                outputs[name] = values[value]
        return outputs
