"""The cached activity layer of power estimation.

The Eq. 1-5 methodology factors into two halves: *activity extraction*
(toggle counts and input-state histograms from the random-pattern
bit-parallel simulation — expensive, a function of the mapped netlist
and the pattern budget only) and *pricing* (closed-form arithmetic in
VDD, frequency and the leakage tables — cheap).  This module owns the
first half as a first-class cacheable artifact:

* :func:`simulation_stats` returns the
  :class:`~repro.sim.bitsim.SimulationStats` of a netlist, keyed by a
  stable content hash of ``(netlist content, n_patterns, seed,
  state_patterns)``.  Results are held in a per-process LRU and,
  unless :mod:`repro.cache` persistence is disabled, on disk — a
  frequency sweep, a repeated server query or a re-run of a benchmark
  never re-simulates what any earlier run already measured.
* :func:`netlist_activity_key` hashes exactly what the simulation
  depends on: PI order, the gate list and each cell's truth table.
  Two netlists mapped at different supplies usually hash equal (the
  logic structure is the same; only timing and leakage differ), which
  is what lets a VDD sweep share one simulation.
* :func:`pricing_group_key` hashes everything *except* the pure
  pricing axes (vdd, frequency, fanout) of a task/query — tasks that
  collide on it share one simulation; the sweep runner and the serving
  engine both group by it.

The cache is content-addressed, so it never needs invalidating: any
change to the netlist, the pattern budget or the seed produces a fresh
key.  It is safe (if redundant) for two threads to race on the same
cold key; both simulations are deterministic and identical.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

from repro.cache import default_cache, single_flight, stable_hash
from repro.sim.bitsim import (
    _WORD_BITS,
    DEFAULT_STATE_SAMPLE,
    SimulationStats,
)

#: Disk-cache namespace for persisted simulation statistics.
ACTIVITY_NAMESPACE = "activity"

#: Version of the hashed key payload *and* the stored layout.  Bump on
#: any change to either; old disk entries are then never read again.
ACTIVITY_VERSION = 1

#: Default capacity of the per-process stats LRU.  Entries are a few
#: hundred KB for the largest benchmarks, so this bounds the cache to
#: tens of MB worst case.
DEFAULT_MAX_CACHED_STATS = 32

#: Attribute name used to memoize a netlist's content key on the
#: instance (mapped netlists are effectively immutable once built).
_KEY_ATTR = "_repro_activity_key"


def effective_state_patterns(n_patterns: int,
                             state_patterns: Optional[int] = None) -> int:
    """The state-histogram budget a simulation will actually use.

    Mirrors the normalization of :meth:`BitParallelSimulator.run`
    (default sample, cap at ``n_patterns``, rounding to whole 64-bit
    words), so two requests that differ only in an immaterial way —
    say 100 vs 128 state patterns — share one cache entry.
    """
    if state_patterns is None:
        state_patterns = min(n_patterns, DEFAULT_STATE_SAMPLE)
    state_patterns = min(state_patterns, n_patterns)
    n_words = (n_patterns + _WORD_BITS - 1) // _WORD_BITS
    state_words = min((state_patterns + _WORD_BITS - 1) // _WORD_BITS,
                      n_words)
    return min(state_words * _WORD_BITS, n_patterns)


def netlist_activity_key(netlist) -> str:
    """Content hash of everything the bit-parallel simulation sees.

    PI order (the RNG assigns pattern words in that order), the gate
    list (names key the state histograms; inputs/outputs wire the
    evaluation) and each cell's logic function.  Library electricals —
    capacitances, timing, leakage — are deliberately absent: they
    price, they do not simulate.  The key is memoized on the netlist
    instance.
    """
    cached = netlist.__dict__.get(_KEY_ATTR)
    if cached is not None:
        return cached
    library = netlist.library
    cell_names = sorted({gate.cell for gate in netlist.gates})
    payload = {
        "version": ACTIVITY_VERSION,
        "pis": list(netlist.pi_names),
        "gates": [[gate.name, gate.cell, list(gate.inputs), gate.output]
                  for gate in netlist.gates],
        "cells": {name: [library.cell(name).n_inputs,
                         library.cell(name).truth_table]
                  for name in cell_names},
    }
    key = stable_hash(payload)
    netlist.__dict__[_KEY_ATTR] = key
    return key


def activity_key(netlist, n_patterns: int, seed: int = 2010,
                 state_patterns: Optional[int] = None) -> str:
    """The full cache key of one simulation request."""
    return stable_hash({
        "version": ACTIVITY_VERSION,
        "netlist": netlist_activity_key(netlist),
        "n_patterns": n_patterns,
        "seed": seed,
        "state_patterns": effective_state_patterns(n_patterns,
                                                   state_patterns),
    })


def pricing_group_key(circuit: str, library: str, config) -> str:
    """Hash of a task/query's activity-determining axes.

    Everything of an :class:`~repro.experiments.config.ExperimentConfig`
    except the pure pricing knobs (vdd, frequency, fanout): two sweep
    tasks or service queries that collide here can share one simulation
    — provided the mapped netlists also agree, which the runner checks
    per supply via :func:`netlist_activity_key` (vdd can, rarely,
    change the mapping).
    """
    return stable_hash({
        "version": ACTIVITY_VERSION,
        "circuit": circuit,
        "library": library,
        "synthesize": config.synthesize,
        "mapper_cut_size": config.mapper_cut_size,
        "mapper_cut_limit": config.mapper_cut_limit,
        "mapper_area_rounds": config.mapper_area_rounds,
        "n_patterns": config.n_patterns,
        "seed": config.seed,
        "state_patterns": effective_state_patterns(config.n_patterns,
                                                   config.state_patterns),
        "backend": config.backend,
    })


class _StatsCache:
    """The process-wide LRU of simulation statistics (thread-safe)."""

    def __init__(self, maxsize: int):
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.simulations = 0
        self._lock = threading.Lock()
        self._data: "OrderedDict[str, SimulationStats]" = OrderedDict()

    def get(self, key: str) -> Optional[SimulationStats]:
        with self._lock:
            stats = self._data.get(key)
            if stats is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return stats

    def put(self, key: str, stats: SimulationStats) -> None:
        with self._lock:
            self._data[key] = stats
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def info(self) -> Dict[str, int]:
        with self._lock:
            return {"size": len(self._data), "max": self.maxsize,
                    "hits": self.hits, "misses": self.misses,
                    "disk_hits": self.disk_hits,
                    "simulations": self.simulations}

    def clear(self, reset_counters: bool = False) -> None:
        with self._lock:
            self._data.clear()
            if reset_counters:
                self.hits = self.misses = 0
                self.disk_hits = self.simulations = 0


_CACHE = _StatsCache(DEFAULT_MAX_CACHED_STATS)


def cache_info() -> Dict[str, int]:
    """Occupancy and hit/miss/simulation counters of the stats LRU."""
    return _CACHE.info()


def clear_cache(reset_counters: bool = False) -> None:
    """Drop every cached entry (tests and memory-pressure escape hatch)."""
    _CACHE.clear(reset_counters)


def _valid_payload(payload: Any, netlist, n_patterns: int,
                   state_patterns: int) -> bool:
    """Structural check of a disk entry against the requesting netlist."""
    if not isinstance(payload, dict):
        return False
    if payload.get("n_patterns") != n_patterns:
        return False
    if payload.get("n_state_patterns") != state_patterns:
        return False
    toggles = payload.get("toggles")
    counts = payload.get("state_counts")
    if not isinstance(toggles, dict) or not isinstance(counts, dict):
        return False
    library = netlist.library
    for gate in netlist.gates:
        entry = counts.get(gate.name)
        size = 1 << library.cell(gate.cell).n_inputs
        if not isinstance(entry, list) or len(entry) != size:
            return False
        if gate.output not in toggles:
            return False
    return all(name in toggles for name in netlist.pi_names)


def simulation_stats(netlist, n_patterns: int, seed: int = 2010,
                     state_patterns: Optional[int] = None,
                     kernel: str = "auto") -> SimulationStats:
    """The (cached) simulation statistics of a mapped netlist.

    Checks the per-process LRU, then the :mod:`repro.cache` disk store,
    and only then runs the bit-parallel simulation with the selected
    kernel (:func:`repro.sim.kernels.run_simulation`).  ``kernel`` is
    execution policy only — the gate and array kernels are
    bit-identical, so it is deliberately absent from the cache key and
    a warm entry answers every kernel's request.  The returned object
    is shared — treat it as immutable.

    The cold path is **cross-process single-flight**
    (:func:`repro.cache.single_flight`): when several worker processes
    of a serving fleet miss the same key at once, exactly one runs the
    simulation while the others poll the disk tier for its entry — and
    take over leadership if it dies mid-compute.  The ``simulations``
    counter therefore counts *fleet-wide* work when summed across
    workers.
    """
    key = activity_key(netlist, n_patterns, seed, state_patterns)
    stats = _CACHE.get(key)
    if stats is not None:
        return stats
    disk = default_cache()
    effective = effective_state_patterns(n_patterns, state_patterns)

    def probe() -> Optional[SimulationStats]:
        payload = disk.get(ACTIVITY_NAMESPACE, key)
        if not _valid_payload(payload, netlist, n_patterns, effective):
            return None
        try:
            return SimulationStats.from_payload(payload)
        except (TypeError, ValueError, KeyError):
            return None

    simulated = []

    def compute() -> SimulationStats:
        from repro.sim.kernels import run_simulation

        simulated.append(True)
        stats = run_simulation(netlist, n_patterns, seed, state_patterns,
                               kernel=kernel)
        with _CACHE._lock:
            _CACHE.simulations += 1
        disk.put(ACTIVITY_NAMESPACE, key, stats.to_payload())
        return stats

    stats = probe()
    if stats is None:
        stats = single_flight(disk, ACTIVITY_NAMESPACE, key,
                              compute, probe)
    if not simulated:
        # Served from the disk tier (directly, or from a single-flight
        # leader's entry after waiting) — either way a disk hit.
        with _CACHE._lock:
            _CACHE.disk_hits += 1
    _CACHE.put(key, stats)
    return stats
