"""Levelized struct-of-arrays bit-parallel simulation.

The per-gate simulator (:mod:`repro.sim.bitsim`) walks the netlist one
cell instance at a time in Python — fine at paper scale (a few thousand
gates), a hard floor at the 10^5–10^6-gate synthetic netlists the
scaling studies need.  This module refactors the mapped netlist into a
struct-of-arrays form and evaluates it level by level:

* every net gets an integer index (PIs first, then gate outputs in
  topological order) and all net values live in one
  ``(n_nets, n_words)`` uint64 matrix;
* gates are grouped by ``(logic level, cell)``; one group evaluates as
  a handful of whole-matrix numpy bitwise ops over its gathered fanin
  rows — the Python interpreter touches ``(level, cell, cube, var)``
  tuples, never individual gates;
* toggle counting and the input-state histograms run vectorized over
  the whole matrix (the histogram in memory-bounded pattern x gate
  chunks).

Every operation is exact integer/bitwise arithmetic on the same
tail-masked words, drawn from the same per-PI RNG stream, so
:meth:`ArraySimulator.run` is **bit-identical** to
:meth:`BitParallelSimulator.run` — same toggle counts, same state
histograms, same ``SimulationStats`` — which the property tests and the
12-benchmark identity test assert.  Kernel choice is therefore pure
performance policy (:mod:`repro.sim.kernels`), invisible to cache keys
and stored results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.sim.bitsim import (
    _UINT64_ALL_ONES,
    _WORD_BITS,
    DEFAULT_STATE_SAMPLE,
    SimulationStats,
)
from repro.synth.netlist import MappedNetlist
from repro.synth.sop import isop

#: Attribute memoizing the levelized form on the netlist instance
#: (mapped netlists are effectively immutable once built).
_ARRAYS_ATTR = "_repro_levelized"

#: Word budget of the deepest AND-tree level of one state-histogram
#: work chunk (8 bytes/word, so the transient stays at tens of MB
#: regardless of netlist size).
_STATE_CHUNK_ELEMS = 1 << 23

#: Row chunk of the vectorized toggle count (bounds the XOR/popcount
#: temporaries to a few MB at any netlist size).
_TOGGLE_CHUNK_ROWS = 4096


@dataclass(frozen=True)
class _LevelGroup:
    """All gates of one cell type within one logic level."""

    cell_id: int
    #: Net indices of the gate outputs, shape (g,).
    outputs: np.ndarray
    #: Net indices of the gate fanins, shape (g, k); column = pin.
    fanins: np.ndarray


@dataclass(frozen=True)
class _CellGroup:
    """All gates of one cell type across the whole netlist."""

    cell_id: int
    #: Positions into the netlist gate list, shape (g,).
    gate_positions: np.ndarray
    #: Net indices of the gate fanins, shape (g, k).
    fanins: np.ndarray


class LevelizedNetlist:
    """The struct-of-arrays / levelized form of one mapped netlist.

    Net index space: PI ``i`` is net ``i``; the output of gate ``j``
    (netlist order) is net ``n_pis + j``.  Cell identities are small
    ints into ``cell_names``; ISOP covers are precomputed per cell.
    """

    def __init__(self, netlist: MappedNetlist):
        netlist.validate()
        self.netlist = netlist
        library = netlist.library

        self.n_pis = len(netlist.pi_names)
        self.n_gates = len(netlist.gates)
        self.n_nets = self.n_pis + self.n_gates
        #: Net name per net index (PIs, then gate outputs).
        self.net_names: List[str] = list(netlist.pi_names)
        self.net_names.extend(gate.output for gate in netlist.gates)
        self.gate_names: List[str] = [gate.name for gate in netlist.gates]

        net_index: Dict[str, int] = {
            name: i for i, name in enumerate(self.net_names)}

        #: Distinct cells in first-seen order; covers/arity per cell id.
        #: A cover cube is held both packed (mask, phases) and expanded
        #: to its (var, positive) literal list for the evaluation loop.
        self.cell_names: List[str] = []
        self.covers: List[List[Tuple[int, int]]] = []
        self.cube_literals: List[List[List[Tuple[int, bool]]]] = []
        self.arity: List[int] = []
        cell_ids: Dict[str, int] = {}
        cell_of = np.empty(self.n_gates, dtype=np.intp)
        for j, gate in enumerate(netlist.gates):
            cid = cell_ids.get(gate.cell)
            if cid is None:
                cell = library.cell(gate.cell)
                cid = cell_ids[gate.cell] = len(self.cell_names)
                self.cell_names.append(gate.cell)
                cubes = isop(cell.truth_table, cell.n_inputs)
                self.covers.append([(c.mask, c.phases) for c in cubes])
                self.cube_literals.append(
                    [[(var, bool((c.phases >> var) & 1))
                      for var in range(cell.n_inputs)
                      if (c.mask >> var) & 1]
                     for c in cubes])
                self.arity.append(cell.n_inputs)
            cell_of[j] = cid

        # Flat struct-of-arrays connectivity: all fanin net indices in
        # gate order, plus a pin-count-padded (n_gates, kmax) matrix
        # (rows repeat their last fanin, which is maximum- and
        # gather-neutral) for whole-netlist level computation.
        ks = np.fromiter((len(gate.inputs) for gate in netlist.gates),
                         dtype=np.intp, count=self.n_gates)
        arity_arr = np.asarray(self.arity, dtype=np.intp)
        bad = np.flatnonzero(arity_arr[cell_of] != ks) if self.n_gates \
            else np.asarray([], dtype=np.intp)
        if bad.size:
            gate = netlist.gates[int(bad[0])]
            raise SimulationError(
                f"gate {gate.name}: {len(gate.inputs)} connections "
                f"for {gate.cell} "
                f"({library.cell(gate.cell).n_inputs} pins)")
        pins = np.fromiter(
            (net_index[net] for gate in netlist.gates
             for net in gate.inputs),
            dtype=np.intp, count=int(ks.sum()))
        offsets = np.zeros(self.n_gates + 1, dtype=np.intp)
        np.cumsum(ks, out=offsets[1:])
        kmax = int(ks.max()) if self.n_gates else 0
        if kmax:
            columns = np.minimum(np.arange(kmax, dtype=np.intp),
                                 ks[:, None] - 1)
            fan_pad = pins[offsets[:-1, None] + columns]
        else:
            fan_pad = np.zeros((self.n_gates, 0), dtype=np.intp)

        # Logic levels: PIs are level 0, a gate is one past its deepest
        # fanin.  Computed in topological-order blocks: within a block
        # the update is iterated to its (shallow) internal fixpoint, so
        # the whole pass costs O(pins) numpy work plus one iteration
        # per level of internal depth — no per-gate Python loop.
        level = np.zeros(self.n_nets, dtype=np.int64)
        if self.n_gates and kmax:
            block = 4096
            for a in range(0, self.n_gates, block):
                b = min(a + block, self.n_gates)
                rows = fan_pad[a:b]
                outs = np.arange(self.n_pis + a, self.n_pis + b)
                previous = None
                while True:
                    candidate = level[rows].max(axis=1) + 1
                    if previous is not None and np.array_equal(
                            candidate, previous):
                        break
                    level[outs] = candidate
                    previous = candidate
        elif self.n_gates:
            level[self.n_pis:] = 1

        # Gates of one (level, cell) pair have no data dependencies
        # among each other and evaluate as one group; boundaries come
        # from one stable lexsort, members stay in gate order.
        gate_levels = level[self.n_pis:]
        max_level = int(gate_levels.max()) if self.n_gates else 0
        #: Evaluation schedule: per level (ascending), the cell groups.
        self.schedule: List[List[_LevelGroup]] = [
            [] for _ in range(max_level)]
        if self.n_gates:
            order = np.lexsort((cell_of, gate_levels))
            sorted_levels = gate_levels[order]
            sorted_cells = cell_of[order]
            breaks = np.flatnonzero(np.diff(sorted_levels)
                                    | np.diff(sorted_cells))
            starts = np.concatenate(([0], breaks + 1))
            ends = np.concatenate((breaks + 1, [self.n_gates]))
            for start, end in zip(starts, ends):
                members = order[start:end]
                cell_id = int(sorted_cells[start])
                self.schedule[int(sorted_levels[start]) - 1].append(
                    _LevelGroup(
                        cell_id=cell_id,
                        outputs=members + self.n_pis,
                        fanins=fan_pad[members, :arity_arr[cell_id]]))

        #: Histogram grouping: gates by cell across all levels.
        self.cell_groups: List[_CellGroup] = []
        if self.n_gates:
            order = np.argsort(cell_of, kind="stable")
            sorted_cells = cell_of[order]
            breaks = np.flatnonzero(np.diff(sorted_cells))
            starts = np.concatenate(([0], breaks + 1))
            ends = np.concatenate((breaks + 1, [self.n_gates]))
            for start, end in zip(starts, ends):
                members = order[start:end]
                cell_id = int(sorted_cells[start])
                self.cell_groups.append(_CellGroup(
                    cell_id=cell_id,
                    gate_positions=members,
                    fanins=fan_pad[members, :arity_arr[cell_id]]))

    @property
    def n_levels(self) -> int:
        return len(self.schedule)


def levelized(netlist: MappedNetlist) -> LevelizedNetlist:
    """The (instance-memoized) levelized form of a mapped netlist."""
    cached = netlist.__dict__.get(_ARRAYS_ATTR)
    if cached is None:
        cached = LevelizedNetlist(netlist)
        netlist.__dict__[_ARRAYS_ATTR] = cached
    return cached


class ArraySimulator:
    """Levelized array twin of :class:`BitParallelSimulator`.

    Same constructor and :meth:`run` contract; the returned
    :class:`SimulationStats` is bit-identical to the per-gate path for
    every ``(n_patterns, seed, state_patterns)``.
    """

    def __init__(self, netlist: MappedNetlist):
        self.netlist = netlist
        self.arrays = levelized(netlist)

    def run(self, n_patterns: int, seed: int = 2010,
            state_patterns: Optional[int] = None) -> SimulationStats:
        """Simulate ``n_patterns`` seeded random patterns (see
        :meth:`BitParallelSimulator.run`)."""
        if n_patterns < 1:
            raise SimulationError("n_patterns must be >= 1")
        if state_patterns is None:
            state_patterns = min(n_patterns, DEFAULT_STATE_SAMPLE)
        state_patterns = min(state_patterns, n_patterns)

        arrays = self.arrays
        n_words = (n_patterns + _WORD_BITS - 1) // _WORD_BITS
        tail_bits = n_patterns - (n_words - 1) * _WORD_BITS
        tail_mask = (_UINT64_ALL_ONES if tail_bits == _WORD_BITS
                     else np.uint64((1 << tail_bits) - 1))

        values = np.zeros((arrays.n_nets, n_words), dtype=np.uint64)
        # Identical RNG stream to the per-gate path: one draw of
        # n_words words per PI, in pi_names order, tail-masked.
        rng = np.random.default_rng(seed)
        for i in range(arrays.n_pis):
            words = rng.integers(0, 2**64, size=n_words, dtype=np.uint64)
            words[-1] &= tail_mask
            values[i] = words

        for level in arrays.schedule:
            for group in level:
                self._evaluate_group(group, values, tail_mask)

        totals = self._count_toggles(values, n_patterns)
        toggles = {name: int(totals[i])
                   for i, name in enumerate(arrays.net_names)}
        state_counts, state_patterns = self._state_histogram(
            values, n_patterns, state_patterns, n_words)
        return SimulationStats(
            n_patterns=n_patterns,
            toggles=toggles,
            state_counts=state_counts,
            n_state_patterns=state_patterns,
        )

    # -- core evaluation -----------------------------------------------------

    def _evaluate_group(self, group: _LevelGroup, values: np.ndarray,
                        tail_mask: np.uint64) -> None:
        """Evaluate all gates of one (level, cell) group at once.

        Exactly the cube loop of ``BitParallelSimulator._evaluate_gate``
        lifted one axis: ``ins[:, var]`` is the whole group's pin
        ``var``, and the AND/OR word ops run over ``(g, n_words)``
        blocks instead of ``(n_words,)`` vectors.
        """
        cover = self.arrays.cube_literals[group.cell_id]
        ins = values[group.fanins]  # (g, k, n_words) gather
        g, _, n_words = ins.shape
        inverted = np.bitwise_not(ins)  # one pass, shared by all cubes
        result = np.zeros((g, n_words), dtype=np.uint64)
        term = np.empty((g, n_words), dtype=np.uint64)
        for literals in cover:
            if not literals:  # tautology cube: constant-one cell
                result[...] = _UINT64_ALL_ONES
                continue
            var, positive = literals[0]
            term[...] = ins[:, var] if positive else inverted[:, var]
            for var, positive in literals[1:]:
                np.bitwise_and(
                    term, ins[:, var] if positive else inverted[:, var],
                    out=term)
            np.bitwise_or(result, term, out=result)
        result[:, -1] &= tail_mask
        values[group.outputs] = result

    # -- statistics ----------------------------------------------------------

    @staticmethod
    def _count_toggles(values: np.ndarray, n_patterns: int) -> np.ndarray:
        """Per-net toggle counts, vectorized over the whole matrix.

        Row ``i`` equals ``BitParallelSimulator._count_toggles`` of net
        ``i`` exactly (same popcounts, same cross-word boundary bits,
        same phantom-tail subtraction — all small exact integers).
        """
        n_nets, n_words = values.shape
        totals = np.zeros(n_nets, dtype=np.int64)
        if n_patterns < 2:
            return totals
        mask63 = np.uint64((1 << (_WORD_BITS - 1)) - 1)
        one = np.uint64(1)
        for start in range(0, n_nets, _TOGGLE_CHUNK_ROWS):
            rows = values[start:start + _TOGGLE_CHUNK_ROWS]
            within = (rows ^ (rows >> one)) & mask63
            part = np.bitwise_count(within).sum(axis=1, dtype=np.int64)
            if n_words > 1:
                high = rows[:, :-1] >> np.uint64(_WORD_BITS - 1)
                low = rows[:, 1:] & one
                part += (high ^ low).sum(axis=1, dtype=np.int64)
            totals[start:start + _TOGGLE_CHUNK_ROWS] = part
        tail_bits = n_patterns - (n_words - 1) * _WORD_BITS
        if tail_bits < _WORD_BITS:
            last_real = (values[:, -1] >> np.uint64(tail_bits - 1)) & one
            totals -= last_real.astype(np.int64)
        return totals

    def _state_histogram(self, values: np.ndarray, n_patterns: int,
                         state_patterns: int, n_words: int
                         ) -> Tuple[Dict[str, np.ndarray], int]:
        """Per-gate input-vector histograms over the state sample.

        Whole-word normalization as in the per-gate path.  The counting
        never unpacks patterns to bytes: the number of sample patterns
        on which a gate's k inputs spell the state ``s`` is the
        popcount of the AND of its k input words, each complemented
        where ``s`` has a 0 bit — computed for all ``2^k`` states as a
        binary AND-tree (:meth:`_histogram_chunk`), vectorized over all
        gates of a cell.  Each count is the exact cardinality of a
        pattern subset, so the result equals the per-gate path's
        pattern-by-pattern bincount bit for bit.
        """
        arrays = self.arrays
        state_words = min(
            (state_patterns + _WORD_BITS - 1) // _WORD_BITS, n_words)
        state_patterns = min(state_words * _WORD_BITS, n_patterns)

        # Valid-pattern mask over the state window: all ones except the
        # (possible) partial last word.  AND-tree roots start from it so
        # complemented inputs cannot pick up phantom patterns from the
        # masked-to-zero tail region.
        base = np.full(state_words, _UINT64_ALL_ONES, dtype=np.uint64)
        last_bits = state_patterns - (state_words - 1) * _WORD_BITS
        if last_bits < _WORD_BITS:
            base[-1] = np.uint64((1 << last_bits) - 1)
        window = values[:, :state_words]

        state_counts: Dict[str, np.ndarray] = {}
        for group in arrays.cell_groups:
            k = arrays.arity[group.cell_id]
            n_group = len(group.gate_positions)
            counts = np.empty((n_group, 1 << k), dtype=np.int64)
            # The deepest tree level holds 2^(k-1) arrays of
            # (gate chunk, state_words) words; bound their total size.
            per_gate = max(1, (1 << max(0, k - 1)) * state_words)
            gate_chunk = max(1, _STATE_CHUNK_ELEMS // per_gate)
            for g0 in range(0, n_group, gate_chunk):
                g1 = min(g0 + gate_chunk, n_group)
                self._histogram_chunk(window, group.fanins[g0:g1], k,
                                      base, state_patterns, counts[g0:g1])
            for row, position in enumerate(group.gate_positions):
                state_counts[arrays.gate_names[position]] = counts[row]
        return state_counts, state_patterns

    @staticmethod
    def _histogram_chunk(window: np.ndarray, fanins: np.ndarray, k: int,
                         base: np.ndarray, state_patterns: int,
                         out: np.ndarray) -> None:
        """State counts of one gate chunk via a popcount AND-tree.

        ``nodes[s]`` holds, per gate, the word mask of sample patterns
        whose first ``d`` inputs spell the ``d`` low bits of ``s``;
        each variable doubles the list (AND with the input's words for
        bit 1, with their complement for bit 0).  The last variable is
        resolved without materializing its level: the bit-1 count is
        the popcount of ``node & w`` and the bit-0 count is the node's
        total minus it — the same exact integers either way.
        """
        n_gates = fanins.shape[0]
        if k == 0:
            out[:, 0] = state_patterns
            return
        if k == 1:
            words = window[fanins[:, 0]]
            ones = np.bitwise_count(words).sum(axis=1, dtype=np.int64)
            out[:, 1] = ones
            out[:, 0] = state_patterns - ones
            return
        # Level 0 without materializing the base: input words are
        # already zero outside the valid patterns, so ``words ^ base``
        # is exactly ``base & ~words`` — one op, and every deeper
        # 0-branch is then ``node ^ (node & words)`` (the garbage bits
        # of a complement never survive an AND with a valid node).
        words = window[fanins[:, 0]]
        nodes = [words ^ base, words]
        for var in range(1, k - 1):
            words = window[fanins[:, var]]
            ones_branch = [node & words for node in nodes]
            nodes = ([node ^ one for node, one in zip(nodes, ones_branch)]
                     + ones_branch)
        words = window[fanins[:, k - 1]]
        high_bit = 1 << (k - 1)
        for state, node in enumerate(nodes):
            ones = np.bitwise_count(node & words).sum(axis=1,
                                                      dtype=np.int64)
            total = np.bitwise_count(node).sum(axis=1, dtype=np.int64)
            out[:, state | high_bit] = ones
            out[:, state] = total - ones
