"""Pluggable estimator backends.

An estimator backend turns a mapped netlist plus operating conditions
into a :class:`~repro.sim.estimator.CircuitPowerReport`.  The protocol
is one method::

    backend.estimate(netlist, params, config) -> CircuitPowerReport

and which backend runs is data: :attr:`ExperimentConfig.backend` names
it, so the choice serializes through ``to_dict``/``from_dict``, is
content-hashed into sweep task keys, and result stores never mix
estimates from different backends.

Two backends ship:

* ``"bitsim"`` (default) — the paper's methodology: random-pattern
  bit-parallel simulation feeding the Eq. 2-5 analytic power model
  (:func:`repro.sim.estimator.estimate_circuit_power`, unchanged).
* ``"spice-transient"`` — pattern statistics still come from the
  bit-parallel simulation, but the per-transition switching energy of
  every cell instance is *measured* with the :mod:`repro.spice`
  trapezoidal transient engine: the cell's output drive stack charges
  its actual capacitive load from a supply source and the energy drawn
  is integrated over one clock period.  Incomplete settling (large
  load, low supply, short period) therefore shows up as reduced energy
  — an effect the analytic ``alpha * C * f * VDD^2`` model cannot see.
  Intended for small netlists; transient solves are cached per
  (technology, supply, drive depth, load).

Third parties register their own with :func:`register_backend`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, TYPE_CHECKING, Tuple

import numpy as np

from repro.cache import stable_hash
from repro.errors import ExperimentError, SimulationError
from repro.power.model import SHORT_CIRCUIT_FRACTION, PowerParameters
from repro.sim.activity import simulation_stats
from repro.sim.estimator import (
    CircuitPowerReport,
    estimate_circuit_power,
    leakage_currents,
    switched_capacitance,
)
from repro.synth.netlist import MappedNetlist, static_timing

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.experiments.config import ExperimentConfig

#: Key of the default backend.
BITSIM = "bitsim"
#: Key of the transient-measurement backend.
SPICE_TRANSIENT = "spice-transient"


class EstimatorBackend(Protocol):
    """What a power-estimation backend must provide."""

    #: Registry key (informational; the registry key is authoritative).
    name: str

    def estimate(self, netlist: MappedNetlist, params: PowerParameters,
                 config: "ExperimentConfig") -> CircuitPowerReport:
        """Estimate the power of one mapped circuit."""
        ...


_BACKENDS: Dict[str, EstimatorBackend] = {}


def register_backend(key: str, backend: EstimatorBackend,
                     replace: bool = False) -> None:
    """Register an estimator backend under ``key``.

    Raises :class:`ExperimentError` on a collision unless ``replace``.
    """
    if key in _BACKENDS and not replace:
        raise ExperimentError(
            f"estimator backend {key!r} is already registered; pass "
            f"replace=True to override")
    _BACKENDS[key] = backend


def unregister_backend(key: str, missing_ok: bool = False) -> None:
    """Remove a registered backend."""
    if _BACKENDS.pop(key, None) is None and not missing_ok:
        raise ExperimentError(f"estimator backend {key!r} is not registered")


def available_backends() -> List[str]:
    """Keys of every registered backend, registration order."""
    return list(_BACKENDS)


def get_backend(key: str) -> EstimatorBackend:
    """Look a backend up by key, failing with the known choices."""
    try:
        return _BACKENDS[key]
    except KeyError:
        raise ExperimentError(
            f"unknown estimator backend {key!r}; choose from "
            f"{sorted(_BACKENDS)}") from None


class BitsimBackend:
    """The paper's estimator: random patterns + analytic Eq. 2-5 model."""

    name = BITSIM

    def estimate(self, netlist: MappedNetlist, params: PowerParameters,
                 config: "ExperimentConfig") -> CircuitPowerReport:
        return estimate_circuit_power(
            netlist, params,
            n_patterns=config.n_patterns,
            seed=config.seed,
            state_patterns=config.state_patterns,
            kernel=config.sim_kernel,
        )


#: Gate-count ceiling of the transient backend (it is O(distinct
#: (cell, load) pairs) in transient solves, meant for small netlists).
MAX_TRANSIENT_GATES = 2000

#: Timesteps per clock period for the energy integration.
TRANSIENT_STEPS = 64

#: Load quantization for the transient cache, farads.  0.01 aF is far
#: below any pin capacitance, so bucketing loses nothing physical while
#: letting equal-load gates share one solve.
_LOAD_QUANTUM = 1e-20


class SpiceTransientBackend:
    """Transient-measured switching energy on bitsim pattern statistics.

    Per distinct (cell drive stack, output load) the backend builds a
    tiny circuit — the cell's worst-case series drive stack of on
    devices between the supply and the output, the full switched
    capacitance as a load capacitor — and integrates the energy the
    supply delivers while the output rises, over one clock period.
    PD then is ``sum(alpha * E_rise * f)`` per gate, the transient
    sibling of Eq. 2's ``alpha * C * f * VDD^2`` (to which it converges
    when every output settles within the period).  PSC keeps the
    paper's Eq. 3 fraction; PS/PG reuse the pattern-classified DC
    leakage tables; delay is the same static timing.
    """

    name = SPICE_TRANSIENT

    def __init__(self, max_gates: int = MAX_TRANSIENT_GATES,
                 steps: int = TRANSIENT_STEPS):
        self.max_gates = max_gates
        self.steps = steps
        #: (tech_hash, vdd, polarity-depth, quantized load) -> joules.
        self._energy_cache: Dict[Tuple, float] = {}

    # -- transient energy measurement ------------------------------------

    def _rise_energy(self, library, cell_name: str, load: float,
                     params: PowerParameters) -> float:
        """Supply energy for one output rise of ``cell_name`` into ``load``."""
        from repro.spice import Circuit, GROUND, transient

        cell = library.cell(cell_name)
        depth = cell.drive_depth()
        total_load = load + library.output_capacitance(cell_name)
        quantized = round(total_load / _LOAD_QUANTUM)
        # The integration window is one clock period, so the frequency
        # is part of what determines the energy (incomplete settling).
        key = (stable_hash(library.tech), params.vdd, params.frequency,
               depth, quantized)
        cached = self._energy_cache.get(key)
        if cached is not None:
            return cached

        circuit = Circuit(f"rise {cell_name}")
        circuit.add_vsource("vdd", "rail", GROUND, params.vdd)
        # Worst-case drive stack: `depth` series on p-devices pulling
        # the output to the rail (gates grounded = fully on).
        previous = "rail"
        for index in range(depth):
            node = "out" if index == depth - 1 else f"n{index}"
            circuit.add_mosfet(f"mp{index}", node, GROUND, previous,
                               library.tech.pmos)
            previous = node
        circuit.add_capacitor("cl", "out", GROUND, max(total_load,
                                                       _LOAD_QUANTUM))
        period = 1.0 / params.frequency
        initial = {"out": 0.0}
        initial.update({f"n{i}": 0.0 for i in range(depth - 1)})
        result = transient(circuit, stop_time=period,
                           step=period / self.steps, initial=initial)
        # Source branch current is pos->neg inside the source, so the
        # delivered current is its negation (as in the DC leakage flow).
        delivered = -result.branch_currents["vdd"]
        energy = float(params.vdd * np.trapezoid(delivered, result.times))
        # Subtract the DC (leakage) floor of the stack so the energy is
        # purely the switching event, not one period of static draw.
        energy -= float(params.vdd * delivered[-1] * result.times[-1])
        energy = max(energy, 0.0)
        self._energy_cache[key] = energy
        return energy

    # -- the backend protocol --------------------------------------------

    def estimate(self, netlist: MappedNetlist, params: PowerParameters,
                 config: "ExperimentConfig") -> CircuitPowerReport:
        if netlist.gate_count > self.max_gates:
            raise SimulationError(
                f"spice-transient backend is limited to {self.max_gates} "
                f"gates ({netlist.name!r} has {netlist.gate_count}); use "
                f"the bitsim backend for large netlists")
        library = netlist.library
        stats = simulation_stats(netlist, config.n_patterns, config.seed,
                                 config.state_patterns,
                                 kernel=config.sim_kernel)

        caps = switched_capacitance(netlist)
        alphas = stats.toggle_rates([gate.output for gate in netlist.gates])
        p_dynamic = 0.0
        for alpha, gate in zip(alphas, netlist.gates):
            alpha = float(alpha)
            if alpha == 0.0:
                continue
            loads = caps[gate.output] - library.output_capacitance(gate.cell)
            energy = self._rise_energy(library, gate.cell, loads, params)
            p_dynamic += alpha * energy * params.frequency
        p_short = SHORT_CIRCUIT_FRACTION * p_dynamic

        total_i_off, total_i_gate = leakage_currents(netlist, stats)

        delay, _ = static_timing(netlist)
        return CircuitPowerReport(
            circuit=netlist.name,
            library=library.name,
            gate_count=netlist.gate_count,
            delay=delay,
            p_dynamic=p_dynamic,
            p_short_circuit=p_short,
            p_static=total_i_off * params.vdd,
            p_gate_leak=total_i_gate * params.vdd,
            n_patterns=stats.n_patterns,
        )


def estimate_with_backend(netlist: MappedNetlist,
                          params: Optional[PowerParameters],
                          config: "ExperimentConfig") -> CircuitPowerReport:
    """Run the config-selected backend (the flow's single call site)."""
    if params is None:
        params = PowerParameters(vdd=netlist.library.tech.vdd)
    return get_backend(config.backend).estimate(netlist, params, config)


register_backend(BITSIM, BitsimBackend())
register_backend(SPICE_TRANSIENT, SpiceTransientBackend())
