"""Simulation kernel selection and accounting.

Two kernels produce the bit-identical :class:`SimulationStats` of a
mapped netlist: the per-gate path (:class:`BitParallelSimulator`,
lowest constant cost, Python-bound per gate) and the levelized array
path (:class:`ArraySimulator`, numpy-bound per (level, cell) group —
the one that scales to 10^5+-gate netlists).  Because the results are
identical, the choice is pure performance policy:

* ``"gate"`` / ``"array"`` force a kernel;
* ``"auto"`` (the default everywhere) picks the array kernel above
  :data:`AUTO_ARRAY_THRESHOLD` mapped gates and the per-gate kernel
  below it.

The knob rides on :attr:`ExperimentConfig.sim_kernel` and is serialized
with configs, but it is deliberately **excluded** from activity keys,
query keys and task keys — a cached result answers every kernel's
query, and a sweep store written by one kernel warm-starts the other.

Every simulation executed through :func:`run_simulation` is metered:
cumulative simulations, gate-evaluations (gates x patterns) and wall
time per kernel, surfaced by ``/v1/healthz`` as gate-evals/s.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.errors import SimulationError
from repro.experiments.config import SIM_KERNELS
from repro.sim.arraysim import ArraySimulator
from repro.sim.bitsim import BitParallelSimulator, SimulationStats

#: ``"auto"`` switches to the array kernel at this many mapped gates.
#: Below it the per-gate path's lower constant cost wins; above it the
#: levelized groups amortize the Python dispatch over whole levels.
AUTO_ARRAY_THRESHOLD = 4096

_LOCK = threading.Lock()
_COUNTERS: Dict[str, Dict[str, float]] = {
    kernel: {"simulations": 0, "gate_evals": 0, "elapsed_s": 0.0}
    for kernel in ("gate", "array")}


def select_kernel(kernel: str, gate_count: int) -> str:
    """Resolve a kernel request to the kernel that will actually run.

    Raises :class:`SimulationError` on an unknown kernel name (configs
    validate at construction, so this guards direct callers).
    """
    if kernel not in SIM_KERNELS:
        raise SimulationError(
            f"unknown sim kernel {kernel!r}; choose from "
            f"{', '.join(SIM_KERNELS)}")
    if kernel == "auto":
        return "array" if gate_count >= AUTO_ARRAY_THRESHOLD else "gate"
    return kernel


def run_simulation(netlist, n_patterns: int, seed: int = 2010,
                   state_patterns: Optional[int] = None,
                   kernel: str = "auto") -> SimulationStats:
    """Simulate a mapped netlist with the selected kernel, metered.

    The cold path behind :func:`repro.sim.activity.simulation_stats`;
    both kernels return bit-identical statistics, so callers never see
    which one ran except through the counters (and the wall clock).
    """
    chosen = select_kernel(kernel, netlist.gate_count)
    simulator = (ArraySimulator(netlist) if chosen == "array"
                 else BitParallelSimulator(netlist))
    start = time.perf_counter()
    stats = simulator.run(n_patterns, seed, state_patterns)
    elapsed = time.perf_counter() - start
    with _LOCK:
        counter = _COUNTERS[chosen]
        counter["simulations"] += 1
        counter["gate_evals"] += netlist.gate_count * n_patterns
        counter["elapsed_s"] += elapsed
    return stats


def kernel_counters() -> Dict[str, Dict[str, float]]:
    """Cumulative per-kernel meters (process lifetime).

    ``gate_evals`` counts mapped gates x simulated patterns;
    ``gate_evals_per_s`` is the derived cumulative throughput (0.0
    before the first simulation).
    """
    with _LOCK:
        out: Dict[str, Dict[str, float]] = {}
        for kernel, counter in _COUNTERS.items():
            elapsed = counter["elapsed_s"]
            out[kernel] = {
                "simulations": int(counter["simulations"]),
                "gate_evals": int(counter["gate_evals"]),
                "elapsed_s": elapsed,
                "gate_evals_per_s": (counter["gate_evals"] / elapsed
                                     if elapsed > 0 else 0.0),
            }
        return out


def reset_kernel_counters() -> None:
    """Zero the per-kernel meters (tests)."""
    with _LOCK:
        for counter in _COUNTERS.values():
            counter["simulations"] = 0
            counter["gate_evals"] = 0
            counter["elapsed_s"] = 0.0
