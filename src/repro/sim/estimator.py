"""Circuit-level power estimation (the Table 1 methodology).

For a mapped netlist the estimator combines:

* measured per-net toggle rates (640 K random patterns by default) with
  per-net switched capacitance for PD (Eq. 2) and PSC (Eq. 3);
* the pattern-classified per-cell leakage tables, weighted by the
  input-state frequencies observed in simulation, for PS (Eq. 4) and
  PG (Eq. 5);
* static timing for the critical delay, and the EDP definition used by
  Table 1: (PT / f) * delay.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.cache import default_cache, stable_hash
from repro.gates.library import Library
from repro.power.model import (
    PowerParameters,
    energy_delay_product,
    SHORT_CIRCUIT_FRACTION,
)
from repro.power.pattern_sim import PatternSimulator
from repro.power.patterns import count_on_devices, stage_patterns
from repro.sim.bitsim import BitParallelSimulator, SimulationStats
from repro.synth.netlist import MappedNetlist, static_timing


@dataclass(frozen=True)
class CircuitPowerReport:
    """Table 1 row data for one circuit / one library."""

    circuit: str
    library: str
    gate_count: int
    delay: float           # s
    p_dynamic: float       # W
    p_short_circuit: float # W
    p_static: float        # W
    p_gate_leak: float     # W
    n_patterns: int

    @property
    def p_total(self) -> float:
        """PT = PD + PSC + PS + PG (Eq. 1)."""
        return (self.p_dynamic + self.p_short_circuit
                + self.p_static + self.p_gate_leak)

    def edp(self, params: PowerParameters) -> float:
        """Energy-delay product, J*s (Table 1 definition)."""
        return energy_delay_product(self.p_total, self.delay, params)


#: Disk-cache namespace for per-library leakage tables.
_LEAKAGE_NAMESPACE = "leakage"


def _library_content_key(library: Library) -> str:
    """Stable content hash of everything the leakage tables depend on.

    Covers the technology parameters and each cell's full definition
    (pins, truth table and stage topologies), so any change — a tweaked
    ``TechnologyParams`` field, a re-sized stack — yields a fresh key
    and the stale disk entry is never read again.
    """
    cells = [(cell.name, list(cell.inputs), cell.truth_table,
              repr(cell.stages)) for cell in library]
    return stable_hash([library.name, library.tech, cells])


class _LeakageTables:
    """Per-cell leakage lookup tables for one library.

    ``i_off[cell][v]`` is the summed pattern current for input vector v;
    ``i_gate[cell][v]`` the gate-tunneling current.  Built once per
    library via the pattern simulator (Fig. 5 flow), reused across
    circuits, and persisted through :mod:`repro.cache` so repeat runs
    and worker processes skip the SPICE characterization entirely.
    """

    _cache: "weakref.WeakKeyDictionary[Library, _LeakageTables]"
    _cache = weakref.WeakKeyDictionary()

    def __init__(self, library: Library,
                 stored: Optional[Dict[str, Dict[str, list]]] = None):
        self.i_off: Dict[str, np.ndarray] = {}
        self.i_gate: Dict[str, np.ndarray] = {}
        if stored is not None:
            for cell in library:
                entry = stored[cell.name]
                self.i_off[cell.name] = np.asarray(entry["i_off"], dtype=float)
                self.i_gate[cell.name] = np.asarray(entry["i_gate"],
                                                    dtype=float)
            return
        simulator = PatternSimulator(library.tech)
        ig_unit = library.tech.nmos.ig_on
        for cell in library:
            k = cell.n_inputs
            off = np.zeros(1 << k)
            gate = np.zeros(1 << k)
            for vector in range(1 << k):
                values = tuple(bool((vector >> i) & 1) for i in range(k))
                off[vector] = sum(simulator.off_current(p)
                                  for p in stage_patterns(cell, values))
                gate[vector] = count_on_devices(cell, values) * ig_unit
            self.i_off[cell.name] = off
            self.i_gate[cell.name] = gate

    def _serialize(self) -> Dict[str, Dict[str, list]]:
        return {name: {"i_off": self.i_off[name].tolist(),
                       "i_gate": self.i_gate[name].tolist()}
                for name in self.i_off}

    @classmethod
    def _valid_stored(cls, stored, library: Library) -> bool:
        if not isinstance(stored, dict):
            return False
        for cell in library:
            entry = stored.get(cell.name)
            if not isinstance(entry, dict):
                return False
            size = 1 << cell.n_inputs
            for field_name in ("i_off", "i_gate"):
                values = entry.get(field_name)
                if not isinstance(values, list) or len(values) != size:
                    return False
        return True

    @classmethod
    def for_library(cls, library: Library) -> "_LeakageTables":
        tables = cls._cache.get(library)
        if tables is not None:
            return tables
        disk = default_cache()
        key = _library_content_key(library)
        stored = disk.get(_LEAKAGE_NAMESPACE, key)
        tables = None
        if cls._valid_stored(stored, library):
            try:
                tables = cls(library, stored)
            except (TypeError, ValueError):
                # Corrupt element values degrade to a cache miss, per
                # the repro.cache contract.
                tables = None
        if tables is None:
            tables = cls(library)
            disk.put(_LEAKAGE_NAMESPACE, key, tables._serialize())
        cls._cache[library] = tables
        return tables


def switched_capacitance(netlist: MappedNetlist) -> Dict[str, float]:
    """Full switched capacitance per gate-output net.

    Fanout pin capacitance (plus the PO external load) from
    :meth:`MappedNetlist.net_loads`, plus the driver's intrinsic drain
    capacitance.  Shared by every estimator backend.
    """
    loads = netlist.net_loads()
    library = netlist.library
    caps: Dict[str, float] = {}
    for gate in netlist.gates:
        caps[gate.output] = (loads[gate.output]
                             + library.output_capacitance(gate.cell))
    return caps


def leakage_currents(netlist: MappedNetlist,
                     stats: SimulationStats) -> Tuple[float, float]:
    """State-weighted ``(i_off, i_gate)`` totals for a simulated netlist.

    Weights each gate's pattern-classified leakage table by the input-
    state frequencies observed in simulation (Eq. 4-5's expectation).
    The single implementation every estimator backend shares.
    """
    tables = _LeakageTables.for_library(netlist.library)
    denominator = max(1, stats.n_state_patterns)
    total_i_off = 0.0
    total_i_gate = 0.0
    for gate in netlist.gates:
        counts = stats.state_counts[gate.name]
        weights = counts / denominator
        total_i_off += float(weights @ tables.i_off[gate.cell])
        total_i_gate += float(weights @ tables.i_gate[gate.cell])
    return total_i_off, total_i_gate


def estimate_circuit_power(netlist: MappedNetlist,
                           params: Optional[PowerParameters] = None,
                           n_patterns: int = 640_000,
                           seed: int = 2010,
                           state_patterns: Optional[int] = None,
                           stats: Optional[SimulationStats] = None
                           ) -> CircuitPowerReport:
    """Estimate the power of a mapped circuit (one Table 1 cell).

    Args:
        netlist: the mapped circuit.
        params: operating conditions (defaults to the paper's).
        n_patterns: random patterns for activity (paper: 640 K).
        seed: RNG seed.
        state_patterns: patterns for the leakage state histogram
            (defaults to 64 K; leakage averages converge much faster
            than activity).
        stats: pre-computed simulation statistics (skips simulation).
    """
    library = netlist.library
    if params is None:
        params = PowerParameters(vdd=library.tech.vdd)
    if stats is None:
        simulator = BitParallelSimulator(netlist)
        stats = simulator.run(n_patterns, seed, state_patterns)

    caps = switched_capacitance(netlist)
    p_dynamic = 0.0
    for gate in netlist.gates:
        alpha = stats.toggle_rate(gate.output)
        p_dynamic += (alpha * caps[gate.output]
                      * params.frequency * params.vdd**2)
    p_short = SHORT_CIRCUIT_FRACTION * p_dynamic

    total_i_off, total_i_gate = leakage_currents(netlist, stats)
    p_static = total_i_off * params.vdd
    p_gate = total_i_gate * params.vdd

    delay, _ = static_timing(netlist)
    return CircuitPowerReport(
        circuit=netlist.name,
        library=library.name,
        gate_count=netlist.gate_count,
        delay=delay,
        p_dynamic=p_dynamic,
        p_short_circuit=p_short,
        p_static=p_static,
        p_gate_leak=p_gate,
        n_patterns=stats.n_patterns,
    )
