"""Circuit-level power estimation (the Table 1 methodology).

For a mapped netlist the estimator combines:

* measured per-net toggle rates (640 K random patterns by default) with
  per-net switched capacitance for PD (Eq. 2) and PSC (Eq. 3);
* the pattern-classified per-cell leakage tables, weighted by the
  input-state frequencies observed in simulation, for PS (Eq. 4) and
  PG (Eq. 5);
* static timing for the critical delay, and the EDP definition used by
  Table 1: (PT / f) * delay.

Estimation is split into two layers.  The *activity* layer
(:mod:`repro.sim.activity`) simulates once per (netlist content,
pattern budget) and caches the result.  The *pricing* layer here — a
:class:`PricingModel` bound to one netlist, folded with one
simulation's statistics into a :class:`BoundPricing` — turns those
statistics into the Eq. 1-5 components with whole-netlist numpy
reductions, so repricing a circuit at a new operating point costs
microseconds.  :func:`estimate_many` broadcasts that over an array of
``(vdd, frequency, fanout)`` points in one pass.

Every reduction reproduces the historical per-gate Python loops bit
for bit: elementwise terms are formed in the same association order
and summed with ``np.add.accumulate`` (a strict left fold, unlike the
pairwise ``np.sum``), so the vectorized path and the original scalar
path are interchangeable anywhere.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.cache import default_cache, stable_hash
from repro.errors import SimulationError
from repro.gates.library import Library
from repro.power.model import (
    PowerParameters,
    energy_delay_product,
    SHORT_CIRCUIT_FRACTION,
)
from repro.power.pattern_sim import PatternSimulator
from repro.power.patterns import (
    stage_off_pattern,
    stage_on_devices,
    stage_vector_groups,
)
from repro.sim.activity import netlist_activity_key, simulation_stats
from repro.sim.bitsim import SimulationStats
from repro.synth.netlist import MappedNetlist
from repro.timing import timing_report


@dataclass(frozen=True)
class CircuitPowerReport:
    """Table 1 row data for one circuit / one library."""

    circuit: str
    library: str
    gate_count: int
    delay: float           # s
    p_dynamic: float       # W
    p_short_circuit: float # W
    p_static: float        # W
    p_gate_leak: float     # W
    n_patterns: int

    @property
    def p_total(self) -> float:
        """PT = PD + PSC + PS + PG (Eq. 1)."""
        return (self.p_dynamic + self.p_short_circuit
                + self.p_static + self.p_gate_leak)

    def edp(self, params: PowerParameters) -> float:
        """Energy-delay product, J*s (Table 1 definition)."""
        return energy_delay_product(self.p_total, self.delay, params)


#: Disk-cache namespace for per-library leakage tables.
_LEAKAGE_NAMESPACE = "leakage"


def _library_content_key(library: Library) -> str:
    """Stable content hash of everything the leakage tables depend on.

    Covers the technology parameters and each cell's full definition
    (pins, truth table and stage topologies), so any change — a tweaked
    ``TechnologyParams`` field, a re-sized stack — yields a fresh key
    and the stale disk entry is never read again.
    """
    cells = [(cell.name, list(cell.inputs), cell.truth_table,
              repr(cell.stages)) for cell in library]
    return stable_hash([library.name, library.tech, cells])


class _LeakageTables:
    """Per-cell leakage lookup tables for one library.

    ``i_off[cell][v]`` is the summed pattern current for input vector v;
    ``i_gate[cell][v]`` the gate-tunneling current.  Built once per
    library via the pattern simulator (Fig. 5 flow), reused across
    circuits, and persisted through :mod:`repro.cache` so repeat runs
    and worker processes skip the SPICE characterization entirely.
    """

    _cache: "weakref.WeakKeyDictionary[Library, _LeakageTables]"
    _cache = weakref.WeakKeyDictionary()

    def __init__(self, library: Library,
                 stored: Optional[Dict[str, Dict[str, list]]] = None):
        self.i_off: Dict[str, np.ndarray] = {}
        self.i_gate: Dict[str, np.ndarray] = {}
        if stored is not None:
            for cell in library:
                entry = stored[cell.name]
                self.i_off[cell.name] = np.asarray(entry["i_off"], dtype=float)
                self.i_gate[cell.name] = np.asarray(entry["i_gate"],
                                                    dtype=float)
            return
        # Batched cold build: vectors are grouped per stage by the
        # stage's support-signal assignment, so each distinct local
        # state is reduced and quantified once and scattered to every
        # vector producing it.  Per-vector currents accumulate stage by
        # stage in ``all_stages`` order — the same addition sequence as
        # the historical per-vector ``sum(...)`` loop, bit for bit.
        simulator = PatternSimulator(library.tech)
        ig_unit = library.tech.nmos.ig_on
        for cell in library:
            n_vectors = 1 << cell.n_inputs
            off = np.zeros(n_vectors)
            on_devices = np.zeros(n_vectors, dtype=np.int64)
            for stage, groups in stage_vector_groups(cell):
                stage_off = np.zeros(n_vectors)
                stage_on = np.zeros(n_vectors, dtype=np.int64)
                for assignment, vectors in groups:
                    pattern = stage_off_pattern(stage, assignment)
                    stage_off[vectors] = simulator.off_current(pattern)
                    stage_on[vectors] = stage_on_devices(stage, assignment)
                off += stage_off
                on_devices += stage_on
            self.i_off[cell.name] = off
            self.i_gate[cell.name] = on_devices * ig_unit

    def _serialize(self) -> Dict[str, Dict[str, list]]:
        return {name: {"i_off": self.i_off[name].tolist(),
                       "i_gate": self.i_gate[name].tolist()}
                for name in self.i_off}

    @classmethod
    def _valid_stored(cls, stored, library: Library) -> bool:
        if not isinstance(stored, dict):
            return False
        for cell in library:
            entry = stored.get(cell.name)
            if not isinstance(entry, dict):
                return False
            size = 1 << cell.n_inputs
            for field_name in ("i_off", "i_gate"):
                values = entry.get(field_name)
                if not isinstance(values, list) or len(values) != size:
                    return False
        return True

    @classmethod
    def for_library(cls, library: Library) -> "_LeakageTables":
        tables = cls._cache.get(library)
        if tables is not None:
            return tables
        disk = default_cache()
        key = _library_content_key(library)
        stored = disk.get(_LEAKAGE_NAMESPACE, key)
        tables = None
        if cls._valid_stored(stored, library):
            try:
                tables = cls(library, stored)
            except (TypeError, ValueError):
                # Corrupt element values degrade to a cache miss, per
                # the repro.cache contract.
                tables = None
        if tables is None:
            tables = cls(library)
            disk.put(_LEAKAGE_NAMESPACE, key, tables._serialize())
        cls._cache[library] = tables
        return tables


def switched_capacitance(netlist: MappedNetlist) -> Dict[str, float]:
    """Full switched capacitance per gate-output net.

    Fanout pin capacitance (plus the PO external load) from
    :meth:`MappedNetlist.net_loads`, plus the driver's intrinsic drain
    capacitance.  Shared by every estimator backend.
    """
    loads = netlist.net_loads()
    library = netlist.library
    caps: Dict[str, float] = {}
    for gate in netlist.gates:
        caps[gate.output] = (loads[gate.output]
                             + library.output_capacitance(gate.cell))
    return caps


def _ordered_sum(terms: np.ndarray) -> float:
    """Strict left-to-right float sum of a 1-D array.

    ``np.add.accumulate`` is a sequential fold, so this reproduces the
    historical per-gate ``+=`` accumulation bit for bit; numpy's
    pairwise ``np.sum`` would round differently.
    """
    if terms.size == 0:
        return 0.0
    return float(np.add.accumulate(terms)[-1])


#: Attribute memoizing the pricing model on a netlist instance.
_MODEL_ATTR = "_repro_pricing_model"

#: Bound pricings kept alive per model (each holds one stats object).
_MAX_BOUND = 4


class PricingModel:
    """The activity-independent pricing arrays of one mapped netlist.

    Built once per netlist (and its library's leakage tables) via
    :meth:`for_netlist`: per-gate switched capacitance, the critical
    delay, and the per-gate leakage-table references.  Folding it with
    one simulation's statistics (:meth:`bind`) yields a
    :class:`BoundPricing`, after which every operating point is pure
    vector arithmetic.
    """

    def __init__(self, netlist: MappedNetlist):
        self.netlist = netlist
        caps = switched_capacitance(netlist)
        self.switched_caps = np.array(
            [caps[gate.output] for gate in netlist.gates])
        self.outputs = tuple(gate.output for gate in netlist.gates)
        # The cached timing report's critical delay is bit-identical to
        # static_timing(netlist)[0] (locked by tests); routing through
        # repro.timing shares the report with the feasibility layer.
        self.timing = timing_report(netlist)
        self.delay = self.timing.critical_delay_s
        self.tables = _LeakageTables.for_library(netlist.library)
        self._gates = tuple((gate.name, gate.cell)
                            for gate in netlist.gates)
        self._bound: "OrderedDict[int, BoundPricing]" = OrderedDict()
        # Server threads may bind different stats concurrently on one
        # memoized model; the tiny LRU needs the same protection every
        # other shared cache takes.
        self._bound_lock = threading.Lock()

    @classmethod
    def for_netlist(cls, netlist: MappedNetlist) -> "PricingModel":
        """The per-netlist model, memoized on the instance."""
        model = netlist.__dict__.get(_MODEL_ATTR)
        if model is None:
            model = cls(netlist)
            netlist.__dict__[_MODEL_ATTR] = model
        return model

    def bind(self, stats: SimulationStats) -> "BoundPricing":
        """Fold the model with one simulation's statistics (memoized).

        The small per-model LRU holds a strong reference to each bound
        stats object, so the ``id``-based key cannot alias a collected
        object; the ``is`` check guards against identity reuse anyway.
        """
        key = id(stats)
        with self._bound_lock:
            bound = self._bound.get(key)
            if bound is not None and bound.stats is stats:
                self._bound.move_to_end(key)
                return bound
        bound = BoundPricing(self, stats)
        with self._bound_lock:
            self._bound[key] = bound
            while len(self._bound) > _MAX_BOUND:
                self._bound.popitem(last=False)
        return bound


class BoundPricing:
    """One netlist's pricing arrays folded with one simulation.

    Precomputes the per-gate ``alpha * C`` products (the Eq. 2 terms
    up to ``f * VDD^2``) and the state-weighted leakage dot products
    folded to the two Eq. 4-5 current totals.  The fold performs the
    exact operations of the historical ``leakage_currents`` loop — one
    ``weights @ table`` per gate, sequentially accumulated — once,
    instead of on every estimate.
    """

    def __init__(self, model: PricingModel, stats: SimulationStats):
        self.model = model
        self.stats = stats
        self.activity_caps = (stats.toggle_rates(model.outputs)
                              * model.switched_caps)
        tables = model.tables
        denominator = max(1, stats.n_state_patterns)
        total_i_off = 0.0
        total_i_gate = 0.0
        for name, cell in model._gates:
            counts = stats.state_counts[name]
            weights = counts / denominator
            total_i_off += float(weights @ tables.i_off[cell])
            total_i_gate += float(weights @ tables.i_gate[cell])
        self.i_off = total_i_off
        self.i_gate = total_i_gate

    def dynamic_power(self, frequency: float, vdd: float) -> float:
        """Eq. 2 summed over the netlist (one vector pass)."""
        return _ordered_sum((self.activity_caps * frequency) * vdd**2)

    def report(self, params: PowerParameters) -> CircuitPowerReport:
        """The full Eq. 1-5 report at one operating point."""
        model = self.model
        p_dynamic = self.dynamic_power(params.frequency, params.vdd)
        return CircuitPowerReport(
            circuit=model.netlist.name,
            library=model.netlist.library.name,
            gate_count=model.netlist.gate_count,
            delay=model.delay,
            p_dynamic=p_dynamic,
            p_short_circuit=SHORT_CIRCUIT_FRACTION * p_dynamic,
            p_static=self.i_off * params.vdd,
            p_gate_leak=self.i_gate * params.vdd,
            n_patterns=self.stats.n_patterns,
        )


def leakage_currents(netlist: MappedNetlist,
                     stats: SimulationStats) -> Tuple[float, float]:
    """State-weighted ``(i_off, i_gate)`` totals for a simulated netlist.

    Weights each gate's pattern-classified leakage table by the input-
    state frequencies observed in simulation (Eq. 4-5's expectation).
    The single implementation every estimator backend shares — served
    from the cached :class:`BoundPricing` fold.
    """
    bound = PricingModel.for_netlist(netlist).bind(stats)
    return bound.i_off, bound.i_gate


def estimate_circuit_power(netlist: MappedNetlist,
                           params: Optional[PowerParameters] = None,
                           n_patterns: int = 640_000,
                           seed: int = 2010,
                           state_patterns: Optional[int] = None,
                           stats: Optional[SimulationStats] = None,
                           kernel: str = "auto") -> CircuitPowerReport:
    """Estimate the power of a mapped circuit (one Table 1 cell).

    Activity comes from :func:`repro.sim.activity.simulation_stats`
    (per-process LRU + disk persistence), so repeating the call — or
    re-pricing the same netlist at a different frequency, supply or
    fanout — skips the bit-parallel simulation entirely.

    Args:
        netlist: the mapped circuit.
        params: operating conditions (defaults to the paper's).
        n_patterns: random patterns for activity (paper: 640 K).
        seed: RNG seed.
        state_patterns: patterns for the leakage state histogram
            (defaults to 64 K; leakage averages converge much faster
            than activity).
        stats: pre-computed simulation statistics (skips simulation
            and the activity cache).
        kernel: bitsim kernel policy (``"auto"``/``"gate"``/
            ``"array"``; execution only — results are bit-identical).
    """
    library = netlist.library
    if params is None:
        params = PowerParameters(vdd=library.tech.vdd)
    if stats is None:
        stats = simulation_stats(netlist, n_patterns, seed, state_patterns,
                                 kernel=kernel)
    return PricingModel.for_netlist(netlist).bind(stats).report(params)


#: Accepted operating-point forms of :func:`estimate_many`.
OperatingPoint = Union[PowerParameters, Tuple[float, float, int]]


def estimate_many(netlist: MappedNetlist,
                  stats: SimulationStats,
                  points: Iterable[OperatingPoint],
                  netlists: Optional[Mapping[float, MappedNetlist]] = None
                  ) -> List[CircuitPowerReport]:
    """Price one simulated circuit at many operating points at once.

    One simulation, an array of ``(vdd, frequency, fanout)`` points:
    the Eq. 2 terms broadcast over a ``points x gates`` matrix and fold
    with a sequential accumulate per row, so every report is
    bit-identical to calling :func:`estimate_circuit_power` with the
    same ``stats`` at that point.  Per *distinct supply voltage* the
    leakage tables, capacitances and timing are re-characterized — a
    point at a vdd other than the netlist's own must come with a
    matching entry in ``netlists`` (the same circuit mapped on the
    library characterized at that supply); the simulation statistics
    transfer whenever that netlist's activity hash is unchanged, which
    is checked.  Fanout rides through each point untouched: the
    circuit-level load model reads real fanouts off the netlist, so
    fanout is a characterization-time knob only.

    Args:
        netlist: the simulated circuit (at its library's supply).
        stats: its simulation statistics (see
            :func:`repro.sim.activity.simulation_stats`).
        points: operating points, :class:`PowerParameters` or
            ``(vdd, frequency, fanout)`` tuples.
        netlists: per-supply netlists for points whose vdd differs
            from ``netlist``'s own.

    Returns:
        One :class:`CircuitPowerReport` per point, in input order.
    """
    params_list = [point if isinstance(point, PowerParameters)
                   else PowerParameters(*point) for point in points]
    reports: List[Optional[CircuitPowerReport]] = [None] * len(params_list)
    by_vdd: "OrderedDict[float, List[int]]" = OrderedDict()
    for index, params in enumerate(params_list):
        by_vdd.setdefault(params.vdd, []).append(index)

    base_vdd = netlist.library.tech.vdd
    base_key = netlist_activity_key(netlist)
    for vdd, indices in by_vdd.items():
        if netlists is not None and vdd in netlists:
            priced = netlists[vdd]
        elif vdd == base_vdd:
            priced = netlist
        else:
            raise SimulationError(
                f"estimate_many: no netlist for vdd={vdd:g} V (the "
                f"simulated netlist is characterized at {base_vdd:g} V); "
                f"pass the re-characterized mapping via 'netlists'")
        if priced is not netlist \
                and netlist_activity_key(priced) != base_key:
            raise SimulationError(
                f"estimate_many: the netlist at vdd={vdd:g} V maps to a "
                f"different structure; its activity statistics are not "
                f"transferable — simulate it separately")
        bound = PricingModel.for_netlist(priced).bind(stats)
        frequencies = np.array([params_list[i].frequency for i in indices])
        vdd_sq = vdd**2
        if bound.activity_caps.size:
            terms = (bound.activity_caps[None, :]
                     * frequencies[:, None]) * vdd_sq
            p_dynamic = np.add.accumulate(terms, axis=1)[:, -1]
        else:
            p_dynamic = np.zeros(len(indices))
        model = bound.model
        for row, index in enumerate(indices):
            pd = float(p_dynamic[row])
            reports[index] = CircuitPowerReport(
                circuit=model.netlist.name,
                library=model.netlist.library.name,
                gate_count=model.netlist.gate_count,
                delay=model.delay,
                p_dynamic=pd,
                p_short_circuit=SHORT_CIRCUIT_FRACTION * pd,
                p_static=bound.i_off * vdd,
                p_gate_leak=bound.i_gate * vdd,
                n_patterns=stats.n_patterns,
            )
    return reports  # type: ignore[return-value]
