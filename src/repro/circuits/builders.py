"""Word-level circuit construction on top of the AIG.

:class:`CircuitBuilder` wraps an :class:`~repro.synth.aig.Aig` with the
vocabulary needed by the benchmark generators: input/output words,
adders, comparators, muxes, decoders, parity trees and truth-table
instantiation.  All methods take and return AIG literals (LSB first for
words).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import SynthesisError
from repro.synth.aig import Aig, lit_not, TRUE, FALSE
from repro.synth.rewrite import build_expr
from repro.synth.sop import factor, isop


class CircuitBuilder:
    """Helper for building word-level combinational circuits."""

    def __init__(self, name: str):
        self.aig = Aig(name)

    # -- I/O ------------------------------------------------------------------

    def input_bit(self, name: str) -> int:
        """Single-bit primary input."""
        return self.aig.add_pi(name)

    def input_word(self, name: str, width: int) -> List[int]:
        """``width``-bit primary input word (index 0 = LSB)."""
        return [self.aig.add_pi(f"{name}[{i}]") for i in range(width)]

    def output_bit(self, name: str, literal: int) -> None:
        """Single-bit primary output."""
        self.aig.add_po(literal, name)

    def output_word(self, name: str, bits: Sequence[int]) -> None:
        """Word-valued primary output."""
        for i, bit in enumerate(bits):
            self.aig.add_po(bit, f"{name}[{i}]")

    # -- bit operators ---------------------------------------------------------

    def and_(self, a: int, b: int) -> int:
        return self.aig.and_(a, b)

    def or_(self, a: int, b: int) -> int:
        return self.aig.or_(a, b)

    def xor_(self, a: int, b: int) -> int:
        return self.aig.xor_(a, b)

    def not_(self, a: int) -> int:
        return lit_not(a)

    def mux(self, select: int, if_true: int, if_false: int) -> int:
        return self.aig.mux_(select, if_true, if_false)

    # -- word operators -----------------------------------------------------------

    def xor_word(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        self._check_widths(a, b)
        return [self.xor_(x, y) for x, y in zip(a, b)]

    def and_word(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        self._check_widths(a, b)
        return [self.and_(x, y) for x, y in zip(a, b)]

    def or_word(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        self._check_widths(a, b)
        return [self.or_(x, y) for x, y in zip(a, b)]

    def not_word(self, a: Sequence[int]) -> List[int]:
        return [lit_not(x) for x in a]

    def mux_word(self, select: int, if_true: Sequence[int],
                 if_false: Sequence[int]) -> List[int]:
        self._check_widths(if_true, if_false)
        return [self.mux(select, t, f) for t, f in zip(if_true, if_false)]

    def constant_word(self, value: int, width: int) -> List[int]:
        """Constant word from a Python integer."""
        return [TRUE if (value >> i) & 1 else FALSE for i in range(width)]

    # -- arithmetic ------------------------------------------------------------------

    def full_adder(self, a: int, b: int, carry: int) -> tuple:
        """(sum, carry_out) of a full adder."""
        axb = self.xor_(a, b)
        total = self.xor_(axb, carry)
        carry_out = self.or_(self.and_(a, b), self.and_(axb, carry))
        return total, carry_out

    def half_adder(self, a: int, b: int) -> tuple:
        """(sum, carry_out) of a half adder."""
        return self.xor_(a, b), self.and_(a, b)

    def ripple_add(self, a: Sequence[int], b: Sequence[int],
                   carry_in: int = FALSE) -> tuple:
        """(sum_word, carry_out) of a ripple-carry adder."""
        self._check_widths(a, b)
        carry = carry_in
        total: List[int] = []
        for x, y in zip(a, b):
            bit, carry = self.full_adder(x, y, carry)
            total.append(bit)
        return total, carry

    def subtract(self, a: Sequence[int], b: Sequence[int]) -> tuple:
        """(difference, borrow') via two's complement: a + ~b + 1."""
        return self.ripple_add(a, self.not_word(b), TRUE)

    def increment(self, a: Sequence[int]) -> tuple:
        """(a + 1, carry_out)."""
        ones = self.constant_word(0, len(a))
        return self.ripple_add(a, ones, TRUE)

    # -- comparison ------------------------------------------------------------------

    def equal(self, a: Sequence[int], b: Sequence[int]) -> int:
        """1 iff the words are equal."""
        self._check_widths(a, b)
        bits = [lit_not(self.xor_(x, y)) for x, y in zip(a, b)]
        return self.aig.and_many(bits)

    def less_than(self, a: Sequence[int], b: Sequence[int]) -> int:
        """1 iff a < b (unsigned): the borrow of a - b."""
        _, carry = self.subtract(a, b)
        return lit_not(carry)

    def is_zero(self, a: Sequence[int]) -> int:
        """1 iff every bit of the word is 0."""
        return lit_not(self.aig.or_many(list(a)))

    # -- structured blocks ----------------------------------------------------------------

    def parity(self, bits: Sequence[int]) -> int:
        """XOR tree over the bits (balanced)."""
        items = list(bits)
        if not items:
            return FALSE
        while len(items) > 1:
            paired = []
            for k in range(0, len(items) - 1, 2):
                paired.append(self.xor_(items[k], items[k + 1]))
            if len(items) % 2:
                paired.append(items[-1])
            items = paired
        return items[0]

    def decoder(self, select: Sequence[int]) -> List[int]:
        """One-hot decode of an n-bit select into 2^n lines.

        ``lines[j]`` is 1 iff the select word (LSB first) equals j.
        """
        lines = [TRUE]
        for bit in select:
            low = [self.and_(line, lit_not(bit)) for line in lines]
            high = [self.and_(line, bit) for line in lines]
            lines = low + high
        return lines

    def mux_tree(self, select: Sequence[int],
                 words: Sequence[Sequence[int]]) -> List[int]:
        """Select one of 2^n words with an n-bit select."""
        if len(words) != 1 << len(select):
            raise SynthesisError("mux_tree: need 2^len(select) words")
        current = [list(w) for w in words]
        for bit in select:
            merged = []
            for k in range(0, len(current), 2):
                merged.append(self.mux_word(bit, current[k + 1], current[k]))
            current = merged
        return current[0]

    def priority_encoder(self, requests: Sequence[int]) -> List[int]:
        """Binary index of the highest-priority (lowest-index) request."""
        width = max(1, (len(requests) - 1).bit_length())
        index = self.constant_word(0, width)
        none_before = TRUE
        for position, request in enumerate(requests):
            take = self.and_(none_before, request)
            value = self.constant_word(position, width)
            index = self.mux_word(take, value, index)
            none_before = self.and_(none_before, lit_not(request))
        return index

    def from_truth_table(self, table: int,
                         inputs: Sequence[int]) -> int:
        """Instantiate an arbitrary function of the input literals."""
        n = len(inputs)
        expr = factor(isop(table, n))
        return build_expr(self.aig, expr, list(inputs))

    # -- internals -------------------------------------------------------------------------

    @staticmethod
    def _check_widths(a: Sequence[int], b: Sequence[int]) -> None:
        if len(a) != len(b):
            raise SynthesisError(
                f"word width mismatch: {len(a)} vs {len(b)}")
