"""The 12-benchmark suite of Table 1, with the paper's reference data.

Each benchmark pairs a functional generator (our substitute for the
original ISCAS-85/MCNC netlist, see the package docstring) with the
numbers the paper reports for the three libraries, so the experiment
harness can print paper-vs-measured side by side.

Since the circuit-registry redesign this module is a thin view over
:mod:`repro.registry`: importing it registers the 12 benchmarks via
:func:`repro.registry.register_circuit`, and :func:`benchmark_suite`
reads them back out of the registry (so ``replace``-ing a registration
really changes what the Table 1 harness runs).  User circuits —
e.g. BLIF netlists brought in with
:func:`repro.registry.register_blif_circuit` — live in the same
registry but carry no paper rows, so they are addressable from every
entry point without silently joining the paper's 12-row table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.circuits.alu import alu_circuit
from repro.circuits.des import des_rounds
from repro.circuits.ecc import hamming_corrector, secded_decoder
from repro.circuits.multiplier import array_multiplier
from repro.circuits.random_logic import random_control_logic, t481_style
from repro.registry import (
    CMOS,
    CONVENTIONAL,
    GENERALIZED,
    circuit_entry,
    paper_benchmarks,
    register_circuit,
)
from repro.synth.aig import Aig

__all__ = [
    "CMOS", "CONVENTIONAL", "GENERALIZED",
    "PaperRow", "BenchmarkSpec", "PAPER_AVERAGES",
    "benchmark_suite", "build_benchmark",
]


@dataclass(frozen=True)
class PaperRow:
    """One benchmark x library cell of the paper's Table 1."""

    gates: int
    delay_ps: float
    pd_uw: float
    ps_uw: float
    pt_uw: float
    edp: float  # 1e-24 J*s


@dataclass(frozen=True)
class BenchmarkSpec:
    """One Table 1 benchmark."""

    name: str
    function: str              # the paper's "Function" column
    build: Callable[[], Aig]
    paper: Dict[str, PaperRow]


def _register(name: str, function: str, build: Callable[[], Aig],
              generalized: PaperRow, conventional: PaperRow,
              cmos: PaperRow) -> None:
    register_circuit(
        name, build, function=function,
        description=f"Table 1 benchmark ({function})",
        paper={GENERALIZED: generalized, CONVENTIONAL: conventional,
               CMOS: cmos},
        replace=True)


def benchmark_suite() -> List[BenchmarkSpec]:
    """The paper-benchmark circuits of the registry, as Table 1 specs.

    In registration order — the paper's row order for the built-in 12.
    """
    specs: List[BenchmarkSpec] = []
    for key in paper_benchmarks():
        entry = circuit_entry(key)
        specs.append(BenchmarkSpec(name=entry.key, function=entry.function,
                                   build=entry.build,
                                   paper=dict(entry.paper)))
    return specs


#: Paper Table 1 averages, for the summary row of the reproduction.
PAPER_AVERAGES: Dict[str, PaperRow] = {
    GENERALIZED: PaperRow(1145, 64, 19.84, 0.23, 23.05, 1.59),
    CONVENTIONAL: PaperRow(1462, 89, 29.25, 0.33, 33.97, 3.85),
    CMOS: PaperRow(1511, 452, 42.35, 4.55, 53.70, 31.04),
}


def build_benchmark(name: str) -> Aig:
    """Build one registered circuit by name (any key or alias).

    Historically restricted to the 12 Table 1 names; now a thin wrapper
    over :func:`repro.registry.build_circuit`, so registered user
    circuits build here too.
    """
    from repro.errors import ExperimentError
    from repro.registry import canonical_circuit, circuit_entry

    # Resolve the name inside the guard, build outside: a factory's own
    # ExperimentError is a real failure and must not be rewritten as an
    # unknown-name error.
    try:
        key = canonical_circuit(name)
    except ExperimentError:
        known = ", ".join(paper_benchmarks())
        raise ExperimentError(
            f"unknown benchmark or registered circuit {name!r}; the "
            f"Table 1 suite is {known}") from None
    return circuit_entry(key).build()


# -- the 12 paper benchmarks, in the paper's row order ------------------------

_register("C2670", "ALU and control",
          lambda: alu_circuit(12, with_priority=True, name="C2670c"),
          PaperRow(541, 52, 10.95, 0.10, 12.70, 0.66),
          PaperRow(631, 62, 14.52, 0.14, 16.83, 1.04),
          PaperRow(632, 320, 20.34, 1.84, 25.42, 8.13))
_register("C1908", "Error correcting",
          lambda: secded_decoder(5, name="C1908c"),
          PaperRow(261, 50, 4.23, 0.05, 4.91, 0.25),
          PaperRow(569, 90, 11.34, 0.13, 13.17, 1.19),
          PaperRow(544, 452, 15.81, 1.63, 19.98, 9.04))
_register("C3540", "ALU and control",
          lambda: alu_circuit(20, n_select_words=2, with_priority=True,
                              name="C3540c"),
          PaperRow(871, 80, 17.35, 0.18, 20.13, 1.61),
          PaperRow(1126, 109, 24.06, 0.26, 27.93, 3.04),
          PaperRow(1084, 551, 32.24, 3.29, 40.70, 22.41))
_register("dalu", "Dedicated ALU",
          lambda: alu_circuit(16, name="daluc"),
          PaperRow(892, 68, 13.29, 0.19, 15.48, 1.06),
          PaperRow(1142, 79, 17.24, 0.26, 20.08, 1.59),
          PaperRow(1046, 401, 22.38, 3.20, 29.26, 11.73))
_register("C7552", "ALU and control",
          lambda: alu_circuit(32, with_priority=True, name="C7552c"),
          PaperRow(1229, 59, 24.68, 0.24, 28.62, 1.69),
          PaperRow(1722, 77, 40.74, 0.38, 47.23, 3.65),
          PaperRow(1615, 401, 55.45, 4.85, 69.10, 27.71))
_register("C6288", "Multiplier",
          lambda: array_multiplier(16, name="C6288c"),
          PaperRow(1645, 161, 31.53, 0.31, 36.57, 5.88),
          PaperRow(3405, 245, 79.40, 0.78, 92.09, 22.57),
          PaperRow(3653, 1268, 114.20, 11.09, 143.53, 181.96))
_register("C5315", "ALU and selector",
          lambda: alu_circuit(16, n_select_words=3, name="C5315c"),
          PaperRow(1163, 58, 23.69, 0.24, 27.47, 1.59),
          PaperRow(1368, 88, 31.96, 0.31, 37.06, 3.28),
          PaperRow(1496, 448, 48.53, 4.41, 60.66, 27.20))
_register("des", "Data encryption",
          lambda: des_rounds(2, name="desc"),
          PaperRow(3429, 40, 59.02, 0.72, 68.59, 2.75),
          PaperRow(3483, 59, 64.71, 0.78, 75.19, 4.41),
          PaperRow(3668, 301, 98.34, 11.26, 125.48, 37.82))
_register("i10", "Logic",
          lambda: random_control_logic(64, 2200, 180, seed=10, name="i10c"),
          PaperRow(1680, 82, 23.37, 0.34, 27.21, 2.24),
          PaperRow(1979, 95, 31.29, 0.43, 36.41, 3.47),
          PaperRow(2073, 486, 45.90, 6.00, 59.39, 28.88))
_register("t481", "Logic",
          lambda: t481_style(),
          PaperRow(860, 54, 6.92, 0.19, 8.15, 0.44),
          PaperRow(709, 58, 5.08, 0.15, 6.00, 0.35),
          PaperRow(743, 290, 7.73, 2.24, 11.36, 3.30))
_register("i8", "Logic",
          lambda: random_control_logic(133, 1200, 81, seed=8, name="i8c"),
          PaperRow(961, 37, 19.72, 0.21, 22.89, 0.86),
          PaperRow(987, 37, 19.98, 0.22, 23.19, 0.87),
          PaperRow(974, 191, 29.06, 2.93, 36.65, 7.00))
_register("C1355", "Error correcting",
          lambda: hamming_corrector(5, name="C1355c"),
          PaperRow(212, 27, 3.34, 0.04, 3.88, 0.10),
          PaperRow(428, 62, 10.73, 0.10, 12.43, 0.78),
          PaperRow(607, 320, 18.16, 1.83, 22.89, 7.33))
