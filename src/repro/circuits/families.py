"""Parametric circuit families — ``synth:rand`` and its helpers.

A circuit *family* is one registration that stands for an unbounded set
of circuits: ``synth:rand(gates=50000,seed=7)`` is a valid circuit name
anywhere a benchmark key is (Session, sweep specs, the CLI, the
estimation server), resolved through
:func:`repro.registry.canonical_circuit` by parsing the spec and
instantiating the generator on first use.  See the family section of
:mod:`repro.registry` for the grammar and key semantics.

``synth:rand`` generates seeded multi-level random logic in the
i8/i10/t481 mold of :mod:`repro.circuits.random_logic`, but with an
XOR-richer operator mix (datapath-like blocks: parity, adders and
comparators are XOR-heavy — the regime where the ambipolar library's
transmission-gate XOR cells matter most, cf. the cell mixes of
arXiv:1411.2088).  Generation cost is linear in ``gates``, so the
family scales to million-gate stress subjects for the array kernel.

:func:`random_mapped_netlist` sidesteps synthesis and mapping entirely
and emits a random *mapped* netlist straight from a library's cells —
the benchmark and property-test workhorse, where the subject is the
simulator, not the flow.
"""

from __future__ import annotations

import random
from typing import List

from repro.circuits.builders import CircuitBuilder
from repro.gates.library import Library
from repro.synth.aig import Aig, lit_not
from repro.synth.netlist import MappedGate, MappedNetlist


def synth_rand(gates: int = 50000, seed: int = 7, inputs: int = 64,
               outputs: int = 32) -> Aig:
    """Seeded random multi-level logic with an XOR-rich operator mix.

    Args:
        gates: internal random operations (AND/OR/XOR/MUX); the mapped
            gate count lands in the same order of magnitude.
        seed: RNG seed — generation is fully reproducible, which is
            what makes the spec string a content address.
        inputs: primary inputs.
        outputs: primary outputs, tapped from the latest signals.
    """
    rng = random.Random(seed)
    builder = CircuitBuilder(
        f"synth:rand(gates={gates},seed={seed},"
        f"inputs={inputs},outputs={outputs})")
    signals: List[int] = [builder.input_bit(f"x{i}") for i in range(inputs)]

    def pick() -> int:
        # Bias toward recent signals so the DAG gains depth.
        n = len(signals)
        index = min(n - 1, int(rng.betavariate(2.0, 1.0) * n))
        literal = signals[index]
        return lit_not(literal) if rng.random() < 0.3 else literal

    for _ in range(gates):
        op = rng.choices(("and", "or", "xor", "mux"),
                         weights=(3, 3, 3, 1))[0]
        if op == "and":
            signals.append(builder.and_(pick(), pick()))
        elif op == "or":
            signals.append(builder.or_(pick(), pick()))
        elif op == "xor":
            signals.append(builder.xor_(pick(), pick()))
        else:
            signals.append(builder.mux(pick(), pick(), pick()))

    taps = signals[-outputs:] if outputs <= len(signals) else signals
    for index, literal in enumerate(taps):
        builder.output_bit(f"z{index}", literal)
    return builder.aig


def random_mapped_netlist(library: Library, gates: int, seed: int,
                          inputs: int = 16) -> MappedNetlist:
    """A seeded random *mapped* netlist over a library's actual cells.

    Emits cell instances directly — no synthesis, no mapping — so a
    10^5-gate simulation subject builds in well under a second.  Every
    cell of the library appears (weighted uniformly), fanins are drawn
    with the same recent-signal bias as the AIG generators, and gates
    are emitted in definition order, so the result is a valid
    topologically-ordered :class:`MappedNetlist`.  Used by the bitsim
    benchmark and the gate/array equivalence property tests, where the
    subject of interest is the simulator itself.
    """
    rng = random.Random(seed)
    cells = [(cell.name, cell.n_inputs) for cell in library]
    nets: List[str] = [f"x{i}" for i in range(inputs)]

    def pick() -> str:
        n = len(nets)
        return nets[min(n - 1, int(rng.betavariate(2.0, 1.0) * n))]

    mapped: List[MappedGate] = []
    for index in range(gates):
        cell_name, arity = cells[rng.randrange(len(cells))]
        output = f"n{index}"
        mapped.append(MappedGate(
            name=f"g{index}", cell=cell_name,
            inputs=tuple(pick() for _ in range(arity)), output=output))
        nets.append(output)
    po_count = min(8, len(nets))
    netlist = MappedNetlist(
        name=f"rand-mapped(gates={gates},seed={seed},inputs={inputs})",
        library=library,
        pi_names=[f"x{i}" for i in range(inputs)],
        po_bindings=[(f"z{i}", ("net", nets[-1 - i]))
                     for i in range(po_count)],
        gates=mapped)
    netlist.validate()
    return netlist


# -- family registrations (import time, like the benchmark suite) -------------

from repro.registry import register_circuit_family  # noqa: E402

register_circuit_family(
    "synth:rand", synth_rand,
    defaults={"gates": 50000, "seed": 7, "inputs": 64, "outputs": 32},
    description="seeded random multi-level logic, XOR-rich operator mix "
                "(parametric family; scales to millions of gates)",
    function="Random logic (parametric)")
