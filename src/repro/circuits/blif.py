"""BLIF import/export for AIGs and mapped netlists.

The paper's flow runs through ABC, whose native interchange format is
BLIF.  Writing our subject graphs and mapped covers as BLIF keeps the
reproduction interoperable with real tools (the generated files load in
ABC/SIS), and the reader lets users bring their own benchmark netlists
into the flow.

AIGs are written with one two-input ``.names`` block per AND node and
inverters folded into the cube phases.  Mapped netlists are written as
``.gate`` lines referencing the genlib cell names.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import SynthesisError
from repro.synth.aig import Aig, FALSE, TRUE, lit_node, lit_not, lit_phase
from repro.synth.netlist import MappedNetlist


def write_aig_blif(aig: Aig, name: Optional[str] = None) -> str:
    """Serialize an AIG as BLIF text."""
    lines: List[str] = [f".model {name or aig.name}"]
    lines.append(".inputs " + " ".join(aig.pi_names))
    lines.append(".outputs " + " ".join(aig.po_names))

    signal: Dict[int, str] = {}
    for node, pi_name in zip(aig.pis, aig.pi_names):
        signal[node] = pi_name
    for node in aig.and_nodes():
        signal[node] = f"n{node}"

    def literal_name(literal: int) -> Tuple[str, int]:
        """(net name, phase) of a literal; constants handled separately."""
        return signal[lit_node(literal)], lit_phase(literal)

    for node in aig.and_nodes():
        f0, f1 = aig.fanins(node)
        name0, phase0 = literal_name(f0)
        name1, phase1 = literal_name(f1)
        lines.append(f".names {name0} {name1} {signal[node]}")
        lines.append(f"{1 - phase0}{1 - phase1} 1")

    for po_literal, po_name in zip(aig.pos, aig.po_names):
        node = lit_node(po_literal)
        if node == 0:
            lines.append(f".names {po_name}")
            if lit_phase(po_literal):
                lines.append("1")
            continue
        source = signal[node]
        lines.append(f".names {source} {po_name}")
        lines.append("0 1" if lit_phase(po_literal) else "1 1")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_netlist_blif(netlist: MappedNetlist,
                       name: Optional[str] = None) -> str:
    """Serialize a mapped netlist as BLIF ``.gate`` lines."""
    library = netlist.library
    lines: List[str] = [f".model {name or netlist.name}"]
    lines.append(".inputs " + " ".join(netlist.pi_names))
    lines.append(".outputs " + " ".join(netlist.po_names))
    for gate in netlist.gates:
        cell = library.cell(gate.cell)
        bindings = " ".join(f"{pin}={net}" for pin, net
                            in zip(cell.inputs, gate.inputs))
        lines.append(f".gate {gate.cell} {bindings} "
                     f"{cell.stages[-1].name}={gate.output}")
    for po_name, (kind, value) in netlist.po_bindings:
        if kind == "const":
            lines.append(f".names {po_name}")
            if value:
                lines.append("1")
        elif value != po_name:
            lines.append(f".names {value} {po_name}")
            lines.append("1 1")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_netlist_verilog(netlist: MappedNetlist,
                          name: Optional[str] = None) -> str:
    """Serialize a mapped netlist as structural Verilog.

    Cells are emitted as module instances (one module name per library
    cell); a matching behavioural library can be generated from the
    genlib data.  Net names are sanitized to Verilog identifiers.
    """
    def ident(net: str) -> str:
        out = net.replace("[", "_").replace("]", "_").replace("'", "_b")
        return "\\" + net + " " if out != net and False else out

    module = (name or netlist.name).replace("-", "_")
    ports = [ident(n) for n in netlist.pi_names] + \
            [ident(n) for n in netlist.po_names]
    lines = [f"module {module} (" + ", ".join(ports) + ");"]
    for pi in netlist.pi_names:
        lines.append(f"  input {ident(pi)};")
    for po in netlist.po_names:
        lines.append(f"  output {ident(po)};")
    wires = [gate.output for gate in netlist.gates]
    if wires:
        lines.append("  wire " + ", ".join(ident(w) for w in wires) + ";")
    library = netlist.library
    for gate in netlist.gates:
        cell = library.cell(gate.cell)
        pin_map = [f".{pin}({ident(net)})" for pin, net
                   in zip(cell.inputs, gate.inputs)]
        pin_map.append(f".y({ident(gate.output)})")
        lines.append(f"  {gate.cell} {gate.name} (" + ", ".join(pin_map)
                     + ");")
    for po_name, (kind, value) in netlist.po_bindings:
        if kind == "const":
            lines.append(f"  assign {ident(po_name)} = 1'b{value};")
        elif value != po_name:
            lines.append(f"  assign {ident(po_name)} = {ident(value)};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


# -- BLIF reader ---------------------------------------------------------------


def _tokenize_blif(text: str) -> List[List[str]]:
    """Split BLIF text into logical lines (handling ``\\`` continuation)."""
    logical: List[str] = []
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        logical.append(pending + line)
        pending = ""
    if pending.strip():
        logical.append(pending)
    return [line.split() for line in logical]


def read_blif(text: str) -> Aig:
    """Parse a (combinational, ``.names``-based) BLIF model into an AIG.

    Supports multi-line single-output ``.names`` tables with arbitrary
    cube counts; latches and ``.gate`` lines are rejected (the flow is
    purely combinational).
    """
    rows = _tokenize_blif(text)
    model = "blif"
    inputs: List[str] = []
    outputs: List[str] = []
    tables: List[Tuple[List[str], str, List[str]]] = []
    index = 0
    while index < len(rows):
        row = rows[index]
        keyword = row[0]
        if keyword == ".model":
            model = row[1] if len(row) > 1 else model
            index += 1
        elif keyword == ".inputs":
            inputs.extend(row[1:])
            index += 1
        elif keyword == ".outputs":
            outputs.extend(row[1:])
            index += 1
        elif keyword == ".names":
            *fanins, output = row[1:]
            cubes: List[str] = []
            index += 1
            while index < len(rows) and not rows[index][0].startswith("."):
                cubes.append(" ".join(rows[index]))
                index += 1
            tables.append((fanins, output, cubes))
        elif keyword == ".end":
            index += 1
        elif keyword in (".latch", ".gate", ".subckt"):
            raise SynthesisError(f"unsupported BLIF construct {keyword}")
        else:
            raise SynthesisError(f"unknown BLIF keyword {keyword!r}")

    aig = Aig(model)
    nets: Dict[str, int] = {}
    for name in inputs:
        nets[name] = aig.add_pi(name)

    # .names blocks may be out of order; resolve iteratively.
    remaining = list(tables)
    progress = True
    while remaining and progress:
        progress = False
        still: List[Tuple[List[str], str, List[str]]] = []
        for fanins, output, cubes in remaining:
            if any(f not in nets for f in fanins):
                still.append((fanins, output, cubes))
                continue
            nets[output] = _build_names(aig, [nets[f] for f in fanins],
                                        cubes)
            progress = True
        remaining = still
    if remaining:
        missing = sorted({f for fanins, _, _ in remaining for f in fanins
                          if f not in nets})
        raise SynthesisError(f"undriven BLIF nets: {missing[:5]}")

    for name in outputs:
        if name not in nets:
            raise SynthesisError(f"undriven BLIF output {name!r}")
        aig.add_po(nets[name], name)
    return aig


def _build_names(aig: Aig, fanins: List[int], cubes: List[str]) -> int:
    """Build one ``.names`` table as AND/OR logic."""
    if not fanins:
        # constant: "1" means const1, empty means const0
        for cube in cubes:
            if cube.strip() == "1":
                return TRUE
        return FALSE
    terms: List[int] = []
    for cube in cubes:
        parts = cube.split()
        if len(parts) == 1:
            pattern, value = parts[0], "1"
        else:
            pattern, value = parts
        if value != "1":
            raise SynthesisError("only on-set BLIF tables are supported")
        literals: List[int] = []
        for position, char in enumerate(pattern):
            if char == "1":
                literals.append(fanins[position])
            elif char == "0":
                literals.append(lit_not(fanins[position]))
            elif char != "-":
                raise SynthesisError(f"bad cube character {char!r}")
        terms.append(aig.and_many(literals))
    if not terms:
        return FALSE
    return aig.or_many(terms)
