"""DES-style round function — the MCNC ``des`` class.

MCNC's ``des`` benchmark is the data-encryption-standard combinational
logic: expansion, key mixing, 6-to-4-bit S-boxes and permutation,
repeated per round.  The structure here is faithful — Feistel rounds
with eight 6->4 S-boxes each — but the S-box contents are *seeded
surrogates*: each S-box row is a seeded permutation of 0..15, which
preserves the defining balancedness property of the real DES tables
(every row of a real S-box is also a permutation of 0..15) without
embedding the standard's constants.  For the paper's purposes only the
functional class matters: wide XOR mixing plus dense random-looking
lookup logic.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.circuits.builders import CircuitBuilder
from repro.synth.aig import Aig


def _surrogate_sboxes(seed: int) -> List[List[int]]:
    """Eight 64-entry S-boxes; entry layout matches DES addressing.

    Address: row = (bit5, bit0), column = bits 4..1; each row is a
    random permutation of 0..15.
    """
    rng = random.Random(seed)
    boxes: List[List[int]] = []
    for _ in range(8):
        table = [0] * 64
        for row in range(4):
            values = list(range(16))
            rng.shuffle(values)
            for column in range(16):
                address = ((row & 2) << 4) | (column << 1) | (row & 1)
                table[address] = values[column]
        boxes.append(table)
    return boxes


def _sbox_truth_tables(table: Sequence[int]) -> List[int]:
    """Four 6-input truth tables (one per output bit) for an S-box."""
    truths = [0, 0, 0, 0]
    for address in range(64):
        value = table[address]
        for bit in range(4):
            if (value >> bit) & 1:
                truths[bit] |= 1 << address
    return truths


def _expansion(half: Sequence[int]) -> List[int]:
    """DES-style expansion: 32 -> 48 bits by duplicating edge bits.

    Groups of four data bits are flanked by their neighbours (cyclic),
    exactly the E-box pattern.
    """
    expanded: List[int] = []
    n = len(half)
    for group in range(n // 4):
        base = group * 4
        expanded.append(half[(base - 1) % n])
        expanded.extend(half[base:base + 4])
        expanded.append(half[(base + 4) % n])
    return expanded


def _permute(bits: Sequence[int], seed: int) -> List[int]:
    """Seeded fixed permutation (the P-box surrogate)."""
    order = list(range(len(bits)))
    random.Random(seed).shuffle(order)
    return [bits[i] for i in order]


def des_rounds(n_rounds: int = 2, seed: int = 2010,
               name: str = None) -> Aig:
    """Build ``n_rounds`` of a DES-style Feistel network.

    Inputs: 64-bit block plus one 48-bit round key per round.
    Outputs: the 64-bit block after the rounds.
    """
    builder = CircuitBuilder(name or f"des{n_rounds}r")
    block = builder.input_word("x", 64)
    left, right = block[:32], block[32:]
    boxes = [_sbox_truth_tables(t) for t in _surrogate_sboxes(seed)]

    for round_index in range(n_rounds):
        key = builder.input_word(f"k{round_index}", 48)
        expanded = _expansion(right)
        mixed = builder.xor_word(expanded, key)
        sbox_out: List[int] = []
        for box_index in range(8):
            chunk = mixed[box_index * 6:(box_index + 1) * 6]
            for truth in boxes[box_index]:
                sbox_out.append(builder.from_truth_table(truth, chunk))
        permuted = _permute(sbox_out, seed + round_index)
        new_right = builder.xor_word(left, permuted)
        left, right = right, new_right

    builder.output_word("l", left)
    builder.output_word("r", right)
    return builder.aig
