"""Benchmark circuit generators (the ISCAS-85 / MCNC substitute).

The original benchmark netlists are not redistributable, so each of the
paper's 12 circuits is replaced by a functional generator of the same
*class* — ALU-plus-control, array multiplier, error-correcting logic,
DES-style round function, seeded random control logic — sized near the
paper's gate counts.  The paper's conclusions depend on the functional
class (XOR-rich datapaths benefit most from the generalized library),
which the generators preserve; absolute gate counts differ and only
ratios are compared in EXPERIMENTS.md.
"""

from repro.circuits.builders import CircuitBuilder
from repro.circuits.adders import ripple_adder_circuit, parity_tree_circuit
from repro.circuits.multiplier import array_multiplier
from repro.circuits.ecc import hamming_corrector, secded_decoder
from repro.circuits.alu import alu_circuit
from repro.circuits.des import des_rounds
from repro.circuits.random_logic import random_control_logic, t481_style
from repro.circuits.suite import (
    BenchmarkSpec,
    PaperRow,
    benchmark_suite,
    build_benchmark,
)

__all__ = [
    "CircuitBuilder",
    "ripple_adder_circuit",
    "parity_tree_circuit",
    "array_multiplier",
    "hamming_corrector",
    "secded_decoder",
    "alu_circuit",
    "des_rounds",
    "random_control_logic",
    "t481_style",
    "BenchmarkSpec",
    "PaperRow",
    "benchmark_suite",
    "build_benchmark",
]
