"""Simple arithmetic circuits used as examples and test fixtures."""

from __future__ import annotations

from repro.circuits.builders import CircuitBuilder
from repro.synth.aig import Aig


def ripple_adder_circuit(width: int, name: str = None) -> Aig:
    """``width``-bit ripple-carry adder with carry in and out."""
    builder = CircuitBuilder(name or f"add{width}")
    a = builder.input_word("a", width)
    b = builder.input_word("b", width)
    carry_in = builder.input_bit("cin")
    total, carry = builder.ripple_add(a, b, carry_in)
    builder.output_word("sum", total)
    builder.output_bit("cout", carry)
    return builder.aig


def parity_tree_circuit(width: int, name: str = None) -> Aig:
    """``width``-input parity function (a pure XOR tree)."""
    builder = CircuitBuilder(name or f"parity{width}")
    bits = builder.input_word("x", width)
    builder.output_bit("parity", builder.parity(bits))
    return builder.aig
