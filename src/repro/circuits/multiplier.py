"""Carry-save array multiplier — the C6288 class.

ISCAS-85's C6288 is a 16x16 array multiplier built from a grid of full
and half adders.  This generator reproduces that structure: an AND-gate
partial-product matrix reduced row by row in carry-save form, with a
final ripple adder for the upper half.  The circuit is extremely
XOR-rich, which is exactly why the paper's generalized library shows
its largest wins here.
"""

from __future__ import annotations

from typing import List

from repro.circuits.builders import CircuitBuilder
from repro.synth.aig import Aig, FALSE


def array_multiplier(width: int = 16, name: str = None) -> Aig:
    """``width`` x ``width`` unsigned array multiplier."""
    builder = CircuitBuilder(name or f"mul{width}x{width}")
    a = builder.input_word("a", width)
    b = builder.input_word("b", width)

    # Partial-product matrix: pp[j][i] = a[i] & b[j].
    partials: List[List[int]] = [
        [builder.and_(a[i], b[j]) for i in range(width)]
        for j in range(width)
    ]

    # Row 0 initializes the running carry-save accumulator.
    sums: List[int] = list(partials[0])          # weight i
    carries: List[int] = [FALSE] * width         # weight i + 1
    product: List[int] = [sums[0]]               # bit 0 settled

    for j in range(1, width):
        row = partials[j]
        new_sums: List[int] = []
        new_carries: List[int] = []
        for i in range(width):
            # Accumulator bit of weight j + i: shift the previous sums
            # down by one (sums[i + 1]), fold in the previous carries
            # and the new partial product.
            above = sums[i + 1] if i + 1 < width else FALSE
            total, carry = builder.full_adder(row[i], above, carries[i])
            new_sums.append(total)
            new_carries.append(carry)
        sums, carries = new_sums, new_carries
        product.append(sums[0])

    # Final row: resolve the remaining carry-save pair with a ripple add.
    # After row width-1 the settled bits cover weights 0..width-1; the
    # leftover sums (shifted by one) and carries both sit at weights
    # width..2*width-1, so the ripple sum completes the product.  Its
    # carry-out has weight 2*width and is provably zero for unsigned
    # operands (max product < 2^(2*width)).
    high_sums = sums[1:] + [FALSE]
    upper, _carry_out = builder.ripple_add(high_sums, carries)
    product.extend(upper)
    builder.output_word("p", product)
    return builder.aig
