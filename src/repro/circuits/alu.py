"""Parameterized ALUs with control — the C2670/C3540/C5315/C7552/dalu class.

ISCAS-85's big circuits are ALUs with surrounding control; MCNC's
``dalu`` is a dedicated ALU.  :func:`alu_circuit` builds a configurable
equivalent: an 8-operation datapath (add, subtract, and, or, xor,
nor-style, pass, shift) selected by a decoded opcode, plus the typical
flag and control logic (zero/carry/overflow detect, comparator, parity,
priority interrupt encoding, word selectors).  The knobs let the suite
size each benchmark near its paper gate count.
"""

from __future__ import annotations

from typing import List, Optional

from repro.circuits.builders import CircuitBuilder
from repro.synth.aig import Aig, FALSE, lit_not


def alu_circuit(width: int,
                n_select_words: int = 0,
                with_comparator: bool = True,
                with_parity: bool = True,
                with_priority: bool = False,
                name: Optional[str] = None) -> Aig:
    """Build an ALU-with-control benchmark.

    Args:
        width: datapath width in bits.
        n_select_words: extra input words routed through a selector tree
            onto the ``b`` operand (models the bus selectors of C5315).
        with_comparator: add an equality/magnitude comparator block.
        with_parity: add result/operand parity outputs.
        with_priority: add a priority interrupt encoder over the high
            byte of ``a`` (models the control portion of C2670).
        name: circuit name.
    """
    builder = CircuitBuilder(name or f"alu{width}")
    a = builder.input_word("a", width)
    b_in = builder.input_word("b", width)
    opcode = builder.input_word("op", 3)
    carry_in = builder.input_bit("cin")

    # Optional operand selector tree (wide-mux heavy control).
    if n_select_words > 0:
        words = [b_in]
        for k in range(n_select_words):
            words.append(builder.input_word(f"w{k}", width))
        while len(words) & (len(words) - 1):
            words.append(builder.constant_word(0, width))
        select = builder.input_word("sel", (len(words) - 1).bit_length())
        b = builder.mux_tree(select, words)
    else:
        b = b_in

    # Datapath: compute all eight operations, select by decoded opcode.
    add_result, add_carry = builder.ripple_add(a, b, carry_in)
    sub_result, sub_carry = builder.subtract(a, b)
    and_result = builder.and_word(a, b)
    or_result = builder.or_word(a, b)
    xor_result = builder.xor_word(a, b)
    xnor_result = builder.not_word(xor_result)
    shift_left = [FALSE] + list(a[:-1])
    pass_b = list(b)
    operations: List[List[int]] = [
        add_result, sub_result, and_result, or_result,
        xor_result, xnor_result, shift_left, pass_b,
    ]
    result = builder.mux_tree(opcode, operations)
    builder.output_word("y", result)

    # Flags.
    builder.output_bit("zero", builder.is_zero(result))
    carry_flag = builder.mux(opcode[0], sub_carry, add_carry)
    builder.output_bit("carry", carry_flag)
    # Signed overflow for the adder: carries into/out of the MSB differ.
    msb = width - 1
    overflow = builder.xor_(
        builder.xor_(a[msb], b[msb]),
        builder.xor_(result[msb], carry_flag))
    builder.output_bit("ovf", overflow)

    if with_comparator:
        builder.output_bit("a_eq_b", builder.equal(a, b))
        builder.output_bit("a_lt_b", builder.less_than(a, b))

    if with_parity:
        builder.output_bit("par_y", builder.parity(result))
        builder.output_bit("par_ab", builder.parity(list(a) + list(b)))

    if with_priority:
        requests = a[max(0, width - 8):]
        index = builder.priority_encoder(requests)
        builder.output_word("irq", index)
        builder.output_bit("irq_any", lit_not(builder.is_zero(requests)))

    return builder.aig
