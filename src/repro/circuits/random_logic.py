"""Seeded multi-level random logic — the i8/i10/t481 class.

MCNC's ``i8``/``i10`` are flat multi-output control logic and ``t481``
is a single 16-input function.  The generators here synthesize seeded
random DAGs with a realistic operator mix (AND/OR/XOR/MUX, biased
toward recent signals so depth grows) and, for the t481 class, a
deterministic 16-input formula combining parity substructure with
AND/OR masking — the mix where conventional and generalized libraries
compete most closely (the paper's only benchmark where conventional
CNTFET gates win is t481).
"""

from __future__ import annotations

import random
from typing import List

from repro.circuits.builders import CircuitBuilder
from repro.synth.aig import Aig, lit_not


def random_control_logic(n_inputs: int, n_operations: int, n_outputs: int,
                         seed: int, name: str = None) -> Aig:
    """Seeded random multi-output logic block.

    Args:
        n_inputs: primary inputs.
        n_operations: internal random operations (AND/OR/XOR/MUX).
        n_outputs: primary outputs, tapped from the latest signals.
        seed: RNG seed (generation is fully reproducible).
    """
    rng = random.Random(seed)
    builder = CircuitBuilder(name or f"rand{n_inputs}x{n_outputs}")
    signals: List[int] = [builder.input_bit(f"x{i}") for i in range(n_inputs)]

    def pick() -> int:
        # Bias toward recent signals so the DAG gains depth.
        n = len(signals)
        index = min(n - 1, int(rng.betavariate(2.0, 1.0) * n))
        literal = signals[index]
        return lit_not(literal) if rng.random() < 0.3 else literal

    for _ in range(n_operations):
        op = rng.choices(("and", "or", "xor", "mux"),
                         weights=(4, 4, 2, 1))[0]
        if op == "and":
            signals.append(builder.and_(pick(), pick()))
        elif op == "or":
            signals.append(builder.or_(pick(), pick()))
        elif op == "xor":
            signals.append(builder.xor_(pick(), pick()))
        else:
            signals.append(builder.mux(pick(), pick(), pick()))

    taps = signals[-n_outputs:] if n_outputs <= len(signals) else signals
    for index, literal in enumerate(taps):
        builder.output_bit(f"z{index}", literal)
    return builder.aig


def t481_style(name: str = "t481c") -> Aig:
    """A deterministic 16-input, 1-output function in the t481 mold.

    Built as two layers: XOR pairs of adjacent inputs, then an
    AND-OR-majority mix of the pair signals, and a final parity fold.
    Like the original t481, the function rewards good multi-level
    decomposition but is not purely XOR-dominated.
    """
    builder = CircuitBuilder(name)
    x = [builder.input_bit(f"x{i}") for i in range(16)]
    pairs = [builder.xor_(x[2 * i], x[2 * i + 1]) for i in range(8)]
    ands = [builder.and_(pairs[i], pairs[(i + 1) % 8]) for i in range(8)]
    ors = [builder.or_(ands[i], ands[(i + 3) % 8]) for i in range(8)]
    # Majority-ish mask over three OR terms.
    masks = []
    for i in range(0, 8, 2):
        a, b, c = ors[i], ors[(i + 1) % 8], ors[(i + 5) % 8]
        masks.append(builder.or_(builder.and_(a, b),
                                 builder.or_(builder.and_(b, c),
                                             builder.and_(a, c))))
    folded = builder.parity(masks)
    guard = builder.and_(builder.or_(x[0], x[7]),
                         builder.or_(x[8], lit_not(x[15])))
    builder.output_bit("f", builder.and_(folded, guard))
    return builder.aig
