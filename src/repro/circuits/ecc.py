"""Error-correcting circuits — the C1355/C1908 class.

ISCAS-85's C1355 and C1908 are single-error-correcting channel
circuits.  The generators here build Hamming correctors: parity-check
syndromes (XOR trees), a syndrome decoder, and the correction XOR
stage — the same parity-dominated structure that makes the generalized
library shine on this class.
"""

from __future__ import annotations

from typing import List

from repro.circuits.builders import CircuitBuilder
from repro.synth.aig import Aig, lit_not


def _hamming_positions(n_parity: int) -> tuple:
    """Data/parity position split for a Hamming(2^m - 1) code.

    Positions are 1-based; powers of two carry parity.  Returns
    (data_positions, parity_positions), both ascending.
    """
    total = (1 << n_parity) - 1
    parity_positions = [1 << i for i in range(n_parity)]
    data_positions = [p for p in range(1, total + 1)
                      if p not in parity_positions]
    return data_positions, parity_positions


def hamming_corrector(n_parity: int = 5, name: str = None) -> Aig:
    """Single-error corrector for a Hamming(2^m - 1, 2^m - m - 1) code.

    Inputs: the received codeword (2^m - 1 bits, position order).
    Outputs: the corrected data bits plus the syndrome (error locator).
    With ``n_parity = 5`` this is a (31, 26) corrector, the C1355 class.
    """
    total = (1 << n_parity) - 1
    data_positions, _ = _hamming_positions(n_parity)
    builder = CircuitBuilder(name or f"hamming{total}")
    received = builder.input_word("r", total)  # received[i] = position i+1

    # Syndrome bit j = parity of all positions with bit j set.
    syndrome: List[int] = []
    for j in range(n_parity):
        taps = [received[p - 1] for p in range(1, total + 1)
                if (p >> j) & 1]
        syndrome.append(builder.parity(taps))

    # Decode the syndrome to a one-hot error locator; syndrome == 0
    # means no error (line 0 of the decoder).
    locator = builder.decoder(syndrome)

    # Correct: flip the bit the syndrome points at.
    corrected = [builder.xor_(received[p - 1], locator[p])
                 for p in range(1, total + 1)]

    data = [corrected[p - 1] for p in data_positions]
    builder.output_word("d", data)
    builder.output_word("syn", syndrome)
    return builder.aig


def secded_decoder(n_parity: int = 5, name: str = None) -> Aig:
    """SEC/DED decoder: Hamming plus an overall parity bit.

    Inputs: 2^m - 1 codeword bits plus the extended parity bit.
    Outputs: corrected data, single-error flag, double-error flag.
    With ``n_parity = 5`` this is the C1908 class (error detection and
    correction on a 16/26-bit channel word).
    """
    total = (1 << n_parity) - 1
    data_positions, _ = _hamming_positions(n_parity)
    builder = CircuitBuilder(name or f"secded{total}")
    received = builder.input_word("r", total)
    extended = builder.input_bit("px")

    syndrome: List[int] = []
    for j in range(n_parity):
        taps = [received[p - 1] for p in range(1, total + 1)
                if (p >> j) & 1]
        syndrome.append(builder.parity(taps))
    overall = builder.xor_(builder.parity(received), extended)

    syndrome_nonzero = builder.aig.or_many(syndrome)
    # Single error: overall parity trips (the error flipped one bit).
    single = builder.and_(syndrome_nonzero, overall)
    # Double error: syndrome fires but overall parity balances out.
    double = builder.and_(syndrome_nonzero, lit_not(overall))

    locator = builder.decoder(syndrome)
    corrected = [
        builder.xor_(received[p - 1], builder.and_(locator[p], single))
        for p in range(1, total + 1)
    ]
    data = [corrected[p - 1] for p in data_positions]
    builder.output_word("d", data)
    builder.output_bit("single_err", single)
    builder.output_bit("double_err", double)
    return builder.aig
