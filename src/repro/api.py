"""One front door: the :class:`Session` facade.

A ``Session`` owns everything a reproduction run needs — the
:class:`~repro.experiments.config.ExperimentConfig` (operating point,
pattern budget, estimator backend), the library selection (resolved
through :mod:`repro.registry`), process parallelism and the persistent
characterization-cache wiring — and exposes the three workloads every
entry point routes through::

    from repro.api import Session

    session = Session()                       # the paper's config
    session.run("C1355", "generalized")       # one Table 1 cell
    session.table1()                          # the whole table
    session.sweep(SweepSpec(vdd=(0.8, 0.9)))  # a scenario grid

``reproduce_table1`` and the sweep runner are thin wrappers over a
Session; the CLI builds one per command.  Anything registered with
:func:`repro.registry.register_library` or
:func:`repro.sim.backends.register_backend` is immediately usable here
— no experiment code changes.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.cache import ENV_CACHE_DIR, ENV_CACHE_DISABLE
from repro.circuits.suite import benchmark_suite
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig, PAPER_CONFIG
from repro.experiments.flow import (
    CircuitFlowResult,
    run_circuit_flow,
    synthesized_benchmark,
    synthesize_subject,
)
from repro.experiments.parallel import parallel_map, parallel_map_stream, resolve_jobs
from repro.experiments.table1 import (
    Table1Result,
    run_table1_cell,
    verbose_cell_line,
)
from repro.gates.library import Library
from repro.sim.backends import available_backends
from repro.synth.aig import Aig
from repro import registry

#: Types accepted wherever a circuit is expected.
CircuitLike = Union[str, Aig]
#: Types accepted wherever a library is expected.
LibraryLike = Union[str, Library]


class Session:
    """A configured reproduction session (the single public entry point).

    Args:
        config: the experiment configuration ``run`` and ``table1``
            use (the paper's by default).  The config's ``backend``
            field selects the estimator; its ``vdd`` is the supply all
            libraries are characterized at.  (``sweep`` grids carry
            their own per-point configs — see :meth:`sweep`.)
        jobs: worker processes for grid workloads (1 = serial,
            0/``None`` = all CPUs; clamped to the CPU count).  Results
            are bit-identical for any value.
        libraries: library keys/aliases this session targets for
            multi-library workloads (``table1``, ``run`` without an
            explicit library).  Defaults to the paper's three.
        cache_dir: redirect the persistent characterization cache
            (:mod:`repro.cache`) to this directory.  Applied via the
            process environment so worker processes inherit it — the
            setting is process-wide and persists after the session
            (later sessions see it unless they set their own).
        cache_enabled: force the characterization cache on/off.
            Process-wide like ``cache_dir``; ``None`` leaves the
            environment untouched.

    Registrations (libraries, circuits, backends) are per-process:
    with ``jobs != 1`` worker processes re-import the registries, so a
    factory registered at runtime (not from an imported module) is
    only visible to workers under the ``fork`` start method — put
    custom registrations in a module workers import, or run serially.
    The exception is BLIF circuits: :func:`repro.registry.
    register_blif_circuit` captures the netlist source, and the
    parallel runner replays it in every worker, so ``--blif`` netlists
    work for any ``jobs`` value under any start method.
    """

    def __init__(self, config: ExperimentConfig = PAPER_CONFIG, *,
                 jobs: Optional[int] = 1,
                 libraries: Optional[Sequence[str]] = None,
                 cache_dir: Optional[Union[str, Path]] = None,
                 cache_enabled: Optional[bool] = None):
        self.config = config
        self.jobs = jobs
        keys = registry.PAPER_LIBRARIES if libraries is None else libraries
        self.libraries = tuple(registry.canonical_library(key)
                               for key in keys)
        if not self.libraries:
            raise ExperimentError(
                "a session needs at least one library (got an empty "
                "selection)")
        if cache_dir is not None:
            os.environ[ENV_CACHE_DIR] = str(cache_dir)
        if cache_enabled is not None:
            os.environ[ENV_CACHE_DISABLE] = "0" if cache_enabled else "1"

    # -- discovery ---------------------------------------------------------

    @staticmethod
    def available_libraries() -> List[str]:
        """Registered library keys (see :mod:`repro.registry`)."""
        return registry.available_libraries()

    @staticmethod
    def available_backends() -> List[str]:
        """Registered estimator backends (see :mod:`repro.sim.backends`)."""
        return available_backends()

    @staticmethod
    def available_circuits() -> List[str]:
        """Registered circuit keys (the 12 benchmarks plus any user
        registrations — see :mod:`repro.registry`)."""
        return registry.available_circuits()

    @property
    def effective_jobs(self) -> int:
        """The worker count grids actually run with."""
        return resolve_jobs(self.jobs)

    def with_config(self, **overrides) -> "Session":
        """A sibling session with config fields replaced."""
        from dataclasses import replace
        return Session(replace(self.config, **overrides), jobs=self.jobs,
                       libraries=self.libraries)

    # -- resolution --------------------------------------------------------

    def library(self, name: LibraryLike,
                vdd: Optional[float] = None) -> Library:
        """Resolve a key/alias (or pass a library through), characterized
        at ``vdd`` (default: this session's operating point)."""
        if isinstance(name, Library):
            return name
        return registry.cached_library(name,
                                       self.config.vdd if vdd is None
                                       else vdd)

    def _subject(self, circuit: CircuitLike) -> Aig:
        """A synthesized subject graph for a registered circuit name or
        raw AIG."""
        if isinstance(circuit, Aig):
            return synthesize_subject(circuit, self.config)
        try:
            key = registry.canonical_circuit(circuit)
        except ExperimentError:
            raise ExperimentError(
                f"unknown benchmark or registered circuit {circuit!r}; "
                f"choose from {', '.join(registry.available_circuits())} "
                f"(or pass an Aig)") from None
        return synthesized_benchmark(key, self.config.synthesize)

    # -- workloads ---------------------------------------------------------

    def run(self, circuit: CircuitLike,
            library: Optional[LibraryLike] = None
            ) -> Union[CircuitFlowResult, Dict[str, CircuitFlowResult]]:
        """Synthesize, map and estimate one circuit.

        Args:
            circuit: a Table 1 benchmark name or any :class:`Aig`.
            library: a registered key/alias or a :class:`Library`;
                ``None`` runs every library of the session and returns
                ``{canonical_key: result}``.
        """
        if library is None:
            return {key: self.run(circuit, key) for key in self.libraries}
        subject = self._subject(circuit)
        resolved = self.library(library)
        flow = run_circuit_flow(subject, resolved, self.config,
                                presynthesized=True)
        if isinstance(circuit, str):
            # Generators name their AIGs with a suffix, and the caller
            # may have used an alias; report the canonical registry key.
            key = registry.canonical_circuit(circuit)
            if flow.circuit != key:
                from dataclasses import replace
                flow = replace(flow, circuit=key)
        return flow

    def table1(self, benchmarks: Optional[List[str]] = None,
               verbose: bool = False) -> Table1Result:
        """The Table 1 grid: every benchmark on every session library.

        ``benchmarks=None`` runs the paper's 12-row suite; an explicit
        list accepts *any* registered circuit (keys or aliases, user
        BLIF netlists included) and keeps the given order.  At the
        paper config with the paper's three libraries this is
        bit-identical to the historical ``reproduce_table1``.
        """
        if benchmarks is None:
            names = [spec.name for spec in benchmark_suite()]
        else:
            # Canonicalize, then dedupe: a key and its alias naming the
            # same circuit must not double-weight the Average row.
            names = list(dict.fromkeys(
                registry.canonical_circuit(name) for name in benchmarks))
        order = list(self.libraries)
        tasks = [(name, key, self.config)
                 for name in names for key in order]
        if self.jobs == 1:
            # Serial: stream progress while computing.
            flows = []
            for task in tasks:
                flow = run_table1_cell(task)
                flows.append(flow)
                if verbose:
                    print(verbose_cell_line(flow))
        else:
            # chunksize=len(order) keeps one circuit's libraries on one
            # worker, so each circuit is synthesized once per process
            # that touches it.
            flows = parallel_map(run_table1_cell, tasks, jobs=self.jobs,
                                 chunksize=len(order))
            if verbose:
                for flow in flows:
                    print(verbose_cell_line(flow))

        result = Table1Result(config=self.config, library_order=order)
        for name, start in zip(names, range(0, len(flows), len(order))):
            row: Dict[str, CircuitFlowResult] = {}
            for offset, key in enumerate(order):
                row[key] = flows[start + offset]
            result.results[name] = row
            result.benchmark_order.append(name)
        return result

    def optimize(self, circuit: str, *,
                 vdds: Optional[Sequence[float]] = None,
                 frequencies: Optional[Sequence[float]] = None,
                 libraries: Optional[Sequence[str]] = None,
                 backends: Optional[Sequence[str]] = None,
                 objectives: Optional[Sequence[str]] = None,
                 store=None, deadline_ms: Optional[float] = None):
        """The Pareto frontier of one circuit over a design space.

        Maps the circuit per (library, vdd), static-times each mapping
        (:mod:`repro.timing`), drops timing-infeasible (vdd, frequency)
        points *before* pricing, prices the survivors (one simulation
        per mapping via the activity cache; vectorized repricing) and
        returns the non-dominated set under ``objectives``
        (:data:`repro.schema.OPTIMIZE_OBJECTIVES`; default: minimize
        total power, maximize frequency).

        Axes default to this session's scope: its libraries, its
        config's vdd/frequency/backend.  ``store`` (a path or
        :class:`~repro.sweep.store.ResultStore`) warm-starts the
        evaluation from stored points and records every priced point
        back — the same contract as a serving engine.

        Returns an :class:`~repro.schema.OptimizeReport`.
        """
        from repro.schema import OptimizeQuery
        # Engine imports this module; resolve it lazily to keep the
        # dependency one-directional at import time.
        from repro.serve.engine import Engine

        query = OptimizeQuery(
            circuit=circuit,
            libraries=tuple(libraries) if libraries is not None
            else self.libraries,
            vdds=tuple(vdds) if vdds is not None else (self.config.vdd,),
            frequencies=tuple(frequencies) if frequencies is not None
            else (self.config.frequency,),
            backends=tuple(backends) if backends is not None
            else (self.config.backend,),
            **({"objectives": tuple(objectives)}
               if objectives is not None else {}),
            config=self.config,
            deadline_ms=deadline_ms,
        )
        return Engine(session=self, store=store).optimize(query)

    def sweep(self, spec, store=None, verbose: bool = False,
              echo: Callable[[str], None] = print):
        """Run every not-yet-stored point of a sweep grid.

        Unlike ``run``/``table1``, a sweep's operating points, library
        axis and estimator backend are defined entirely by the *spec*
        (each grid point is its own :class:`ExperimentConfig`); the
        session contributes parallelism and cache wiring.  Build the
        spec with ``backend=...``/``libraries=...`` to vary those —
        the session's own config does not leak into the grid.

        Pending points are grouped by *activity*
        (:func:`repro.sweep.runner.activity_group_key`): each group —
        one (circuit, library, mapping, pattern budget) — runs a
        single bit-parallel simulation and re-prices every operating
        point from it, bit-identically to executing the points one by
        one.  Workers receive whole groups, so a frequency x fanout x
        pricing-vdd grid costs one simulation per group no matter how
        it is sharded.

        Args:
            spec: a :class:`~repro.sweep.spec.SweepSpec`.
            store: a :class:`~repro.sweep.store.ResultStore`, a path
                (suffix selects the backend), or ``None`` for a fresh
                in-memory store.
            verbose: one line per completed point, streamed.
            echo: sink for verbose lines (tests capture it).

        Returns:
            A :class:`~repro.sweep.runner.SweepRunReport`; the store
            holds every point (``store`` attribute of the report).
        """
        import time

        from repro.sweep.runner import (
            SweepRunReport,
            _group_chunksize,
            _verbose_line as _sweep_line,
            group_tasks,
            run_sweep_group,
        )
        from repro.sweep.store import (
            MemoryResultStore,
            ResultStore,
            open_store,
            poison_record,
        )

        if store is None:
            store = MemoryResultStore()
        elif not isinstance(store, ResultStore):
            store = open_store(store)

        start = time.perf_counter()
        tasks = spec.expand()
        done_keys = store.keys()
        pending = [task for task in tasks if task.task_key not in done_keys]
        groups = group_tasks(pending)
        jobs_effective = min(resolve_jobs(self.jobs), max(1, len(groups)))
        simulations = 0
        retried = 0
        quarantined = 0

        def checkpoint(group, result) -> None:
            nonlocal simulations
            simulations += result["simulations"]
            for task, record in zip(group, result["records"]):
                store.append(record)
                if verbose:
                    echo(_sweep_line(task, record))

        def on_retry(group) -> None:
            nonlocal retried
            retried += len(group)

        def on_poison(group, error) -> None:
            # A group that keeps killing workers: quarantine its tasks
            # in the store (flagged records, invisible to keys()/
            # records()) so the rest of the grid still completes and a
            # resume does not blindly re-crash on them.
            nonlocal quarantined
            quarantined += len(group)
            for task in group:
                store.append(poison_record(task.task_key, str(error)))
                if verbose:
                    echo(f"{task.circuit:6s} {task.library:20s} "
                         f"QUARANTINED: {error}")

        parallel_map_stream(
            run_sweep_group, groups, jobs=self.jobs,
            chunksize=_group_chunksize(len(groups), jobs_effective),
            callback=checkpoint, on_retry=on_retry, on_poison=on_poison)

        return SweepRunReport(
            spec_hash=spec.spec_hash,
            store_path=str(store.path),
            total=len(tasks),
            cached=len(tasks) - len(pending),
            executed=len(pending),
            jobs_requested=0 if self.jobs is None else self.jobs,
            jobs_effective=jobs_effective,
            elapsed_s=time.perf_counter() - start,
            groups=len(groups),
            simulations=simulations,
            retried=retried,
            quarantined=quarantined,
            store=store,
        )
