"""Persistent on-disk characterization cache.

SPICE-derived characterization data (pattern DC solutions, per-library
leakage tables) is identical for identical technology parameters, so it
is cached on disk keyed by a *stable content hash* of the inputs:
change any field of :class:`~repro.devices.parameters.TechnologyParams`
(or a cell definition, for leakage tables) and the key changes, which
is the whole invalidation story — stale entries are simply never read
again and are garbage-collected by :meth:`DiskCache.clear`.

Layout and configuration:

* entries live under ``<root>/<namespace>/<key>.json``;
* the root is ``$REPRO_CACHE_DIR`` if set, else
  ``~/.cache/repro-ambipolar``;
* ``REPRO_CACHE_DISABLE=1`` turns all persistence off (every ``get``
  misses, every ``put`` is a no-op) — useful for hermetic tests;
* writes are atomic (temp file + ``os.replace``) and merge-on-write,
  so concurrent processes can only lose a redundant update, never
  corrupt an entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

#: Environment variable naming the cache root directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
#: Environment variable disabling persistence entirely when set to a
#: non-empty value other than "0".
ENV_CACHE_DISABLE = "REPRO_CACHE_DISABLE"

_DEFAULT_ROOT = Path.home() / ".cache" / "repro-ambipolar"


def _normalize(value: Any) -> Any:
    """Reduce a value to a JSON-stable structure for hashing."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: _normalize(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _normalize(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_normalize(v) for v in value]
    if isinstance(value, float):
        # repr round-trips doubles exactly; hashing the text avoids any
        # JSON float-formatting ambiguity.
        return repr(value)
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return repr(value)


def stable_hash(value: Any) -> str:
    """Deterministic content hash of dataclasses / plain structures.

    Two values hash equal iff their normalized JSON forms are equal, so
    e.g. two separately-constructed but identical ``TechnologyParams``
    share cache entries while any field change produces a fresh key.
    """
    payload = json.dumps(_normalize(value), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


def cache_enabled() -> bool:
    """True unless ``REPRO_CACHE_DISABLE`` is set (and not \"0\")."""
    flag = os.environ.get(ENV_CACHE_DISABLE, "")
    return flag in ("", "0")


def cache_root() -> Path:
    """The configured cache root directory (may not exist yet)."""
    configured = os.environ.get(ENV_CACHE_DIR)
    return Path(configured) if configured else _DEFAULT_ROOT


class DiskCache:
    """A tiny namespaced JSON key-value store on disk."""

    def __init__(self, root: Optional[Path] = None,
                 enabled: Optional[bool] = None):
        self.root = Path(root) if root is not None else cache_root()
        self.enabled = cache_enabled() if enabled is None else enabled

    def _path(self, namespace: str, key: str) -> Path:
        return self.root / namespace / f"{key}.json"

    def get(self, namespace: str, key: str) -> Optional[Any]:
        """Load an entry, or None when absent/disabled/corrupt."""
        if not self.enabled:
            return None
        path = self._path(namespace, key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def put(self, namespace: str, key: str, value: Any) -> None:
        """Atomically store an entry (no-op when disabled)."""
        if not self.enabled:
            return
        path = self._path(namespace, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{path.stem}.", suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(value, handle, separators=(",", ":"))
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full filesystem degrades to no persistence.
            pass

    def merge(self, namespace: str, key: str,
              updates: Dict[str, Any]) -> Dict[str, Any]:
        """Read-modify-write a dict entry; returns the merged dict.

        Concurrent writers each re-read before writing, so the worst
        outcome of a race is one writer redoing the other's (identical,
        content-addressed) work.
        """
        current = self.get(namespace, key)
        merged = dict(current) if isinstance(current, dict) else {}
        merged.update(updates)
        self.put(namespace, key, merged)
        return merged

    def clear(self, namespace: Optional[str] = None) -> int:
        """Delete cached entries; returns the number of files removed."""
        base = self.root / namespace if namespace else self.root
        removed = 0
        if not base.exists():
            return removed
        for path in sorted(base.rglob("*.json")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def default_cache() -> DiskCache:
    """A cache bound to the current environment configuration.

    Constructed fresh on every call so tests can redirect or disable the
    cache by setting the environment variables at any point.
    """
    return DiskCache()
