"""Persistent on-disk characterization cache.

SPICE-derived characterization data (pattern DC solutions, per-library
leakage tables) and simulation statistics are identical for identical
inputs, so they are cached on disk keyed by a *stable content hash*:
change any field of :class:`~repro.devices.parameters.TechnologyParams`
(or a cell definition, a netlist, a pattern budget) and the key
changes, which is the whole invalidation story — stale entries are
simply never read again and are garbage-collected by
:meth:`DiskCache.clear`.

Layout and configuration:

* entries live under ``<root>/<namespace>/<key>.json``;
* the root is ``$REPRO_CACHE_DIR`` if set, else
  ``~/.cache/repro-ambipolar``;
* ``REPRO_CACHE_DISABLE=1`` turns all persistence off (every ``get``
  misses, every ``put`` is a no-op) — useful for hermetic tests;
* writes are atomic (temp file in the same directory + ``os.replace``)
  and merge-on-write, so concurrent processes can only lose a
  redundant update, never corrupt an entry.

**Crash tolerance**: no byte read from disk is trusted.  Entries are
written as a checksummed envelope (``{"__repro_cache__": 1, "sha256":
..., "value": ...}``); reads verify the checksum and *quarantine*
anything unparseable, truncated or mismatched — the file is moved
aside to ``<root>/_quarantine/<namespace>/`` (for post-mortem) and the
read reports a clean miss, so a process killed mid-anything can never
poison future runs.  Envelope-less entries written by older builds are
still readable (callers structurally validate payloads anyway).
Quarantine/verification counters are exposed via :func:`cache_stats`
and surface in the server's ``/healthz``.

The read path carries the ``cache.corrupt_read`` fault-injection
point (:mod:`repro.faults`): a chaos run can garble any read and
assert that quarantine turns it into a recomputation, bit-identical
to the clean path.

**Cross-process single-flight**: the disk tier doubles as a
coordination point for a fleet of worker processes.  When N cold
workers miss the same content-addressed key at once, each paying the
full computation is a cache stampede; :func:`single_flight` elects
exactly one *leader* per key via an ``O_CREAT | O_EXCL`` lock file
under ``<root>/_locks/<namespace>/`` (the same ticket pattern
:mod:`repro.faults` uses for cross-process fault budgets) while the
other processes poll the disk entry the leader will write.  A leader
that dies mid-compute leaves its lock behind; followers detect the
stale lock (owner pid dead on this host, or older than the staleness
window) and take over leadership.  Because every computation here is
deterministic and content-addressed, the worst outcome of any race is
one redundant recomputation — never a wrong answer.  Leader/follower/
takeover counters are part of :func:`cache_stats` and surface in the
server's ``/healthz``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional

#: Environment variable naming the cache root directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
#: Environment variable disabling persistence entirely when set to a
#: non-empty value other than "0".
ENV_CACHE_DISABLE = "REPRO_CACHE_DISABLE"

#: Version tag of the checksummed on-disk envelope.
CACHE_FORMAT_VERSION = 1

#: Directory (under the cache root) corrupt entries are moved to.
QUARANTINE_DIRNAME = "_quarantine"

#: Directory (under the cache root) single-flight lock files live in.
LOCKS_DIRNAME = "_locks"

#: Age past which a single-flight lock whose owner cannot be probed
#: (different host, unreadable payload) is considered abandoned.
DEFAULT_LOCK_STALE_S = 30.0

#: How long a single-flight follower polls for the leader's entry
#: before giving up and computing redundantly (never deadlock on a
#: lock, whatever happens to its owner).
DEFAULT_FLIGHT_WAIT_S = 600.0

_DEFAULT_ROOT = Path.home() / ".cache" / "repro-ambipolar"


def _normalize(value: Any) -> Any:
    """Reduce a value to a JSON-stable structure for hashing."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: _normalize(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _normalize(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_normalize(v) for v in value]
    if isinstance(value, float):
        # repr round-trips doubles exactly; hashing the text avoids any
        # JSON float-formatting ambiguity.
        return repr(value)
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return repr(value)


def stable_hash(value: Any) -> str:
    """Deterministic content hash of dataclasses / plain structures.

    Two values hash equal iff their normalized JSON forms are equal, so
    e.g. two separately-constructed but identical ``TechnologyParams``
    share cache entries while any field change produces a fresh key.
    """
    payload = json.dumps(_normalize(value), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


def _entry_checksum(value: Any) -> str:
    """Checksum of an entry's *serialized* value, as stored on disk."""
    payload = json.dumps(value, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cache_enabled() -> bool:
    """True unless ``REPRO_CACHE_DISABLE`` is set (and not \"0\")."""
    flag = os.environ.get(ENV_CACHE_DISABLE, "")
    return flag in ("", "0")


def cache_root() -> Path:
    """The configured cache root directory (may not exist yet)."""
    configured = os.environ.get(ENV_CACHE_DIR)
    return Path(configured) if configured else _DEFAULT_ROOT


# Integrity counters are process-global (a DiskCache is constructed
# fresh per call site so the environment is always current; counters
# must outlive any one instance to be reportable in /healthz).
_STATS_LOCK = threading.Lock()
_STATS: Dict[str, int] = {"verified": 0, "legacy": 0, "quarantined": 0,
                          "checksum_mismatch": 0, "unparseable": 0,
                          "flight_leader": 0, "flight_follower": 0,
                          "flight_takeover": 0, "flight_timeout": 0}


def cache_stats() -> Dict[str, int]:
    """Integrity counters of the disk cache (process lifetime).

    ``verified`` — checksummed entries read and verified; ``legacy`` —
    pre-envelope entries accepted as-is; ``quarantined`` — corrupt
    entries moved aside (split into ``checksum_mismatch`` and
    ``unparseable``).  The ``flight_*`` counters track cross-process
    single-flight: computations led, answers served from a leader's
    entry after waiting, stale locks taken over, and waits that gave
    up and computed redundantly.
    """
    with _STATS_LOCK:
        return dict(_STATS)


def reset_cache_stats() -> None:
    """Zero the integrity counters (test isolation)."""
    with _STATS_LOCK:
        for key in _STATS:
            _STATS[key] = 0


def _count(key: str) -> None:
    with _STATS_LOCK:
        _STATS[key] += 1


class DiskCache:
    """A tiny namespaced JSON key-value store on disk."""

    def __init__(self, root: Optional[Path] = None,
                 enabled: Optional[bool] = None):
        self.root = Path(root) if root is not None else cache_root()
        self.enabled = cache_enabled() if enabled is None else enabled

    def _path(self, namespace: str, key: str) -> Path:
        return self.root / namespace / f"{key}.json"

    def _quarantine(self, path: Path, namespace: str, reason: str) -> None:
        """Move a corrupt entry aside; never raise, never re-read it."""
        _count("quarantined")
        _count(reason)
        target_dir = self.root / QUARANTINE_DIRNAME / namespace
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            # A nanosecond stamp keeps repeated quarantines of the same
            # key from overwriting each other's evidence.
            target = target_dir / f"{path.stem}.{time.time_ns()}{path.suffix}"
            os.replace(path, target)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def get(self, namespace: str, key: str) -> Optional[Any]:
        """Load an entry, or None when absent/disabled/corrupt.

        Corrupt or truncated entries are quarantined (moved aside and
        counted) so they are a miss now *and* on every future read.
        """
        if not self.enabled:
            return None
        path = self._path(namespace, key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            return None
        from repro import faults

        if faults.fire("cache.corrupt_read",
                       context=f"{namespace}/{key}") is not None:
            text = faults.corrupt(text)
        try:
            payload = json.loads(text)
        except ValueError:
            self._quarantine(path, namespace, "unparseable")
            return None
        if (isinstance(payload, dict)
                and payload.get("__repro_cache__") == CACHE_FORMAT_VERSION):
            value = payload.get("value")
            if payload.get("sha256") != _entry_checksum(value):
                self._quarantine(path, namespace, "checksum_mismatch")
                return None
            _count("verified")
            return value
        # An entry from before the checksummed envelope: accepted, and
        # rewritten with a checksum the next time its key is put().
        _count("legacy")
        return payload

    def put(self, namespace: str, key: str, value: Any) -> None:
        """Atomically store a checksummed entry (no-op when disabled).

        The temp file lives in the destination directory so
        ``os.replace`` is a same-filesystem atomic rename: a killed
        process leaves either the old entry or the new one, never a
        partial file under the real name.
        """
        if not self.enabled:
            return
        path = self._path(namespace, key)
        envelope = {"__repro_cache__": CACHE_FORMAT_VERSION,
                    "sha256": _entry_checksum(value),
                    "value": value}
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{path.stem}.", suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(envelope, handle, separators=(",", ":"))
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full filesystem degrades to no persistence.
            pass

    def merge(self, namespace: str, key: str,
              updates: Dict[str, Any]) -> Dict[str, Any]:
        """Read-modify-write a dict entry; returns the merged dict.

        Concurrent writers each re-read before writing, so the worst
        outcome of a race is one writer redoing the other's (identical,
        content-addressed) work.
        """
        current = self.get(namespace, key)
        merged = dict(current) if isinstance(current, dict) else {}
        merged.update(updates)
        self.put(namespace, key, merged)
        return merged

    # -- single-flight locks ----------------------------------------------

    def lock_path(self, namespace: str, key: str) -> Path:
        return self.root / LOCKS_DIRNAME / namespace / f"{key}.lock"

    def try_lock(self, namespace: str, key: str) -> bool:
        """Claim the single-flight lock for a key (``O_CREAT|O_EXCL``).

        The lock file records the owner's pid/host/claim time so other
        processes can judge staleness.  Returns False when someone else
        holds it (or the filesystem refuses — a degraded filesystem
        must degrade to duplicate work, not to a crash).
        """
        path = self.lock_path(namespace, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return False
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump({"pid": os.getpid(),
                           "host": os.uname().nodename,
                           "time": time.time()}, handle)
        except OSError:
            pass
        return True

    def unlock(self, namespace: str, key: str) -> None:
        """Release a single-flight lock (missing file is fine)."""
        try:
            self.lock_path(namespace, key).unlink()
        except OSError:
            pass

    def lock_stale(self, namespace: str, key: str,
                   stale_s: float = DEFAULT_LOCK_STALE_S) -> bool:
        """True when the key's lock exists but its owner is gone.

        A lock is stale when its recorded owner pid is dead on this
        host, or — when the owner cannot be probed (another host, a
        torn lock write) — when the file is older than ``stale_s``.
        A live same-host owner is *never* stale by age alone: a big
        computation legitimately outlives any fixed window.
        """
        path = self.lock_path(namespace, key)
        try:
            stat = path.stat()
        except OSError:
            return False  # no lock at all
        age = time.time() - stat.st_mtime
        try:
            with open(path, "r", encoding="utf-8") as handle:
                owner = json.load(handle)
            pid = int(owner["pid"])
            host = str(owner.get("host", ""))
        except (OSError, ValueError, KeyError, TypeError):
            return age > stale_s  # unreadable: trust only the clock
        if host and host != os.uname().nodename:
            return age > stale_s  # cannot probe a foreign pid
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True  # owner died mid-compute
        except OSError:
            pass  # EPERM etc.: the pid exists
        return False


    def clear(self, namespace: Optional[str] = None) -> int:
        """Delete cached entries; returns the number of files removed."""
        base = self.root / namespace if namespace else self.root
        removed = 0
        if not base.exists():
            return removed
        for path in sorted(base.rglob("*.json")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def single_flight(cache: DiskCache, namespace: str, key: str,
                  compute, probe, *,
                  stale_s: float = DEFAULT_LOCK_STALE_S,
                  poll_s: float = 0.02,
                  max_wait_s: float = DEFAULT_FLIGHT_WAIT_S) -> Any:
    """Compute a content-addressed value exactly once across processes.

    ``probe()`` returns the finished value from the disk tier (or
    ``None``); ``compute()`` produces it *and persists it* so other
    processes' probes can see it.  The first process to claim the key's
    lock file computes; everyone else polls ``probe`` until the entry
    appears.  Recovery paths:

    * the leader's lock is released in a ``finally`` — an exception
      frees the key immediately;
    * a leader *killed* mid-compute (SIGKILL, power loss) leaves its
      lock behind; followers detect the dead owner (or, cross-host,
      the ``stale_s`` age) via :meth:`DiskCache.lock_stale`, break the
      lock and re-race for leadership;
    * a follower that has waited ``max_wait_s`` computes redundantly
      rather than wait forever — duplicate work, never a deadlock.

    With the cache disabled there is no shared tier to coordinate
    through, so the call degrades to a plain ``compute()``.
    """
    if not cache.enabled:
        return compute()
    deadline = time.monotonic() + max_wait_s
    waited = False
    while True:
        if cache.try_lock(namespace, key):
            try:
                # Between our probe miss and the lock claim another
                # leader may have finished: serve its entry, skip the
                # compute entirely.
                value = probe()
                if value is not None:
                    _count("flight_follower")
                    return value
                _count("flight_leader")
                return compute()
            finally:
                cache.unlock(namespace, key)
        value = probe()
        if value is not None:
            if waited:
                _count("flight_follower")
            return value
        if cache.lock_stale(namespace, key, stale_s):
            # The leader died mid-compute: break its lock and re-race.
            # Two followers may both unlink (one of them a fresh lock
            # in the worst interleaving); the cost is one redundant
            # deterministic compute, not corruption.
            cache.unlock(namespace, key)
            _count("flight_takeover")
            continue
        if time.monotonic() >= deadline:
            _count("flight_timeout")
            return compute()
        waited = True
        time.sleep(poll_s)


def default_cache() -> DiskCache:
    """A cache bound to the current environment configuration.

    Constructed fresh on every call so tests can redirect or disable the
    cache by setting the environment variables at any point.
    """
    return DiskCache()
