"""Compact device models for the 32 nm CMOS and CNTFET technologies.

The paper characterizes gates with HSPICE and the Stanford CNTFET model;
this package provides the substitute: an EKV-style compact model (smooth
from subthreshold to strong inversion, with DIBL and channel-length
modulation, so off-transistor stacks exhibit the stack effect the
pattern-classification method relies on), plus calibrated parameter sets
for the two technologies and the ambipolar device abstraction of Fig. 1.
"""

from repro.devices.parameters import (
    DeviceParams,
    TechnologyParams,
    CMOS_32NM,
    CNTFET_32NM,
    cmos_32nm,
    cntfet_32nm,
)
from repro.devices.model import (
    drain_current,
    transconductance,
    output_conductance,
    gate_leakage_current,
    off_current,
    on_current,
)
from repro.devices.ambipolar import (
    Polarity,
    AmbipolarCNTFET,
    polarity_from_gate_level,
)
from repro.devices.calibrate import (
    inverter_input_capacitance,
    fanout_load_capacitance,
    effective_resistance,
    fo_delay,
    technology_report,
)

__all__ = [
    "DeviceParams",
    "TechnologyParams",
    "CMOS_32NM",
    "CNTFET_32NM",
    "cmos_32nm",
    "cntfet_32nm",
    "drain_current",
    "transconductance",
    "output_conductance",
    "gate_leakage_current",
    "off_current",
    "on_current",
    "Polarity",
    "AmbipolarCNTFET",
    "polarity_from_gate_level",
    "inverter_input_capacitance",
    "fanout_load_capacitance",
    "effective_resistance",
    "fo_delay",
    "technology_report",
]
