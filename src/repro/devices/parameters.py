"""Device and technology parameter sets.

The paper fixes its technology assumptions in Section 4:

* 32 nm gate width, 3 CNTs per channel for the CNTFET library;
* 32 nm bulk CMOS with metal gate and strained channel (MASTAR / ITRS
  2007 built-in model) for the reference library;
* VDD = 0.9 V, f = 1 GHz, fanout = 3;
* identical unit gate, drain and source capacitances;
* CNTFET inverter input capacitance 36 aF vs 52 aF for CMOS;
* CNTFET gate leakage negligible (high-k gate stack), CMOS gate leakage
  about 10 % of the subthreshold leakage power;
* CNTFET intrinsic delay about 5x lower than MOSFET (Deng et al. [10]).

The calibrated values below encode exactly those first-order targets.
They were derived analytically from the EKV-style model in
:mod:`repro.devices.model` (see DESIGN.md Section 6) and are locked in by
``tests/devices/test_calibration.py``; nothing downstream hard-codes the
resulting currents or delays.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import DeviceModelError
from repro.units import AF, NA, ROOM_TEMPERATURE


@dataclass(frozen=True)
class DeviceParams:
    """Compact-model parameters for one transistor flavour.

    The model is symmetric in drain/source and uses an EKV-style
    interpolation, so a handful of parameters covers subthreshold,
    saturation and the linear region well enough for the paper's
    first-order power study.

    Attributes:
        name: human-readable identifier, e.g. ``"cmos32-n"``.
        polarity: ``"n"`` or ``"p"``.
        vth: threshold voltage magnitude (V).
        n_factor: subthreshold slope factor (S = n * Vt * ln 10).
        i_spec: specific current of the whole device (A); absorbs
            mobility, Cox, W/L and, for CNTFETs, the number of tubes.
        lambda_ch: channel-length modulation (1/V).
        dibl: drain-induced barrier lowering (V/V).
        c_gate: conventional-gate input capacitance per device (F).
        c_pol: polarity (back) gate capacitance per device (F); zero for
            devices without a second gate.
        c_sd: source/drain junction capacitance per device (F).
        ig_on: gate tunneling current at |Vox| = vdd_ref (A).
        vdd_ref: supply the leakage figures are quoted at (V).
    """

    name: str
    polarity: str
    vth: float
    n_factor: float
    i_spec: float
    lambda_ch: float
    dibl: float
    c_gate: float
    c_pol: float
    c_sd: float
    ig_on: float
    vdd_ref: float

    def __post_init__(self) -> None:
        if self.polarity not in ("n", "p"):
            raise DeviceModelError(
                f"device polarity must be 'n' or 'p', got {self.polarity!r}")
        if self.vth <= 0.0:
            raise DeviceModelError("vth must be positive (magnitude)")
        if self.n_factor < 1.0:
            raise DeviceModelError("subthreshold slope factor must be >= 1")
        if self.i_spec <= 0.0:
            raise DeviceModelError("i_spec must be positive")
        for attr in ("c_gate", "c_pol", "c_sd", "ig_on"):
            if getattr(self, attr) < 0.0:
                raise DeviceModelError(f"{attr} must be non-negative")

    def as_polarity(self, polarity: str) -> "DeviceParams":
        """Return a copy of these parameters with the given polarity.

        The paper assumes n- and p-type off-currents of equally sized
        devices are identical (Section 3.2), so flipping polarity keeps
        every numeric parameter.
        """
        if polarity == self.polarity:
            return self
        base = self.name.rsplit("-", 1)[0]
        return replace(self, name=f"{base}-{polarity}", polarity=polarity)


@dataclass(frozen=True)
class TechnologyParams:
    """A full technology: one n-type and one p-type device plus globals.

    Attributes:
        name: e.g. ``"cmos-32nm"``.
        vdd: nominal supply (V).
        nmos / pmos: the two device flavours.
        ambipolar: whether devices have an in-field polarity gate
            (Fig. 1); controls transmission-gate availability and the
            polarity-gate capacitance seen by gate inputs.
        area_per_device: normalized layout area of one device (arbitrary
            units, used for genlib areas).
        temperature: junction temperature (K).
    """

    name: str
    vdd: float
    nmos: DeviceParams
    pmos: DeviceParams
    ambipolar: bool
    area_per_device: float
    temperature: float = ROOM_TEMPERATURE

    def __post_init__(self) -> None:
        if self.vdd <= 0.0:
            raise DeviceModelError("vdd must be positive")
        if self.nmos.polarity != "n" or self.pmos.polarity != "p":
            raise DeviceModelError(
                "TechnologyParams.nmos/pmos must have matching polarities")

    def device(self, polarity: str) -> DeviceParams:
        """Return the device flavour for ``polarity`` ('n' or 'p')."""
        if polarity == "n":
            return self.nmos
        if polarity == "p":
            return self.pmos
        raise DeviceModelError(f"unknown polarity {polarity!r}")

    def with_vdd(self, vdd: float) -> "TechnologyParams":
        """Copy of the technology at a different supply (for ablations)."""
        return replace(self, vdd=vdd)


def cmos_32nm() -> TechnologyParams:
    """32 nm bulk CMOS, metal gate, strained channel (MASTAR-flavoured).

    Calibration targets (DESIGN.md Section 6):

    * inverter input capacitance 52 aF  ->  26 aF unit gate cap;
    * unit off-current ~3 nA at Vgs = 0, Vds = 0.9 V;
    * unit on-current ~3 uA, which puts the FO3 inverter delay near
      20 ps so that mapped circuit delays land at the paper's scale;
    * gate tunneling such that PG comes out near 10 % of PS at the
      library level (0.15 nA per fully-biased device).
    """
    n = DeviceParams(
        name="cmos32-n",
        polarity="n",
        vth=0.2670,
        n_factor=2.0,
        i_spec=95.99e-9,
        lambda_ch=0.15,
        dibl=0.10,
        c_gate=26.0 * AF,
        c_pol=0.0,
        c_sd=26.0 * AF,
        ig_on=0.15 * NA,
        vdd_ref=0.9,
    )
    return TechnologyParams(
        name="cmos-32nm",
        vdd=0.9,
        nmos=n,
        pmos=n.as_polarity("p"),
        ambipolar=False,
        area_per_device=1.0,
    )


def cntfet_32nm() -> TechnologyParams:
    """MOSFET-like CNTFET, 32 nm gate width, 3 tubes per channel.

    Calibration targets (DESIGN.md Section 6):

    * inverter input capacitance 36 aF  ->  18 aF unit gate cap;
    * polarity (back) gate adds 6 aF per ambipolar device input —
      smaller than the front gate because it couples through the
      thick buried insulator;
    * unit off-current ~0.2-0.3 nA (one order of magnitude below CMOS,
      thick insulator isolating the tubes from the substrate);
    * on-current ~11 uA (about 3.7 uA per tube) so that the FO3 delay
      is ~5x below the CMOS FO3 delay (Deng et al. [10]);
    * gate tunneling ~1.5 pA per device (high-k stack): PG < 1 % of PS.
    """
    n = DeviceParams(
        name="cnt32-n",
        polarity="n",
        vth=0.2902,
        n_factor=1.4,
        i_spec=198.4e-9,
        lambda_ch=0.08,
        dibl=0.06,
        c_gate=18.0 * AF,
        c_pol=6.0 * AF,
        c_sd=18.0 * AF,
        ig_on=1.5e-12,
        vdd_ref=0.9,
    )
    return TechnologyParams(
        name="cntfet-32nm",
        vdd=0.9,
        nmos=n,
        pmos=n.as_polarity("p"),
        ambipolar=True,
        area_per_device=0.8,
    )


#: Module-level singletons for the two technologies of the paper.
CMOS_32NM = cmos_32nm()
CNTFET_32NM = cntfet_32nm()
