"""The ambipolar CNTFET abstraction of Fig. 1.

An ambipolar CNTFET has two gates: the *polarity gate* (the back gate at
the Schottky contacts) selects whether the device behaves as n-type or
p-type, and the *conventional gate* switches it on and off.  Fig. 1 of
the paper fixes the convention:

* polarity gate tied to logic 0 (VSS)  ->  n-type behaviour;
* polarity gate tied to logic 1 (VDD)  ->  p-type behaviour.

Following O'Connor et al. [5], the electrical behaviour is emulated with
a parallel pair of unipolar devices of opposite polarity; the polarity
gate voltage decides which of the two actually conducts.  That is what
:meth:`AmbipolarCNTFET.drain_current` implements, and it is also how the
SPICE netlists in :mod:`repro.spice` realize ambipolar devices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.devices.model import drain_current
from repro.devices.parameters import DeviceParams
from repro.errors import DeviceModelError
from repro.units import ROOM_TEMPERATURE


class Polarity(enum.Enum):
    """In-field configured polarity of an ambipolar device."""

    N = "n"
    P = "p"


def polarity_from_gate_level(level: int) -> Polarity:
    """Map a polarity-gate logic level to the device polarity (Fig. 1).

    ``level = 0`` yields an n-type device, ``level = 1`` a p-type device.
    """
    if level not in (0, 1):
        raise DeviceModelError(f"polarity gate level must be 0 or 1, got {level}")
    return Polarity.N if level == 0 else Polarity.P


@dataclass(frozen=True)
class AmbipolarCNTFET:
    """An ambipolar CNTFET built from a base (n-type) parameter set.

    The device is modeled as the parallel combination of an n-type and a
    p-type unipolar CNTFET sharing the conventional gate; the polarity
    gate voltage selects the branch that dominates.  With the paper's
    symmetric n/p assumption both branches share the same magnitudes.
    """

    base: DeviceParams

    def __post_init__(self) -> None:
        if self.base.polarity != "n":
            raise DeviceModelError(
                "AmbipolarCNTFET must be built from the n-type base parameters")

    @property
    def n_branch(self) -> DeviceParams:
        """The n-type half of the behavioural pair."""
        return self.base

    @property
    def p_branch(self) -> DeviceParams:
        """The p-type half of the behavioural pair."""
        return self.base.as_polarity("p")

    def configured(self, polarity: Polarity) -> DeviceParams:
        """Unipolar parameters once the polarity gate is biased (Fig. 1b/c)."""
        if polarity is Polarity.N:
            return self.n_branch
        return self.p_branch

    def drain_current(
        self,
        vg: float,
        vpg: float,
        vd: float,
        vs: float,
        vdd: float,
        temperature: float = ROOM_TEMPERATURE,
    ) -> float:
        """Behavioural current of the in-field programmable device.

        Args:
            vg: conventional gate voltage (absolute, V).
            vpg: polarity gate voltage (absolute, V).
            vd / vs: drain and source voltages (absolute, V).
            vdd: supply, used to normalize the polarity-gate control.

        The polarity-gate voltage blends the two branches: at vpg = 0
        only the n branch conducts, at vpg = vdd only the p branch.  A
        smooth mix keeps the behavioural model continuous for the DC
        solver while reproducing the two unipolar corners exactly.
        """
        if vdd <= 0.0:
            raise DeviceModelError("vdd must be positive")
        weight_p = min(max(vpg / vdd, 0.0), 1.0)
        i_n = drain_current(self.n_branch, vg - vs, vd - vs, temperature)
        i_p = drain_current(self.p_branch, vg - vs, vd - vs, temperature)
        return (1.0 - weight_p) * i_n + weight_p * i_p
