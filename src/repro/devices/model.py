"""EKV-style compact transistor model.

A single smooth expression covers subthreshold and strong inversion:

    I_D = i_spec * (F(u_f) - F(u_r)) * (1 + lambda * |v_ds|)

    F(u) = ln(1 + exp(u / 2))^2          (EKV interpolation function)
    u_f  = (v_p - 0)      / Vt           forward normalized voltage
    u_r  = (v_p - v_ds)   / Vt           reverse normalized voltage
    v_p  = (v_gs - vth_eff) / n          pinch-off voltage
    vth_eff = vth - dibl * v_ds

In weak inversion this reduces to ``i_spec * exp((vgs - vth)/(n Vt)) *
(1 - exp(-vds / Vt))`` — the classic subthreshold law whose series
"stack effect" drives the paper's off-current pattern classification.
In strong inversion it reduces to a square law with saturation.

All functions take NMOS-convention voltages and handle drain/source
reversal (vds < 0) by symmetry; p-type devices are handled by mirroring
both terminal voltages.  Inputs may be floats or numpy arrays.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from repro.devices.parameters import DeviceParams
from repro.units import thermal_voltage, ROOM_TEMPERATURE

Number = Union[float, np.ndarray]

#: Largest exponent fed to exp() — beyond this the softplus is linear.
_EXP_CLIP = 45.0


def _softplus(u: Number) -> Number:
    """Numerically stable ln(1 + exp(u))."""
    u = np.asarray(u, dtype=float)
    out = np.where(u > _EXP_CLIP, u, np.log1p(np.exp(np.minimum(u, _EXP_CLIP))))
    return out


def _sigmoid(u: Number) -> Number:
    """Numerically stable logistic function."""
    u = np.asarray(u, dtype=float)
    return 0.5 * (1.0 + np.tanh(0.5 * u))


def _ekv_f(u: Number) -> Number:
    """EKV interpolation function F(u) = ln(1 + e^(u/2))^2."""
    return _softplus(np.asarray(u, dtype=float) / 2.0) ** 2


def _ekv_f_prime(u: Number) -> Number:
    """dF/du = ln(1 + e^(u/2)) * sigmoid(u/2)."""
    half = np.asarray(u, dtype=float) / 2.0
    return _softplus(half) * _sigmoid(half)


def _nmos_current_and_derivs(
    params: DeviceParams, vgs: float, vds: float, temperature: float
):
    """Current and partial derivatives for NMOS convention, vds >= 0."""
    vt = thermal_voltage(temperature)
    n = params.n_factor
    vth_eff = params.vth - params.dibl * vds
    vp = (vgs - vth_eff) / n
    u_f = vp / vt
    u_r = (vp - vds) / vt
    f_f = _ekv_f(u_f)
    f_r = _ekv_f(u_r)
    fp_f = _ekv_f_prime(u_f)
    fp_r = _ekv_f_prime(u_r)
    clm = 1.0 + params.lambda_ch * vds
    base = f_f - f_r
    current = params.i_spec * base * clm

    # d(vp)/d(vds) = dibl / n ; d(u_f)/d(vds) = dibl/(n vt)
    du_f_dvds = params.dibl / (n * vt)
    du_r_dvds = (params.dibl / n - 1.0) / vt
    d_base_dvds = fp_f * du_f_dvds - fp_r * du_r_dvds
    gds = params.i_spec * (d_base_dvds * clm + base * params.lambda_ch)

    du_dvgs = 1.0 / (n * vt)
    gm = params.i_spec * (fp_f - fp_r) * du_dvgs * clm
    return current, gm, gds


def drain_current(
    params: DeviceParams,
    vgs: float,
    vds: float,
    temperature: float = ROOM_TEMPERATURE,
) -> float:
    """Drain current of the device at the given terminal voltages.

    Voltages follow the device's own convention: for a p-type device pass
    ``vgs`` and ``vds`` as seen at its terminals (they will typically be
    negative in normal operation); the model mirrors them internally.

    Returns the signed current flowing into the drain terminal.
    """
    sign = 1.0
    if params.polarity == "p":
        vgs, vds = -vgs, -vds
        sign = -1.0
    if vds < 0.0:
        # Swap source and drain: I(vgs, vds) = -I(vgd, -vds)
        current, _, _ = _nmos_current_and_derivs(
            params, vgs - vds, -vds, temperature)
        return -sign * float(current)
    current, _, _ = _nmos_current_and_derivs(params, vgs, vds, temperature)
    return sign * float(current)


#: Step used for the numerical derivatives below (V).  The model is
#: smooth, so central differences at 10 uV are accurate to ~1e-9 relative.
_DERIV_STEP = 1e-5


def transconductance(
    params: DeviceParams,
    vgs: float,
    vds: float,
    temperature: float = ROOM_TEMPERATURE,
) -> float:
    """dId/dVgs at the operating point (same conventions as drain_current).

    Computed by central differences of :func:`drain_current`; this keeps
    the sign conventions of reversed-terminal and p-type operation
    trivially consistent with the current itself, which is what the
    Newton solver in :mod:`repro.spice.dc` needs.
    """
    hi = drain_current(params, vgs + _DERIV_STEP, vds, temperature)
    lo = drain_current(params, vgs - _DERIV_STEP, vds, temperature)
    return (hi - lo) / (2.0 * _DERIV_STEP)


def output_conductance(
    params: DeviceParams,
    vgs: float,
    vds: float,
    temperature: float = ROOM_TEMPERATURE,
) -> float:
    """dId/dVds at the operating point (same conventions as drain_current)."""
    hi = drain_current(params, vgs, vds + _DERIV_STEP, temperature)
    lo = drain_current(params, vgs, vds - _DERIV_STEP, temperature)
    return (hi - lo) / (2.0 * _DERIV_STEP)


def gate_leakage_current(params: DeviceParams, vox: float) -> float:
    """Gate tunneling current at oxide voltage ``vox``.

    First-order law: the paper only ever evaluates gate leakage at
    |Vox| = VDD (fully on or fully reverse-biased devices), so we use a
    steep polynomial interpolation anchored at ``ig_on``:

        Ig(vox) = ig_on * sign(vox) * (|vox| / vdd_ref)^3
    """
    if params.vdd_ref <= 0.0:
        return 0.0
    magnitude = abs(vox) / params.vdd_ref
    return math.copysign(params.ig_on * magnitude**3, vox)


def off_current(
    params: DeviceParams,
    vdd: float,
    temperature: float = ROOM_TEMPERATURE,
) -> float:
    """|Id| of a single off device with the full supply across it.

    For an n-type device: vgs = 0, vds = vdd.  This is the worst-case
    single-device subthreshold leakage used as the unit of comparison in
    Fig. 4.
    """
    if params.polarity == "n":
        return abs(drain_current(params, 0.0, vdd, temperature))
    return abs(drain_current(params, 0.0, -vdd, temperature))


def on_current(
    params: DeviceParams,
    vdd: float,
    temperature: float = ROOM_TEMPERATURE,
) -> float:
    """|Id| of a fully-on device in saturation (|vgs| = |vds| = vdd)."""
    if params.polarity == "n":
        return abs(drain_current(params, vdd, vdd, temperature))
    return abs(drain_current(params, -vdd, -vdd, temperature))
