"""Derived figures of merit for a technology.

These helpers compute, from the compact model alone, the quantities the
paper quotes as technology anchors: inverter input capacitance, the FO3
delay (and the 5x CNTFET/CMOS delay ratio of Deng et al. [10]), and
effective switching resistance.  Nothing here is hard-coded — the
calibration tests check that the parameter sets in
:mod:`repro.devices.parameters` actually hit the paper's targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.model import drain_current, off_current, on_current
from repro.devices.parameters import TechnologyParams
from repro.units import to_attofarads, to_nanoamperes, to_picoseconds


def inverter_input_capacitance(tech: TechnologyParams) -> float:
    """Input capacitance of a minimum inverter (F).

    One n plus one p conventional gate.  The paper quotes 36 aF for the
    CNTFET inverter and 52 aF for CMOS.  Polarity gates of an inverter
    are tied to the rails (Fig. 1), so they do not load the input.
    """
    return tech.nmos.c_gate + tech.pmos.c_gate


def fanout_load_capacitance(tech: TechnologyParams, fanout: int = 3) -> float:
    """Load seen by a gate output driving ``fanout`` inverter inputs (F).

    Following Section 4 the load is the fanout gate capacitance plus the
    intrinsic drain capacitance of the driving inverter's two devices.
    """
    return fanout * inverter_input_capacitance(tech) + (
        tech.nmos.c_sd + tech.pmos.c_sd)


def effective_resistance(tech: TechnologyParams, polarity: str = "n") -> float:
    """Effective switching resistance of one on device (ohm).

    Uses the average-current method: the device discharges the load from
    VDD to VDD/2, so R_eff = (3/4) * VDD / I_avg with I_avg the mean of
    the currents at Vds = VDD and Vds = VDD/2 (Rabaey's approximation).
    """
    params = tech.device(polarity)
    vdd = tech.vdd
    sign = 1.0 if polarity == "n" else -1.0
    i_full = abs(drain_current(params, sign * vdd, sign * vdd))
    i_half = abs(drain_current(params, sign * vdd, sign * vdd / 2.0))
    i_avg = 0.5 * (i_full + i_half)
    return 0.75 * vdd / i_avg


def fo_delay(tech: TechnologyParams, fanout: int = 3) -> float:
    """Analytic FO-``fanout`` inverter propagation delay (s).

    t_p = ln(2) * R_eff * C_load — the standard first-order RC estimate.
    """
    r_eff = 0.5 * (effective_resistance(tech, "n") + effective_resistance(tech, "p"))
    c_load = fanout_load_capacitance(tech, fanout)
    return 0.6931471805599453 * r_eff * c_load


@dataclass(frozen=True)
class TechnologyReport:
    """Summary of a technology's derived figures of merit."""

    name: str
    vdd: float
    cin_inverter_af: float
    ioff_na: float
    ion_ua: float
    ion_ioff_ratio: float
    r_eff_kohm: float
    fo3_delay_ps: float
    gate_leak_na: float

    def __str__(self) -> str:
        return (
            f"{self.name}: VDD={self.vdd:.2f} V, "
            f"Cin(inv)={self.cin_inverter_af:.1f} aF, "
            f"Ioff={self.ioff_na:.3f} nA, Ion={self.ion_ua:.2f} uA "
            f"(ratio {self.ion_ioff_ratio:.0f}), "
            f"Reff={self.r_eff_kohm:.1f} kOhm, "
            f"FO3={self.fo3_delay_ps:.2f} ps, "
            f"Ig(on)={self.gate_leak_na:.4f} nA"
        )


def technology_report(tech: TechnologyParams) -> TechnologyReport:
    """Compute the derived figures of merit for ``tech``."""
    ioff = off_current(tech.nmos, tech.vdd)
    ion = on_current(tech.nmos, tech.vdd)
    return TechnologyReport(
        name=tech.name,
        vdd=tech.vdd,
        cin_inverter_af=to_attofarads(inverter_input_capacitance(tech)),
        ioff_na=to_nanoamperes(ioff),
        ion_ua=ion / 1e-6,
        ion_ioff_ratio=ion / ioff if ioff > 0 else float("inf"),
        r_eff_kohm=effective_resistance(tech) / 1e3,
        fo3_delay_ps=to_picoseconds(fo_delay(tech)),
        gate_leak_na=to_nanoamperes(tech.nmos.ig_on),
    )
