"""Sharded, resumable execution of a sweep grid — grouped by activity.

``run_sweep`` is a thin wrapper over :meth:`repro.api.Session.sweep`,
kept for its established signature.  The session expands the spec,
drops every task whose key the store already holds, groups the rest by
*activity* (:func:`activity_group_key`: everything that shapes the
bit-parallel simulation — circuit, library, synthesis and mapper
options, pattern budget, seed, backend — i.e. every axis except the
pure pricing knobs vdd/frequency/fanout) and fans the groups out over
worker processes via
:func:`repro.experiments.parallel.parallel_map_stream`.

Each group runs **one** bit-parallel simulation (one per distinct
mapped-netlist hash, should the vdd axis ever change the mapping) and
re-prices every operating point of the group through the vectorized
:func:`repro.sim.estimator.estimate_many` — bit-identical to executing
each point separately, which the runner tests assert.  Finished points
are appended to the store *as their group completes* (grid order
serially, completion order across workers — the store is
key-addressed, so append order is irrelevant to resume), and a killed
run therefore checkpoints every finished group; the next run picks up
exactly where it stopped.

Worker-side caching mirrors the Table 1 grid: benchmarks are built and
synthesized once per process, libraries characterized once per process
*per supply voltage* (the vdd axis re-characterizes timing and leakage
through ``TechnologyParams.with_vdd``), mapped netlists are cached per
(circuit, library, vdd, synthesize, mapper options), and simulation
statistics live in the :mod:`repro.sim.activity` LRU + disk cache, so
even across groups and runs nothing simulates twice.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.experiments.flow import (
    estimate_mapped,
    flow_from_power_report,
    map_subject,
    synthesized_benchmark,
)
from repro.experiments.config import ExperimentConfig
from repro.registry import cached_library
from repro.sim.activity import (
    cache_info as activity_cache_info,
    netlist_activity_key,
    pricing_group_key,
    simulation_stats,
)
from repro.sweep.spec import SweepSpec, SweepTask
from repro.sweep.store import ResultStore, record_for


@lru_cache(maxsize=64)
def _mapped_netlist(circuit: str, library_key: str, vdd: float,
                    synthesize: bool, cut_size: int, cut_limit: int,
                    area_rounds: int):
    """Per-process cache of mapped netlists, keyed by what shapes them.

    ``vdd`` is part of the key because the library is characterized at
    the point's supply voltage (timing and leakage are vdd-dependent),
    so mapping legitimately differs across the vdd axis.
    """
    subject = synthesized_benchmark(circuit, synthesize)
    library = cached_library(library_key, vdd)
    options = ExperimentConfig(
        synthesize=synthesize, mapper_cut_size=cut_size,
        mapper_cut_limit=cut_limit, mapper_area_rounds=area_rounds)
    return map_subject(subject, library, options)


def _task_netlist(task: SweepTask):
    """The mapped netlist of one task, from the per-process cache."""
    config = task.config
    return _mapped_netlist(
        task.circuit, task.library, config.vdd, config.synthesize,
        config.mapper_cut_size, config.mapper_cut_limit,
        config.mapper_area_rounds)


def run_sweep_task(task: SweepTask) -> Dict[str, Any]:
    """Execute one sweep point: picklable task -> store record.

    The per-point path; the grouped runner is bit-identical to it (and
    asserted so in tests).  Activity still comes from the stats cache,
    so even this path never re-simulates a budget it has seen.
    """
    start = time.perf_counter()
    netlist = _task_netlist(task)
    flow = estimate_mapped(netlist, task.config, circuit=task.circuit,
                           library=task.library)
    return record_for(task, flow, time.perf_counter() - start)


# -- activity grouping --------------------------------------------------------

def activity_group_key(task: SweepTask) -> str:
    """Tasks sharing this key share one bit-parallel simulation.

    Everything of the task except the pure pricing axes (vdd,
    frequency, fanout); see
    :func:`repro.sim.activity.pricing_group_key`.  Within a group the
    vdd axis is additionally checked against the per-supply mapped
    netlists' activity hashes — the rare supply point that maps to a
    different structure is simulated separately.
    """
    return pricing_group_key(task.circuit, task.library, task.config)


def group_tasks(tasks: Sequence[SweepTask]) -> List[List[SweepTask]]:
    """Partition tasks into activity groups, preserving grid order."""
    groups: "Dict[str, List[SweepTask]]" = {}
    for task in tasks:
        groups.setdefault(activity_group_key(task), []).append(task)
    return list(groups.values())


def run_sweep_group(tasks: Sequence[SweepTask]) -> Dict[str, Any]:
    """Execute one activity group: one simulation, many pricings.

    Returns ``{"records": [...], "simulations": n}`` with one store
    record per task (task order) and the number of bit-parallel
    simulations this call actually executed (0 when the activity cache
    was already warm).  Non-bitsim backends fall back to the per-point
    path — their estimates are not a closed-form pricing of shared
    statistics — but still share the cached activity.
    """
    from repro import faults

    # Chaos injection: a worker.crash rule hard-kills this process
    # before any work (and before any store write) when a task of the
    # group matches — no-ops in the main process and when inactive.
    for task in tasks:
        faults.maybe_crash_worker(f"{task.circuit}/{task.library}")

    start = time.perf_counter()
    simulated_before = activity_cache_info()["simulations"]
    config = tasks[0].config
    if config.backend != "bitsim":
        records = [run_sweep_task(task) for task in tasks]
        return {"records": records,
                "simulations": (activity_cache_info()["simulations"]
                                - simulated_before)}

    from repro.sim.estimator import estimate_many

    netlists = {}
    for task in tasks:
        vdd = task.config.vdd
        if vdd not in netlists:
            netlists[vdd] = _task_netlist(task)
    # The vdd axis can (rarely) change the mapping; points whose
    # netlist hashes differently get their own simulation.
    subgroups: "Dict[str, List[SweepTask]]" = {}
    for task in tasks:
        key = netlist_activity_key(netlists[task.config.vdd])
        subgroups.setdefault(key, []).append(task)

    records: Dict[str, Dict[str, Any]] = {}
    for subtasks in subgroups.values():
        base = netlists[subtasks[0].config.vdd]
        stats = simulation_stats(base, config.n_patterns, config.seed,
                                 config.state_patterns,
                                 kernel=config.sim_kernel)
        points = [task.config.power_parameters for task in subtasks]
        reports = estimate_many(base, stats, points, netlists=netlists)
        for task, report in zip(subtasks, reports):
            flow = flow_from_power_report(report, task.config,
                                          circuit=task.circuit,
                                          library=task.library)
            records[task.task_key] = record_for(task, flow, 0.0)

    # One wall-clock measurement, apportioned evenly: per-point times
    # are not separable once the simulation is shared.
    per_point = (time.perf_counter() - start) / max(1, len(tasks))
    ordered = []
    for task in tasks:
        record = records[task.task_key]
        record["elapsed_s"] = per_point
        ordered.append(record)
    return {"records": ordered,
            "simulations": (activity_cache_info()["simulations"]
                            - simulated_before)}


@dataclass
class SweepRunReport:
    """What one ``sweep run`` invocation did."""

    spec_hash: str
    store_path: str
    total: int
    cached: int
    executed: int
    #: The caller's literal request (0 = all CPUs), before clamping.
    jobs_requested: int
    jobs_effective: int
    elapsed_s: float
    #: Activity groups the executed points collapsed into.
    groups: int = 0
    #: Bit-parallel simulations actually executed (<= groups; less when
    #: the activity cache was already warm).
    simulations: int = 0
    #: Task re-executions after a worker crash (0 on a clean run).
    retried: int = 0
    #: Tasks that kept crashing workers and were poisoned in the store.
    quarantined: int = 0
    #: The store the run appended to (handy for in-memory sessions).
    store: Optional[ResultStore] = field(default=None, repr=False,
                                         compare=False)

    def render(self) -> str:
        """One greppable summary line (CI asserts on ``executed=``,
        ``simulations=`` and ``quarantined=``)."""
        return (f"sweep {self.spec_hash[:12]}: total={self.total} "
                f"cached={self.cached} executed={self.executed} "
                f"groups={self.groups} simulations={self.simulations} "
                f"retried={self.retried} quarantined={self.quarantined} "
                f"jobs={self.jobs_effective} "
                f"elapsed={self.elapsed_s:.1f}s store={self.store_path}")


def _verbose_line(task: SweepTask, record: Dict[str, Any]) -> str:
    result = record["result"]
    return (f"{task.circuit:6s} {task.library:20s} "
            f"vdd={task.config.vdd:.2f}V f={task.config.frequency:.2e}Hz "
            f"fo={task.config.fanout} n={task.config.n_patterns} "
            f"PT={result['pt_w'] / 1e-6:8.2f}uW "
            f"({record['elapsed_s']:.2f}s)")


def _group_chunksize(n_groups: int, n_workers: int) -> int:
    """Groups per work unit: fair sharing with a little batching."""
    if n_workers <= 1:
        return 1
    return max(1, -(-n_groups // (n_workers * 4)))


def run_sweep(spec: SweepSpec, store: ResultStore,
              jobs: Optional[int] = 1,
              verbose: bool = False,
              echo: Callable[[str], None] = print) -> SweepRunReport:
    """Run every not-yet-stored point of a sweep grid.

    Args:
        spec: the grid to cover.
        store: result store; points whose task key it already holds
            are served from it and never re-executed.
        jobs: worker processes (1 = serial, 0/None = all CPUs; clamped
            to the CPU count).
        verbose: one line per completed point, streamed as it lands.
        echo: sink for verbose lines (tests capture it).
    """
    from repro.api import Session

    return Session(jobs=jobs).sweep(spec, store, verbose=verbose, echo=echo)
