"""Sharded, resumable execution of a sweep grid.

``run_sweep`` is a thin wrapper over :meth:`repro.api.Session.sweep`,
kept for its established signature.  The session expands the spec,
drops every task whose key the store already holds, and fans the rest
out over worker processes via
:func:`repro.experiments.parallel.parallel_map_stream`.  Each finished
point is appended to the store *as it completes* (grid order serially,
completion order across workers — the store is key-addressed, so
append order is irrelevant to resume), and a killed run therefore
checkpoints everything completed so far; the next run picks up exactly
where it stopped.

Worker-side caching mirrors the Table 1 grid: benchmarks are built and
synthesized once per process, libraries characterized once per process
*per supply voltage* (the vdd axis re-characterizes timing and leakage
through ``TechnologyParams.with_vdd`` — frequency, fanout and pattern
budget are estimation-time knobs), and the mapped netlist of each
(circuit, library, vdd, synthesize, mapper options) is cached so a
sweep over the remaining axes maps once and only re-estimates.
Mapping is deterministic, so the cached-netlist path is bit-identical
to the full pipeline (the runner tests assert this against
``reproduce_table1``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Dict, Optional

from repro.experiments.flow import (
    estimate_mapped,
    map_subject,
    synthesized_benchmark,
)
from repro.experiments.config import ExperimentConfig
from repro.registry import cached_library
from repro.sweep.spec import SweepSpec, SweepTask
from repro.sweep.store import ResultStore, record_for


@lru_cache(maxsize=64)
def _mapped_netlist(circuit: str, library_key: str, vdd: float,
                    synthesize: bool, cut_size: int, cut_limit: int,
                    area_rounds: int):
    """Per-process cache of mapped netlists, keyed by what shapes them.

    ``vdd`` is part of the key because the library is characterized at
    the point's supply voltage (timing and leakage are vdd-dependent),
    so mapping legitimately differs across the vdd axis.
    """
    subject = synthesized_benchmark(circuit, synthesize)
    library = cached_library(library_key, vdd)
    options = ExperimentConfig(
        synthesize=synthesize, mapper_cut_size=cut_size,
        mapper_cut_limit=cut_limit, mapper_area_rounds=area_rounds)
    return map_subject(subject, library, options)


def run_sweep_task(task: SweepTask) -> Dict[str, Any]:
    """Execute one sweep point: picklable task -> store record."""
    start = time.perf_counter()
    config = task.config
    netlist = _mapped_netlist(
        task.circuit, task.library, config.vdd, config.synthesize,
        config.mapper_cut_size, config.mapper_cut_limit,
        config.mapper_area_rounds)
    flow = estimate_mapped(netlist, config, circuit=task.circuit,
                           library=task.library)
    return record_for(task, flow, time.perf_counter() - start)


@dataclass
class SweepRunReport:
    """What one ``sweep run`` invocation did."""

    spec_hash: str
    store_path: str
    total: int
    cached: int
    executed: int
    #: The caller's literal request (0 = all CPUs), before clamping.
    jobs_requested: int
    jobs_effective: int
    elapsed_s: float
    #: The store the run appended to (handy for in-memory sessions).
    store: Optional[ResultStore] = field(default=None, repr=False,
                                         compare=False)

    def render(self) -> str:
        """One greppable summary line (CI asserts on ``executed=``)."""
        return (f"sweep {self.spec_hash[:12]}: total={self.total} "
                f"cached={self.cached} executed={self.executed} "
                f"jobs={self.jobs_effective} "
                f"elapsed={self.elapsed_s:.1f}s store={self.store_path}")


def _verbose_line(task: SweepTask, record: Dict[str, Any]) -> str:
    result = record["result"]
    return (f"{task.circuit:6s} {task.library:20s} "
            f"vdd={task.config.vdd:.2f}V f={task.config.frequency:.2e}Hz "
            f"fo={task.config.fanout} n={task.config.n_patterns} "
            f"PT={result['pt_w'] / 1e-6:8.2f}uW "
            f"({record['elapsed_s']:.2f}s)")


def _chunksize(spec: SweepSpec, n_pending: int, n_workers: int) -> int:
    """Group consecutive tasks of one netlist, bounded for balance."""
    group = max(1, spec.points_per_netlist)
    if n_workers <= 1:
        return group
    fair = max(1, -(-n_pending // (n_workers * 4)))
    return max(1, min(group, fair))


def run_sweep(spec: SweepSpec, store: ResultStore,
              jobs: Optional[int] = 1,
              verbose: bool = False,
              echo: Callable[[str], None] = print) -> SweepRunReport:
    """Run every not-yet-stored point of a sweep grid.

    Args:
        spec: the grid to cover.
        store: result store; points whose task key it already holds
            are served from it and never re-executed.
        jobs: worker processes (1 = serial, 0/None = all CPUs; clamped
            to the CPU count).
        verbose: one line per completed point, streamed as it lands.
        echo: sink for verbose lines (tests capture it).
    """
    from repro.api import Session

    return Session(jobs=jobs).sweep(spec, store, verbose=verbose, echo=echo)
