"""Resumable result stores for sweep runs.

Every completed sweep point is persisted as one self-describing record
keyed by its task's content hash.  Two backends share one interface,
chosen by file suffix in :func:`open_store`:

* **JSONL** (default, any suffix): append-only, one JSON object per
  line.  Appends are single ``write()`` calls of one line, so
  concurrent writers interleave whole records; a torn final line (from
  a killed run) is tolerated and simply recomputed.
* **SQLite** (``.sqlite`` / ``.sqlite3`` / ``.db``): one table keyed
  by ``task_key``, ``INSERT OR REPLACE`` semantics.

Resume falls out of the keying: a sweep run loads the store's key set
and only executes tasks whose key is absent, so interrupting a sweep
loses at most the points in flight and re-running a finished sweep
executes nothing.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

from repro.errors import ExperimentError
from repro.experiments.flow import CircuitFlowResult
from repro.schema import flow_from_record, store_record
from repro.sweep.spec import SweepSpec, SweepTask

#: Suffixes routed to the SQLite backend.
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def record_for(task: SweepTask, flow: CircuitFlowResult,
               elapsed_s: float) -> Dict[str, Any]:
    """The stored form of one completed point.

    The layout is the shared wire format of :mod:`repro.schema`
    (:func:`repro.schema.store_record`): the serving engine appends
    and reads the very same records.
    """
    return store_record(task, flow, elapsed_s)


def flow_result(record: Dict[str, Any]) -> CircuitFlowResult:
    """Rehydrate the :class:`CircuitFlowResult` of a stored record."""
    return flow_from_record(record)


class ResultStore:
    """Interface shared by the JSONL and SQLite backends."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def keys(self) -> Set[str]:
        """Task keys of every stored point."""
        raise NotImplementedError

    def records(self) -> List[Dict[str, Any]]:
        """All stored records, oldest first, last write per key wins."""
        raise NotImplementedError

    def append(self, record: Dict[str, Any]) -> None:
        """Persist one completed point."""
        raise NotImplementedError

    def get(self, task_key: str) -> Optional[Dict[str, Any]]:
        """The record of one task key, or None."""
        for record in self.records():
            if record.get("task_key") == task_key:
                return record
        return None

    def flush(self) -> None:
        """Ensure appended records are durable.

        Both persistent backends write through on every append (the
        JSONL handle is opened, written and closed per record; SQLite
        commits per statement), so the base implementation is a no-op —
        it exists so graceful shutdown can flush any store uniformly.
        """

    def poison_keys(self) -> Set[str]:
        """Task keys quarantined as poison (see :func:`poison_record`)."""
        return {record["task_key"] for record in self.all_records()
                if record.get("poison")}

    def all_records(self) -> List[Dict[str, Any]]:
        """Every stored record *including* poison markers.

        :meth:`records` (and therefore :meth:`keys`) exclude poison
        records so result consumers never mistake a quarantine marker
        for a completed point.
        """
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self.keys())


def poison_record(task_key: str, reason: str,
                  crashes: int = 0) -> Dict[str, Any]:
    """A quarantine marker for a task that kept crashing workers.

    Stored alongside result records (same key space) but flagged with
    ``"poison": True`` so :meth:`ResultStore.records`/``keys`` skip it;
    resume logic can see *why* a point is absent and operators can
    clear the marker to retry.
    """
    return {"task_key": task_key, "poison": True,
            "reason": reason, "crashes": crashes}


class MemoryResultStore(ResultStore):
    """A dict-backed store for API sessions that never touch disk.

    Same key-addressed semantics as the persistent backends (last
    write per key wins), but the records live only as long as the
    object — :meth:`repro.api.Session.sweep` uses one when no store is
    given.
    """

    def __init__(self):
        super().__init__(":memory:")
        self._records: Dict[str, Dict[str, Any]] = {}

    def keys(self) -> Set[str]:
        return {key for key, record in self._records.items()
                if not record.get("poison")}

    def records(self) -> List[Dict[str, Any]]:
        return [record for record in self._records.values()
                if not record.get("poison")]

    def all_records(self) -> List[Dict[str, Any]]:
        return list(self._records.values())

    def append(self, record: Dict[str, Any]) -> None:
        self._records[record["task_key"]] = record

    def get(self, task_key: str) -> Optional[Dict[str, Any]]:
        return self._records.get(task_key)


class JsonlResultStore(ResultStore):
    """Append-only JSON-lines store (the default backend)."""

    def _lines(self) -> List[Dict[str, Any]]:
        if not self.path.exists():
            return []
        out: List[Dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    # A torn line from a killed writer: that point is
                    # simply not finished and will be recomputed.
                    continue
                if isinstance(record, dict) and "task_key" in record:
                    out.append(record)
        return out

    def keys(self) -> Set[str]:
        return {record["task_key"] for record in self.records()}

    def records(self) -> List[Dict[str, Any]]:
        return [record for record in self.all_records()
                if not record.get("poison")]

    def all_records(self) -> List[Dict[str, Any]]:
        by_key: Dict[str, Dict[str, Any]] = {}
        for record in self._lines():
            by_key[record["task_key"]] = record
        return list(by_key.values())

    def append(self, record: Dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, separators=(",", ":"),
                          sort_keys=True) + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)


class SqliteResultStore(ResultStore):
    """SQLite-backed store for sweeps too large to rescan as JSONL."""

    def __init__(self, path: Union[str, Path]):
        super().__init__(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._connect() as conn:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS sweep_results ("
                " task_key TEXT PRIMARY KEY,"
                " record TEXT NOT NULL)")

    def _connect(self) -> sqlite3.Connection:
        return sqlite3.connect(self.path)

    def keys(self) -> Set[str]:
        return {record["task_key"] for record in self.records()}

    def records(self) -> List[Dict[str, Any]]:
        return [record for record in self.all_records()
                if not record.get("poison")]

    def all_records(self) -> List[Dict[str, Any]]:
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT record FROM sweep_results ORDER BY rowid")
            return [json.loads(row[0]) for row in rows]

    def append(self, record: Dict[str, Any]) -> None:
        payload = json.dumps(record, separators=(",", ":"), sort_keys=True)
        with self._connect() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO sweep_results (task_key, record) "
                "VALUES (?, ?)", (record["task_key"], payload))

    def get(self, task_key: str) -> Optional[Dict[str, Any]]:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT record FROM sweep_results WHERE task_key = ?",
                (task_key,)).fetchone()
        return json.loads(row[0]) if row else None


def open_store(path: Union[str, Path]) -> ResultStore:
    """Open (creating lazily) the store for a path, by suffix."""
    path = Path(path)
    if path.suffix.lower() in SQLITE_SUFFIXES:
        return SqliteResultStore(path)
    return JsonlResultStore(path)


def sweep_status(spec: SweepSpec, store: ResultStore) -> Dict[str, Any]:
    """How much of a spec's grid a store already holds.

    Returns ``total`` / ``done`` / ``missing`` counts plus the
    (circuit, library, vdd) triples of up to 20 missing points for
    orientation.
    """
    tasks = spec.expand()
    done_keys = store.keys()
    missing = [task for task in tasks if task.task_key not in done_keys]
    return {
        "spec_hash": spec.spec_hash,
        "total": len(tasks),
        "done": len(tasks) - len(missing),
        "missing": len(missing),
        "missing_preview": [
            {"circuit": task.circuit, "library": task.library,
             "vdd": task.config.vdd, "frequency": task.config.frequency,
             "fanout": task.config.fanout,
             "n_patterns": task.config.n_patterns}
            for task in missing[:20]],
    }


def require_store(path: Union[str, Path]) -> ResultStore:
    """Open an existing store, failing clearly when it is absent."""
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"result store {path} does not exist")
    return open_store(path)


def open_store_for_read(path: Union[str, Path]) -> ResultStore:
    """Open a store for querying without creating anything on disk.

    A missing path reads as an empty store (the JSONL backend never
    touches the filesystem on read), where :func:`open_store` on a
    SQLite path would create the database file as a side effect —
    wrong for read-only queries like ``sweep status``.
    """
    path = Path(path)
    if not path.exists():
        return JsonlResultStore(path)
    return open_store(path)
